"""Legacy setuptools shim.

All project metadata lives in pyproject.toml; this file exists only so
``pip install -e .`` works on offline environments without the ``wheel``
package (legacy editable installs don't need PEP 660 wheels).
"""

from setuptools import setup

setup()
