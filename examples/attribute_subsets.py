#!/usr/bin/env python3
"""Querying on attribute subsets: sorted vs tiled layouts (Section 5.6).

Users often query on a subset of attributes (only price and proximity,
out of many hotel attributes). The data's physical order is fixed at
load time — re-sorting per query is infeasible — so the layout must be
chosen to serve *any* subset well. This example lays the same dataset out
both ways (multi-attribute sort; Z-ordered tiles) and measures SRS / TRS
and their tiled variants T-SRS / T-TRS across subset choices, reproducing
the Figure 19 effect: SRS collapses when the subset omits the leading
sort attributes, tree-based methods stay flat.

Run:  python examples/attribute_subsets.py
"""

from repro.data.synthetic import synthetic_dataset
from repro.experiments import format_measurements, subset_sweep


def main() -> None:
    dataset = synthetic_dataset(2500, [8] * 7, seed=29)
    print(f"Dataset: {dataset.describe()}\n")

    subsets = [
        [0, 1, 2],  # a prefix of the sort order (SRS's best case)
        [2, 3, 4],  # a middle block
        [4, 5, 6],  # a suffix (SRS's worst case)
    ]
    rows = subset_sweep(dataset, subsets=subsets, queries_per_point=2)

    print(
        format_measurements(
            rows,
            columns=(
                ("algorithm", "algo"),
                ("checks", "checks"),
                ("response_ms", "resp_ms(model)"),
            ),
            param_keys=("subset",),
        )
    )

    def total(algo):
        return sum(m.checks for m in rows if m.algorithm == algo)

    print("\nTotal checks across subsets:")
    for algo in ("SRS", "T-SRS", "TRS", "T-TRS"):
        print(f"  {algo:>6}: {total(algo):12,.0f}")
    print(
        "\nTakeaway (Section 5.6): tiling rescues SRS on unfavourable "
        "subsets; the simple multi-dimensional sort is already good "
        "enough for TRS."
    )


if __name__ == "__main__":
    main()
