#!/usr/bin/env python3
"""Streaming influence monitoring over a sliding window.

A ticket-routing system watches the stream of incoming incidents (each
described by categorical attributes) and keeps, for a specific specialist
profile Q, the set of *currently open* incidents for which Q is an
undominated match — the reverse skyline of Q over a sliding window. As
incidents arrive and age out, the result is maintained incrementally with
AL-Tree traversals instead of being recomputed (the streaming counterpart
of the paper's problem; see repro.streaming).

Run:  python examples/streaming_monitor.py
"""

import numpy as np

from repro.data.synthetic import synthetic_dataset
from repro.engine import ReverseSkylineEngine
from repro.streaming import StreamingReverseSkyline

CARDS = [6, 5, 4, 3]  # subsystem, severity class, platform, locale group


def main() -> None:
    # Borrow a synthetic dataset's schema + random non-metric similarities
    # as the incident space.
    space_donor = synthetic_dataset(0, CARDS, seed=5)
    rng = np.random.default_rng(11)
    specialist = tuple(int(rng.integers(0, c)) for c in CARDS)
    print(f"Specialist profile Q = {specialist}")

    window = StreamingReverseSkyline(
        space_donor.schema, space_donor.space, specialist, capacity=200
    )

    matched_history = []
    for tick in range(1, 1001):
        incident = tuple(int(rng.integers(0, c)) for c in CARDS)
        window.insert(incident)
        if tick % 200 == 0:
            result = window.result()
            matched_history.append(len(result))
            print(
                f"  t={tick:5d}: window={len(window):4d} open incidents, "
                f"{len(result):3d} match Q undominated"
            )
            # Spot-audit the incremental state against a recomputation.
            assert result == window.recompute_naive()

    print("\nAudit passed: incremental result == from-scratch recomputation")

    # The same analysis, batch-style, via the engine facade: freeze the
    # current window into a dataset and compare influence of several
    # specialist profiles.
    frozen = space_donor.with_records(
        [values for _, values in window._window], name="frozen-window"
    )
    engine = ReverseSkylineEngine(frozen, memory_fraction=0.25)
    probes = {
        "specialist-Q": specialist,
        "generalist": tuple(0 for _ in CARDS),
        "alt-profile": tuple((v + 1) % c for v, c in zip(specialist, CARDS)),
    }
    report = engine.influence(probes)
    print("\nInfluence over the frozen window:")
    for label, score in report.ranked():
        print(f"  {label:>14}: {score}")
    print(f"  skew (gini): {report.skew():.3f}")


if __name__ == "__main__":
    main()
