#!/usr/bin/env python3
"""Server-fleet influence analysis — the paper's motivating scenario.

A service-delivery organisation maps system administrators and servers
into the same attribute space (OS expertise, database expertise, network
type, hardware class). An admin is a *candidate* for a server when the
server is in the admin's skyline; so the reverse skyline of an admin is
the set of servers they are a good choice for, and admins with large
reverse skylines are the influential ones whose attrition hurts most
(Section 1).

This example builds a synthetic fleet with expert-style (non-metric)
similarity matrices, computes every admin's influence with TRS, and
prints the influence distribution the business-continuity team would
monitor.

Run:  python examples/server_fleet.py
"""

import numpy as np

from repro import (
    Attribute,
    Dataset,
    DissimilaritySpace,
    MatrixDissimilarity,
    Schema,
    TRS,
)

OS_FAMILIES = ("RHEL", "SuSE", "Debian", "Windows", "AIX")
DB_ENGINES = ("DB2", "Oracle", "Postgres", "Informix")
NETWORKS = ("ethernet", "infiniband", "fiber")
HARDWARE = ("x86", "power", "mainframe")


def expert_matrix(labels: tuple[str, ...], rng: np.random.Generator) -> MatrixDissimilarity:
    """An 'expert-filled' dissimilarity matrix: random in [0,1], symmetric,
    zero diagonal — exactly how a domain expert's pairwise judgements look
    (and, like them, not guaranteed to satisfy the triangle inequality)."""
    v = len(labels)
    arr = rng.random((v, v))
    arr = np.triu(arr, 1)
    arr = arr + arr.T
    return MatrixDissimilarity(arr, labels=labels)


def build_fleet(num_servers: int = 1500, seed: int = 7) -> Dataset:
    rng = np.random.default_rng(seed)
    schema = Schema(
        [
            Attribute("os", cardinality=len(OS_FAMILIES), labels=OS_FAMILIES),
            Attribute("db", cardinality=len(DB_ENGINES), labels=DB_ENGINES),
            Attribute("network", cardinality=len(NETWORKS), labels=NETWORKS),
            Attribute("hardware", cardinality=len(HARDWARE), labels=HARDWARE),
        ]
    )
    space = DissimilaritySpace(
        [
            expert_matrix(OS_FAMILIES, rng),
            expert_matrix(DB_ENGINES, rng),
            expert_matrix(NETWORKS, rng),
            expert_matrix(HARDWARE, rng),
        ]
    )
    servers = [
        (
            int(rng.integers(0, len(OS_FAMILIES))),
            int(rng.integers(0, len(DB_ENGINES))),
            int(rng.integers(0, len(NETWORKS))),
            int(rng.integers(0, len(HARDWARE))),
        )
        for _ in range(num_servers)
    ]
    return Dataset(schema, servers, space, name="server-fleet")


def main() -> None:
    fleet = build_fleet()
    print(f"Fleet: {fleet.describe()}")

    # Admin profiles: the expertise vector each admin has accumulated.
    rng = np.random.default_rng(99)
    admins = {
        f"admin-{chr(ord('A') + k)}": tuple(
            int(rng.integers(0, c)) for c in fleet.schema.cardinalities()
        )
        for k in range(8)
    }

    trs = TRS(fleet, memory_fraction=0.10, page_bytes=512)
    trs.prepare()  # one-time multi-attribute sort

    print("\nInfluence (= reverse-skyline size) per admin:")
    influence = {}
    for name, profile in admins.items():
        result = trs.run(profile)
        influence[name] = len(result.record_ids)
        labels = [fleet.schema[i].label_of(v) for i, v in enumerate(profile)]
        print(
            f"  {name}: expertise={labels}  influences "
            f"{len(result.record_ids)} servers "
            f"({result.stats.checks:,} checks)"
        )

    ranked = sorted(influence.items(), key=lambda kv: -kv[1])
    total = sum(influence.values())
    print("\nBusiness-continuity view:")
    print(f"  most influential : {ranked[0][0]} ({ranked[0][1]} servers)")
    print(f"  least influential: {ranked[-1][0]} ({ranked[-1][1]} servers)")
    if total:
        top2 = sum(v for _, v in ranked[:2]) / total
        print(f"  influence concentration (top-2 share): {top2:.0%}")
        if top2 > 0.5:
            print("  -> heavily skewed: attrition of the top admins is a risk.")


if __name__ == "__main__":
    main()
