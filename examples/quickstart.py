#!/usr/bin/env python3
"""Quickstart: the paper's running example, end to end.

Builds the six-server database of Table 1 with the expert-provided
non-metric dissimilarities of Figure 1, runs every reverse-skyline
algorithm on the paper's query Q = [MSW, Intel, DB2], and shows that they
all return {O3, O6} while paying very different costs.

Run:  python examples/quickstart.py
"""

from repro import (
    ALGORITHMS,
    MemoryBudget,
    analyze_metricity,
    make_algorithm,
    running_example,
    running_example_query,
)


def main() -> None:
    dataset = running_example()
    query = running_example_query()

    print("Database (Table 1):")
    for i, record in enumerate(dataset):
        labels = [dataset.schema[j].label_of(v) for j, v in enumerate(record)]
        print(f"  O{i + 1}: {labels}")

    # The OS dissimilarities violate the triangle inequality — no metric
    # index (R-tree, M-tree, ...) can be used on this data.
    report = analyze_metricity(dataset.space[0])
    print(f"\nOS dissimilarity matrix is {report.summary()}")

    q_labels = [dataset.schema[j].label_of(v) for j, v in enumerate(query)]
    print(f"\nReverse skyline of Q = {q_labels}:")
    for name in ("Naive", "BRS", "SRS", "TRS"):
        algorithm = make_algorithm(name, dataset, budget=MemoryBudget(2))
        result = algorithm.run(query)
        members = [f"O{i + 1}" for i in result.record_ids]
        print(
            f"  {name:>5}: {members}  "
            f"(attribute checks: {result.stats.checks}, "
            f"page IOs: {result.stats.io.total})"
        )

    print(f"\nAvailable algorithms: {sorted(ALGORITHMS)}")
    print("Every algorithm returns the same set; they differ only in cost.")


if __name__ == "__main__":
    main()
