#!/usr/bin/env python3
"""Retail promotional mailing with mixed attributes (Sections 1 and 6).

A retailer wants to mail a new product offer to exactly the customers
whose recorded preference is not dominated by any other product — the
reverse skyline of the product over the customer base. Product/preference
descriptions mix categorical attributes (category, brand affinity) with
numeric ones (price point, typical basket size), so this example uses the
Section 6 NumericTRS with bucket-level group reasoning.

Run:  python examples/retail_promotions.py
"""

import numpy as np

from repro import NumericTRS, mixed_dataset
from repro.skyline import reverse_skyline_by_pruners


def main() -> None:
    # Customer preference base: 2 categorical attributes (product
    # category: 8 values; brand affinity: 5 values) and 2 numeric ones
    # (price point in currency units; typical basket size).
    customers = mixed_dataset(
        2000,
        [8, 5],
        [(5.0, 500.0), (1.0, 40.0)],
        seed=23,
        name="customer-preferences",
    )
    print(f"Customer base: {customers.describe()}\n")

    rng = np.random.default_rng(77)
    offers = {
        "budget-staple": (3, 1, 12.0, 18.0),
        "premium-launch": (6, 4, 320.0, 3.0),
        "mid-range": (1, 2, 95.0, 9.5),
    }

    algo = NumericTRS(customers, num_buckets=8, memory_fraction=0.10, page_bytes=512)
    algo.prepare()

    print("Mailing-list sizes (reverse skyline of each offer):")
    for name, offer in offers.items():
        result = algo.run(offer)
        print(
            f"  {name:>15}: {len(result.record_ids):4d} customers  "
            f"(|R| after bucket-level phase 1: "
            f"{result.stats.intermediate_count}, checks: {result.stats.checks:,})"
        )

    # Spot-check the discretised algorithm against the exact oracle on
    # one offer (the oracle is quadratic — fine at this scale).
    name, offer = next(iter(offers.items()))
    exact = reverse_skyline_by_pruners(customers, offer)
    got = list(algo.run(offer).record_ids)
    assert got == exact, "NumericTRS must match the exact reverse skyline"
    print(
        f"\nVerified: NumericTRS's mailing list for {name!r} matches the "
        f"exact reverse skyline ({len(exact)} customers)."
    )

    # Bucketing granularity trade-off: coarser buckets -> cheaper tree,
    # weaker phase-1 pruning (more phase-2 work).
    print("\nBucket-granularity trade-off (offer = mid-range):")
    for buckets in (2, 4, 8, 16, 32):
        a = NumericTRS(
            customers, num_buckets=buckets, memory_fraction=0.10, page_bytes=512
        )
        r = a.run(offers["mid-range"])
        print(
            f"  buckets={buckets:3d}: intermediate |R|="
            f"{r.stats.intermediate_count:4d}, checks={r.stats.checks:,}"
        )


if __name__ == "__main__":
    main()
