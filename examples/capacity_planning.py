#!/usr/bin/env python3
"""Capacity planning for a reverse-skyline deployment.

Given a dataset, answer the operational questions in order:

1. What does the data look like? (profile: density, duplicates, entropy)
2. Which algorithm and attribute order should serve it? (advisor +
   empirical order selection)
3. How much memory does it need to stay in the two-pass IO regime?
   (crossover analysis — the knee in the paper's Figures 5/6)
4. What latency should we expect? (measured over a query batch)

Run:  python examples/capacity_planning.py
"""

from repro.advisor import recommend
from repro.core.ordering import choose_attribute_order
from repro.data.queries import query_batch
from repro.data.realistic import census_income_like
from repro.data.stats import estimate_pruner_rate, profile_dataset
from repro.engine import ReverseSkylineEngine
from repro.experiments.crossover import two_pass_threshold


def main() -> None:
    dataset = census_income_like()
    queries = query_batch(dataset, 5, seed=17)

    # 1. Profile.
    profile = profile_dataset(dataset)
    print(profile.summary())
    for ap in profile.attributes:
        print(
            f"  {ap.name}: |domain|={ap.domain_cardinality}, "
            f"observed={ap.observed_distinct}, entropy={ap.entropy_bits:.2f} bits"
        )
    rate = estimate_pruner_rate(dataset, queries)
    print(f"estimated pruner rate: {rate:.0%} "
          f"({'dense/cheap' if rate > 0.5 else 'sparse/expensive'} regime)\n")

    # 2. Algorithm + attribute order.
    rec = recommend(dataset, calibrate=True)
    print(f"advisor: use {rec.algorithm}")
    for line in rec.rationale:
        print(f"  - {line}")
    order = choose_attribute_order(dataset)
    print(f"attribute order: {rec.algorithm} with {list(order.order)} "
          f"(strategy: {order.strategy})")
    for strategy, checks in order.ranking():
        print(f"  {strategy:>22}: {checks:,.0f} checks/query on the sample")
    print()

    # 3. Memory sizing: smallest fraction in the two-pass regime.
    point = two_pass_threshold(dataset, rec.algorithm, queries=queries[:2])
    print("memory sizing (average database passes per query):")
    for fraction, passes in sorted(point.passes_by_fraction.items()):
        marker = "  <- two-pass regime" if passes == 2.0 else ""
        print(f"  {fraction:>5.0%} memory: {passes:.1f} passes{marker}")
    if point.reached():
        print(f"recommendation: provision >= {point.threshold_fraction:.0%} "
              "of the dataset size as working memory\n")

    # 4. Expected latency at the recommended setting.
    engine = ReverseSkylineEngine(
        dataset,
        algorithm=rec.algorithm,
        memory_fraction=point.threshold_fraction or 0.10,
    )
    for q in queries:
        engine.query(q)
    latency = engine.latency_summary()
    print("measured query latency (pure Python, in-memory simulated IO):")
    print(f"  p50 {latency['p50_ms']:.1f} ms, p90 {latency['p90_ms']:.1f} ms, "
          f"max {latency['max_ms']:.1f} ms over {latency['count']:.0f} queries")


if __name__ == "__main__":
    main()
