#!/usr/bin/env python3
"""Pre-owned car sourcing — the paper's introduction scenario.

Cars are described by manufacturer, fuel type, colour and equipment tier;
user preferences live in the same space. A car is *relevant* to a user
when no other car dominates the user's preference with respect to it — so
the reverse skyline of a car is the set of users it can win, and a dealer
sources the cars with the largest reverse skylines (Section 1: "he/she
may want to source more of the influential cars").

This example also shows the RNN ⊆ RS relationship: a reverse-NN query
under any fixed attribute weighting finds only a subset of the users the
reverse skyline identifies — and the right weighting is exactly what's
hard to specify (Section 1.1).

Run:  python examples/car_recommender.py
"""

import numpy as np

from repro import Attribute, Dataset, DissimilaritySpace, MatrixDissimilarity, Schema, TRS
from repro.rnn import WeightedSum, reverse_nearest_neighbors, rnn_union, random_weight_vectors

MAKES = ("Toyota", "VW", "Ford", "Tata", "BMW")
FUELS = ("petrol", "diesel", "electric", "LPG")
COLORS = ("white", "black", "red", "blue")
TIERS = ("base", "comfort", "sport")

# Hand-specified, deliberately non-metric judgements: an electric car is
# "far" from both petrol and diesel, while petrol and diesel are close —
# but LPG sits near petrol and far from everything else. Such judgement
# tables routinely violate the triangle inequality.
FUEL_DISTANCES = {
    ("petrol", "diesel"): 0.2,
    ("petrol", "electric"): 0.9,
    ("petrol", "LPG"): 0.15,
    ("diesel", "electric"): 0.95,
    ("diesel", "LPG"): 0.6,
    ("electric", "LPG"): 1.0,
}


def build_inventory(num_users: int = 800, seed: int = 3):
    rng = np.random.default_rng(seed)
    fuel = MatrixDissimilarity.from_pairs(list(FUELS), FUEL_DISTANCES)

    def random_matrix(labels):
        v = len(labels)
        arr = rng.random((v, v))
        arr = np.triu(arr, 1) + np.triu(arr, 1).T
        return MatrixDissimilarity(arr, labels=labels)

    schema = Schema(
        [
            Attribute("make", cardinality=len(MAKES), labels=MAKES),
            Attribute("fuel", cardinality=len(FUELS), labels=FUELS),
            Attribute("color", cardinality=len(COLORS), labels=COLORS),
            Attribute("tier", cardinality=len(TIERS), labels=TIERS),
        ]
    )
    space = DissimilaritySpace(
        [random_matrix(MAKES), fuel, random_matrix(COLORS), random_matrix(TIERS)]
    )
    # The *database* is the user-preference base; each record is one
    # user's stated preference vector.
    users = [
        (
            int(rng.integers(0, len(MAKES))),
            int(rng.integers(0, len(FUELS))),
            int(rng.integers(0, len(COLORS))),
            int(rng.integers(0, len(TIERS))),
        )
        for _ in range(num_users)
    ]
    return Dataset(schema, users, space, name="user-preferences")


def main() -> None:
    prefs = build_inventory()
    print(f"User-preference base: {prefs.describe()}\n")

    candidate_cars = {
        "city-EV": ("VW", "electric", "white", "base"),
        "family-diesel": ("Toyota", "diesel", "blue", "comfort"),
        "weekend-sport": ("BMW", "petrol", "red", "sport"),
    }

    trs = TRS(prefs, memory_fraction=0.10, page_bytes=512)
    trs.prepare()

    print("Car influence (how many users each car can win):")
    results = {}
    for name, labels in candidate_cars.items():
        car = tuple(
            prefs.schema[i].labels.index(value) for i, value in enumerate(labels)
        )
        result = trs.run(car)
        results[name] = (car, result)
        print(f"  {name:>14}: {len(result.record_ids):4d} users  {list(labels)}")

    best = max(results, key=lambda k: len(results[k][1].record_ids))
    print(f"\nSource more of: {best}\n")

    # Why not just reverse-NN with a weighted sum? Because any fixed
    # weighting can only find a subset of the audience, and which subset
    # depends on a weighting nobody knows how to specify (Section 1.1).
    car, rs_result = results[best]
    rs = set(rs_result.record_ids)
    rng = np.random.default_rng(17)
    equal = set(reverse_nearest_neighbors(prefs, car, WeightedSum([0.25] * 4)))
    many = rnn_union(prefs, car, random_weight_vectors(4, 20, rng))
    assert equal <= rs and many <= rs  # the containment RS generalises
    print("RNN under fixed weightings vs the reverse skyline:")
    print(f"  equal weights       : {len(equal):4d} users")
    print(f"  20 random weightings: {len(many):4d} users (union of their RNN sets)")
    print(f"  reverse skyline     : {len(rs):4d} users — no weighting needed")
    if len(many) < len(rs):
        print(
            f"  -> {len(rs) - len(many)} interested users that all 20 "
            "weightings together still missed."
        )
    else:
        print("  -> here the weightings happened to cover everyone; the")
        print("     reverse skyline guarantees it without choosing weights.")


if __name__ == "__main__":
    main()
