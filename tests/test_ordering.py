"""Attribute-order strategies and the empirical selector."""

import pytest

from repro.core.ordering import (
    ORDER_STRATEGIES,
    OrderChoice,
    attribute_order_for,
    choose_attribute_order,
)
from repro.core.trs import TRS
from repro.data.queries import query_batch
from repro.data.synthetic import synthetic_dataset
from repro.errors import AlgorithmError
from repro.skyline.oracle import reverse_skyline_by_pruners


@pytest.fixture(scope="module")
def ds():
    return synthetic_dataset(500, [12, 3, 7, 5], seed=161)


class TestStrategies:
    @pytest.mark.parametrize("strategy", sorted(ORDER_STRATEGIES))
    def test_produces_permutation(self, ds, strategy):
        order = attribute_order_for(ds, strategy)
        assert sorted(order) == list(range(ds.num_attributes))

    def test_ascending_cardinality(self, ds):
        assert attribute_order_for(ds, "ascending_cardinality") == [1, 3, 2, 0]

    def test_descending_is_reverse_of_ascending(self, ds):
        asc = attribute_order_for(ds, "ascending_cardinality")
        assert attribute_order_for(ds, "descending_cardinality") == asc[::-1]

    def test_schema_order(self, ds):
        assert attribute_order_for(ds, "schema") == [0, 1, 2, 3]

    def test_entropy_puts_constant_attribute_first(self):
        base = synthetic_dataset(1, [4, 4], seed=1)
        ds = base.with_records([(2, i % 4) for i in range(40)])
        assert attribute_order_for(ds, "ascending_entropy")[0] == 0

    def test_unknown_strategy(self, ds):
        with pytest.raises(AlgorithmError, match="unknown order strategy"):
            attribute_order_for(ds, "bogus")


class TestChooser:
    def test_returns_measured_choice(self, ds):
        choice = choose_attribute_order(ds, sample_records=300)
        assert isinstance(choice, OrderChoice)
        assert choice.strategy in choice.measured_checks
        assert choice.measured_checks[choice.strategy] == min(
            choice.measured_checks.values()
        )
        assert sorted(choice.order) == list(range(ds.num_attributes))
        ranking = choice.ranking()
        assert ranking[0][1] <= ranking[-1][1]

    def test_chosen_order_is_correct_end_to_end(self, ds):
        choice = choose_attribute_order(ds, sample_records=300)
        algo = TRS(ds, attribute_order=list(choice.order), memory_fraction=0.2,
                   page_bytes=256)
        q = query_batch(ds, 1, seed=2)[0]
        assert list(algo.run(q).record_ids) == reverse_skyline_by_pruners(ds, q)

    def test_ascending_beats_descending_on_typical_data(self, ds):
        choice = choose_attribute_order(
            ds,
            strategies=("ascending_cardinality", "descending_cardinality"),
            sample_records=400,
        )
        checks = choice.measured_checks
        # The paper's Section 5.1 heuristic: big groups near the root win.
        assert checks["ascending_cardinality"] <= checks["descending_cardinality"] * 1.2

    def test_identical_orders_measured_once(self, ds):
        # ascending_cardinality and ascending_observed may coincide; the
        # selector must still report both strategies.
        choice = choose_attribute_order(
            ds,
            strategies=("ascending_cardinality", "ascending_observed"),
            sample_records=200,
        )
        assert set(choice.measured_checks) == {
            "ascending_cardinality",
            "ascending_observed",
        }

    def test_empty_dataset_rejected(self):
        with pytest.raises(AlgorithmError):
            choose_attribute_order(synthetic_dataset(0, [3], seed=1))
