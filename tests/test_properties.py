"""Property-based tests (hypothesis) on core invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.altree.tree import ALTree
from repro.data.dataset import Dataset
from repro.data.schema import Schema
from repro.dissim.generators import random_dissimilarity
from repro.dissim.space import DissimilaritySpace
from repro.skyline.domination import dominates
from repro.skyline.dynamic import bnl_skyline, sorted_skyline
from repro.sorting.keys import sort_records
from repro.tiling.zorder import z_decode, z_encode


# --- strategies -------------------------------------------------------------

@st.composite
def dataset_and_query(draw, max_records=60, max_attrs=4, max_card=6):
    m = draw(st.integers(1, max_attrs))
    cards = [draw(st.integers(2, max_card)) for _ in range(m)]
    seed = draw(st.integers(0, 2**16))
    n = draw(st.integers(0, max_records))
    rng = np.random.default_rng(seed)
    schema = Schema.categorical(cards)
    space = DissimilaritySpace([random_dissimilarity(c, rng) for c in cards])
    records = [
        tuple(int(rng.integers(0, c)) for c in cards) for _ in range(n)
    ]
    ds = Dataset(schema, records, space, validate=False)
    query = tuple(int(rng.integers(0, c)) for c in cards)
    return ds, query


# --- domination is a strict partial order per reference object ---------------

@given(dataset_and_query())
@settings(max_examples=40, deadline=None)
def test_domination_irreflexive(data):
    ds, q = data
    for x in ds.records[:15]:
        assert not dominates(ds.space, x, x, q)


@given(dataset_and_query())
@settings(max_examples=30, deadline=None)
def test_domination_antisymmetric(data):
    ds, q = data
    records = ds.records[:12]
    for a in records:
        for b in records:
            if dominates(ds.space, a, b, q):
                assert not dominates(ds.space, b, a, q)


@given(dataset_and_query())
@settings(max_examples=20, deadline=None)
def test_domination_transitive(data):
    ds, q = data
    records = ds.records[:8]
    for a in records:
        for b in records:
            if not dominates(ds.space, a, b, q):
                continue
            for c in records:
                if dominates(ds.space, b, c, q):
                    assert dominates(ds.space, a, c, q)


# --- skyline operators -------------------------------------------------------

@given(dataset_and_query())
@settings(max_examples=30, deadline=None)
def test_bnl_equals_sorted_skyline(data):
    ds, q = data
    assert bnl_skyline(ds.space, ds.records, q) == sorted_skyline(
        ds.space, ds.records, q
    )


@given(dataset_and_query())
@settings(max_examples=30, deadline=None)
def test_skyline_is_exactly_the_undominated(data):
    ds, q = data
    sky = set(bnl_skyline(ds.space, ds.records, q))
    for i, y in enumerate(ds.records):
        dominated = any(
            dominates(ds.space, z, y, q) for j, z in enumerate(ds.records) if j != i
        )
        assert (i not in sky) == dominated


# --- multi-attribute sort ----------------------------------------------------

@given(
    st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5), st.integers(0, 5)), max_size=60),
    st.permutations([0, 1, 2]),
)
@settings(max_examples=50, deadline=None)
def test_sort_records_permutation_and_clustered(records, order):
    out = sort_records(records, order)
    assert sorted(out) == sorted(records)
    keys = [tuple(r[i] for i in order) for r in out]
    assert keys == sorted(keys)


# --- AL-Tree -----------------------------------------------------------------

@given(
    st.lists(st.tuples(st.integers(0, 4), st.integers(0, 4), st.integers(0, 4)), max_size=80),
    st.permutations([0, 1, 2]),
)
@settings(max_examples=50, deadline=None)
def test_altree_roundtrip(records, order):
    tree = ALTree(list(order))
    for i, r in enumerate(records):
        tree.insert(i, r)
    assert tree.num_objects == len(records)
    assert sorted(tree.iter_entries()) == sorted(enumerate(records))
    tree.check_invariants()


@given(
    st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)), min_size=1, max_size=60),
    st.data(),
)
@settings(max_examples=50, deadline=None)
def test_altree_random_removals_preserve_invariants(records, data):
    tree = ALTree([0, 1])
    for i, r in enumerate(records):
        tree.insert(i, r)
    alive = dict(enumerate(records))
    removals = data.draw(
        st.lists(st.integers(0, len(records) - 1), max_size=len(records))
    )
    for rid in removals:
        if rid in alive:
            assert tree.remove_object(rid, alive.pop(rid))
        else:
            assert not tree.remove_object(rid, records[rid])
        tree.check_invariants()
    assert sorted(tree.iter_entries()) == sorted(alive.items())


# --- Z-order -----------------------------------------------------------------

@given(
    st.integers(1, 4),
    st.integers(1, 5),
    st.data(),
)
@settings(max_examples=80, deadline=None)
def test_zorder_bijective(ndims, bits, data):
    coords = tuple(
        data.draw(st.integers(0, (1 << bits) - 1)) for _ in range(ndims)
    )
    code = z_encode(coords, bits)
    assert 0 <= code < (1 << (bits * ndims))
    assert z_decode(code, ndims, bits) == coords
