"""Dataset profiling and the algorithm advisor."""

import math

import pytest

from repro.advisor import recommend
from repro.core.numeric import NumericTRS
from repro.core.tiled import TTRS
from repro.core.trs import TRS
from repro.data.queries import query_batch
from repro.data.stats import estimate_pruner_rate, profile_dataset
from repro.data.synthetic import mixed_dataset, synthetic_dataset
from repro.errors import ExperimentError


@pytest.fixture(scope="module")
def ds():
    return synthetic_dataset(400, [8, 3, 12], seed=131)


class TestProfile:
    def test_basic_counts(self, ds):
        profile = profile_dataset(ds)
        assert profile.num_records == 400
        assert profile.num_attributes == 3
        assert profile.density == pytest.approx(ds.density())
        assert 0 <= profile.duplicate_rate < 1
        assert profile.distinct_records <= 400

    def test_attribute_profiles(self, ds):
        profile = profile_dataset(ds)
        for i, ap in enumerate(profile.attributes):
            assert ap.domain_cardinality == ds.schema[i].cardinality
            assert 1 <= ap.observed_distinct <= ap.domain_cardinality
            assert 0 <= ap.entropy_bits <= math.log2(ap.domain_cardinality)
            assert 0 < ap.top_value_share <= 1
            assert ap.effective_cardinality <= ap.domain_cardinality + 1e-9

    def test_constant_attribute_entropy_zero(self):
        base = synthetic_dataset(1, [4, 4], seed=1)
        ds = base.with_records([(2, 1)] * 50)
        profile = profile_dataset(ds)
        assert profile.attributes[0].entropy_bits == 0.0
        assert profile.attributes[0].top_value_share == 1.0
        assert profile.duplicate_rate == pytest.approx(49 / 50)

    def test_mixed_dataset_has_no_density(self):
        ds = mixed_dataset(30, [3], [(0.0, 1.0)], seed=2)
        profile = profile_dataset(ds)
        assert profile.density is None
        assert not profile.attributes[1].is_categorical
        assert "n=30" in profile.summary()

    def test_empty_dataset(self):
        ds = synthetic_dataset(0, [4], seed=1)
        profile = profile_dataset(ds)
        assert profile.num_records == 0
        assert profile.duplicate_rate == 0.0


class TestPrunerRate:
    def test_dense_higher_than_sparse(self):
        dense = synthetic_dataset(800, [4, 4], seed=3)     # density 50
        sparse = synthetic_dataset(800, [30, 30, 30], seed=3)
        q_dense = query_batch(dense, 2, seed=4)
        q_sparse = query_batch(sparse, 2, seed=4)
        assert estimate_pruner_rate(dense, q_dense) > estimate_pruner_rate(
            sparse, q_sparse
        )

    def test_bounds(self, ds):
        rate = estimate_pruner_rate(ds, query_batch(ds, 2, seed=5), samples=100)
        assert 0.0 <= rate <= 1.0

    def test_empty_inputs(self, ds):
        with pytest.raises(ExperimentError):
            estimate_pruner_rate(synthetic_dataset(0, [3], seed=1), [(0,)])
        with pytest.raises(ExperimentError):
            estimate_pruner_rate(ds, [])


class TestAdvisor:
    def test_default_is_trs(self, ds):
        rec = recommend(ds)
        assert rec.algorithm == "TRS"
        assert sorted(rec.attribute_order) == [0, 1, 2]
        assert any("Section 5.1" in r for r in rec.rationale)
        algo = rec.build(ds)
        assert isinstance(algo, TRS)

    def test_numeric_schema_gets_numeric_trs(self):
        ds = mixed_dataset(50, [4], [(0.0, 1.0)], seed=6)
        rec = recommend(ds)
        assert rec.algorithm == "NumericTRS"
        assert isinstance(rec.build(ds), NumericTRS)

    def test_subset_workload_gets_ttrs(self, ds):
        rec = recommend(ds, subset_queries_expected=True)
        assert rec.algorithm == "T-TRS"
        assert isinstance(rec.build(ds), TTRS)

    def test_calibration_produces_measurements(self, ds):
        rec = recommend(ds, calibrate=True, calibration_sample=200)
        assert rec.calibration is not None
        assert set(rec.calibration) == {"BRS", "SRS", "TRS"}
        assert all(v > 0 for v in rec.calibration.values())
        # The recommendation must be the measured cheapest or TRS-by-heuristic
        # confirmed by calibration.
        cheapest = min(rec.calibration, key=rec.calibration.get)
        assert rec.algorithm == cheapest or rec.algorithm == "TRS"

    def test_recommended_algorithm_is_correct(self, ds):
        rec = recommend(ds, calibrate=True, calibration_sample=150)
        algo = rec.build(ds, page_bytes=256)
        from repro.skyline.oracle import reverse_skyline_by_pruners

        q = query_batch(ds, 1, seed=8)[0]
        assert list(algo.run(q).record_ids) == reverse_skyline_by_pruners(ds, q)

    def test_empty_dataset_rejected(self):
        with pytest.raises(ExperimentError):
            recommend(synthetic_dataset(0, [3], seed=1))


def _categorical_dataset(n, cards, dissim_factory, seed):
    """A synthetic dataset with a chosen dissimilarity construction."""
    import numpy as np

    from repro.data.dataset import Dataset
    from repro.data.schema import Schema
    from repro.dissim.space import DissimilaritySpace

    rng = np.random.default_rng(seed)
    schema = Schema.categorical(cards)
    records = [
        tuple(int(rng.integers(0, c)) for c in cards) for _ in range(n)
    ]
    space = DissimilaritySpace([dissim_factory(c, rng) for c in cards])
    return Dataset(schema, records, space, validate=False, name=f"adv-{n}")


class TestIndexAdvice:
    def test_small_dataset_keeps_trs(self, ds):
        rec = recommend(ds)  # n=400 < index threshold
        assert rec.algorithm == "TRS"
        assert not rec.index
        assert rec.recall_target is None

    def test_large_spread_dataset_gets_index(self):
        from repro.dissim.generators import metric_like_dissimilarity

        ds = _categorical_dataset(
            2500, [8, 8, 6], metric_like_dissimilarity, seed=11
        )
        rec = recommend(ds)
        assert rec.algorithm == "ITRS"
        assert rec.index
        assert rec.signals is not None
        assert any("candidate index" in r for r in rec.rationale)
        from repro.core.indexed import IndexedTRS

        assert isinstance(rec.build(ds), IndexedTRS)

    def test_metric_signals_are_clean(self):
        from repro.advisor import index_signals
        from repro.dissim.generators import (
            metric_like_dissimilarity,
            random_dissimilarity,
        )

        metric = _categorical_dataset(
            300, [8, 8], metric_like_dissimilarity, seed=3
        )
        rough = _categorical_dataset(300, [8, 8], random_dissimilarity, seed=3)
        s_metric = index_signals(metric)
        s_rough = index_signals(rough)
        # Shortest-path closure leaves (near) zero triangle defects on
        # each attribute; random U[0,1] matrices violate them freely.
        assert s_metric.defect_rate < s_rough.defect_rate
        assert 0.0 <= s_metric.defect_rate <= 1.0
        assert s_metric.mean_distinct > 1

    def test_near_metric_very_large_gets_recall_target(self):
        from repro.dissim.generators import metric_like_dissimilarity

        ds = _categorical_dataset(
            10_000, [10, 10], metric_like_dissimilarity, seed=5
        )
        rec = recommend(ds)
        assert rec.algorithm == "ITRS"
        assert rec.recall_target is not None
        assert 0.0 < rec.recall_target <= 1.0
        algo = rec.build(ds)
        assert algo.recall_target == rec.recall_target

    def test_low_cardinality_skips_index(self):
        from repro.dissim.generators import random_dissimilarity

        ds = _categorical_dataset(2500, [2, 2], random_dissimilarity, seed=9)
        rec = recommend(ds)
        assert rec.algorithm == "TRS"
        assert not rec.index
        assert any("not indicated" in r for r in rec.rationale)


class TestBRSShapeRule:
    def test_brs_shape_predicate(self):
        from repro.advisor import brs_shape

        dense = synthetic_dataset(600, [3, 3], seed=9)  # density >> 1
        sparse = synthetic_dataset(600, [12, 12, 12, 12], seed=9)
        assert brs_shape(profile_dataset(dense))
        assert not brs_shape(profile_dataset(sparse))
        # Mixed schemas have no density — never a BRS shape.
        mixed = mixed_dataset(30, [4], [(0.0, 1.0)], seed=2)
        assert not brs_shape(profile_dataset(mixed))

    def test_calibration_brs_win_vetoed_off_shape(self, monkeypatch):
        # The BRS family is only recommended on dense low-cardinality
        # shapes, even when a calibration sample happens to measure it
        # cheapest: rig the measurement so BRS wins and check the veto.
        import repro.advisor as advisor_mod

        class _Fake:
            def __init__(self, checks):
                self._checks = checks

            def run(self, q):
                class _R:
                    pass

                r = _R()
                r.stats = type("S", (), {"checks": self._checks})()
                return r

        canned = {"BRS": 10, "SRS": 500, "TRS": 900}
        monkeypatch.setattr(
            advisor_mod,
            "make_algorithm",
            lambda name, ds, **kw: _Fake(canned[name]),
        )
        sparse = synthetic_dataset(200, [12, 12, 12, 12], seed=9)
        rec = recommend(sparse, calibrate=True)
        assert rec.algorithm == "TRS"
        assert any("only recommended" in r for r in rec.rationale)
        # On a dense shape the same measurement is honoured.
        dense = synthetic_dataset(200, [3, 3], seed=9)
        rec = recommend(dense, calibrate=True)
        assert rec.algorithm == "BRS"
        assert any("calibration override: BRS" in r for r in rec.rationale)


class TestWriteRateRule:
    def test_no_write_rate_means_no_verdict(self, ds):
        assert recommend(ds).maintenance is None

    def test_zero_writes_is_static(self, ds):
        rec = recommend(ds, write_rate=0.0)
        assert rec.maintenance == "static"

    def test_read_dominated_gets_maintained(self):
        big = synthetic_dataset(600, [6, 5, 7], seed=17)
        rec = recommend(big, write_rate=0.1)
        assert rec.maintenance == "maintained"
        assert any("MaintainedEngine" in r for r in rec.rationale)

    def test_write_dominated_gets_rebuild(self):
        big = synthetic_dataset(600, [6, 5, 7], seed=17)
        rec = recommend(big, write_rate=0.8)
        assert rec.maintenance == "rebuild"
        assert any("write-dominated" in r for r in rec.rationale)

    def test_small_dataset_gets_rebuild(self, ds):
        rec = recommend(ds, write_rate=0.1)  # ds has 400 records
        assert rec.maintenance == "rebuild"
        assert any("delta bookkeeping" in r for r in rec.rationale)

    def test_numeric_schema_gets_rebuild(self):
        mixed = mixed_dataset(600, [5, 5], [(0.0, 1.0)], seed=4)
        rec = recommend(mixed, write_rate=0.1)
        assert rec.algorithm == "NumericTRS"
        assert rec.maintenance == "rebuild"

    @pytest.mark.parametrize("bad", [-0.1, 1.5, "lots", True])
    def test_bad_write_rate_rejected(self, ds, bad):
        with pytest.raises(ExperimentError):
            recommend(ds, write_rate=bad)
