"""Real-dataset surrogates must preserve the published density profiles."""

import pytest

from repro.data.realistic import (
    CENSUS_INCOME_CARDINALITIES,
    CENSUS_INCOME_ROWS,
    FOREST_COVER_CARDINALITIES,
    FOREST_COVER_ROWS,
    census_income_like,
    density_preserving_profile,
    forest_cover_like,
)


def paper_density(rows, cards):
    size = 1
    for c in cards:
        size *= c
    return rows / size


class TestProfileScaling:
    def test_identity_at_full_scale(self):
        cards, rows = density_preserving_profile(
            CENSUS_INCOME_CARDINALITIES, CENSUS_INCOME_ROWS, CENSUS_INCOME_ROWS
        )
        assert cards == CENSUS_INCOME_CARDINALITIES
        assert rows == CENSUS_INCOME_ROWS

    @pytest.mark.parametrize(
        "cards,rows",
        [
            (CENSUS_INCOME_CARDINALITIES, CENSUS_INCOME_ROWS),
            (FOREST_COVER_CARDINALITIES, FOREST_COVER_ROWS),
        ],
    )
    def test_density_preserved_when_scaling(self, cards, rows):
        target = paper_density(rows, cards)
        scaled_cards, scaled_rows = density_preserving_profile(cards, rows, 4000)
        got = paper_density(scaled_rows, scaled_cards)
        assert got == pytest.approx(target, rel=0.35)
        assert scaled_rows <= 4100

    def test_binary_attributes_never_collapse(self):
        cards, _ = density_preserving_profile(FOREST_COVER_CARDINALITIES, FOREST_COVER_ROWS, 2000)
        assert all(c >= 2 for c in cards)

    def test_profile_ordering_preserved(self):
        cards, _ = density_preserving_profile(CENSUS_INCOME_CARDINALITIES, CENSUS_INCOME_ROWS, 3000)
        # 91 > 53 > 17 > 7 > 5 ordering survives scaling.
        order = sorted(range(5), key=lambda i: CENSUS_INCOME_CARDINALITIES[i])
        assert sorted(range(5), key=lambda i: (cards[i], i)) == sorted(
            order, key=lambda i: (cards[i], i)
        )


class TestSurrogates:
    def test_ci_is_dense(self):
        ds = census_income_like()
        assert ds.num_attributes == 5
        assert ds.density() == pytest.approx(
            paper_density(CENSUS_INCOME_ROWS, CENSUS_INCOME_CARDINALITIES), rel=0.35
        )

    def test_fc_is_sparse_with_seven_attributes(self):
        ds = forest_cover_like()
        assert ds.num_attributes == 7
        assert ds.density() < 0.002  # the paper's "very low" regime

    def test_ci_denser_than_fc(self):
        assert census_income_like().density() > 10 * forest_cover_like().density()

    def test_reproducible(self):
        assert census_income_like().records == census_income_like().records

    def test_target_rows_override(self):
        ds = census_income_like(target_rows=500)
        assert len(ds) <= 520
