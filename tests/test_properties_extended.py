"""Property-based tests over the extension subsystems: subset queries,
shared scans, bichromatic queries, numeric discretisation, persistence."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bichromatic.query import (
    bichromatic_reverse_skyline,
    bichromatic_reverse_skyline_naive,
)
from repro.core.multiquery import SharedScanTRS
from repro.core.numeric import NumericTRS
from repro.core.trs import TRS
from repro.data.dataset import Dataset
from repro.data.schema import Schema
from repro.data.synthetic import mixed_dataset
from repro.dissim.generators import random_dissimilarity
from repro.dissim.space import DissimilaritySpace
from repro.engine import ReverseSkylineEngine
from repro.persist.format import load_dataset, save_dataset
from repro.skyline.oracle import reverse_skyline_by_pruners
from repro.storage.disk import MemoryBudget


def build_dataset(seed: int, n: int, cards: list[int]) -> tuple[Dataset, tuple]:
    rng = np.random.default_rng(seed)
    schema = Schema.categorical(cards)
    space = DissimilaritySpace([random_dissimilarity(c, rng) for c in cards])
    records = [tuple(int(rng.integers(0, c)) for c in cards) for _ in range(n)]
    query = tuple(int(rng.integers(0, c)) for c in cards)
    return Dataset(schema, records, space, validate=False), query


@given(
    st.integers(0, 2**16),
    st.integers(5, 70),
    st.lists(st.integers(0, 3), min_size=1, max_size=4, unique=True),
)
@settings(max_examples=25, deadline=None)
def test_subset_queries_match_projected_oracle(seed, n, subset_raw):
    ds, _ = build_dataset(seed, n, [5, 4, 6, 3])
    subset = [i for i in subset_raw if i < 4]
    if not subset:
        subset = [0]
    engine = ReverseSkylineEngine(ds, memory_fraction=0.3)
    projected = ds.project(subset)
    rng = np.random.default_rng(seed + 1)
    q = tuple(
        int(rng.integers(0, projected.schema[i].cardinality))
        for i in range(len(subset))
    )
    got = engine.query_subset(subset, q)
    assert list(got.record_ids) == reverse_skyline_by_pruners(projected, q)


@given(st.integers(0, 2**16), st.integers(1, 5), st.integers(0, 60))
@settings(max_examples=20, deadline=None)
def test_shared_scan_matches_solo_runs(seed, num_queries, n):
    ds, _ = build_dataset(seed, n, [5, 4, 3])
    rng = np.random.default_rng(seed + 2)
    queries = [
        tuple(int(rng.integers(0, c)) for c in (5, 4, 3)) for _ in range(num_queries)
    ]
    shared = SharedScanTRS(ds, budget=MemoryBudget(3), page_bytes=64)
    out = shared.run_batch(queries)
    solo = TRS(ds, budget=MemoryBudget(3), page_bytes=64)
    for q, ids in zip(out.queries, out.results):
        assert ids == solo.run(q).record_ids


@given(st.integers(0, 2**16), st.integers(0, 50), st.integers(0, 40))
@settings(max_examples=20, deadline=None)
def test_bichromatic_tree_equals_naive(seed, n_subjects, n_competitors):
    subjects, q = build_dataset(seed, n_subjects, [4, 5, 3])
    rng = np.random.default_rng(seed + 3)
    competitors = subjects.with_records(
        [
            tuple(int(rng.integers(0, c)) for c in (4, 5, 3))
            for _ in range(n_competitors)
        ]
    )
    assert bichromatic_reverse_skyline(
        subjects, competitors, q
    ) == bichromatic_reverse_skyline_naive(subjects, competitors, q)


@given(st.integers(0, 2**16), st.integers(2, 20), st.integers(5, 90))
@settings(max_examples=15, deadline=None)
def test_numeric_trs_bucket_invariance(seed, buckets, n):
    """The result must not depend on the bucketing granularity."""
    ds = mixed_dataset(n, [4], [(0.0, 1.0)], seed=seed)
    rng = np.random.default_rng(seed + 4)
    q = (int(rng.integers(0, 4)), float(rng.uniform(0, 1)))
    expected = reverse_skyline_by_pruners(ds, q)
    algo = NumericTRS(ds, num_buckets=buckets, budget=MemoryBudget(3), page_bytes=64)
    assert list(algo.run(q).record_ids) == expected


@given(st.integers(0, 2**16), st.integers(0, 40))
@settings(max_examples=15, deadline=None)
def test_persist_roundtrip_preserves_semantics(seed, n):
    ds, q = build_dataset(seed, n, [4, 3])
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        save_dataset(ds, tmp)
        back = load_dataset(tmp)
    assert back.records == ds.records
    assert reverse_skyline_by_pruners(back, q) == reverse_skyline_by_pruners(ds, q)


@given(st.integers(0, 2**16), st.integers(1, 6))
@settings(max_examples=15, deadline=None)
def test_skyband_nesting_property(seed, k):
    """RSB_k ⊆ RSB_{k+1} for every k, and RSB_1 == RS."""
    from repro.core.skyband import ReverseSkybandTRS

    ds, q = build_dataset(seed, 45, [4, 4])
    smaller = ReverseSkybandTRS(ds, k=k, budget=MemoryBudget(2), page_bytes=64)
    larger = ReverseSkybandTRS(ds, k=k + 1, budget=MemoryBudget(2), page_bytes=64)
    a = set(smaller.run(q).record_ids)
    b = set(larger.run(q).record_ids)
    assert a <= b
    if k == 1:
        assert a == set(reverse_skyline_by_pruners(ds, q))
