"""The exception hierarchy: everything derives from ReproError."""

import pytest

from repro.errors import (
    AlgorithmError,
    DissimilarityError,
    ExperimentError,
    MemoryBudgetError,
    ReproError,
    RetryExhaustedError,
    SchemaError,
    StorageError,
    TransientError,
    TransientIOError,
    WorkerCrashError,
)

ALL_ERRORS = [
    AlgorithmError,
    DissimilarityError,
    ExperimentError,
    MemoryBudgetError,
    SchemaError,
    StorageError,
    TransientError,
]

#: Exceptions whose constructors require context keywords, with a sample
#: instantiation each — they must still be plain ReproErrors to callers.
CONTEXTUAL_ERRORS = [
    lambda: TransientIOError("boom", op="read", file="data", page_id=3),
    lambda: WorkerCrashError("boom", query=(1, 2), reason="timeout"),
    lambda: RetryExhaustedError("boom", attempts=4),
]


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_subclass_of_repro_error(exc):
    assert issubclass(exc, ReproError)
    assert issubclass(exc, Exception)


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_catchable_as_repro_error(exc):
    with pytest.raises(ReproError):
        raise exc("boom")


@pytest.mark.parametrize("make", CONTEXTUAL_ERRORS)
def test_contextual_errors_catchable_as_repro_error(make):
    with pytest.raises(ReproError, match="boom"):
        raise make()


@pytest.mark.parametrize(
    "make, attrs",
    [
        (CONTEXTUAL_ERRORS[0], {"op": "read", "file": "data", "page_id": 3}),
        (CONTEXTUAL_ERRORS[1], {"query": (1, 2), "reason": "timeout"}),
        (CONTEXTUAL_ERRORS[2], {"attempts": 4, "last_error": None}),
    ],
)
def test_contextual_errors_carry_their_context(make, attrs):
    exc = make()
    for name, value in attrs.items():
        assert getattr(exc, name) == value


def test_transient_hierarchy():
    # Transient failures are retryable; exhaustion is terminal; the IO
    # variant is still catchable by storage-level handlers.
    assert issubclass(TransientIOError, TransientError)
    assert issubclass(TransientIOError, StorageError)
    assert issubclass(WorkerCrashError, TransientError)
    assert not issubclass(RetryExhaustedError, TransientError)


def test_library_errors_are_not_builtin_aliases():
    # Catching ReproError must not swallow unrelated bugs.
    assert not issubclass(ValueError, ReproError)
    assert not issubclass(KeyError, ReproError)
