"""The exception hierarchy: everything derives from ReproError."""

import pytest

from repro.errors import (
    AlgorithmError,
    DissimilarityError,
    ExperimentError,
    MemoryBudgetError,
    ReproError,
    SchemaError,
    StorageError,
)

ALL_ERRORS = [
    AlgorithmError,
    DissimilarityError,
    ExperimentError,
    MemoryBudgetError,
    SchemaError,
    StorageError,
]


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_subclass_of_repro_error(exc):
    assert issubclass(exc, ReproError)
    assert issubclass(exc, Exception)


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_catchable_as_repro_error(exc):
    with pytest.raises(ReproError):
        raise exc("boom")


def test_library_errors_are_not_builtin_aliases():
    # Catching ReproError must not swallow unrelated bugs.
    assert not issubclass(ValueError, ReproError)
    assert not issubclass(KeyError, ReproError)
