"""The public verification toolkit itself."""

import pytest

from repro.core.brs import BRS
from repro.core.naive import NaiveRS
from repro.core.srs import SRS
from repro.core.tiled import TSRS, TTRS
from repro.core.trs import TRS
from repro.errors import ExperimentError
from repro.testing.verify import random_workload, verify_algorithm


class TestRandomWorkload:
    def test_reproducible(self):
        a = random_workload(42)
        b = random_workload(42)
        assert a.dataset.records == b.dataset.records
        assert a.query == b.query
        assert a.budget_pages == b.budget_pages

    def test_page_fits_a_record(self):
        for seed in range(30):
            case = random_workload(seed)
            record_bytes = 4 + 4 * case.dataset.num_attributes
            assert case.page_bytes >= record_bytes

    def test_describe_mentions_seed(self):
        assert "seed=7" in random_workload(7).describe()


class TestVerifyAlgorithm:
    @pytest.mark.parametrize("cls", [NaiveRS, BRS, SRS, TRS, TSRS, TTRS])
    def test_all_production_algorithms_verify(self, cls):
        report = verify_algorithm(
            lambda ds, budget, page: cls(ds, budget=budget, page_bytes=page),
            trials=20,
            seed=1000,
        )
        assert report.ok, str(report.failures[0])
        assert report.trials == 20

    def test_oracle_cross_check(self):
        report = verify_algorithm(
            lambda ds, budget, page: TRS(ds, budget=budget, page_bytes=page),
            trials=8,
            seed=2000,
            check_definition_oracle=True,
        )
        assert report.ok

    def test_catches_a_broken_algorithm(self):
        class BrokenTRS(TRS):
            def _execute(self, disk, data_file, query, stats):
                ids = super()._execute(disk, data_file, query, stats)
                return ids[1:]  # drop a result

        report = verify_algorithm(
            lambda ds, budget, page: BrokenTRS(ds, budget=budget, page_bytes=page),
            trials=40,
            seed=3000,
        )
        assert not report.ok
        failure = report.failures[0]
        assert failure.got is not None
        assert set(failure.got) < set(failure.expected)
        assert "missing" in str(failure)

    def test_catches_a_crashing_algorithm(self):
        class CrashingTRS(TRS):
            def _execute(self, disk, data_file, query, stats):
                raise RuntimeError("kaboom")

        report = verify_algorithm(
            lambda ds, budget, page: CrashingTRS(ds, budget=budget, page_bytes=page),
            trials=3,
            seed=4000,
        )
        assert not report.ok
        assert "kaboom" in report.failures[0].error
        assert "raised" in str(report.failures[0])

    def test_max_failures_caps_work(self):
        class AlwaysWrong(TRS):
            def _execute(self, disk, data_file, query, stats):
                return []

        report = verify_algorithm(
            lambda ds, budget, page: AlwaysWrong(ds, budget=budget, page_bytes=page),
            trials=50,
            seed=5000,
            max_failures=3,
        )
        # Empty results are wrong only when the expected set is non-empty,
        # so a few trials may pass; the cap must still bound the failures.
        assert len(report.failures) == 3
        assert report.trials <= 50

    def test_invalid_trials(self):
        with pytest.raises(ExperimentError):
            verify_algorithm(lambda *a: None, trials=0)
