"""Fault injection and recovery: plans, injectors, retry policies, and
the storage layer's behaviour under injected faults.

The load-bearing invariants:

- injection is a pure function of (seed, site, consultation) — replays
  are bit-identical, and ``max_consecutive`` bounds failure streaks;
- recovered runs return the same answers *and the same logical IO
  counts* as fault-free runs (retries are accounted separately);
- torn appends are repaired by the retry (page commits are idempotent);
- exhausted retries surface one structured ``RetryExhaustedError``
  naming the failing site.
"""

import pickle

import pytest

from repro.data.schema import Schema
from repro.errors import (
    ReproError,
    RetryExhaustedError,
    StorageError,
    TransientError,
    TransientIOError,
    WorkerCrashError,
)
from repro.faults import NO_RETRY, FaultInjector, FaultPlan, RetryPolicy
from repro.storage.codec import RecordCodec
from repro.storage.disk import DiskSimulator


def no_sleep(_):
    pass


def fast_policy(attempts=4):
    return RetryPolicy(max_attempts=attempts, base_delay_s=0.0, sleep=no_sleep)


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ReproError, match="read_error_rate"):
            FaultPlan(read_error_rate=1.5)
        with pytest.raises(ReproError, match="crash_rate"):
            FaultPlan(crash_rate=-0.1)
        with pytest.raises(ReproError, match="latency_s"):
            FaultPlan(latency_s=-1.0)
        with pytest.raises(ReproError, match="max_consecutive"):
            FaultPlan(max_consecutive=-1)

    def test_storm_enables_everything(self):
        plan = FaultPlan.storm(0.2)
        assert plan.any_io_faults and plan.any_query_faults

    def test_io_only_has_no_query_faults(self):
        plan = FaultPlan.io_only(0.3)
        assert plan.any_io_faults and not plan.any_query_faults

    def test_empty_plan_is_quiet(self):
        plan = FaultPlan()
        assert not plan.any_io_faults and not plan.any_query_faults


class TestFaultInjector:
    def test_same_seed_same_schedule(self):
        plan = FaultPlan.io_only(0.5)
        a, b = FaultInjector(plan, seed=3), FaultInjector(plan, seed=3)
        seq_a = [a.page_io_action("f", i % 4, write=False).kind for i in range(40)]
        seq_b = [b.page_io_action("f", i % 4, write=False).kind for i in range(40)]
        assert seq_a == seq_b
        assert "fail" in seq_a  # the schedule actually injects at this rate

    def test_different_seeds_differ(self):
        plan = FaultPlan.io_only(0.5)
        a, b = FaultInjector(plan, seed=1), FaultInjector(plan, seed=2)
        seq_a = [a.page_io_action("f", 0, write=False).kind for _ in range(40)]
        seq_b = [b.page_io_action("f", 0, write=False).kind for _ in range(40)]
        assert seq_a != seq_b

    def test_max_consecutive_caps_failure_streaks(self):
        plan = FaultPlan(read_error_rate=1.0, max_consecutive=2)
        injector = FaultInjector(plan, seed=0)
        kinds = [injector.page_io_action("f", 0, write=False).kind for _ in range(9)]
        # rate 1.0 would fail forever; the cap forces success every third.
        assert kinds == ["fail", "fail", "ok"] * 3

    def test_torn_only_on_appends(self):
        plan = FaultPlan(torn_append_rate=1.0, max_consecutive=1)
        injector = FaultInjector(plan, seed=0)
        assert injector.page_io_action("f", 3, write=True, appending=True).kind == "torn"
        assert injector.page_io_action("f", 0, write=True).kind == "ok"

    def test_stats_count_by_kind(self):
        plan = FaultPlan(read_error_rate=1.0, max_consecutive=1)
        injector = FaultInjector(plan, seed=0)
        injector.page_io_action("f", 0, write=False)
        injector.page_io_action("f", 1, write=False)
        s = injector.stats()
        assert s.read_errors == 2 and s.total == 2 and s.write_errors == 0

    def test_reset_restores_the_original_schedule(self):
        plan = FaultPlan.io_only(0.5)
        injector = FaultInjector(plan, seed=9)
        first = [injector.page_io_action("f", 0, write=False).kind for _ in range(10)]
        injector.reset()
        again = [injector.page_io_action("f", 0, write=False).kind for _ in range(10)]
        assert first == again
        assert injector.stats().total == first.count("fail")

    def test_pickle_roundtrip_rebuilds_fresh(self):
        plan = FaultPlan.storm(0.4)
        injector = FaultInjector(plan, seed=11)
        [injector.page_io_action("f", 0, write=False) for _ in range(10)]
        clone = pickle.loads(pickle.dumps(injector))
        assert clone.plan == plan and clone.seed == 11
        assert clone.stats().total == 0  # fresh counters on the other side
        fresh = FaultInjector(plan, seed=11)
        assert [clone.page_io_action("f", 0, write=False).kind for _ in range(10)] == [
            fresh.page_io_action("f", 0, write=False).kind for _ in range(10)
        ]

    def test_query_faults_raise_worker_crash(self):
        plan = FaultPlan(crash_rate=1.0, max_consecutive=1)
        injector = FaultInjector(plan, seed=0)
        with pytest.raises(WorkerCrashError) as info:
            injector.query_fault((1, 2))
        assert info.value.query == (1, 2)
        injector.query_fault((1, 2))  # capped: second consult must pass


class TestRetryPolicy:
    def test_delays_grow_geometrically_and_cap(self):
        policy = RetryPolicy(
            base_delay_s=0.01, multiplier=2.0, max_delay_s=0.03, jitter=0.0
        )
        assert policy.delay_for(1) == pytest.approx(0.01)
        assert policy.delay_for(2) == pytest.approx(0.02)
        assert policy.delay_for(3) == pytest.approx(0.03)  # capped
        assert policy.delay_for(9) == pytest.approx(0.03)

    def test_backoff_sleeps_then_exhausts(self):
        slept = []
        policy = RetryPolicy(
            max_attempts=3, base_delay_s=0.01, jitter=0.0, sleep=slept.append
        )
        boom = TransientIOError("x", op="read", file="f", page_id=0)
        policy.backoff(1, boom)
        policy.backoff(2, boom)
        assert slept == [pytest.approx(0.01), pytest.approx(0.02)]
        with pytest.raises(RetryExhaustedError) as info:
            policy.backoff(3, boom)
        assert info.value.attempts == 3 and info.value.last_error is boom

    def test_no_retry_fails_immediately(self):
        with pytest.raises(RetryExhaustedError):
            NO_RETRY.backoff(1, TransientIOError("x", op="read", file="f", page_id=0))

    def test_validation(self):
        with pytest.raises(ReproError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ReproError):
            RetryPolicy(base_delay_s=-1.0)
        with pytest.raises(ReproError):
            RetryPolicy(jitter=1.5)


class TestRetryJitter:
    """The thundering-herd fix: delays decorrelate deterministically."""

    def test_fixed_salt_is_deterministic(self):
        a = RetryPolicy(base_delay_s=0.01, max_delay_s=0.08, jitter_salt=7)
        b = RetryPolicy(base_delay_s=0.01, max_delay_s=0.08, jitter_salt=7)
        assert [a.delay_for(n) for n in range(1, 6)] == [
            b.delay_for(n) for n in range(1, 6)
        ]

    def test_different_salts_decorrelate(self):
        delays = {
            salt: tuple(
                RetryPolicy(
                    base_delay_s=0.01, max_delay_s=0.08, jitter_salt=salt
                ).delay_for(n)
                for n in range(1, 5)
            )
            for salt in range(8)
        }
        # Workers with distinct salts must not back off in lockstep.
        assert len(set(delays.values())) == len(delays)

    def test_jitter_respects_existing_bounds(self):
        policy = RetryPolicy(
            base_delay_s=0.01, multiplier=2.0, max_delay_s=0.03, jitter_salt=3
        )
        plain = RetryPolicy(
            base_delay_s=0.01, multiplier=2.0, max_delay_s=0.03, jitter=0.0
        )
        for attempt in range(1, 10):
            d = policy.delay_for(attempt)
            full = plain.delay_for(attempt)
            assert 0.0 <= d <= full <= policy.max_delay_s
            assert d >= full * (1.0 - policy.jitter)

    def test_default_salt_is_per_process(self):
        import os

        policy = RetryPolicy(base_delay_s=0.01, max_delay_s=0.08)
        pinned = RetryPolicy(
            base_delay_s=0.01, max_delay_s=0.08, jitter_salt=os.getpid()
        )
        assert policy.delay_for(2) == pytest.approx(pinned.delay_for(2))

    def test_executor_ships_jitter_to_workers(self):
        from repro.data.examples import running_example
        from repro.engine import ReverseSkylineEngine
        from repro.exec.executor import QueryExecutor

        engine = ReverseSkylineEngine(running_example())
        ex = QueryExecutor(
            engine,
            retry_policy=RetryPolicy(jitter=0.25, jitter_salt=None),
        )
        args = ex._retry_args()
        assert args["jitter"] == 0.25
        # None stays None so each worker jitters from its own pid.
        assert args["jitter_salt"] is None
        assert RetryPolicy(**args).jitter == 0.25


def make_disk(plan=None, seed=0, attempts=4, **kwargs):
    injector = FaultInjector(plan, seed=seed) if plan is not None else None
    disk = DiskSimulator(
        64, fault_injector=injector, retry_policy=fast_policy(attempts), **kwargs
    )
    codec = RecordCodec(Schema.categorical([5] * 3))  # 16B -> 4 rec/page
    return disk, disk.create_file("f", codec)


def fill(pf, n):
    with pf.writer() as w:
        for i in range(n):
            w.append(i, (i % 5, 0, 0))


class TestStorageRecovery:
    def test_reads_recover_and_logical_io_is_unchanged(self):
        clean_disk, clean_pf = make_disk()
        fill(clean_pf, 12)
        clean_disk.stats.reset()
        for page in (0, 1, 2, 0):
            clean_pf.read_page(page)

        disk, pf = make_disk(FaultPlan(read_error_rate=0.6, max_consecutive=2))
        fill(pf, 12)
        disk.stats.reset()
        pages = [pf.read_page(page) for page in (0, 1, 2, 0)]
        assert [rid for page in pages for rid, _ in page] == [
            0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 0, 1, 2, 3,
        ]
        # Identical logical cost; the faults show up only in retry counters.
        assert disk.stats.sequential_reads == clean_disk.stats.sequential_reads
        assert disk.stats.random_reads == clean_disk.stats.random_reads
        assert disk.stats.read_retries > 0
        assert disk.stats.faults_seen == disk.stats.read_retries

    def test_writes_recover(self):
        disk, pf = make_disk(FaultPlan(write_error_rate=0.7, max_consecutive=2))
        fill(pf, 8)
        pf.write_page(1, [(99, (1, 1, 1))])
        assert pf.read_page(1) == [(99, (1, 1, 1))]
        assert pf.num_records == 5
        assert disk.stats.write_retries > 0

    def test_torn_append_is_repaired_by_retry(self):
        disk, pf = make_disk(FaultPlan(torn_append_rate=0.8, max_consecutive=2))
        fill(pf, 20)
        assert disk.stats.faults_seen > 0  # the storm actually tore appends
        assert pf.num_records == 20
        assert [rid for rid, _ in pf.peek_all_records()] == list(range(20))

    def test_latency_spikes_keep_answers_intact(self):
        stalls = []
        plan = FaultPlan(latency_rate=1.0, latency_s=0.001, max_consecutive=1)
        injector = FaultInjector(plan, seed=0)
        disk = DiskSimulator(
            64,
            fault_injector=injector,
            retry_policy=RetryPolicy(max_attempts=2, sleep=stalls.append),
        )
        pf = disk.create_file("f", RecordCodec(Schema.categorical([5] * 3)))
        fill(pf, 4)
        pf.read_page(0)
        assert stalls  # spikes routed through the policy's sleep hook
        assert injector.stats().latency_spikes > 0
        assert disk.stats.read_retries == 0  # latency is not a failure

    def test_exhaustion_raises_structured_error_with_site(self):
        disk, pf = make_disk(
            FaultPlan(read_error_rate=1.0, max_consecutive=10), attempts=3
        )
        fill(pf, 4)
        with pytest.raises(RetryExhaustedError) as info:
            pf.read_page(0)
        assert info.value.attempts == 3
        inner = info.value.last_error
        assert isinstance(inner, TransientIOError)
        assert inner.file == "f" and inner.page_id == 0 and inner.op == "read"

    def test_real_file_backing_recovers_identically(self, tmp_path):
        plan = FaultPlan.io_only(0.5)
        mem_disk, mem_pf = make_disk(plan, seed=5)
        fill(mem_pf, 16)
        real_disk, real_pf = make_disk(plan, seed=5, backing_dir=tmp_path / "pages")
        fill(real_pf, 16)
        assert real_pf.peek_all_records() == mem_pf.peek_all_records()
        assert real_disk.stats.sequential_writes == mem_disk.stats.sequential_writes

    def test_fault_free_disk_counts_no_retries(self):
        disk, pf = make_disk()
        fill(pf, 8)
        pf.read_page(0)
        assert disk.stats.retries == 0 and disk.stats.faults_seen == 0


class TestErrorTypes:
    def test_transient_io_error_context(self):
        exc = TransientIOError("boom", op="write", file="data", page_id=7)
        assert isinstance(exc, TransientError)
        assert isinstance(exc, StorageError)  # catchable by storage callers
        assert (exc.op, exc.file, exc.page_id) == ("write", "data", 7)

    def test_worker_crash_is_transient(self):
        exc = WorkerCrashError("boom", query=(1, 2), reason="timeout")
        assert isinstance(exc, TransientError)
        assert exc.query == (1, 2) and exc.reason == "timeout"

    def test_retry_exhausted_is_terminal_not_transient(self):
        inner = TransientIOError("x", op="read", file="f", page_id=0)
        exc = RetryExhaustedError("gave up", attempts=4, last_error=inner)
        assert not isinstance(exc, TransientError)
        assert exc.attempts == 4 and exc.last_error is inner
