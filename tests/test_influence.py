"""Influence analysis over reverse-skyline sizes."""

import pytest

from repro.core.trs import TRS
from repro.data.queries import query_batch
from repro.data.synthetic import synthetic_dataset
from repro.errors import ExperimentError
from repro.influence.analysis import gini, influence_analysis, self_influence
from repro.skyline.oracle import reverse_skyline_by_pruners


@pytest.fixture(scope="module")
def ds():
    return synthetic_dataset(300, [6, 5, 4], seed=44)


class TestGini:
    def test_uniform_is_zero(self):
        assert gini([5, 5, 5, 5]) == pytest.approx(0.0)

    def test_concentrated_is_high(self):
        assert gini([0, 0, 0, 100]) == pytest.approx(0.75)

    def test_all_zero(self):
        assert gini([0, 0, 0]) == 0.0

    def test_scale_invariant(self):
        assert gini([1, 2, 3]) == pytest.approx(gini([10, 20, 30]))

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            gini([])

    def test_negative_rejected(self):
        with pytest.raises(ExperimentError):
            gini([1, -1])


class TestInfluenceAnalysis:
    def test_scores_match_oracle(self, ds):
        probes = {f"p{i}": q for i, q in enumerate(query_batch(ds, 3, seed=2))}
        report = influence_analysis(ds, probes, memory_fraction=0.2)
        for label, probe in probes.items():
            assert report.scores[label] == len(reverse_skyline_by_pruners(ds, probe))

    def test_sequence_probes_get_labels(self, ds):
        report = influence_analysis(ds, query_batch(ds, 2, seed=3))
        assert set(report.scores) == {"probe-0", "probe-1"}

    def test_ranked_descending(self, ds):
        report = influence_analysis(ds, query_batch(ds, 4, seed=4))
        scores = [s for _, s in report.ranked()]
        assert scores == sorted(scores, reverse=True)
        assert report.top(2) == [label for label, _ in report.ranked()[:2]]

    def test_concentration_bounds(self, ds):
        report = influence_analysis(ds, query_batch(ds, 4, seed=5))
        assert 0.0 <= report.concentration(1) <= 1.0
        assert report.concentration(4) == pytest.approx(1.0)

    def test_accepts_prebuilt_algorithm(self, ds):
        algo = TRS(ds, memory_fraction=0.2)
        report = influence_analysis(ds, query_batch(ds, 2, seed=6), algorithm=algo)
        assert report.total_checks > 0

    def test_empty_probes_rejected(self, ds):
        with pytest.raises(ExperimentError):
            influence_analysis(ds, {})


class TestSelfInfluence:
    def test_sampled(self, ds):
        report = self_influence(ds, sample=[0, 5, 9], memory_fraction=0.2)
        assert set(report.scores) == {"record-0", "record-5", "record-9"}
        # An object is always in its own reverse skyline.
        for rid in (0, 5, 9):
            assert rid in report.results[f"record-{rid}"].record_ids

    def test_out_of_range_sample(self, ds):
        with pytest.raises(ExperimentError, match="out of range"):
            self_influence(ds, sample=[9999])

    def test_matches_direct_queries(self, ds):
        report = self_influence(ds, sample=[3], memory_fraction=0.2)
        expected = reverse_skyline_by_pruners(ds, ds[3])
        assert list(report.results["record-3"].record_ids) == expected
