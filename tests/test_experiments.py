"""Experiment harness: cost model, runner, sweeps, table rendering."""

import pytest

from repro.core.base import CostStats
from repro.data.synthetic import synthetic_dataset
from repro.errors import ExperimentError
from repro.experiments.costmodel import CostModel
from repro.experiments.runner import compare_algorithms, run_algorithm
from repro.experiments.sweeps import (
    ablation_sweep,
    attrs_sweep,
    memory_sweep,
    size_sweep,
    subset_sweep,
    values_sweep,
)
from repro.experiments.tables import format_measurements, format_table
from repro.experiments.workloads import queries_for, scale_factor, scaled
from repro.core.trs import TRS
from repro.storage.iostats import IoStats


@pytest.fixture(scope="module")
def ds():
    return synthetic_dataset(400, [8, 6, 7], seed=19)


@pytest.fixture(scope="module")
def queries(ds):
    return queries_for(ds, 2)


class TestCostModel:
    def test_components_add_up(self):
        model = CostModel(check_cost_ms=0.001)
        stats = CostStats(checks_phase1=500, checks_phase2=500)
        stats.io = IoStats(10, 5, 0, 0)
        assert model.computation_ms(stats) == pytest.approx(1.0)
        assert model.io_ms(stats) == pytest.approx(10 * 0.3 + 5 * 8.0)
        assert model.response_ms(stats) == pytest.approx(
            model.computation_ms(stats) + model.io_ms(stats)
        )


class TestRunner:
    def test_run_algorithm_averages(self, ds, queries):
        algo = TRS(ds, memory_fraction=0.2, page_bytes=128)
        m = run_algorithm(algo, queries, params={"tag": 1})
        assert m.algorithm == "TRS"
        assert m.num_queries == 2
        assert m.checks > 0
        assert m.params == {"tag": 1}
        assert m.checks == pytest.approx(m.checks_phase1 + m.checks_phase2)

    def test_empty_queries_rejected(self, ds):
        algo = TRS(ds, memory_fraction=0.2, page_bytes=128)
        with pytest.raises(ExperimentError):
            run_algorithm(algo, [])

    def test_compare_algorithms_one_row_each(self, ds, queries):
        rows = compare_algorithms(ds, queries, ("BRS", "TRS"), page_bytes=128)
        assert [m.algorithm for m in rows] == ["BRS", "TRS"]

    def test_algorithm_kwargs_forwarded(self, ds, queries):
        rows = compare_algorithms(
            ds,
            queries,
            ("TRS",),
            page_bytes=128,
            algorithm_kwargs={"TRS": {"presort": False}},
        )
        assert rows[0].checks > 0


class TestSweeps:
    def test_memory_sweep_shape(self, ds, queries):
        rows = memory_sweep(
            ds, fractions=(0.1, 0.2), algorithms=("SRS", "TRS"), queries=queries,
            page_bytes=128,
        )
        assert len(rows) == 4
        assert {m.params["memory"] for m in rows} == {0.1, 0.2}

    def test_size_sweep_records_density(self):
        rows = size_sweep(
            sizes=(150, 300), values=6, attrs=3, algorithms=("TRS",),
            queries_per_point=1, page_bytes=128,
        )
        assert len(rows) == 2
        assert rows[0].params["density"] < rows[1].params["density"]

    def test_values_sweep(self):
        rows = values_sweep(
            value_counts=(5, 8), n=200, attrs=3, algorithms=("TRS",),
            queries_per_point=1, page_bytes=128,
        )
        assert {m.params["values"] for m in rows} == {5, 8}

    def test_attrs_sweep(self):
        rows = attrs_sweep(
            attr_counts=(2, 3), n=200, values=6, algorithms=("TRS",),
            queries_per_point=1, page_bytes=128,
        )
        assert {m.params["attrs"] for m in rows} == {2, 3}

    def test_subset_sweep_runs_all_variants(self):
        ds = synthetic_dataset(300, [5] * 4, seed=23)
        rows = subset_sweep(
            ds, subsets=[[0, 1], [2, 3]], queries_per_point=1, page_bytes=128
        )
        assert len(rows) == 8  # 2 subsets x 4 algorithm variants
        assert {m.algorithm for m in rows} == {"SRS", "T-SRS", "TRS", "T-TRS"}

    def test_subset_sweep_needs_subsets(self, ds):
        with pytest.raises(ExperimentError):
            subset_sweep(ds, subsets=[])

    def test_ablation_sweep_variants(self, ds, queries):
        rows = ablation_sweep(ds, queries=queries, page_bytes=128)
        variants = {m.params["variant"] for m in rows}
        assert variants == {"baseline", "TRS/no-sort", "TRS/no-child-order"}


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["a", "bbb"], [[1, 2.5], [100, 0.001]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1  # aligned

    def test_format_measurements(self, ds, queries):
        rows = compare_algorithms(ds, queries, ("TRS",), page_bytes=128)
        text = format_measurements(rows, param_keys=())
        assert "TRS" in text and "checks" in text


class TestWorkloads:
    def test_scale_factor_positive(self):
        assert scale_factor() > 0

    def test_scaled_floors(self):
        assert scaled(10) >= 10 or scaled(10) >= 16
