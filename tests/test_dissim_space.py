"""DissimilaritySpace: bundling, subsets, tables."""

import pytest

from repro.dissim.generators import random_dissimilarity
from repro.dissim.numeric import AbsoluteDifference
from repro.dissim.space import DissimilaritySpace
from repro.errors import DissimilarityError


@pytest.fixture
def space(rng):
    return DissimilaritySpace(
        [random_dissimilarity(4, rng), random_dissimilarity(3, rng), AbsoluteDifference()]
    )


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(DissimilarityError, match="at least one"):
            DissimilaritySpace([])

    def test_non_dissimilarity_rejected(self):
        with pytest.raises(DissimilarityError, match="expected a Dissimilarity"):
            DissimilaritySpace([lambda a, b: 0.0])

    def test_len_and_indexing(self, space):
        assert len(space) == 3
        assert space.num_attributes == 3
        assert isinstance(space[2], AbsoluteDifference)


class TestLookups:
    def test_d_delegates(self, space):
        assert space.d(2, 1.0, 4.0) == 3.0
        assert space.d(0, 1, 1) == 0.0

    def test_tables_none_for_numeric(self, space):
        tables = space.tables()
        assert tables[0] is not None and tables[1] is not None
        assert tables[2] is None

    def test_cardinalities(self, space):
        assert space.cardinalities() == [4, 3, None]

    def test_is_fully_categorical(self, space, rng):
        assert not space.is_fully_categorical()
        cat = DissimilaritySpace([random_dissimilarity(3, rng)])
        assert cat.is_fully_categorical()


class TestSubset:
    def test_projects(self, space):
        sub = space.subset([2, 0])
        assert sub.num_attributes == 2
        assert isinstance(sub[0], AbsoluteDifference)

    def test_empty_subset(self, space):
        with pytest.raises(DissimilarityError, match="non-empty"):
            space.subset([])

    def test_out_of_range(self, space):
        with pytest.raises(DissimilarityError, match="out of range"):
            space.subset([5])

    def test_duplicates(self, space):
        with pytest.raises(DissimilarityError, match="duplicate"):
            space.subset([0, 0])
