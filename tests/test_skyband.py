"""Reverse k-skyband (graded influence)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.skyband import ReverseSkybandTRS, reverse_skyband_naive
from repro.core.trs import TRS
from repro.data.dataset import Dataset
from repro.data.queries import query_batch
from repro.data.schema import Schema
from repro.data.synthetic import synthetic_dataset
from repro.dissim.generators import random_dissimilarity
from repro.dissim.space import DissimilaritySpace
from repro.errors import AlgorithmError
from repro.storage.disk import MemoryBudget


@pytest.fixture(scope="module")
def ds():
    return synthetic_dataset(400, [6, 5, 4], seed=91)


class TestNaive:
    def test_k1_equals_reverse_skyline(self, ds):
        from repro.skyline.oracle import reverse_skyline_by_pruners

        q = query_batch(ds, 1, seed=1)[0]
        assert reverse_skyband_naive(ds, q, 1) == reverse_skyline_by_pruners(ds, q)

    def test_monotone_in_k(self, ds):
        q = query_batch(ds, 1, seed=2)[0]
        previous: set[int] = set()
        for k in (1, 2, 3, 5, 8):
            current = set(reverse_skyband_naive(ds, q, k))
            assert previous <= current
            previous = current

    def test_k_at_least_n_returns_everything(self, ds):
        q = query_batch(ds, 1, seed=3)[0]
        assert reverse_skyband_naive(ds, q, len(ds) + 1) == list(range(len(ds)))

    def test_invalid_k(self, ds):
        with pytest.raises(AlgorithmError):
            reverse_skyband_naive(ds, (0, 0, 0), 0)


class TestTreeSkyband:
    @pytest.mark.parametrize("k", [1, 2, 3, 7])
    def test_matches_naive(self, ds, k):
        queries = query_batch(ds, 2, seed=4)
        algo = ReverseSkybandTRS(ds, k=k, budget=MemoryBudget(3), page_bytes=128)
        for q in queries:
            assert list(algo.run(q).record_ids) == reverse_skyband_naive(ds, q, k)

    def test_k1_matches_trs(self, ds):
        q = query_batch(ds, 1, seed=5)[0]
        band = ReverseSkybandTRS(ds, k=1, budget=MemoryBudget(3), page_bytes=128)
        trs = TRS(ds, budget=MemoryBudget(3), page_bytes=128)
        assert band.run(q).record_ids == trs.run(q).record_ids

    def test_duplicate_counting(self):
        # 5 identical objects: each of them has 4 duplicate pruners (when
        # the query differs), so they appear exactly for k >= 5.
        base = synthetic_dataset(1, [3, 3], seed=7)
        dup = base.with_records([base.records[0]] * 5)
        q = tuple((v + 1) % 3 for v in base.records[0])
        for k, expect in ((1, 0), (4, 0), (5, 5), (9, 5)):
            algo = ReverseSkybandTRS(dup, k=k, budget=MemoryBudget(2), page_bytes=64)
            assert len(algo.run(q).record_ids) == expect, k

    def test_multibatch(self):
        ds = synthetic_dataset(1000, [8, 7, 6], seed=8)
        q = query_batch(ds, 1, seed=9)[0]
        algo = ReverseSkybandTRS(ds, k=3, memory_fraction=0.05, page_bytes=128)
        result = algo.run(q)
        assert result.stats.phase1_batches > 1
        assert list(result.record_ids) == reverse_skyband_naive(ds, q, 3)

    def test_invalid_k(self, ds):
        with pytest.raises(AlgorithmError):
            ReverseSkybandTRS(ds, k=0)


@given(
    st.integers(1, 6),
    st.integers(0, 2**16),
    st.integers(5, 60),
)
@settings(max_examples=25, deadline=None)
def test_skyband_property_random(k, seed, n):
    rng = np.random.default_rng(seed)
    cards = [4, 3, 5]
    schema = Schema.categorical(cards)
    space = DissimilaritySpace([random_dissimilarity(c, rng) for c in cards])
    records = [tuple(int(rng.integers(0, c)) for c in cards) for _ in range(n)]
    ds = Dataset(schema, records, space, validate=False)
    q = tuple(int(rng.integers(0, c)) for c in cards)
    algo = ReverseSkybandTRS(ds, k=k, budget=MemoryBudget(2), page_bytes=64)
    assert list(algo.run(q).record_ids) == reverse_skyband_naive(ds, q, k)
