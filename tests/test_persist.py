"""Dataset persistence round-trips."""

import json

import pytest

from repro.data.examples import running_example, running_example_query
from repro.data.synthetic import mixed_dataset, synthetic_dataset
from repro.dissim.numeric import NumericDissimilarity, ScaledDifference
from repro.errors import StorageError
from repro.persist.format import load_dataset, save_dataset
from repro.skyline.oracle import reverse_skyline_by_pruners


class TestRoundTrip:
    def test_categorical(self, tmp_path):
        ds = synthetic_dataset(120, [5, 7, 3], seed=9)
        save_dataset(ds, tmp_path / "d")
        back = load_dataset(tmp_path / "d")
        assert back.records == ds.records
        assert back.schema == ds.schema
        assert back.name == ds.name
        for i in range(3):
            assert (back.space[i].matrix == ds.space[i].matrix).all()

    def test_running_example_with_labels(self, tmp_path):
        ds = running_example()
        save_dataset(ds, tmp_path / "servers")
        back = load_dataset(tmp_path / "servers")
        assert back.schema[0].labels == ds.schema[0].labels
        # Semantics preserved: same reverse skyline.
        q = running_example_query()
        assert reverse_skyline_by_pruners(back, q) == [2, 5]

    def test_mixed_numeric(self, tmp_path):
        ds = mixed_dataset(50, [4], [(0.0, 10.0)], seed=2)
        save_dataset(ds, tmp_path / "m")
        back = load_dataset(tmp_path / "m")
        assert back.records == pytest.approx(ds.records)
        assert back.schema[1].is_numeric

    def test_scaled_difference_roundtrip(self, tmp_path):
        ds = mixed_dataset(20, [3], [(0.0, 1.0)], seed=2)
        # Swap in a ScaledDifference to exercise its spec.
        from repro.data.dataset import Dataset
        from repro.dissim.space import DissimilaritySpace

        space = DissimilaritySpace(
            [ds.space[0], ScaledDifference(2.5, lo=0.0, hi=1.0)]
        )
        ds2 = Dataset(ds.schema, ds.records, space, validate=False)
        save_dataset(ds2, tmp_path / "s")
        back = load_dataset(tmp_path / "s")
        assert back.space[1].weight == 2.5
        assert back.space[1](0.0, 0.4) == pytest.approx(1.0)

    def test_empty_dataset(self, tmp_path):
        ds = synthetic_dataset(0, [4], seed=1)
        save_dataset(ds, tmp_path / "e")
        back = load_dataset(tmp_path / "e")
        assert len(back) == 0


class TestFailures:
    def test_custom_callable_rejected(self, tmp_path):
        ds = mixed_dataset(10, [3], [(0.0, 1.0)], seed=1)
        from repro.data.dataset import Dataset
        from repro.dissim.space import DissimilaritySpace

        space = DissimilaritySpace(
            [ds.space[0], NumericDissimilarity(lambda a, b: abs(a - b) ** 0.5)]
        )
        weird = Dataset(ds.schema, ds.records, space, validate=False)
        with pytest.raises(StorageError, match="declarative"):
            save_dataset(weird, tmp_path / "x")

    def test_missing_directory(self, tmp_path):
        with pytest.raises(StorageError, match="schema.json"):
            load_dataset(tmp_path / "nope")

    def test_corrupt_schema(self, tmp_path):
        d = tmp_path / "c"
        d.mkdir()
        (d / "schema.json").write_text("{not json")
        with pytest.raises(StorageError, match="corrupt"):
            load_dataset(d)

    def test_version_mismatch(self, tmp_path):
        ds = synthetic_dataset(5, [3], seed=1)
        save_dataset(ds, tmp_path / "v")
        meta = json.loads((tmp_path / "v" / "schema.json").read_text())
        meta["format_version"] = 99
        (tmp_path / "v" / "schema.json").write_text(json.dumps(meta))
        with pytest.raises(StorageError, match="version"):
            load_dataset(tmp_path / "v")

    def test_header_mismatch(self, tmp_path):
        ds = synthetic_dataset(5, [3, 3], seed=1)
        save_dataset(ds, tmp_path / "h")
        csv_path = tmp_path / "h" / "records.csv"
        lines = csv_path.read_text().splitlines()
        lines[0] = "wrong,header"
        csv_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(StorageError, match="header"):
            load_dataset(tmp_path / "h")

    def test_malformed_row(self, tmp_path):
        ds = synthetic_dataset(5, [3, 3], seed=1)
        save_dataset(ds, tmp_path / "r")
        csv_path = tmp_path / "r" / "records.csv"
        with open(csv_path, "a") as fh:
            fh.write("1\n")
        with pytest.raises(StorageError, match="malformed"):
            load_dataset(tmp_path / "r")
