"""The high-level ReverseSkylineEngine facade."""

import pytest

from repro.core.skyband import reverse_skyband_naive
from repro.data.queries import query_batch
from repro.data.synthetic import synthetic_dataset
from repro.engine import ReverseSkylineEngine
from repro.errors import AlgorithmError
from repro.persist.format import save_dataset
from repro.skyline.oracle import reverse_skyline_by_pruners


@pytest.fixture(scope="module")
def ds():
    return synthetic_dataset(300, [6, 5, 4, 3], seed=101)


@pytest.fixture
def engine(ds):
    return ReverseSkylineEngine(ds, memory_fraction=0.2, page_bytes=256)


class TestQueries:
    @pytest.mark.smoke
    def test_query_matches_oracle(self, ds, engine):
        for q in query_batch(ds, 3, seed=1):
            assert list(engine.query(q).record_ids) == reverse_skyline_by_pruners(ds, q)

    def test_algorithm_override(self, ds, engine):
        q = query_batch(ds, 1, seed=2)[0]
        srs = engine.query(q, algorithm="SRS")
        trs = engine.query(q, algorithm="TRS")
        assert srs.record_ids == trs.record_ids
        assert srs.algorithm == "SRS"

    def test_algorithms_cached_and_prepared_once(self, ds, engine):
        q = query_batch(ds, 1, seed=3)[0]
        engine.query(q)
        first = engine._algorithms["TRS"]
        engine.query(q)
        assert engine._algorithms["TRS"] is first

    def test_skyband(self, ds, engine):
        q = query_batch(ds, 1, seed=4)[0]
        for k in (1, 3):
            assert list(engine.skyband(q, k).record_ids) == reverse_skyband_naive(
                ds, q, k
            )

    def test_subset_query_matches_projected_oracle(self, ds, engine):
        subset = ["A3", "A1"]
        projected = ds.project([2, 0])
        q = projected.records[5]
        result = engine.query_subset(subset, q)
        assert list(result.record_ids) == reverse_skyline_by_pruners(projected, q)

    def test_subset_by_index(self, ds, engine):
        projected = ds.project([1, 3])
        q = projected.records[0]
        result = engine.query_subset([1, 3], q)
        assert list(result.record_ids) == reverse_skyline_by_pruners(projected, q)

    def test_subset_layout_is_full_order(self, ds, engine):
        engine.query_subset([3], (0,))
        cached = engine._subset_engines[(3,)]._algorithms["TRS"]
        ids = [rid for rid, _ in cached.layout]
        # The layout order comes from the FULL attribute sort, not a
        # re-sort on attribute 3 alone.
        full_sorted_ids = [rid for rid, _ in engine._full_order_entries]
        assert ids == full_sorted_ids

    def test_empty_subset_rejected(self, engine):
        with pytest.raises(AlgorithmError):
            engine.query_subset([], ())

    def test_influence(self, ds, engine):
        probes = {f"p{i}": q for i, q in enumerate(query_batch(ds, 2, seed=5))}
        report = engine.influence(probes)
        for label, probe in probes.items():
            assert report.scores[label] == len(reverse_skyline_by_pruners(ds, probe))


class TestConstrainedQueries:
    def test_where_filters_candidates_only(self, ds, engine):
        q = query_batch(ds, 1, seed=9)[0]
        full = set(engine.query(q).record_ids)
        constrained = engine.query(q, where=lambda r: r[0] == 0)
        got = set(constrained.record_ids)
        # Exactly RS(Q) intersected with the predicate.
        assert got == {rid for rid in full if ds[rid][0] == 0}
        assert got <= full

    def test_where_true_is_identity(self, ds, engine):
        q = query_batch(ds, 1, seed=10)[0]
        assert engine.query(q, where=lambda r: True).record_ids == engine.query(
            q
        ).record_ids


class TestLatencySummary:
    def test_percentiles(self, ds):
        engine = ReverseSkylineEngine(ds, memory_fraction=0.2)
        for q in query_batch(ds, 5, seed=11):
            engine.query(q)
        summary = engine.latency_summary()
        assert summary["count"] == 5
        assert 0 <= summary["p50_ms"] <= summary["p90_ms"] <= summary["max_ms"]
        assert summary["mean_ms"] > 0

    def test_no_queries_yet_returns_zeros(self, ds):
        engine = ReverseSkylineEngine(ds)
        summary = engine.latency_summary()
        assert summary["count"] == 0.0
        assert summary["p50_ms"] == 0.0
        assert summary["p95_ms"] == 0.0
        assert summary["p99_ms"] == 0.0
        assert summary["mean_ms"] == 0.0

    def test_p95_present_and_ordered(self, ds):
        engine = ReverseSkylineEngine(ds, memory_fraction=0.2)
        for q in query_batch(ds, 5, seed=12):
            engine.query(q)
        summary = engine.latency_summary()
        assert summary["p50_ms"] <= summary["p95_ms"] <= summary["p99_ms"]
        assert engine.summary()["latency_p95_ms"] == summary["p95_ms"]


class TestObservability:
    def test_log_and_summary(self, ds, engine):
        q = query_batch(ds, 1, seed=6)[0]
        engine.query(q)
        engine.skyband(q, 2)
        assert len(engine.log) == 2
        assert engine.log[0].kind == "reverse-skyline"
        assert engine.log[1].kind == "reverse-2-skyband"
        summary = engine.summary()
        assert summary["queries"] == 2
        assert summary["total_checks"] > 0

    def test_log_disabled(self, ds):
        engine = ReverseSkylineEngine(ds, log_queries=False, memory_fraction=0.2)
        engine.query(query_batch(ds, 1, seed=7)[0])
        assert engine.log == []
        assert engine.summary()["queries"] == 1


class TestOpen:
    def test_open_from_disk(self, ds, tmp_path):
        save_dataset(ds, tmp_path / "d")
        engine = ReverseSkylineEngine.open(tmp_path / "d", memory_fraction=0.2)
        q = query_batch(ds, 1, seed=8)[0]
        assert list(engine.query(q).record_ids) == reverse_skyline_by_pruners(ds, q)
