"""MatrixDissimilarity: construction, validation, lookups."""

import numpy as np
import pytest

from repro.dissim.matrix import MatrixDissimilarity
from repro.errors import DissimilarityError


def square(values):
    return np.array(values, dtype=float)


class TestConstruction:
    def test_basic(self):
        d = MatrixDissimilarity(square([[0, 0.5], [0.5, 0]]))
        assert d.cardinality == 2
        assert d(0, 1) == 0.5
        assert d(1, 1) == 0.0

    def test_rejects_non_square(self):
        with pytest.raises(DissimilarityError, match="square"):
            MatrixDissimilarity(np.zeros((2, 3)))

    def test_rejects_empty(self):
        with pytest.raises(DissimilarityError, match="non-empty"):
            MatrixDissimilarity(np.zeros((0, 0)))

    def test_rejects_negative_entries(self):
        with pytest.raises(DissimilarityError, match="negative"):
            MatrixDissimilarity(square([[0, -0.1], [0.2, 0]]))

    def test_rejects_nan(self):
        with pytest.raises(DissimilarityError, match="non-finite"):
            MatrixDissimilarity(square([[0, float("nan")], [0.2, 0]]))

    def test_rejects_nonzero_diagonal_by_default(self):
        with pytest.raises(DissimilarityError, match="itself"):
            MatrixDissimilarity(square([[0.1, 0.5], [0.5, 0]]))

    def test_nonzero_diagonal_opt_in(self):
        d = MatrixDissimilarity(
            square([[0.1, 0.5], [0.5, 0]]), require_zero_diagonal=False
        )
        assert d(0, 0) == 0.1
        assert not d.is_zero_reflexive() or True  # constructible is what matters

    def test_asymmetric_allowed(self):
        d = MatrixDissimilarity(square([[0, 0.3], [0.7, 0]]))
        assert d(0, 1) == 0.3
        assert d(1, 0) == 0.7
        assert not d.is_symmetric()

    def test_label_count_mismatch(self):
        with pytest.raises(DissimilarityError, match="labels"):
            MatrixDissimilarity(square([[0, 1], [1, 0]]), labels=["a"])

    def test_duplicate_labels(self):
        with pytest.raises(DissimilarityError, match="unique"):
            MatrixDissimilarity(square([[0, 1], [1, 0]]), labels=["a", "a"])


class TestLabels:
    def test_value_id_roundtrip(self):
        d = MatrixDissimilarity(square([[0, 1], [1, 0]]), labels=["x", "y"])
        assert d.value_id("x") == 0
        assert d.value_id("y") == 1
        assert d.labels == ["x", "y"]

    def test_unknown_label(self):
        d = MatrixDissimilarity(square([[0, 1], [1, 0]]), labels=["x", "y"])
        with pytest.raises(DissimilarityError, match="unknown"):
            d.value_id("z")

    def test_value_id_without_labels(self):
        d = MatrixDissimilarity(square([[0, 1], [1, 0]]))
        with pytest.raises(DissimilarityError, match="no value labels"):
            d.value_id("x")


class TestFromPairs:
    def test_symmetric_fill(self):
        d = MatrixDissimilarity.from_pairs(
            ["a", "b", "c"],
            {("a", "b"): 0.2, ("a", "c"): 0.9, ("b", "c"): 0.4},
        )
        assert d(d.value_id("b"), d.value_id("a")) == 0.2
        assert d(d.value_id("c"), d.value_id("b")) == 0.4

    def test_missing_pair_without_default(self):
        with pytest.raises(DissimilarityError, match="no dissimilarity"):
            MatrixDissimilarity.from_pairs(["a", "b", "c"], {("a", "b"): 0.2})

    def test_missing_pair_with_default(self):
        d = MatrixDissimilarity.from_pairs(
            ["a", "b", "c"], {("a", "b"): 0.2}, default=0.5
        )
        assert d(0, 2) == 0.5

    def test_unknown_label_in_pairs(self):
        with pytest.raises(DissimilarityError, match="unknown label"):
            MatrixDissimilarity.from_pairs(["a"], {("a", "zzz"): 0.1})


class TestLookup:
    def test_table_matches_matrix(self):
        arr = square([[0, 0.1, 0.2], [0.1, 0, 0.3], [0.2, 0.3, 0]])
        d = MatrixDissimilarity(arr)
        table = d.table()
        for i in range(3):
            for j in range(3):
                assert table[i][j] == arr[i][j] == d(i, j)

    def test_out_of_range_value(self):
        d = MatrixDissimilarity(square([[0, 1], [1, 0]]))
        with pytest.raises((DissimilarityError, IndexError, TypeError)):
            d(0, 5)

    def test_validate_value(self):
        d = MatrixDissimilarity(square([[0, 1], [1, 0]]))
        d.validate_value(0)
        d.validate_value(1)
        with pytest.raises(DissimilarityError):
            d.validate_value(2)
        with pytest.raises(DissimilarityError):
            d.validate_value("a")

    def test_matrix_view_read_only(self):
        d = MatrixDissimilarity(square([[0, 1], [1, 0]]))
        with pytest.raises(ValueError):
            d.matrix[0, 1] = 99.0
