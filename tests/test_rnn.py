"""RNN baseline and the RNN ⊆ RS containment (Section 1)."""

import numpy as np
import pytest

from repro.data.queries import query_batch
from repro.data.synthetic import synthetic_dataset
from repro.errors import AlgorithmError
from repro.rnn.aggregates import WeightedSum, random_weight_vectors
from repro.rnn.query import reverse_nearest_neighbors, rnn_union
from repro.skyline.oracle import reverse_skyline_by_pruners


@pytest.fixture(scope="module")
def ds():
    return synthetic_dataset(150, [6, 5, 4], seed=31)


class TestWeightedSum:
    def test_distance(self, ds):
        agg = WeightedSum([1.0, 1.0, 1.0])
        x, y = ds[0], ds[1]
        expect = sum(ds.space.d(i, x[i], y[i]) for i in range(3))
        assert agg.distance(ds.space, x, y) == pytest.approx(expect)

    def test_rejects_empty_or_nonpositive(self):
        with pytest.raises(AlgorithmError):
            WeightedSum([])
        with pytest.raises(AlgorithmError):
            WeightedSum([1.0, 0.0])
        with pytest.raises(AlgorithmError):
            WeightedSum([1.0, -2.0])

    def test_arity_checked(self, ds):
        agg = WeightedSum([1.0])
        with pytest.raises(AlgorithmError, match="weights"):
            agg.distance(ds.space, ds[0], ds[1])

    def test_random_vectors(self):
        vectors = random_weight_vectors(4, 7, np.random.default_rng(1))
        assert len(vectors) == 7
        for w in vectors:
            assert len(w.weights) == 4
            assert all(x > 0 for x in w.weights)


class TestRNN:
    def test_rnn_subset_of_rs(self, ds):
        """The load-bearing theory: for ANY strictly positive weights,
        RNN(Q, w) ⊆ RS(Q)."""
        queries = query_batch(ds, 2, seed=3)
        vectors = random_weight_vectors(3, 5, np.random.default_rng(9))
        for q in queries:
            rs = set(reverse_skyline_by_pruners(ds, q))
            for w in vectors:
                rnn = set(reverse_nearest_neighbors(ds, q, w))
                assert rnn <= rs, f"weights {w.weights}"

    def test_union_grows_towards_rs(self, ds):
        q = query_batch(ds, 1, seed=4)[0]
        rs = set(reverse_skyline_by_pruners(ds, q))
        few = rnn_union(ds, q, random_weight_vectors(3, 2, np.random.default_rng(1)))
        many = rnn_union(ds, q, random_weight_vectors(3, 25, np.random.default_rng(1)))
        assert few <= many <= rs

    def test_query_equal_to_object_is_its_rnn(self, ds):
        q = ds[0]
        rnn = reverse_nearest_neighbors(ds, q, WeightedSum([1.0, 1.0, 1.0]))
        assert 0 in rnn  # distance 0 cannot be beaten strictly
