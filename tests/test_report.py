"""Markdown report aggregation."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.report import generate_report, write_report


@pytest.fixture
def results(tmp_path):
    d = tmp_path / "results"
    d.mkdir()
    (d / "table1_running_example.txt").write_text("=== Table 1 ===\nrows\n")
    (d / "fig05_io.txt").write_text("=== Figure 5 ===\nio rows\n")
    (d / "sec55_preprocessing.txt").write_text("=== Section 5.5 ===\nsort rows\n")
    (d / "ext_skyband.txt").write_text("=== Extension ===\nband rows\n")
    (d / "zz_custom.txt").write_text("custom artifact\n")
    return d


def test_sections_in_order(results):
    report = generate_report(results)
    tables_at = report.index("## Tables")
    figures_at = report.index("## Figures")
    sections_at = report.index("## Sections 5.5-6")
    ext_at = report.index("## Extensions")
    other_at = report.index("## Other artifacts")
    assert tables_at < figures_at < sections_at < ext_at < other_at
    assert "io rows" in report
    assert "custom artifact" in report


def test_write_report(results, tmp_path):
    out = write_report(results, tmp_path / "REPORT.md")
    assert out.exists()
    assert out.read_text().startswith("# Reproduction report")


def test_empty_results_dir(tmp_path):
    empty = tmp_path / "empty"
    empty.mkdir()
    with pytest.raises(ExperimentError, match="no benchmark artifacts"):
        generate_report(empty)


def test_missing_dir(tmp_path):
    with pytest.raises(ExperimentError, match="not a directory"):
        generate_report(tmp_path / "ghost")


def test_real_results_render_if_present():
    import pathlib

    real = pathlib.Path(__file__).parent.parent / "benchmarks" / "results"
    if not real.is_dir() or not list(real.glob("*.txt")):
        pytest.skip("no benchmark artifacts yet")
    report = generate_report(real)
    assert "## Figures" in report
