"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.examples import running_example, running_example_query
from repro.data.synthetic import synthetic_dataset


@pytest.fixture
def rng():
    return np.random.default_rng(42)


@pytest.fixture
def example_dataset():
    """The paper's Table 1 running example."""
    return running_example()


@pytest.fixture
def example_query():
    """The paper's Q = [MSW, Intel, DB2]."""
    return running_example_query()


@pytest.fixture
def small_dataset():
    """A 300-record synthetic dataset, fast enough for exhaustive oracles."""
    return synthetic_dataset(300, [6, 5, 7], seed=123)


@pytest.fixture
def medium_dataset():
    """A 1200-record synthetic dataset for multi-batch behaviour."""
    return synthetic_dataset(1200, [10, 8, 12, 6], seed=321)
