"""Multi-attribute keys and the external merge sort."""

import pytest

from repro.data.schema import Attribute, NUMERIC, Schema
from repro.data.synthetic import mixed_dataset, synthetic_dataset
from repro.errors import AlgorithmError, MemoryBudgetError
from repro.sorting.external import external_sort
from repro.sorting.keys import (
    ascending_cardinality_order,
    multiattribute_key,
    observed_cardinality_order,
    schema_order,
    sort_dataset,
    sort_records,
)
from repro.storage.disk import DiskSimulator, MemoryBudget


class TestKeys:
    def test_schema_order(self):
        assert schema_order(Schema.categorical([2, 3, 4])) == [0, 1, 2]

    def test_ascending_cardinality(self):
        schema = Schema.categorical([9, 2, 5])
        assert ascending_cardinality_order(schema) == [1, 2, 0]

    def test_ascending_cardinality_numeric_last(self):
        schema = Schema(
            [Attribute("n", kind=NUMERIC), Attribute("c", cardinality=3)]
        )
        assert ascending_cardinality_order(schema) == [1, 0]

    def test_observed_cardinality(self):
        ds = synthetic_dataset(200, [40, 2, 10], seed=1)
        order = observed_cardinality_order(ds)
        assert order[0] == 1  # the binary attribute has fewest observed values

    def test_multiattribute_key_clusters(self):
        key = multiattribute_key([1, 0])
        assert key((5, 1)) == (1, 5)
        with pytest.raises(AlgorithmError):
            multiattribute_key([])

    def test_sort_records_is_lexicographic_in_order(self):
        records = [(1, 0), (0, 1), (0, 0), (1, 1)]
        assert sort_records(records, [0, 1]) == [(0, 0), (0, 1), (1, 0), (1, 1)]
        assert sort_records(records, [1, 0]) == [(0, 0), (1, 0), (0, 1), (1, 1)]

    def test_sort_dataset_clusters_equal_values(self):
        ds = synthetic_dataset(300, [4, 4], seed=6)
        out = sort_dataset(ds)
        values = [r[0] for r in out.records]
        assert values == sorted(values)
        assert sorted(out.records) == sorted(ds.records)  # permutation

    def test_sort_dataset_rejects_bad_order(self):
        ds = synthetic_dataset(10, [4, 4], seed=6)
        with pytest.raises(AlgorithmError, match="permutation"):
            sort_dataset(ds, [0, 0])


class TestExternalSort:
    def make_file(self, n=500, cards=(6, 5, 4), page_bytes=64, seed=2):
        ds = synthetic_dataset(n, list(cards), seed=seed)
        disk = DiskSimulator(page_bytes)
        source = disk.load_dataset(ds)
        return ds, disk, source

    def test_sorted_output_is_permutation(self):
        ds, disk, source = self.make_file()
        out, stats = external_sort(disk, source, MemoryBudget(4), [0, 1, 2])
        entries = out.peek_all_records()
        assert len(entries) == len(ds)
        values = [v for _, v in entries]
        assert values == sorted(ds.records)
        assert sorted(rid for rid, _ in entries) == list(range(len(ds)))

    def test_stable_for_duplicates(self):
        ds, disk, source = self.make_file(n=400, cards=(2, 2))
        out, _ = external_sort(disk, source, MemoryBudget(4), [0, 1])
        seen: dict[tuple, list[int]] = {}
        for rid, values in out.peek_all_records():
            seen.setdefault(values, []).append(rid)
        for ids in seen.values():
            assert ids == sorted(ids)

    def test_run_and_merge_accounting(self):
        ds, disk, source = self.make_file(n=500, page_bytes=64)
        # 16B records -> 4/page -> 125 pages; budget 4 pages -> ~32 runs.
        out, stats = external_sort(disk, source, MemoryBudget(4), [0, 1, 2])
        assert stats.num_records == 500
        assert stats.initial_runs == 32
        assert stats.merge_passes >= 2  # fan-in 3 needs multiple passes
        assert stats.pages_read > 0 and stats.pages_written > 0
        assert sum(stats.run_lengths) == 500

    def test_single_run_no_merge(self):
        ds, disk, source = self.make_file(n=50, page_bytes=1024)
        out, stats = external_sort(disk, source, MemoryBudget(10), [0, 1, 2])
        assert stats.initial_runs == 1
        assert stats.merge_passes == 0
        assert [v for _, v in out.peek_all_records()] == sorted(ds.records)

    def test_empty_source(self):
        ds, disk, source = self.make_file(n=0)
        out, stats = external_sort(disk, source, MemoryBudget(2), [0, 1, 2])
        assert out.num_records == 0
        assert stats.initial_runs == 0

    def test_output_name_registered(self):
        ds, disk, source = self.make_file(n=100)
        out, _ = external_sort(disk, source, MemoryBudget(3), [0, 1, 2], output_name="srt")
        assert disk.file("srt") is out

    def test_respects_attribute_order(self):
        ds, disk, source = self.make_file(n=200, cards=(5, 5, 5))
        out, _ = external_sort(disk, source, MemoryBudget(3), [2, 0, 1])
        values = [v for _, v in out.peek_all_records()]
        keys = [(v[2], v[0], v[1]) for v in values]
        assert keys == sorted(keys)

    def test_one_page_budget_single_run_ok(self):
        ds, disk, source = self.make_file(n=3, page_bytes=1024)
        out, stats = external_sort(disk, source, MemoryBudget(1), [0, 1, 2])
        assert [v for _, v in out.peek_all_records()] == sorted(ds.records)

    def test_one_page_budget_multi_run_fails(self):
        ds, disk, source = self.make_file(n=500, page_bytes=64)
        with pytest.raises(MemoryBudgetError):
            external_sort(disk, source, MemoryBudget(1), [0, 1, 2])

    def test_mixed_numeric_sorting(self):
        ds = mixed_dataset(150, [4], [(0.0, 1.0)], seed=3)
        disk = DiskSimulator(64)
        source = disk.load_dataset(ds)
        out, _ = external_sort(disk, source, MemoryBudget(3), [0, 1])
        values = [v for _, v in out.peek_all_records()]
        assert values == sorted(ds.records)
