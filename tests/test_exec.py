"""The concurrent batch executor and its differential-equivalence layer.

Invariants (each property-style, over randomized query batches):

- pooled/cached ``query_many`` is bit-identical to the sequential engine;
- a cache hit returns the same object-id set as a cold run;
- ``skyband(k=1)`` equals ``query``;
- shuffling a batch never changes any individual result;
- stats merged across workers equal the sum of the per-query stats.
"""

import random

import pytest

from repro.core.base import CostStats
from repro.data.queries import query_batch
from repro.data.synthetic import synthetic_dataset
from repro.engine import ReverseSkylineEngine
from repro.errors import AlgorithmError, ReproError
from repro.exec import CacheKey, QueryExecutor, QuerySpec, ResultCache, as_spec
from repro.testing.verify import verify_executor


@pytest.fixture(scope="module")
def ds():
    return synthetic_dataset(350, [7, 6, 5], seed=77)


@pytest.fixture
def engine(ds):
    return ReverseSkylineEngine(ds, memory_fraction=0.2, page_bytes=256)


def batch_for(ds, n, *, seed=5, repeats=2):
    qs = query_batch(ds, n, seed=seed)
    return qs * repeats


class TestDifferentialEquivalence:
    @pytest.mark.smoke
    def test_pooled_matches_sequential(self, ds, engine):
        queries = batch_for(ds, 6)
        expected = [tuple(engine.query(q).record_ids) for q in queries]
        for workers in (1, 2, 4):
            for cache in (False, True):
                report = engine.query_many(queries, workers=workers, cache=cache)
                assert [tuple(r.record_ids) for r in report.results] == expected

    def test_verify_executor_reports_zero_divergences(self):
        report = verify_executor(trials=50)
        assert report.trials == 50
        assert report.ok, str(report.failures[0])

    def test_shuffling_never_changes_individual_results(self, ds, engine):
        queries = batch_for(ds, 8, repeats=1)
        baseline = {
            q: tuple(r.record_ids)
            for q, r in zip(queries, engine.query_many(queries, workers=2).results)
        }
        for seed in range(3):
            shuffled = list(queries)
            random.Random(seed).shuffle(shuffled)
            report = engine.query_many(shuffled, workers=4)
            for q, r in zip(shuffled, report.results):
                assert tuple(r.record_ids) == baseline[q]

    def test_mixed_kind_specs(self, ds, engine):
        q = query_batch(ds, 1, seed=11)[0]
        specs = [
            QuerySpec(q),
            QuerySpec(q, kind="skyband", k=3),
            QuerySpec((2, 1), kind="subset", attributes=("A1", "A3")),
        ]
        report = engine.query_many(specs, workers=2)
        assert tuple(report.results[0].record_ids) == tuple(
            engine.query(q).record_ids
        )
        assert tuple(report.results[1].record_ids) == tuple(
            engine.skyband(q, k=3).record_ids
        )
        assert tuple(report.results[2].record_ids) == tuple(
            engine.query_subset(["A1", "A3"], (2, 1)).record_ids
        )


class TestCache:
    @pytest.mark.smoke
    def test_cache_hit_returns_same_ids_as_cold_run(self, ds, engine):
        queries = batch_for(ds, 5, repeats=1)
        cold = engine.query_many(queries, workers=2)
        assert cold.cache_hits == 0
        warm = engine.query_many(queries, workers=2)
        assert warm.cache_hits == len(queries)
        assert warm.record_id_sets() == cold.record_id_sets()

    def test_in_flight_dedup_within_one_batch(self, ds, engine):
        q = query_batch(ds, 1, seed=21)[0]
        report = engine.query_many([q, q, q, q], workers=4)
        assert report.computed == 1
        assert report.cache_hits == 3
        assert len({tuple(r.record_ids) for r in report.results}) == 1

    def test_cache_off_computes_everything(self, ds, engine):
        q = query_batch(ds, 1, seed=22)[0]
        report = engine.query_many([q, q, q], workers=2, cache=False)
        assert report.computed == 3 and report.cache_hits == 0

    def test_invalidate_caches_forces_recompute(self, ds, engine):
        queries = batch_for(ds, 3, repeats=1)
        engine.query_many(queries)
        engine.invalidate_caches()
        report = engine.query_many(queries)
        assert report.cache_hits == 0

    def test_fingerprint_changes_with_records(self, ds):
        a = ReverseSkylineEngine(ds)
        mutated = ds.with_records(list(ds.records[:-1]))
        b = ReverseSkylineEngine(mutated)
        assert a.layout_fingerprint() != b.layout_fingerprint()
        assert a.layout_fingerprint() == ReverseSkylineEngine(ds).layout_fingerprint()

    def test_put_racing_an_invalidate_is_rejected(self):
        # Regression: a thread that misses, computes, and puts must not
        # resurrect its entry if the cache was invalidated in between.
        cache = ResultCache()
        key = CacheKey("query", "TRS", "fp", (1,), 1, None)
        version = cache.version
        assert cache.get(key) is None  # the miss
        cache.invalidate()  # ...concurrent invalidation...
        cache.put(key, object(), version=version)  # ...then the late put
        assert key not in cache
        assert cache.stats().stale_rejects == 1
        cache.put(key, object(), version=cache.version)  # fresh snapshot: ok
        assert key in cache

    def test_two_thread_invalidate_put_stress(self):
        import threading

        cache = ResultCache()
        rounds = 300
        start = threading.Barrier(2)
        sentinel = object()

        def putter():
            start.wait()
            for i in range(rounds):
                key = CacheKey("query", "TRS", "fp", (i,), 1, None)
                version = cache.version
                cache.get(key)
                cache.put(key, sentinel, version=version)

        def invalidator():
            start.wait()
            for _ in range(rounds // 3):
                cache.invalidate()

        threads = [threading.Thread(target=putter), threading.Thread(target=invalidator)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = cache.stats()
        # Every put either landed or was counted as a stale reject; after
        # a final invalidate nothing can linger.
        assert len(cache) + stats.stale_rejects <= rounds
        assert stats.invalidations == rounds // 3
        cache.invalidate()
        assert len(cache) == 0

    def test_lru_eviction_and_stats(self):
        cache = ResultCache(capacity=2)
        keys = [
            CacheKey("query", "TRS", "fp", (i,), 1, None) for i in range(3)
        ]
        sentinel = object()
        cache.put(keys[0], sentinel)
        cache.put(keys[1], sentinel)
        assert cache.get(keys[0]) is sentinel  # 0 now most-recent
        cache.put(keys[2], sentinel)  # evicts 1
        assert cache.get(keys[1]) is None
        assert cache.get(keys[0]) is sentinel
        s = cache.stats()
        assert s.evictions == 1 and s.hits == 2 and s.misses == 1
        assert cache.invalidate() == 2
        assert len(cache) == 0
        with pytest.raises(ReproError):
            ResultCache(capacity=0)


class TestStatsMerging:
    def test_merged_stats_equal_sum_of_per_query_stats(self, ds, engine):
        queries = batch_for(ds, 6, repeats=1)
        report = engine.query_many(queries, workers=4, cache=False)
        by_hand = CostStats.merged(r.stats for r in report.results)
        assert report.stats.checks == by_hand.checks == sum(
            r.stats.checks for r in report.results
        )
        assert report.stats.io.total == sum(r.stats.io.total for r in report.results)
        assert report.stats.result_count == sum(len(r) for r in report.results)

    @pytest.mark.parametrize("pool", ["serial", "thread", "process"])
    def test_stats_additive_on_every_pool(self, ds, engine, pool):
        # Regression: the process pool used to drop per-worker stats on
        # the floor; all three pools must report the same summed cost.
        queries = batch_for(ds, 4, repeats=1)
        seq = [engine.query(q) for q in queries]
        executor = QueryExecutor(engine, pool=pool, workers=2)
        try:
            report = executor.run_batch(queries)
        except (OSError, PermissionError) as exc:  # sandboxed CI
            pytest.skip(f"{pool} pool unavailable here: {exc}")
        assert report.stats.checks == sum(r.stats.checks for r in seq)
        assert report.stats.io.total == sum(r.stats.io.total for r in seq)
        assert report.stats.result_count == sum(len(r) for r in seq)

    def test_merged_stats_match_sequential_totals(self, ds, engine):
        queries = batch_for(ds, 5, repeats=1)
        seq_engine = ReverseSkylineEngine(ds, memory_fraction=0.2, page_bytes=256)
        seq = [seq_engine.query(q) for q in queries]
        report = engine.query_many(queries, workers=3, cache=False)
        assert report.stats.checks == sum(r.stats.checks for r in seq)
        assert report.stats.io.total == sum(r.stats.io.total for r in seq)

    def test_cache_hits_cost_nothing_in_log_and_totals(self, ds, engine):
        queries = batch_for(ds, 4, repeats=1)
        engine.query_many(queries, workers=2)
        before = engine.summary()["total_checks"]
        engine.query_many(queries, workers=2)
        after = engine.summary()
        assert after["total_checks"] == before  # all hits, zero new work
        assert after["cache_hits"] == len(queries)
        hits = [e for e in engine.log if e.cached]
        assert len(hits) == len(queries)
        assert all(e.checks == 0 and e.seq_io == 0 and e.rand_io == 0 for e in hits)

    def test_log_order_is_batch_input_order(self, ds, engine):
        queries = batch_for(ds, 6, repeats=1)
        engine.query_many(queries, workers=4)
        assert [e.query for e in engine.log] == [tuple(q) for q in queries]

    def test_skyband_k1_equals_query(self, ds, engine):
        queries = batch_for(ds, 4, repeats=1)
        plain = engine.query_many(queries, cache=False)
        band = engine.query_many(queries, kind="skyband", k=1, cache=False)
        assert band.record_id_sets() == plain.record_id_sets()


class TestPoolsAndSpecs:
    def test_serial_pool(self, ds, engine):
        queries = batch_for(ds, 3, repeats=1)
        report = engine.query_many(queries, pool="serial", cache=False)
        assert report.pool == "serial"
        assert report.record_id_sets() == [
            tuple(engine.query(q).record_ids) for q in queries
        ]

    def test_process_pool_matches_thread_pool(self, ds, engine):
        queries = batch_for(ds, 4, repeats=1)
        expected = engine.query_many(queries, cache=False).record_id_sets()
        executor = QueryExecutor(engine, pool="process", workers=2)
        try:
            report = executor.run_batch(queries)
        except (OSError, PermissionError) as exc:  # sandboxed CI: no semaphores
            pytest.skip(f"process pools unavailable here: {exc}")
        assert report.record_id_sets() == expected

    def test_spec_validation(self):
        with pytest.raises(AlgorithmError):
            QuerySpec((1,), kind="nope")
        with pytest.raises(AlgorithmError):
            QuerySpec((1,), kind="skyband", k=0)
        with pytest.raises(AlgorithmError):
            QuerySpec((1,), kind="subset")
        spec = as_spec((1, 2), kind="skyband", k=3)
        assert spec.k == 3 and as_spec(spec) is spec

    def test_executor_validation(self, engine):
        with pytest.raises(AlgorithmError):
            QueryExecutor(engine, pool="fiber")
        with pytest.raises(AlgorithmError):
            QueryExecutor(engine, workers=0)
        with pytest.raises(AlgorithmError):
            QueryExecutor(engine).run_batch([])

    def test_wall_times_use_shared_clock(self, ds, engine):
        q = query_batch(ds, 1, seed=31)[0]
        result = engine.query(q)
        entry = engine.log[-1]
        # The logged engine-path time contains the algorithm-body time,
        # both measured by core.base.Stopwatch (perf_counter).
        assert entry.wall_time_s >= result.stats.wall_time_s > 0.0
        report = engine.query_many([q], cache=False)
        assert report.wall_times_s[0] >= report.results[0].stats.wall_time_s > 0.0
