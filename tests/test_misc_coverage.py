"""Small behaviours not covered elsewhere: result types, counters,
formatting edges, dissimilarity guards."""

import pytest

from repro.core.base import CostStats, RSResult
from repro.data.synthetic import synthetic_dataset
from repro.dissim.base import Dissimilarity
from repro.errors import DissimilarityError
from repro.experiments.runner import Measurement
from repro.experiments.tables import format_table
from repro.storage.iostats import IoCostModel, IoStats


class TestRSResult:
    def test_properties(self):
        stats = CostStats()
        r = RSResult("TRS", (1, 2), (5, 3, 9), stats)
        assert len(r) == 3
        assert r.result_set == {3, 5, 9}
        assert r.algorithm == "TRS"


class TestCostStats:
    def test_charge_without_trace_keeps_dict_empty(self):
        s = CostStats()
        s.charge_phase1(7, 3, trace=False)
        s.charge_phase2(7, 2, trace=False)
        assert s.checks == 5
        assert s.per_object_phase1 == {} and s.per_object_phase2 == {}

    def test_charge_with_trace_accumulates(self):
        s = CostStats()
        s.charge_phase1(7, 3, trace=True)
        s.charge_phase1(7, 4, trace=True)
        assert s.per_object_phase1 == {7: 7}


class TestMeasurement:
    def test_as_row(self):
        m = Measurement(algorithm="TRS", dataset="d", num_queries=1, checks=5.0)
        assert m.as_row(["algorithm", "checks"]) == ["TRS", 5.0]


class TestFormatTable:
    def test_number_formats(self):
        text = format_table(
            ["a"], [[0.0], [1234567.0], [12.345], [0.00123], [42]]
        )
        assert "1,234,567" in text
        assert "12.3" in text
        assert "0.00123" in text
        assert "42" in text

    def test_empty_rows(self):
        text = format_table(["x", "y"], [])
        assert text.splitlines()[0].strip().startswith("x")


class TestDissimilarityBase:
    def test_check_finite_guards(self):
        with pytest.raises(DissimilarityError, match="non-finite"):
            Dissimilarity._check_finite(float("inf"), "ctx")
        with pytest.raises(DissimilarityError, match="non-finite"):
            Dissimilarity._check_finite(float("nan"), "ctx")
        assert Dissimilarity._check_finite(1.5, "ctx") == 1.5

    def test_default_table_is_none(self):
        class Custom(Dissimilarity):
            def __call__(self, a, b):
                return 0.0

        c = Custom()
        assert c.table() is None
        assert c.is_zero_reflexive()
        c.validate_value(object())  # default accepts everything


class TestIoCostModelDefaults:
    def test_plausible_2011_disk(self):
        model = IoCostModel()
        # A random page must cost far more than a sequential one.
        assert model.random_ms > 10 * model.sequential_ms
        assert model.cost_ms(IoStats()) == 0.0


class TestDatasetRepr:
    def test_repr_and_describe(self):
        ds = synthetic_dataset(10, [3, 3], seed=1)
        assert "n=10" in repr(ds)
        projected = ds.project([0], name="custom")
        assert projected.name == "custom"
