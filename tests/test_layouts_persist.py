"""Persisting physical layouts and engine save/open round-trips."""

import json

import pytest

from repro.data.queries import query_batch
from repro.data.synthetic import synthetic_dataset
from repro.engine import ReverseSkylineEngine
from repro.errors import StorageError
from repro.persist.layouts import layout_entries, load_layouts, save_layouts
from repro.skyline.oracle import reverse_skyline_by_pruners


@pytest.fixture(scope="module")
def ds():
    return synthetic_dataset(200, [6, 5, 4], seed=151)


class TestLayoutFiles:
    def test_roundtrip(self, ds, tmp_path):
        ids = list(range(len(ds)))[::-1]
        save_layouts(tmp_path, {"TRS": ids})
        assert load_layouts(tmp_path) == {"TRS": ids}

    def test_missing_file_is_empty(self, tmp_path):
        assert load_layouts(tmp_path) == {}

    def test_non_permutation_rejected_on_save(self, tmp_path):
        with pytest.raises(StorageError, match="permutation"):
            save_layouts(tmp_path, {"x": [0, 0, 1]})

    def test_corrupt_file(self, tmp_path):
        (tmp_path / "layouts.json").write_text("{oops")
        with pytest.raises(StorageError, match="corrupt"):
            load_layouts(tmp_path)

    def test_non_mapping_file(self, tmp_path):
        (tmp_path / "layouts.json").write_text(json.dumps([1, 2]))
        with pytest.raises(StorageError, match="mapping"):
            load_layouts(tmp_path)

    def test_layout_entries_checks_sync(self, ds):
        with pytest.raises(StorageError, match="out of sync"):
            layout_entries(ds, [0, 1, 2])  # wrong length

    def test_layout_entries_materialises(self, ds):
        ids = list(range(len(ds)))[::-1]
        entries = layout_entries(ds, ids)
        assert entries[0] == (len(ds) - 1, ds[len(ds) - 1])


class TestEngineSaveOpen:
    def test_layouts_survive_roundtrip(self, ds, tmp_path):
        engine = ReverseSkylineEngine(ds, memory_fraction=0.2)
        q = query_batch(ds, 1, seed=1)[0]
        engine.query(q)                      # prepares TRS
        engine.query(q, algorithm="SRS")     # prepares SRS
        engine.save(tmp_path / "db")

        reopened = ReverseSkylineEngine.open(tmp_path / "db", memory_fraction=0.2)
        # Both algorithms arrive pre-laid-out (no prepare cost).
        assert set(reopened._algorithms) >= {"TRS", "SRS"}
        original = engine._algorithms["TRS"].layout
        restored = reopened._algorithms["TRS"].layout
        assert [rid for rid, _ in original] == [rid for rid, _ in restored]

    def test_reopened_engine_answers_correctly(self, ds, tmp_path):
        engine = ReverseSkylineEngine(ds, memory_fraction=0.2)
        queries = query_batch(ds, 2, seed=2)
        engine.query(queries[0])
        engine.save(tmp_path / "db2")
        reopened = ReverseSkylineEngine.open(tmp_path / "db2", memory_fraction=0.2)
        for q in queries:
            assert list(reopened.query(q).record_ids) == reverse_skyline_by_pruners(
                ds, q
            )

    def test_save_without_prepared_algorithms(self, ds, tmp_path):
        engine = ReverseSkylineEngine(ds)
        engine.save(tmp_path / "db3")
        assert load_layouts(tmp_path / "db3") == {}
        reopened = ReverseSkylineEngine.open(tmp_path / "db3")
        assert reopened._algorithms == {}
