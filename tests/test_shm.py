"""Tests for the zero-copy shared-memory layer (repro.exec.shm).

Everything here runs in one process — attach works on the publishing
process too, so the pack/attach/rebuild codec and the segment lifecycle
are testable without a pool. Cross-process behaviour is exercised by the
planner tests and the chaos harness (``use_shm=True``).
"""

import glob

import numpy as np
import pytest

from repro.data.synthetic import mixed_dataset, synthetic_dataset
from repro.exec import shm as _shm


@pytest.fixture(autouse=True)
def _no_leaks():
    """Every test must end with zero owned segments."""
    yield
    for name in _shm.active_segments():
        _shm.unlink_manifest(name)
    assert _shm.active_segments() == ()
    assert not glob.glob("/dev/shm/repro-shm-*")


class TestSegmentLifecycle:
    def test_publish_attach_roundtrip_bitwise(self):
        arrays = {
            "a": np.arange(100, dtype=np.int64).reshape(10, 10),
            "b": np.linspace(0.0, 1.0, 7),
            "c": np.array([], dtype=np.int64),
        }
        manifest = _shm.publish_arrays(arrays, {"tag": "t"})
        try:
            assert manifest.shm_name.startswith(_shm.SHM_PREFIX)
            assert manifest.meta["tag"] == "t"
            assert manifest.shm_name in _shm.active_segments()
            views = _shm.attach_arrays(manifest)
            for key, arr in arrays.items():
                got = views[key]
                assert got.dtype == arr.dtype and got.shape == arr.shape
                assert np.array_equal(got, arr)
                assert not got.flags.writeable  # shared views are read-only
        finally:
            _shm.unlink_manifest(manifest)
        assert manifest.shm_name not in _shm.active_segments()

    def test_unlink_is_idempotent(self):
        manifest = _shm.publish_arrays({"x": np.arange(4)})
        _shm.unlink_manifest(manifest)
        _shm.unlink_manifest(manifest)  # second unlink: no-op, no raise
        _shm.unlink_manifest(manifest.shm_name)

    def test_manifest_is_picklable(self):
        import pickle

        manifest = _shm.publish_arrays({"x": np.arange(4)})
        try:
            clone = pickle.loads(pickle.dumps(manifest))
            assert np.array_equal(_shm.attach_arrays(clone)["x"], np.arange(4))
        finally:
            _shm.unlink_manifest(manifest)


class TestEnginePublication:
    def _engine(self, ds):
        from repro.engine import ReverseSkylineEngine

        return ReverseSkylineEngine(ds, algorithm="TRS", log_queries=False)

    def test_dataset_roundtrips_and_answers_identically(self):
        ds = synthetic_dataset(120, [5, 4, 4], seed=7)
        engine = self._engine(ds)
        manifest = _shm.publish_engine(engine)
        assert manifest is not None
        try:
            rebuilt = _shm.dataset_from_manifest(manifest)
            assert rebuilt.records == ds.records
            assert rebuilt.schema.cardinalities() == ds.schema.cardinalities()
            for d0, d1 in zip(ds.space.dissims, rebuilt.space.dissims):
                assert np.array_equal(
                    np.asarray(d0.matrix), np.asarray(d1.matrix)
                )
            q = tuple(0 for _ in range(3))
            want = self._engine(ds).query(q).record_ids
            got = self._engine(rebuilt).query(q).record_ids
            assert got == want
        finally:
            _shm.unlink_manifest(manifest)

    def test_numeric_dataset_falls_back_to_none(self):
        ds = mixed_dataset(30, [4], [(0.0, 1.0)], seed=2)
        assert _shm.publish_engine(self._engine(ds)) is None
        assert _shm.active_segments() == ()

    def test_warmed_plans_ship_and_seed_the_worker_cache(self):
        from repro.exec.executor import _warm_plan_cache
        from repro.kernels.plancache import configure, plan_cache

        ds = synthetic_dataset(150, [5, 5, 5], seed=9)
        engine = self._engine(ds)
        configure(256 * 1024 * 1024)
        _warm_plan_cache(engine)
        manifest = _shm.publish_engine(engine)
        assert manifest is not None
        try:
            assert len(manifest.meta["plans"]) == 1
            assert manifest.meta["plans"][0]["scan"] is True
            # Simulate the worker side: empty cache, seed from the segment.
            configure(256 * 1024 * 1024)
            seeded = _shm.seed_plan_cache(manifest)
            assert seeded == 3  # dissim + phase1 + scan
            before = plan_cache().stats()
            rebuilt = _shm.dataset_from_manifest(manifest)
            from repro.core.vector_trs import VectorTRS

            algo = VectorTRS(rebuilt)
            result = algo.run(tuple(0 for _ in range(3)))
            after = plan_cache().stats()
            assert after.misses == before.misses  # imported, not rebuilt
            assert after.hits > before.hits
            want = VectorTRS(ds).run(tuple(0 for _ in range(3)))
            assert result.record_ids == want.record_ids
            assert result.stats.io.total == want.stats.io.total
        finally:
            _shm.unlink_manifest(manifest)
            configure(256 * 1024 * 1024)


class TestAttachRaceAndDetach:
    """Regressions for the resident-server concurrency bugs: the
    resource-tracker monkey-patch race and the attached-mapping leak."""

    @staticmethod
    def _forced_attach(manifest):
        """Take the real attach path even in the publishing process by
        hiding the owned entry (attach_arrays short-circuits on it)."""
        seg = _shm._OWNED.pop(manifest.shm_name)
        return seg

    def test_threaded_attach_storm_keeps_tracker_intact(self):
        """100 iterations of 8 threads attaching the same segment at
        once: resource_tracker.register must survive bit-identical.

        Before the module lock, two threads could both enter the
        pre-3.13 fallback, one capturing the other's no-op as ``orig``
        and restoring it permanently — silently disabling tracker
        registration for the whole process.
        """
        import threading
        from multiprocessing import resource_tracker

        orig_register = resource_tracker.register
        manifest = _shm.publish_arrays({"x": np.arange(64, dtype=np.int64)})
        seg = self._forced_attach(manifest)
        try:
            for _ in range(100):
                views: list = []
                errors: list = []
                barrier = threading.Barrier(8)

                def attach():
                    try:
                        barrier.wait()
                        views.append(_shm.attach_arrays(manifest)["x"])
                    except Exception as exc:  # pragma: no cover - fail path
                        errors.append(exc)

                threads = [threading.Thread(target=attach) for _ in range(8)]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
                assert not errors
                assert len(views) == 8
                assert all(int(v[3]) == 3 for v in views)
                # THE assertion: the tracker hook is the original function.
                assert resource_tracker.register is orig_register
                del views
                assert _shm.detach_manifest(manifest) is True
            assert _shm.attached_segments() == ()
        finally:
            _shm.detach_manifest(manifest)
            _shm._OWNED[manifest.shm_name] = seg
            _shm.unlink_manifest(manifest)
        assert resource_tracker.register is orig_register

    def test_detach_manifest_drops_attachment(self):
        manifest = _shm.publish_arrays({"x": np.arange(8, dtype=np.int64)})
        seg = self._forced_attach(manifest)
        try:
            views = _shm.attach_arrays(manifest)
            assert manifest.shm_name in _shm.attached_segments()
            assert _shm.detach_manifest(manifest) is True
            assert manifest.shm_name not in _shm.attached_segments()
            # Live views outlast the detach safely: the mapping is torn
            # down by refcount when the last view dies, not before.
            assert int(views["x"][5]) == 5
            del views
            # Idempotent: a second detach (or an unknown name) is False.
            assert _shm.detach_manifest(manifest) is False
            assert _shm.detach_manifest("repro-shm-never-existed") is False
        finally:
            _shm.detach_manifest(manifest)
            _shm._OWNED[manifest.shm_name] = seg
            _shm.unlink_manifest(manifest)

    def test_detach_actually_unmaps_the_segment(self):
        """Regression for the private-internals dance in detach: the
        point of detach is that the *mapping* goes away, not just the
        dict entry. /proc/self/maps names every mapped /dev/shm file, so
        the segment must vanish from it once detach runs with no live
        views — if a stdlib change silently turns detach into a no-op,
        this catches it."""
        import os

        if not os.path.exists("/proc/self/maps"):
            pytest.skip("needs /proc/self/maps (Linux)")

        def mappings(name: str) -> int:
            with open("/proc/self/maps") as fh:
                return sum(name in line for line in fh)

        manifest = _shm.publish_arrays(
            {"x": np.arange(65536, dtype=np.int64)}
        )
        # The owner's own mapping (held by ``seg``) stays put throughout;
        # what must come and go is the *attachment's* extra mapping.
        seg = self._forced_attach(manifest)
        try:
            baseline = mappings(manifest.shm_name)
            views = _shm.attach_arrays(manifest)
            assert mappings(manifest.shm_name) > baseline
            del views
            assert _shm.detach_manifest(manifest) is True
            assert mappings(manifest.shm_name) == baseline
        finally:
            _shm.detach_manifest(manifest)
            _shm._OWNED[manifest.shm_name] = seg
            _shm.unlink_manifest(manifest)

    def test_detach_falls_back_to_close_on_unknown_internals(self):
        """A SharedMemory whose private attributes are not the expected
        CPython/POSIX shape must still detach via the public close(),
        never become a silent no-op."""

        class OpaqueSeg:
            closed = False

            def close(self):
                self.closed = True

        opaque = OpaqueSeg()
        with _shm._LOCK:
            _shm._ATTACHED["fake-opaque-seg"] = opaque
        assert _shm.detach_manifest("fake-opaque-seg") is True
        assert opaque.closed
        assert "fake-opaque-seg" not in _shm.attached_segments()

    def test_detach_never_touches_owned_segments(self):
        manifest = _shm.publish_arrays({"x": np.arange(4)})
        try:
            # The owner's mapping is not an attachment; detach is a no-op
            # and the segment stays published.
            assert _shm.detach_manifest(manifest) is False
            assert manifest.shm_name in _shm.active_segments()
            views = _shm.attach_arrays(manifest)  # owner attach: owned seg
            assert _shm.attached_segments() == ()
            del views
        finally:
            _shm.unlink_manifest(manifest)
