"""Command-line interface."""

import pytest

from repro.cli import main
from repro.data.synthetic import synthetic_dataset
from repro.persist.format import save_dataset


@pytest.fixture
def dataset_dir(tmp_path):
    ds = synthetic_dataset(80, [5, 4, 3], seed=81)
    return str(save_dataset(ds, tmp_path / "data"))


class TestGenerate:
    def test_synthetic(self, tmp_path, capsys):
        out = str(tmp_path / "gen")
        rc = main(
            ["generate", "--kind", "synthetic", "--rows", "50",
             "--values", "4", "4", "--out", out]
        )
        assert rc == 0
        assert "wrote" in capsys.readouterr().out
        assert (tmp_path / "gen" / "records.csv").exists()

    def test_ci_surrogate(self, tmp_path, capsys):
        rc = main(["generate", "--kind", "ci", "--rows", "200",
                   "--out", str(tmp_path / "ci")])
        assert rc == 0

    def test_synthetic_needs_values(self, tmp_path, capsys):
        rc = main(["generate", "--kind", "synthetic", "--out", str(tmp_path / "x")])
        assert rc == 2
        assert "error" in capsys.readouterr().err


class TestInfo:
    def test_describes_and_analyzes(self, dataset_dir, capsys):
        rc = main(["info", dataset_dir])
        assert rc == 0
        out = capsys.readouterr().out
        assert "n=80" in out
        assert "A1" in out

    def test_missing_dataset(self, tmp_path, capsys):
        rc = main(["info", str(tmp_path / "ghost")])
        assert rc == 2


class TestQuery:
    def test_runs(self, dataset_dir, capsys):
        rc = main(["query", dataset_dir, "--query", "1,2,0", "--algorithm", "TRS"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "result" in out and "checks" in out

    @pytest.mark.smoke
    def test_query_matches_oracle(self, dataset_dir, capsys):
        from repro.persist.format import load_dataset
        from repro.skyline.oracle import reverse_skyline_by_pruners

        rc = main(["query", dataset_dir, "--query", "0,0,0"])
        assert rc == 0
        out = capsys.readouterr().out
        ds = load_dataset(dataset_dir)
        expected = reverse_skyline_by_pruners(ds, (0, 0, 0))
        assert f"result    : {expected}" in out

    def test_bad_arity(self, dataset_dir, capsys):
        rc = main(["query", dataset_dir, "--query", "1,2"])
        assert rc == 2
        assert "attributes" in capsys.readouterr().err

    def test_bad_value(self, dataset_dir, capsys):
        rc = main(["query", dataset_dir, "--query", "99,0,0"])
        assert rc == 2


class TestBatch:
    def test_matches_single_query_answers(self, dataset_dir, capsys):
        rc = main(["batch", dataset_dir, "--queries", "1,2,0", "0,0,0", "1,2,0",
                   "--workers", "2", "--show-results"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cache hits" in out and "1 cache hits" in out
        from repro.persist.format import load_dataset
        from repro.skyline.oracle import reverse_skyline_by_pruners

        ds = load_dataset(dataset_dir)
        expected = reverse_skyline_by_pruners(ds, (1, 2, 0))
        assert f"1,2,0 -> {expected}" in out

    def test_plan_flag_groups_and_matches(self, dataset_dir, capsys):
        rc = main(["batch", dataset_dir, "--queries", "1,2,0", "0,0,0", "2,1,1",
                   "--pool", "serial", "--no-cache", "--plan",
                   "--show-results"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "planned     : 3 answered via shared scans" in out
        from repro.persist.format import load_dataset
        from repro.skyline.oracle import reverse_skyline_by_pruners

        ds = load_dataset(dataset_dir)
        expected = reverse_skyline_by_pruners(ds, (1, 2, 0))
        assert f"1,2,0 -> {expected}" in out

    def test_shm_flag_accepted_and_leak_free(self, dataset_dir, capsys):
        rc = main(["batch", dataset_dir, "--queries", "1,2,0", "0,0,0",
                   "2,1,1", "1,1,1", "--pool", "process", "--workers", "2",
                   "--no-cache", "--plan", "--shm"])
        assert rc == 0
        from repro.exec import shm as _shm

        assert _shm.active_segments() == ()

    def test_queries_file_and_serial_pool(self, dataset_dir, tmp_path, capsys):
        qfile = tmp_path / "queries.txt"
        qfile.write_text("1,2,0\n0,0,0\n")
        rc = main(["batch", dataset_dir, "--queries-file", str(qfile),
                   "--pool", "serial", "--no-cache", "--repeat", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "queries     : 4 (4 computed, 0 cache hits, 0 failed)" in out

    def test_no_queries_is_an_error(self, dataset_dir, capsys):
        rc = main(["batch", dataset_dir])
        assert rc == 2
        assert "no queries" in capsys.readouterr().err

    def test_attribute_subset_batch(self, dataset_dir, capsys):
        rc = main(["batch", dataset_dir, "--attributes", "A1", "A3",
                   "--queries", "1,0", "--show-results"])
        assert rc == 0
        out = capsys.readouterr().out
        from repro.persist.format import load_dataset

        ds = load_dataset(dataset_dir)
        from repro.engine import ReverseSkylineEngine

        expected = ReverseSkylineEngine(ds).query_subset(["A1", "A3"], (1, 0))
        assert f"1,0 -> {list(expected.record_ids)}" in out

    def test_unknown_attribute_is_readable_not_a_traceback(self, dataset_dir, capsys):
        rc = main(["batch", dataset_dir, "--attributes", "A1", "BOGUS",
                   "--queries", "1,0"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "BOGUS" in err
        assert "Traceback" not in err

    def test_subset_arity_checked_against_attributes(self, dataset_dir, capsys):
        rc = main(["batch", dataset_dir, "--attributes", "A1", "A3",
                   "--queries", "1,0,2"])
        assert rc == 2
        assert "--attributes" in capsys.readouterr().err

    def test_inject_faults_recovers_with_identical_answers(self, dataset_dir, capsys):
        main(["batch", dataset_dir, "--queries", "1,2,0", "0,0,0",
              "--pool", "serial", "--show-results"])
        clean = capsys.readouterr().out
        rc = main(["batch", dataset_dir, "--queries", "1,2,0", "0,0,0",
                   "--pool", "serial", "--show-results",
                   "--inject-faults", "0.4", "--fault-seed", "3"])
        assert rc == 0
        chaotic = capsys.readouterr().out
        assert "fault model : rate=0.4, seed=3" in chaotic
        for line in clean.splitlines():
            if "->" in line:  # every answer identical under the storm
                assert line in chaotic

    def test_exhausted_retries_fail_the_batch_legibly(self, dataset_dir, capsys):
        rc = main(["batch", dataset_dir, "--queries", "1,2,0",
                   "--pool", "serial", "--inject-faults", "1.0",
                   "--retries", "2"])
        assert rc == 3
        captured = capsys.readouterr()
        assert "1 failed" in captured.out
        assert "failed [0]:" in captured.err
        assert "Traceback" not in captured.err

    def test_bad_fault_rate_is_an_error(self, dataset_dir, capsys):
        rc = main(["batch", dataset_dir, "--queries", "1,2,0",
                   "--inject-faults", "1.5"])
        assert rc == 2
        assert "error" in capsys.readouterr().err


class TestInfluence:
    def test_ranks(self, dataset_dir, capsys):
        rc = main(
            ["influence", dataset_dir, "--probes", "1,2,0", "0,0,0",
             "--algorithm", "TRS"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "gini" in out
        assert "1,2,0" in out


class TestSkyband:
    def test_runs(self, dataset_dir, capsys):
        rc = main(["skyband", dataset_dir, "--query", "1,2,0", "-k", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "reverse 3-skyband" in out

    def test_k1_matches_query(self, dataset_dir, capsys):
        main(["skyband", dataset_dir, "--query", "0,0,0", "-k", "1"])
        band_out = capsys.readouterr().out
        main(["query", dataset_dir, "--query", "0,0,0"])
        query_out = capsys.readouterr().out
        band_ids = band_out.split("skyband: ")[1].splitlines()[0]
        query_ids = query_out.split("result    : ")[1].splitlines()[0]
        assert band_ids == query_ids


class TestProfile:
    def test_prints_attribute_stats(self, dataset_dir, capsys):
        rc = main(["profile", dataset_dir])
        assert rc == 0
        out = capsys.readouterr().out
        assert "entropy" in out and "n=80" in out


class TestAdvise:
    def test_heuristic(self, dataset_dir, capsys):
        rc = main(["advise", dataset_dir])
        assert rc == 0
        out = capsys.readouterr().out
        assert "recommended algorithm: TRS" in out

    def test_calibrated(self, dataset_dir, capsys):
        rc = main(["advise", dataset_dir, "--calibrate"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "measured TRS" in out

    def test_subset_flag(self, dataset_dir, capsys):
        rc = main(["advise", dataset_dir, "--subset-queries"])
        assert rc == 0
        assert "T-TRS" in capsys.readouterr().out


class TestBackends:
    def test_lists_capability_flags(self, capsys):
        rc = main(["backends"])
        assert rc == 0
        out = capsys.readouterr().out
        lines = {
            line.split()[0]: line for line in out.splitlines() if line.strip()
        }
        assert "TRS" in lines and "-> VectorTRS" in lines["TRS"]
        assert "SGTRS" in lines and "yes" in lines["SGTRS"]  # shards
        assert "ITRS" in lines and "yes" in lines["ITRS"]  # index
        assert "self" in lines["ITRS"]  # backend dispatched in-class
        assert "Naive" in lines and "numpy" not in lines["Naive"]


class TestIndexFlags:
    def test_index_query_matches_plain_trs(self, dataset_dir, capsys):
        rc = main(["query", dataset_dir, "--query", "1,2,0"])
        assert rc == 0
        plain = capsys.readouterr().out
        rc = main(["query", dataset_dir, "--query", "1,2,0", "--index"])
        assert rc == 0
        indexed = capsys.readouterr().out
        want = next(l for l in plain.splitlines() if l.startswith("result"))
        assert want in indexed
        assert "algorithm : ITRS" in indexed
        assert "index     : exact" in indexed

    def test_recall_target_reports_measured_recall(self, dataset_dir, capsys):
        rc = main(
            ["query", dataset_dir, "--query", "1,2,0",
             "--recall-target", "0.9"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "approximate" in out
        assert "measured" in out

    def test_recall_target_rejected_off_family(self, dataset_dir, capsys):
        rc = main(
            ["query", dataset_dir, "--query", "1,2,0",
             "--algorithm", "BRS", "--recall-target", "0.9"]
        )
        assert rc == 2
        assert "ITRS" in capsys.readouterr().err

    def test_batch_index_flag(self, dataset_dir, capsys):
        rc = main(
            ["batch", dataset_dir, "--queries", "1,2,0", "0,0,0",
             "--index", "--show-results", "--pool", "serial"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "queries     : 2" in out


class TestReport:
    def test_aggregates_artifacts(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig01_demo.txt").write_text("=== demo ===\nrows\n")
        out = tmp_path / "REPORT.md"
        rc = main(["report", "--results", str(results), "--out", str(out)])
        assert rc == 0
        assert out.exists()
        assert "## Figures" in out.read_text()

    def test_missing_results(self, tmp_path, capsys):
        rc = main(["report", "--results", str(tmp_path / "none"),
                   "--out", str(tmp_path / "R.md")])
        assert rc == 2


class TestSweep:
    def test_memory_sweep_on_synthetic(self, capsys, monkeypatch):
        # Shrink the workload so the CLI test stays fast.
        monkeypatch.setenv("REPRO_SCALE", "0.05")
        rc = main(["sweep", "memory", "--dataset", "synthetic"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "TRS" in out and "memory" in out


class TestObservability:
    def test_batch_trace_and_metrics_out(self, dataset_dir, tmp_path, capsys):
        import json

        trace = tmp_path / "trace.json"
        prom = tmp_path / "metrics.prom"
        rc = main(["batch", dataset_dir, "--queries", "1,2,0", "2,1,1",
                   "--pool", "serial", "--trace", str(trace),
                   "--metrics-out", str(prom)])
        assert rc == 0
        doc = json.loads(trace.read_text())
        names = [s["name"] for s in doc["spans"]]
        assert names.count("exec.batch") == 1
        assert names.count("exec.query") == 2
        assert "phase1" in names and "phase2" in names
        text = prom.read_text()
        assert "# TYPE repro_batches_total counter" in text
        assert 'repro_batches_total{pool="serial"} 1' in text

    def test_metrics_subcommand_prom_and_json(self, dataset_dir, tmp_path, capsys):
        import json

        rc = main(["metrics", dataset_dir, "--queries", "1,2,0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert 'repro_queries_total{algorithm="TRS"} 1' in out
        out_file = tmp_path / "m.json"
        rc = main(["metrics", dataset_dir, "--queries", "1,2,0",
                   "--format", "json", "--out", str(out_file), "--breakdown"])
        assert rc == 0
        doc = json.loads(out_file.read_text())
        assert doc["counters"]['repro_queries_total{algorithm="TRS"}'] == 1
        assert "per-phase attribution" in capsys.readouterr().err

    def test_metrics_needs_queries(self, dataset_dir, capsys):
        rc = main(["metrics", dataset_dir])
        assert rc == 2
        assert "no queries" in capsys.readouterr().err
