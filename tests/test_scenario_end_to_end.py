"""Full-lifecycle scenario: generate -> persist -> engine -> every query
type -> persist layouts -> reopen -> audit. The closest thing to a user's
first day with the library, as one test module."""

import pytest

from repro.core.skyband import reverse_skyband_naive
from repro.data.queries import query_batch
from repro.data.synthetic import synthetic_dataset
from repro.engine import ReverseSkylineEngine
from repro.influence.analysis import influence_analysis
from repro.persist.format import load_dataset, save_dataset
from repro.skyline.oracle import reverse_skyline_by_pruners


@pytest.fixture(scope="module")
def home(tmp_path_factory):
    return tmp_path_factory.mktemp("scenario")


@pytest.fixture(scope="module")
def dataset():
    return synthetic_dataset(350, [7, 5, 6, 4], seed=201)


@pytest.mark.smoke
def test_full_lifecycle(home, dataset):
    # 1. Persist the raw dataset.
    save_dataset(dataset, home / "db")
    reloaded = load_dataset(home / "db")
    assert reloaded.records == dataset.records

    # 2. Open an engine and answer one of each query type.
    engine = ReverseSkylineEngine.open(home / "db", memory_fraction=0.2)
    queries = query_batch(reloaded, 3, seed=5)

    rs = engine.query(queries[0])
    assert list(rs.record_ids) == reverse_skyline_by_pruners(reloaded, queries[0])

    band = engine.skyband(queries[0], k=3)
    assert list(band.record_ids) == reverse_skyband_naive(reloaded, queries[0], 3)
    assert set(rs.record_ids) <= set(band.record_ids)

    projected = reloaded.project([1, 3])
    sub_q = projected.records[7]
    sub = engine.query_subset(["A2", "A4"], sub_q)
    assert list(sub.record_ids) == reverse_skyline_by_pruners(projected, sub_q)

    report = engine.influence({f"q{i}": q for i, q in enumerate(queries)})
    oracle_scores = {
        f"q{i}": len(reverse_skyline_by_pruners(reloaded, q))
        for i, q in enumerate(queries)
    }
    assert report.scores == oracle_scores
    assert 0.0 <= report.skew() <= 1.0

    # 3. The query log saw everything.
    kinds = [e.kind for e in engine.log]
    assert "reverse-skyline" in kinds
    assert "reverse-3-skyband" in kinds
    assert "subset-reverse-skyline" in kinds
    assert "influence-probe" in kinds
    latency = engine.latency_summary()
    assert latency["count"] == len(engine.log)

    # 4. Persist everything (dataset + prepared layouts), reopen, re-verify.
    engine.save(home / "db")
    engine2 = ReverseSkylineEngine.open(home / "db", memory_fraction=0.2)
    assert "TRS" in engine2._algorithms  # layout restored, no re-prepare
    rs2 = engine2.query(queries[0])
    assert rs2.record_ids == rs.record_ids


def test_same_answers_from_direct_api(home, dataset):
    """The engine is sugar: the direct algorithm API gives byte-identical
    answers on the persisted data."""
    from repro.core.trs import TRS

    reloaded = load_dataset(home / "db")
    q = query_batch(reloaded, 1, seed=5)[0]
    direct = TRS(reloaded, memory_fraction=0.2).run(q)
    engine = ReverseSkylineEngine.open(home / "db", memory_fraction=0.2)
    assert engine.query(q).record_ids == direct.record_ids
