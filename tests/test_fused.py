"""Fused multi-query kernels and the optional JIT tier.

The fused tier promises the same contract as every other backend — the
per-query kernel loop, the scalar path and the fused path must agree on
results, batch structure and page IOs — plus one stronger guarantee of
its own: fused and per-query *numpy* runs produce identical
``per_query_checks`` decompositions (the stacked/forest kernels count
exactly what the solo kernels count). The jit tier is stronger still:
bit-identical to numpy in *everything*, checks included, whether the
kernels run compiled (numba present) or interpreted (the common case in
CI, and what these tests pin).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.multiquery import SharedScanTRS
from repro.data.dataset import Dataset
from repro.data.queries import query_batch
from repro.data.schema import Schema
from repro.data.synthetic import synthetic_dataset
from repro.dissim.generators import (
    nonmetric_dissimilarity,
    random_dissimilarity,
)
from repro.dissim.space import DissimilaritySpace
from repro.kernels import fused as fused_kernels
from repro.kernels import jit as jit_kernels
from repro.storage.disk import MemoryBudget
from repro.testing.verify import random_workload

_CONTRACT_STATS = (
    "db_passes",
    "phase1_batches",
    "phase2_batches",
    "intermediate_count",
    "phase1_pruned",
    "pruner_tests",
    "result_count",
)
_CONTRACT_IO = (
    "sequential_reads",
    "random_reads",
    "sequential_writes",
    "random_writes",
)

#: The group sizes the fused kernels must be exact on: a singleton
#: group, a pair, a worker-sized group and one that is none of those.
GROUP_SIZES = (1, 2, 4, 7)


def _run(ds, qs, budget_pages, page_bytes, *, backend, fused=True):
    algo = SharedScanTRS(
        ds,
        backend=backend,
        fused=fused,
        budget=MemoryBudget(budget_pages),
        page_bytes=page_bytes,
    )
    return algo.run_batch(qs)


def assert_batches_identical(got, ref, label="", checks=True):
    """``got`` must match ``ref`` on results, contract stats and IO;
    with ``checks=True`` also on every checks decomposition."""
    assert got.results == ref.results, label
    for f in _CONTRACT_STATS:
        assert getattr(got.stats, f) == getattr(ref.stats, f), f"{label}: {f}"
    for f in _CONTRACT_IO:
        assert getattr(got.stats.io, f) == getattr(ref.stats.io, f), (
            f"{label}: {f}"
        )
    if checks:
        assert got.per_query_checks == ref.per_query_checks, label
        assert got.per_query_checks_phase1 == ref.per_query_checks_phase1, label
        assert got.per_query_checks_phase2 == ref.per_query_checks_phase2, label
        assert got.stats.checks == ref.stats.checks, label


@pytest.fixture
def interpreted_jit(monkeypatch):
    """Force the jit tier 'ready' with the *interpreted* kernels — the
    exact code numba would compile, minus numba. Lets every jit code
    path (flattening, padded matrices, forest DFS, removal hand-off)
    run in environments without the optional dependency."""
    monkeypatch.setitem(jit_kernels._state, "phase", "ready")
    monkeypatch.setitem(
        jit_kernels._state,
        "kernels",
        {
            "phase1": jit_kernels.phase1_descend,
            "phase2": jit_kernels.phase2_descend,
        },
    )
    yield


@pytest.fixture
def absent_numba(monkeypatch):
    """Simulate the optional dependency being uninstalled."""

    def _raise():
        raise ImportError("No module named 'numba'")

    jit_kernels.reset()
    monkeypatch.setattr(jit_kernels, "_import_numba", _raise)
    yield
    jit_kernels.reset()


# --- fused vs per-query vs scalar --------------------------------------------


class TestFusedDifferential:
    def test_randomized_trials(self):
        for t in range(25):
            case = random_workload(7100 + t)
            size = GROUP_SIZES[t % len(GROUP_SIZES)]
            qs = [case.query] + query_batch(case.dataset, size - 1, seed=t)
            kw = dict(budget_pages=case.budget_pages, page_bytes=case.page_bytes)
            py = _run(case.dataset, qs, backend="python", **kw)
            per_q = _run(case.dataset, qs, backend="numpy", fused=False, **kw)
            fus = _run(case.dataset, qs, backend="numpy", **kw)
            assert fus.backend == "numpy"
            # Fused == per-query numpy on *everything*, checks included.
            assert_batches_identical(fus, per_q, case.describe())
            # Both match the scalar contract (checks granularity differs).
            assert_batches_identical(fus, py, case.describe(), checks=False)

    @pytest.mark.smoke
    def test_group_sizes_smoke(self):
        ds = synthetic_dataset(300, [6, 5, 4], seed=77)
        pool = query_batch(ds, max(GROUP_SIZES), seed=3)
        for size in GROUP_SIZES:
            qs = pool[:size]
            per_q = _run(ds, qs, 3, 256, backend="numpy", fused=False)
            fus = _run(ds, qs, 3, 256, backend="numpy")
            assert_batches_identical(fus, per_q, f"group size {size}")

    def test_fused_group_counter_increments(self):
        ds = synthetic_dataset(120, [5, 5], seed=21)
        qs = query_batch(ds, 3, seed=5)
        before = fused_kernels.fused_groups_run()
        _run(ds, qs, 2, 256, backend="numpy")
        assert fused_kernels.fused_groups_run() == before + 1
        # The legacy loop does not count as a fused group.
        _run(ds, qs, 2, 256, backend="numpy", fused=False)
        assert fused_kernels.fused_groups_run() == before + 1


@st.composite
def fused_case(draw):
    m = draw(st.integers(1, 3))
    cards = [draw(st.integers(3, 6)) for _ in range(m)]
    seed = draw(st.integers(0, 2**16))
    n = draw(st.integers(0, 50))
    rng = np.random.default_rng(seed)
    space = DissimilaritySpace(
        [
            nonmetric_dissimilarity(c, rng)
            if draw(st.booleans())
            else random_dissimilarity(c, rng, symmetric=draw(st.booleans()))
            for c in cards
        ]
    )
    records = [tuple(int(rng.integers(0, c)) for c in cards) for _ in range(n)]
    ds = Dataset(Schema.categorical(cards), records, space, validate=False)
    size = draw(st.sampled_from(GROUP_SIZES))
    qs = [
        tuple(int(rng.integers(0, c)) for c in cards) for _ in range(size)
    ]
    budget_pages = draw(st.integers(2, 5))
    page_bytes = max(draw(st.sampled_from([32, 64, 256])), 4 + 4 * m)
    return ds, qs, budget_pages, page_bytes


@given(fused_case())
@settings(max_examples=25, deadline=None)
def test_property_fused_equals_per_query(case):
    ds, qs, budget_pages, page_bytes = case
    per_q = _run(ds, qs, budget_pages, page_bytes, backend="numpy", fused=False)
    fus = _run(ds, qs, budget_pages, page_bytes, backend="numpy")
    assert_batches_identical(fus, per_q)


@given(fused_case())
@settings(max_examples=15, deadline=None)
def test_property_fused_matches_scalar_contract(case):
    ds, qs, budget_pages, page_bytes = case
    py = _run(ds, qs, budget_pages, page_bytes, backend="python")
    fus = _run(ds, qs, budget_pages, page_bytes, backend="numpy")
    assert_batches_identical(fus, py, checks=False)


# --- jit tier -----------------------------------------------------------------


class TestJitTier:
    def test_interpreted_jit_bit_identical_to_numpy(self, interpreted_jit):
        """The jit kernels (run interpreted) must equal the numpy tier in
        everything, including the per-query checks decomposition."""
        for t in range(12):
            case = random_workload(7400 + t)
            size = GROUP_SIZES[t % len(GROUP_SIZES)]
            qs = [case.query] + query_batch(case.dataset, size - 1, seed=t)
            kw = dict(budget_pages=case.budget_pages, page_bytes=case.page_bytes)
            vec = _run(case.dataset, qs, backend="numpy", **kw)
            jit = _run(case.dataset, qs, backend="jit", **kw)
            assert jit.backend == "jit", case.describe()
            assert_batches_identical(jit, vec, case.describe())

    @pytest.mark.smoke
    def test_jit_falls_back_cleanly_without_numba(self, absent_numba):
        ds = synthetic_dataset(200, [6, 5], seed=42)
        qs = query_batch(ds, 3, seed=1)
        assert not jit_kernels.jit_ready()
        status = jit_kernels.status()
        assert status["phase"] == "fallback"
        assert "ImportError" in status["reason"]
        # backend="jit" still runs — on the numpy tier, same numbers.
        jit = _run(ds, qs, 2, 256, backend="jit")
        vec = _run(ds, qs, 2, 256, backend="numpy")
        assert jit.backend == "numpy"
        assert_batches_identical(jit, vec)

    def test_auto_escalates_only_when_ready(self, absent_numba):
        ds = synthetic_dataset(120, [5, 5], seed=21)
        qs = query_batch(ds, 2, seed=5)
        assert jit_kernels.effective_tier("auto") == "numpy"
        assert _run(ds, qs, 2, 256, backend="auto").backend == "numpy"

    def test_effective_tier_table(self, interpreted_jit):
        assert jit_kernels.effective_tier("jit") == "jit"
        assert jit_kernels.effective_tier("auto") == "jit"
        assert jit_kernels.effective_tier("numpy") == "numpy"
        assert jit_kernels.effective_tier("python") == "numpy"

    def test_selfcheck_rejects_broken_compilation(self):
        """A 'compiler' that mangles the phase-1 kernel must be caught by
        the self-check and demoted to fallback, never trusted."""

        def broken_phase1(*args):
            pass  # decides nothing, counts nothing

        class _FakeNumba:
            @staticmethod
            def njit(**kw):
                def deco(fn):
                    if fn is jit_kernels.phase1_descend:
                        return broken_phase1
                    return fn

                return deco

        jit_kernels.reset()
        try:
            real_import = jit_kernels._import_numba
            jit_kernels._import_numba = lambda: _FakeNumba()
            assert not jit_kernels.jit_ready()
            assert jit_kernels.status()["phase"] == "fallback"
            assert "self-check" in jit_kernels.status()["reason"]
        finally:
            jit_kernels._import_numba = real_import
            jit_kernels.reset()

    def test_compile_seconds_recorded(self, absent_numba):
        assert not jit_kernels.jit_ready()
        assert jit_kernels.compile_seconds() >= 0.0
