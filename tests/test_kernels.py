"""Kernels layer: backend dispatch plus the VectorTRS ≡ TRS contract.

The numpy backend promises **bit-identical** results, batch structure and
page-IO counts to scalar TRS — only the ``checks_*`` counters may differ
(array kernels test pruners at frontier granularity; docs/performance.md
documents the accounting contract). These tests enforce the contract
differentially on randomized workloads, including non-metric matrices,
duplicates, tiny budgets and mixed schemas.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.multiquery import SharedScanTRS
from repro.core.registry import make_algorithm
from repro.core.trs import TRS
from repro.core.vector_trs import VectorTRS
from repro.core.vectorized import VectorBRS
from repro.data.dataset import Dataset
from repro.data.queries import query_batch
from repro.data.schema import Schema
from repro.data.synthetic import mixed_dataset, synthetic_dataset
from repro.dissim.generators import nonmetric_dissimilarity, random_dissimilarity
from repro.dissim.space import DissimilaritySpace
from repro.errors import AlgorithmError
from repro.kernels import (
    available_backends,
    normalize_backend,
    resolve_algorithm,
    scalar_variant,
    vector_variant,
)
from repro.skyline.oracle import reverse_skyline_by_pruners
from repro.storage.disk import MemoryBudget
from repro.testing.verify import random_workload, verify_algorithm

# The bit-identical contract: everything an RSResult reports except the
# checks_* counters (which measure backend-specific work granularity).
_CONTRACT_STATS = (
    "db_passes",
    "phase1_batches",
    "phase2_batches",
    "intermediate_count",
    "phase1_pruned",
    "pruner_tests",
    "result_count",
)
_CONTRACT_IO = (
    "sequential_reads",
    "random_reads",
    "sequential_writes",
    "random_writes",
)


def assert_contract_equal(vec, ref, label=""):
    """Assert the numpy result is bit-identical to the scalar one on every
    contract field."""
    assert vec.record_ids == ref.record_ids, label
    for f in _CONTRACT_STATS:
        assert getattr(vec.stats, f) == getattr(ref.stats, f), f"{label}: {f}"
    for f in _CONTRACT_IO:
        assert getattr(vec.stats.io, f) == getattr(ref.stats.io, f), f"{label}: {f}"


# --- differential: VectorTRS vs TRS ------------------------------------------


class TestVectorTRSDifferential:
    def test_randomized_trials_bit_identical(self):
        """50+ random workloads (non-metric matrices, duplicates, random
        budgets/page sizes): the full contract holds on every one."""
        for t in range(55):
            case = random_workload(9000 + t)
            budget = MemoryBudget(case.budget_pages)
            ref = TRS(case.dataset, budget=budget, page_bytes=case.page_bytes)
            vec = VectorTRS(case.dataset, budget=budget, page_bytes=case.page_bytes)
            assert_contract_equal(
                vec.run(case.query), ref.run(case.query), case.describe()
            )

    def test_matches_oracle(self):
        report = verify_algorithm(
            lambda ds, budget, page: VectorTRS(ds, budget=budget, page_bytes=page),
            trials=30,
            seed=9200,
        )
        assert report.ok, str(report.failures[0])

    def test_warm_cache_replay_identical(self):
        """The phase-1 batch cache is query-independent: a warm instance
        answers later queries bit-identically to a cold scalar run."""
        ds = synthetic_dataset(600, [7, 6, 5], seed=310)
        vec = VectorTRS(ds, budget=MemoryBudget(3), page_bytes=256)
        for q in query_batch(ds, 5, seed=11):
            ref = TRS(ds, budget=MemoryBudget(3), page_bytes=256)
            assert_contract_equal(vec.run(q), ref.run(q), f"warm q={q}")

    @pytest.mark.smoke
    def test_small_parity_smoke(self):
        ds = synthetic_dataset(200, [6, 5], seed=42)
        q = query_batch(ds, 1, seed=1)[0]
        ref = TRS(ds, budget=MemoryBudget(2), page_bytes=128).run(q)
        vec = VectorTRS(ds, budget=MemoryBudget(2), page_bytes=128).run(q)
        assert_contract_equal(vec, ref)
        assert vec.backend == "numpy" and ref.backend == "python"

    def test_duplicates_and_exact_query_match(self):
        base = synthetic_dataset(1, [4, 4], seed=3)
        ds = base.with_records([base.records[0]] * 15)
        for q in (base.records[0], tuple((v + 1) % 4 for v in base.records[0])):
            ref = TRS(ds, budget=MemoryBudget(2), page_bytes=64).run(q)
            vec = VectorTRS(ds, budget=MemoryBudget(2), page_bytes=64).run(q)
            assert_contract_equal(vec, ref, f"dup q={q}")

    def test_empty_dataset(self):
        ds = synthetic_dataset(0, [4, 4], seed=1)
        assert VectorTRS(ds, budget=MemoryBudget(2)).run((0, 0)).record_ids == ()

    def test_single_attribute(self):
        ds = synthetic_dataset(150, [9], seed=8)
        q = query_batch(ds, 1, seed=2)[0]
        ref = TRS(ds, budget=MemoryBudget(2), page_bytes=64).run(q)
        vec = VectorTRS(ds, budget=MemoryBudget(2), page_bytes=64).run(q)
        assert_contract_equal(vec, ref)

    def test_rejects_numeric_schema(self):
        ds = mixed_dataset(20, [3], [(0.0, 1.0)], seed=1)
        with pytest.raises(AlgorithmError, match="categorical"):
            VectorTRS(ds, budget=MemoryBudget(2)).run((0, 0.5))


# --- hypothesis: random non-metric matrices x datasets x budgets -------------


@st.composite
def kernel_case(draw):
    m = draw(st.integers(1, 3))
    cards = [draw(st.integers(3, 6)) for _ in range(m)]
    seed = draw(st.integers(0, 2**16))
    n = draw(st.integers(0, 50))
    rng = np.random.default_rng(seed)
    space = DissimilaritySpace(
        [
            nonmetric_dissimilarity(c, rng)
            if draw(st.booleans())
            else random_dissimilarity(c, rng, symmetric=draw(st.booleans()))
            for c in cards
        ]
    )
    records = [tuple(int(rng.integers(0, c)) for c in cards) for _ in range(n)]
    ds = Dataset(Schema.categorical(cards), records, space, validate=False)
    query = tuple(int(rng.integers(0, c)) for c in cards)
    budget_pages = draw(st.integers(2, 5))
    page_bytes = draw(st.sampled_from([32, 64, 256]))
    page_bytes = max(page_bytes, 4 + 4 * m)
    return ds, query, budget_pages, page_bytes


@given(kernel_case())
@settings(max_examples=30, deadline=None)
def test_property_vector_trs_equals_trs(case):
    ds, q, budget_pages, page_bytes = case
    ref = TRS(ds, budget=MemoryBudget(budget_pages), page_bytes=page_bytes)
    vec = VectorTRS(ds, budget=MemoryBudget(budget_pages), page_bytes=page_bytes)
    assert_contract_equal(vec.run(q), ref.run(q))


@given(kernel_case())
@settings(max_examples=15, deadline=None)
def test_property_vector_trs_matches_oracle(case):
    ds, q, budget_pages, page_bytes = case
    vec = VectorTRS(ds, budget=MemoryBudget(budget_pages), page_bytes=page_bytes)
    assert list(vec.run(q).record_ids) == reverse_skyline_by_pruners(ds, q)


# --- backend dispatch ---------------------------------------------------------


class TestBackendDispatch:
    @pytest.mark.smoke
    def test_resolution_table(self):
        assert resolve_algorithm("TRS", None) == "TRS"
        assert resolve_algorithm("TRS", "python") == "TRS"
        assert resolve_algorithm("TRS", "numpy") == "VectorTRS"
        assert resolve_algorithm("BRS", "numpy") == "VectorBRS"
        # Vector names map back under python, and to themselves under numpy.
        assert resolve_algorithm("VectorTRS", "python") == "TRS"
        assert resolve_algorithm("VectorTRS", "numpy") == "VectorTRS"

    def test_variant_mappings(self):
        assert vector_variant("TRS") == "VectorTRS"
        assert vector_variant("VectorBRS") == "VectorBRS"
        assert vector_variant("NaiveRS") is None
        assert scalar_variant("VectorTRS") == "TRS"
        assert scalar_variant("SRS") == "SRS"

    def test_numpy_backend_requires_variant(self):
        with pytest.raises(AlgorithmError, match="no numpy backend"):
            resolve_algorithm("NaiveRS", "numpy")

    def test_unknown_backend_rejected(self):
        with pytest.raises(AlgorithmError, match="unknown backend"):
            normalize_backend("cuda")

    def test_available_backends(self):
        assert available_backends("TRS") == ("python", "numpy", "jit", "auto")
        assert available_backends("NaiveRS") == ("python", "auto")

    def test_jit_backend_resolves_to_vector_variant(self):
        # The jit tier shares the numpy algorithm classes; the tier
        # split happens inside the fused shared-scan kernels. Requesting
        # jit for a scalar-only algorithm is an error like numpy.
        assert resolve_algorithm("TRS", "jit") == "VectorTRS"
        assert resolve_algorithm("BRS", "jit") == "VectorBRS"
        with pytest.raises(AlgorithmError, match="no jit backend"):
            resolve_algorithm("NaiveRS", "jit")

    def test_auto_upgrades_categorical(self):
        ds = synthetic_dataset(50, [4, 4], seed=1)
        assert resolve_algorithm("TRS", "auto", ds) == "VectorTRS"
        algo = make_algorithm("TRS", ds, backend="auto", budget=MemoryBudget(2))
        assert isinstance(algo, VectorTRS)

    @pytest.mark.smoke
    def test_auto_vector_brs_shape_gate(self):
        # VectorBRS is re-admitted to `auto` dispatch behind a shape
        # gate: the code-table rewrite benches it at 1.5-3.7x of scalar
        # BRS (BENCH_core.json) on shapes whose attribute cardinalities
        # fit the phase-1 column-block width, so `auto` upgrades those —
        # and only those.
        ds = synthetic_dataset(50, [4, 4], seed=1)
        assert resolve_algorithm("BRS", "auto", ds) == "VectorBRS"
        algo = make_algorithm("BRS", ds, backend="auto", budget=MemoryBudget(2))
        assert isinstance(algo, VectorBRS)
        # Beyond the measured regime (an attribute wider than the
        # column block) `auto` conservatively stays scalar; an explicit
        # numpy request is still honoured.
        from repro.core.vectorized import _COL_BLOCK

        wide = synthetic_dataset(40, [_COL_BLOCK + 1, 4], seed=3)
        assert resolve_algorithm("BRS", "auto", wide) == "BRS"
        assert resolve_algorithm("BRS", "numpy", wide) == "VectorBRS"
        # With no dataset in hand the shape is unknown: stay scalar.
        assert resolve_algorithm("BRS", "auto", None) == "BRS"
        assert available_backends("BRS") == ("python", "numpy", "jit", "auto")

    def test_auto_falls_back_on_mixed_schema(self):
        ds = mixed_dataset(30, [4], [(0.0, 1.0)], seed=2)
        assert resolve_algorithm("TRS", "auto", ds) == "TRS"
        algo = make_algorithm("TRS", ds, backend="auto", budget=MemoryBudget(2))
        assert isinstance(algo, TRS) and not isinstance(algo, VectorTRS)

    def test_explicit_numpy_on_mixed_schema_raises_at_run(self):
        # An explicit numpy request is honoured (no silent fallback); the
        # kernel then rejects the non-matrix-backed attribute loudly.
        ds = mixed_dataset(30, [4], [(0.0, 1.0)], seed=2)
        algo = make_algorithm("TRS", ds, backend="numpy", budget=MemoryBudget(2))
        assert isinstance(algo, VectorTRS)
        with pytest.raises(AlgorithmError, match="matrix-backed"):
            algo.run((0, 0.5))

    def test_python_backend_downgrades_vector_request(self):
        ds = synthetic_dataset(50, [4, 4], seed=1)
        algo = make_algorithm("VectorBRS", ds, backend="python", budget=MemoryBudget(2))
        assert type(algo).name == "BRS"

    @pytest.mark.smoke
    def test_backend_recorded_on_results(self):
        ds = synthetic_dataset(80, [5, 5], seed=4)
        q = query_batch(ds, 1, seed=1)[0]
        py = make_algorithm("TRS", ds, budget=MemoryBudget(2)).run(q)
        np_ = make_algorithm("TRS", ds, backend="numpy", budget=MemoryBudget(2)).run(q)
        assert (py.backend, np_.backend) == ("python", "numpy")
        assert py.record_ids == np_.record_ids

    def test_vector_brs_under_dispatch(self):
        ds = synthetic_dataset(120, [6, 5], seed=9)
        q = query_batch(ds, 1, seed=3)[0]
        brs = make_algorithm("BRS", ds, budget=MemoryBudget(2)).run(q)
        vec = make_algorithm("BRS", ds, backend="numpy", budget=MemoryBudget(2)).run(q)
        assert isinstance(
            make_algorithm("BRS", ds, backend="numpy", budget=MemoryBudget(2)),
            VectorBRS,
        )
        assert vec.record_ids == brs.record_ids
        assert vec.backend == "numpy"


# --- shared-scan batches ------------------------------------------------------


class TestSharedScanBackends:
    def test_batch_equivalence_python_vs_numpy(self):
        for t in range(12):
            case = random_workload(9500 + t)
            qs = [case.query] + query_batch(case.dataset, 3, seed=t)
            kw = dict(
                budget=MemoryBudget(case.budget_pages), page_bytes=case.page_bytes
            )
            py = SharedScanTRS(case.dataset, backend="python", **kw).run_batch(qs)
            vec = SharedScanTRS(case.dataset, backend="numpy", **kw).run_batch(qs)
            assert py.results == vec.results, case.describe()
            assert (py.backend, vec.backend) == ("python", "numpy")
            for f in _CONTRACT_IO:
                assert getattr(py.stats.io, f) == getattr(vec.stats.io, f), (
                    f"{case.describe()}: {f}"
                )
            assert py.stats.db_passes == vec.stats.db_passes

    @pytest.mark.smoke
    def test_auto_backend_selection(self):
        ds = synthetic_dataset(120, [5, 5], seed=21)
        qs = query_batch(ds, 2, seed=5)
        auto = SharedScanTRS(ds, backend="auto", budget=MemoryBudget(2))
        # auto resolves to numpy, escalating to jit when numba compiled.
        assert auto.run_batch(qs).backend in ("numpy", "jit")
        mixed = mixed_dataset(40, [4], [(0.0, 1.0)], seed=2)
        with pytest.raises(AlgorithmError):
            # Mixed schemas stay on TRS semantics: SharedScanTRS reuses TRS,
            # which rejects numeric attributes regardless of backend.
            SharedScanTRS(mixed, backend="auto", budget=MemoryBudget(2)).run_batch(
                [(0, 0.5)]
            )

    def test_unknown_backend_rejected(self):
        ds = synthetic_dataset(20, [4, 4], seed=1)
        with pytest.raises(AlgorithmError, match="unknown backend"):
            SharedScanTRS(ds, backend="gpu")
