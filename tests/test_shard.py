"""Sharded scatter-gather reverse skylines (repro.shard).

Covers the partitioner invariants, oracle equivalence across shard
counts / strategies / backends / pools, the exact cost-decomposition
invariant, the differential and chaos harness integration (including a
killed shard job), per-shard shared-memory manifests, observability
grafting, and dispatch through registry / engine / executor / CLI.
"""

from __future__ import annotations

import glob

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.base import CostStats
from repro.core.registry import make_algorithm
from repro.core.trs import TRS
from repro.data.synthetic import synthetic_dataset
from repro.engine import ReverseSkylineEngine
from repro.errors import AlgorithmError
from repro.faults import FaultInjector, FaultPlan, RetryPolicy
from repro.shard import (
    ScatterGatherTRS,
    ShardedRSResult,
    ShardPlanner,
)
from repro.skyline.oracle import reverse_skyline_by_pruners
from repro.storage.disk import MemoryBudget
from repro.testing import verify_sharded_equivalence
from repro.testing.verify import random_workload


def no_sleep(_):
    pass


@pytest.fixture(scope="module")
def ds():
    return synthetic_dataset(240, [6, 5, 4], seed=17)


@pytest.fixture(scope="module")
def oracle(ds):
    return tuple(reverse_skyline_by_pruners(ds, (1, 2, 0)))


QUERY = (1, 2, 0)


class TestShardPlanner:
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 7])
    def test_partition_invariant(self, ds, k):
        plan = ShardPlanner(k).plan(ds)
        plan.check_partition(len(ds))  # raises on violation
        assert plan.num_shards == k
        sizes = [len(s) for s in plan.shards]
        assert sum(sizes) == len(ds)
        assert max(sizes) - min(sizes) <= 1  # near-equal chunks

    def test_zorder_chunks_are_contiguous_on_the_curve(self, ds):
        from repro.tiling.tiles import TileGrid

        plan = ShardPlanner(4, strategy="zorder").plan(ds)
        assert plan.strategy == "zorder"
        grid = TileGrid.for_dataset(ds, tiles_per_dim=4)
        # Max z-index of shard k never exceeds min z-index of shard k+1.
        ranges = []
        for shard in plan.shards:
            zs = [grid.z_index(ds.records[rid]) for rid in shard.record_ids]
            ranges.append((min(zs), max(zs)))
        for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
            assert hi <= lo

    def test_round_robin_deals_cyclically(self, ds):
        plan = ShardPlanner(3, strategy="round-robin").plan(ds)
        assert plan.strategy == "round-robin"
        for shard in plan.shards:
            assert all(rid % 3 == shard.index for rid in shard.record_ids)

    def test_auto_falls_back_when_tiling_degenerates(self):
        # Numeric bounds cannot be derived from empty data, so the tile
        # grid fails and auto falls back to round-robin.
        from repro.data.dataset import Dataset
        from repro.data.synthetic import mixed_dataset

        base = mixed_dataset(10, [4], [(0.0, 1.0)], seed=1)
        empty = Dataset(base.schema, [], base.space, validate=False)
        plan = ShardPlanner(2).plan(empty)
        assert plan.strategy == "round-robin"
        assert all(len(s) == 0 for s in plan.shards)

    def test_empty_categorical_dataset_still_plans(self):
        from repro.data.dataset import Dataset

        base = synthetic_dataset(10, [4, 4], seed=1)
        empty = Dataset(base.schema, [], base.space, validate=False)
        plan = ShardPlanner(2).plan(empty)
        plan.check_partition(0)
        assert all(len(s) == 0 for s in plan.shards)

    def test_more_shards_than_records_gives_empty_shards(self):
        tiny = synthetic_dataset(3, [4, 4], seed=2)
        plan = ShardPlanner(8).plan(tiny)
        plan.check_partition(3)
        assert sum(len(s) == 0 for s in plan.shards) == 5

    def test_sub_datasets_carry_global_ids(self, ds):
        plan = ShardPlanner(4).plan(ds)
        for shard in plan.shards:
            for local, gid in enumerate(shard.record_ids):
                assert shard.dataset.records[local] == ds.records[gid]
                assert plan.shard_of[gid] == shard.index

    def test_bad_parameters_rejected(self):
        with pytest.raises(AlgorithmError, match=">= 1"):
            ShardPlanner(0)
        with pytest.raises(AlgorithmError, match="strategy"):
            ShardPlanner(2, strategy="hash")


class TestScatterGatherEquivalence:
    @pytest.mark.smoke
    def test_single_shard_matches_trs(self, ds, oracle):
        trs = TRS(ds, budget=MemoryBudget(8), page_bytes=128)
        sg = ScatterGatherTRS(ds, shards=1, budget=MemoryBudget(8), page_bytes=128)
        assert tuple(sg.run(QUERY).record_ids) == tuple(trs.run(QUERY).record_ids)
        assert tuple(sg.run(QUERY).record_ids) == oracle

    @pytest.mark.smoke
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_matches_oracle_across_shard_counts(self, ds, oracle, k):
        sg = ScatterGatherTRS(ds, shards=k, budget=MemoryBudget(6), page_bytes=128)
        result = sg.run(QUERY)
        assert isinstance(result, ShardedRSResult)
        assert tuple(result.record_ids) == oracle
        assert result.num_shards == k

    @pytest.mark.parametrize("strategy", ["zorder", "round-robin"])
    def test_answer_is_strategy_independent(self, ds, oracle, strategy):
        sg = ScatterGatherTRS(ds, shards=3, strategy=strategy)
        assert tuple(sg.run(QUERY).record_ids) == oracle

    @pytest.mark.parametrize("backend", ["python", "numpy", "auto"])
    def test_backend_applies_to_scan_phase(self, ds, oracle, backend):
        sg = ScatterGatherTRS(ds, shards=2, backend=backend)
        result = sg.run(QUERY)
        assert tuple(result.record_ids) == oracle
        want = "VectorTRS" if backend in ("numpy", "auto") else "TRS"
        assert sg._inner_name == want

    @pytest.mark.parametrize("pool", ["thread", "process"])
    def test_pools_are_bit_identical(self, ds, oracle, pool):
        sg = ScatterGatherTRS(ds, shards=2, pool=pool, workers=2)
        try:
            result = sg.run(QUERY)
        except (OSError, PermissionError) as exc:
            pytest.skip(f"no {pool} primitives here: {exc}")
        assert tuple(result.record_ids) == oracle

    def test_cost_stats_decompose_exactly(self, ds):
        sg = ScatterGatherTRS(ds, shards=4, budget=MemoryBudget(6), page_bytes=128)
        result = sg.run(QUERY)
        merged = CostStats.merged(p.stats for p in result.shard_stats)
        assert merged.checks_phase1 == result.stats.checks_phase1
        assert merged.checks_phase2 == result.stats.checks_phase2
        assert merged.pruner_tests == result.stats.pruner_tests
        assert merged.result_count == result.stats.result_count == len(
            result.record_ids
        )
        assert merged.io == result.stats.io
        # Shard walls sum to total work; the global wall is elapsed time.
        assert result.stats.wall_time_s > 0

    def test_shard_breakdown_is_consistent(self, ds):
        sg = ScatterGatherTRS(ds, shards=3)
        result = sg.run(QUERY)
        assert sum(p.records for p in result.shard_stats) == len(ds)
        assert sum(p.stats.result_count for p in result.shard_stats) == len(
            result.record_ids
        )
        # Every shard's local candidates bound its final contribution.
        for part in result.shard_stats:
            assert part.stats.result_count <= part.local_candidates

    def test_trace_checks_remap_to_global_ids(self, ds):
        sg = ScatterGatherTRS(ds, shards=3, trace_checks=True)
        result = sg.run(QUERY)
        for rid in result.stats.per_object_phase1:
            assert 0 <= rid < len(ds)

    def test_empty_dataset(self):
        from repro.data.dataset import Dataset

        base = synthetic_dataset(5, [3, 3], seed=9)
        empty = Dataset(base.schema, [], base.space, validate=False)
        sg = ScatterGatherTRS(empty, shards=2)
        result = sg.run((0, 0))
        assert result.record_ids == ()

    def test_bad_pool_rejected(self, ds):
        with pytest.raises(AlgorithmError, match="pool"):
            ScatterGatherTRS(ds, shards=2, pool="fork-bomb")


class TestDifferentialHarness:
    @pytest.mark.smoke
    def test_passes_on_randomized_workloads(self):
        report = verify_sharded_equivalence(trials=6, seed=400)
        assert report.ok, str(report.failures[0])
        assert report.trials == 6

    def test_covers_duplicates_across_shard_boundaries(self):
        # Seeds with duplicate_boost exercise exact-value duplicates that
        # land on different shards and must prune each other remotely.
        for seed in range(40):
            case = random_workload(seed)
            if len(set(case.dataset.records)) < len(case.dataset.records):
                break
        else:  # pragma: no cover - generator guarantees duplicates appear
            pytest.fail("no duplicate-bearing workload in 40 seeds")
        expected = tuple(reverse_skyline_by_pruners(case.dataset, case.query))
        sg = ScatterGatherTRS(
            case.dataset,
            shards=3,
            budget=MemoryBudget(case.budget_pages),
            page_bytes=case.page_bytes,
        )
        assert tuple(sg.run(case.query).record_ids) == expected

    def test_rejects_bad_parameters(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            verify_sharded_equivalence(trials=0)
        with pytest.raises(ExperimentError):
            verify_sharded_equivalence(shard_counts=())


# --- property-based: the merge protocol against random non-metric tables ----


@st.composite
def sharded_case(draw):
    import numpy as np

    from repro.data.dataset import Dataset
    from repro.data.schema import Schema
    from repro.dissim.generators import random_dissimilarity
    from repro.dissim.space import DissimilaritySpace

    m = draw(st.integers(1, 3))
    cards = [draw(st.integers(2, 5)) for _ in range(m)]
    seed = draw(st.integers(0, 2**16))
    n = draw(st.integers(0, 40))
    k = draw(st.integers(2, 4))
    rng = np.random.default_rng(seed)
    schema = Schema.categorical(cards)
    space = DissimilaritySpace([random_dissimilarity(c, rng) for c in cards])
    records = [tuple(int(rng.integers(0, c)) for c in cards) for _ in range(n)]
    if records and draw(st.booleans()):  # force cross-shard duplicates
        records += records[: n // 2]
    ds = Dataset(schema, records, space, validate=False)
    query = tuple(int(rng.integers(0, c)) for c in cards)
    return ds, query, k


@given(sharded_case())
@settings(max_examples=30, deadline=None)
def test_property_sharded_union_equals_oracle(case):
    """For random non-metric dissimilarity tables: the union of per-shard
    reverse skylines, after the pruner-exchange merge, equals the oracle
    reverse skyline — and the pre-merge candidate union is a superset."""
    ds, query, k = case
    expected = tuple(reverse_skyline_by_pruners(ds, query))
    sg = ScatterGatherTRS(ds, shards=k)
    result = sg.run(query)
    assert tuple(result.record_ids) == expected
    # Scatter-phase candidates (local RS union) must cover the answer.
    candidates = sum(p.local_candidates for p in result.shard_stats)
    assert candidates >= len(expected)


class TestChaosWithShards:
    @pytest.mark.smoke
    def test_chaos_harness_sharded_dimension(self):
        from repro.testing import verify_chaos_equivalence

        report = verify_chaos_equivalence(
            trials=4, seed=500, pools=("serial",), shards=2
        )
        assert report.ok, str(report.failures[0])
        assert report.faults_injected > 0
        assert report.exhausted_queries == 0  # serial recovery guaranteed

    def test_killed_shard_job_recovers_bit_identically(self, ds, oracle):
        # Storm rate high enough that shard jobs themselves get killed;
        # max_attempts > max_consecutive guarantees recovery.
        plan = FaultPlan.storm(0.4)
        sg = ScatterGatherTRS(ds, shards=3, budget=MemoryBudget(6), page_bytes=128)
        sg.fault_injector = FaultInjector(plan, seed=11)
        sg.retry_policy = RetryPolicy(
            max_attempts=plan.max_consecutive + 2, base_delay_s=0.0, sleep=no_sleep
        )
        result = sg.run(QUERY)
        assert tuple(result.record_ids) == oracle
        assert sg.fault_injector.stats().total > 0

    def test_dead_shard_degrades_to_structured_error(self, ds):
        # Crash every attempt: the shard job must exhaust its retries and
        # surface as a structured AlgorithmError naming the shard — never
        # a wrong answer, never a raw worker traceback.
        plan = FaultPlan(crash_rate=1.0, max_consecutive=10)
        sg = ScatterGatherTRS(ds, shards=2)
        sg.fault_injector = FaultInjector(plan, seed=3)
        sg.retry_policy = RetryPolicy(
            max_attempts=2, base_delay_s=0.0, sleep=no_sleep
        )
        with pytest.raises(AlgorithmError, match="shard .*RetryExhaustedError"):
            sg.run(QUERY)

    def test_engine_degrades_shard_death_to_query_error(self, ds):
        plan = FaultPlan(crash_rate=1.0, max_consecutive=10)
        engine = ReverseSkylineEngine(
            ds,
            shards=2,
            log_queries=False,
            fault_injector=FaultInjector(plan, seed=3),
            retry_policy=RetryPolicy(max_attempts=2, base_delay_s=0.0, sleep=no_sleep),
        )
        batch = engine.query_many([QUERY], pool="serial")
        assert batch.results[0] is None
        # Structured degradation: either the executor's own retry loop
        # exhausts first (RetryExhaustedError) or the shard round reports
        # the dead shards (AlgorithmError) — never an unstructured abort.
        error = batch.errors[0]
        assert error is not None
        assert error.error_type in ("AlgorithmError", "RetryExhaustedError")


class TestSharedMemoryPerShard:
    @pytest.fixture(autouse=True)
    def _no_leaks(self):
        from repro.exec import shm as _shm

        yield
        for name in _shm.active_segments():
            _shm.unlink_manifest(name)
        assert _shm.active_segments() == ()
        assert not glob.glob("/dev/shm/repro-shm-*")

    def test_publish_dataset_roundtrip(self, ds):
        from repro.exec import shm as _shm

        plan = ShardPlanner(2).plan(ds)
        manifest = _shm.publish_dataset(plan.shards[0].dataset)
        if manifest is None:
            pytest.skip("shared memory unavailable here")
        try:
            rebuilt = _shm.dataset_from_manifest(manifest)
            assert rebuilt.records == plan.shards[0].dataset.records
            assert len(_shm.active_segments()) == 1  # one segment per shard
        finally:
            _shm.unlink_manifest(manifest)

    def test_process_shm_run_publishes_once_per_shard(self, ds, oracle, monkeypatch):
        from repro.exec import shm as _shm

        calls = []
        real = _shm.publish_dataset

        def counting(dataset):
            calls.append(len(dataset))
            return real(dataset)

        monkeypatch.setattr(_shm, "publish_dataset", counting)
        sg = ScatterGatherTRS(ds, shards=2, pool="process", shm=True, workers=2)
        try:
            result = sg.run(QUERY)
        except (OSError, PermissionError) as exc:
            pytest.skip(f"no process/shm primitives here: {exc}")
        assert tuple(result.record_ids) == oracle
        # One manifest per shard, created once and reused by scan + merge.
        assert len(calls) == 2
        assert _shm.active_segments() == ()

    def test_no_residue_after_crash_injection(self, ds):
        from repro.exec import shm as _shm

        plan = FaultPlan.storm(0.5)
        sg = ScatterGatherTRS(ds, shards=2, pool="process", shm=True, workers=2)
        sg.fault_injector = FaultInjector(plan, seed=21)
        sg.retry_policy = RetryPolicy(max_attempts=plan.max_consecutive + 2)
        try:
            sg.run(QUERY)
        except (OSError, PermissionError) as exc:
            pytest.skip(f"no process/shm primitives here: {exc}")
        except AlgorithmError:
            pass  # concurrent interleavings may exhaust retries: still no leak
        assert _shm.active_segments() == ()
        assert not glob.glob("/dev/shm/repro-shm-*")


class TestObservability:
    @pytest.fixture
    def obs_on(self):
        from repro.obs import hooks

        was = hooks.is_enabled()
        hooks.enable(reset_state=True)
        yield hooks
        hooks.reset()
        if not was:
            hooks.disable()

    def test_per_shard_spans_graft_under_round_spans(self, ds, obs_on):
        from repro.obs.trace import span_tree

        sg = ScatterGatherTRS(ds, shards=2)
        sg.run(QUERY)
        records = obs_on.tracer().records()
        by_name = {}
        for rec in records:
            by_name.setdefault(rec.name, []).append(rec)
        assert len(by_name["shard.scatter"]) == 1
        assert len(by_name["shard.gather"]) == 1
        assert len(by_name["shard.scan"]) == 2
        assert len(by_name["shard.merge"]) == 2
        tree = span_tree(records)
        scatter = by_name["shard.scatter"][0]
        gather = by_name["shard.gather"][0]
        scan_parents = {r.parent_id for r in by_name["shard.scan"]}
        merge_parents = {r.parent_id for r in by_name["shard.merge"]}
        assert scan_parents == {scatter.span_id}
        assert merge_parents == {gather.span_id}
        # Shard children appear in shard order (deterministic grafting).
        scans = [r for r in tree[scatter.span_id] if r.name == "shard.scan"]
        assert [dict(r.attrs)["shard"] for r in scans] == [0, 1]

    def test_instrumented_run_is_bit_identical(self, ds, oracle, obs_on):
        sg = ScatterGatherTRS(ds, shards=3)
        assert tuple(sg.run(QUERY).record_ids) == oracle

    def test_metrics_record_query(self, ds, obs_on):
        ScatterGatherTRS(ds, shards=2).run(QUERY)
        snap = obs_on.snapshot()
        assert any("repro_queries" in name for name in snap.counters)


class TestDispatch:
    def test_make_algorithm_forwards_shards(self, ds, oracle):
        algo = make_algorithm("SGTRS", ds, shards=3)
        assert isinstance(algo, ScatterGatherTRS)
        assert tuple(algo.run(QUERY).record_ids) == oracle

    def test_make_algorithm_backend_and_shards(self, ds):
        algo = make_algorithm("SGTRS", ds, backend="numpy", shards=2)
        algo.prepare()
        assert algo._inner_name == "VectorTRS"

    def test_make_algorithm_rejects_shards_on_unsharded(self, ds):
        with pytest.raises(AlgorithmError, match="sharded"):
            make_algorithm("BRS", ds, shards=2)

    def test_engine_auto_upgrades_trs_to_sgtrs(self, ds, oracle):
        engine = ReverseSkylineEngine(ds, shards=2, log_queries=False)
        result = engine.query(QUERY)
        assert result.algorithm == "SGTRS"
        assert result.num_shards == 2
        assert tuple(result.record_ids) == oracle

    def test_engine_leaves_other_algorithms_unsharded(self, ds):
        engine = ReverseSkylineEngine(
            ds, algorithm="BRS", shards=2, log_queries=False
        )
        result = engine.query(QUERY)
        assert result.algorithm == "BRS"

    def test_executor_batch_matches_sequential(self, ds):
        engine = ReverseSkylineEngine(ds, shards=2, log_queries=False)
        reference = ReverseSkylineEngine(ds, log_queries=False)
        queries = [(1, 2, 0), (0, 0, 0), (5, 4, 3), (1, 2, 0)]
        batch = engine.query_many(queries, pool="thread", workers=2)
        for q, result in zip(queries, batch.results):
            assert tuple(result.record_ids) == tuple(
                reference.query(q).record_ids
            )


class TestCLI:
    @pytest.fixture
    def dataset_dir(self, tmp_path):
        from repro.persist.format import save_dataset

        ds = synthetic_dataset(80, [5, 4, 3], seed=81)
        return str(save_dataset(ds, tmp_path / "data"))

    def test_query_with_shards(self, dataset_dir, capsys):
        from repro.cli import main

        rc = main(["query", dataset_dir, "--query", "1,2,0", "--shards", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "shards" in out and "result" in out

    def test_sharded_answer_matches_unsharded(self, dataset_dir, capsys):
        from repro.cli import main

        rc = main(["query", dataset_dir, "--query", "1,2,0"])
        assert rc == 0
        plain = capsys.readouterr().out
        rc = main(["query", dataset_dir, "--query", "1,2,0", "--shards", "4"])
        assert rc == 0
        sharded = capsys.readouterr().out
        line = next(ln for ln in plain.splitlines() if ln.startswith("result"))
        assert line in sharded
