"""The paper's running example must match Table 1 / Figure 1 exactly."""

import pytest

from repro.data.examples import (
    DB_LABELS,
    OS_LABELS,
    PROCESSOR_LABELS,
    RUNNING_EXAMPLE_PRUNERS,
    RUNNING_EXAMPLE_RESULT,
    running_example,
    running_example_query,
)
from repro.dissim.analysis import analyze_metricity
from repro.skyline.domination import dominates


@pytest.fixture(scope="module")
def ds():
    return running_example()


def test_six_objects_three_attributes(ds):
    assert len(ds) == 6
    assert ds.num_attributes == 3
    assert ds.schema.names() == ["OS", "Processor", "DB"]


def test_duplicates_match_table1(ds):
    # O1 == O4 and O2 == O5 in Table 1.
    assert ds[0] == ds[3]
    assert ds[1] == ds[4]
    assert ds[0] != ds[5]


def test_query_is_msw_intel_db2(ds):
    q = running_example_query()
    assert q == (OS_LABELS.index("MSW"), PROCESSOR_LABELS.index("Intel"), DB_LABELS.index("DB2"))


def test_figure1_distances(ds):
    d1, d2, d3 = ds.space.dissims
    assert d1(d1.value_id("MSW"), d1.value_id("RHL")) == 0.8
    assert d1(d1.value_id("MSW"), d1.value_id("SL")) == 1.0
    assert d1(d1.value_id("RHL"), d1.value_id("SL")) == 0.1
    assert d2(0, 1) == 0.5
    assert d3(d3.value_id("Informix"), d3.value_id("DB2")) == 0.5
    assert d3(d3.value_id("Informix"), d3.value_id("Oracle")) == 0.9
    assert d3(d3.value_id("DB2"), d3.value_id("Oracle")) == 0.4


def test_os_distances_are_nonmetric(ds):
    report = analyze_metricity(ds.space.dissims[0])
    assert not report.is_metric
    assert report.triangle_violations > 0


def test_pruner_sets_match_table1(ds):
    """Table 1 column 5: every excluded object's pruners, exactly."""
    q = running_example_query()
    for x_id in range(6):
        pruners = {
            y_id
            for y_id in range(6)
            if y_id != x_id and dominates(ds.space, ds[y_id], q, ds[x_id])
        }
        expected = RUNNING_EXAMPLE_PRUNERS.get(x_id, frozenset())
        assert pruners == expected, f"O{x_id + 1}: {pruners} != {expected}"


def test_result_constant_consistent_with_pruners(ds):
    assert RUNNING_EXAMPLE_RESULT == frozenset(
        i for i in range(6) if i not in RUNNING_EXAMPLE_PRUNERS
    )


def test_section42_pruning_relationships(ds):
    """Section 4.2 lists: O1->{O2,O4,O5}, O2->{O5}, O4->{O1,O2,O5}, O5->{O2}."""
    q = running_example_query()
    relation = {
        y_id: {
            x_id
            for x_id in range(6)
            if x_id != y_id and dominates(ds.space, ds[y_id], q, ds[x_id])
        }
        for y_id in range(6)
    }
    assert relation[0] == {1, 3, 4}
    assert relation[1] == {4}
    assert relation[3] == {0, 1, 4}
    assert relation[4] == {1}
    assert relation[2] == set()
    assert relation[5] == set()
