"""Storage substrate: codec, page files, IO classification, budgets."""

import pytest

from repro.data.schema import Attribute, NUMERIC, Schema
from repro.data.synthetic import synthetic_dataset
from repro.errors import MemoryBudgetError, StorageError
from repro.storage.codec import RecordCodec
from repro.storage.disk import DEFAULT_PAGE_BYTES, DiskSimulator, MemoryBudget
from repro.storage.iostats import IoCostModel, IoStats


class TestCodec:
    def test_record_bytes_categorical(self):
        codec = RecordCodec(Schema.categorical([5, 5, 5]))
        assert codec.record_bytes == 4 + 3 * 4

    def test_record_bytes_mixed(self):
        schema = Schema([Attribute("c", cardinality=3), Attribute("n", kind=NUMERIC)])
        codec = RecordCodec(schema)
        assert codec.record_bytes == 4 + 4 + 8

    def test_records_per_page(self):
        codec = RecordCodec(Schema.categorical([5] * 3))  # 16B records
        assert codec.records_per_page(DEFAULT_PAGE_BYTES) == 2048
        assert codec.records_per_page(16) == 1

    def test_page_too_small(self):
        codec = RecordCodec(Schema.categorical([5] * 10))
        with pytest.raises(StorageError, match="cannot hold"):
            codec.records_per_page(16)

    def test_pages_for(self):
        codec = RecordCodec(Schema.categorical([5] * 3))  # 16B -> 4/page at 64B
        assert codec.pages_for(0, 64) == 0
        assert codec.pages_for(4, 64) == 1
        assert codec.pages_for(5, 64) == 2

    def test_negative_count(self):
        codec = RecordCodec(Schema.categorical([5]))
        with pytest.raises(StorageError):
            codec.dataset_bytes(-1)


class TestIoStats:
    def test_totals(self):
        s = IoStats(1, 2, 3, 4)
        assert s.sequential == 4 and s.random == 6 and s.total == 10

    def test_snapshot_delta(self):
        s = IoStats(5, 5, 0, 0)
        before = s.snapshot()
        s.sequential_reads += 3
        delta = s.delta(before)
        assert delta.sequential_reads == 3 and delta.random_reads == 0

    def test_reset_and_add(self):
        s = IoStats(1, 1, 1, 1)
        total = s + IoStats(1, 0, 0, 0)
        assert total.sequential_reads == 2
        s.reset()
        assert s.total == 0

    def test_cost_model(self):
        model = IoCostModel(sequential_ms=1.0, random_ms=10.0)
        assert model.cost_ms(IoStats(2, 3, 0, 0)) == 2 + 30

    def test_peek_reads_tracked_but_never_charged(self):
        s = IoStats(1, 2, 3, 4, peek_reads=7)
        assert s.total == 10  # peeks excluded from the paper's IO metric
        assert (s + IoStats(peek_reads=2)).peek_reads == 9
        assert s.delta(IoStats(peek_reads=5)).peek_reads == 2
        s.reset()
        assert s.peek_reads == 0


class TestPeekAccounting:
    def _staged(self, tmp_path=None):
        ds = synthetic_dataset(64, [4, 4], seed=5)
        disk = DiskSimulator(page_bytes=64)
        pf = disk.load_dataset(ds)
        return disk, pf

    def test_peek_counts_separately_and_leaves_charges_alone(self):
        disk, pf = self._staged()
        pf.read_page(0)
        charged = disk.stats.snapshot()
        for page_id in range(pf.num_pages):
            pf.peek_page(page_id)
        assert disk.stats.peek_reads == pf.num_pages
        after = disk.stats
        assert (after.sequential_reads, after.random_reads) == (
            charged.sequential_reads,
            charged.random_reads,
        )
        assert after.total == charged.total

    def test_peek_does_not_move_the_sequential_head(self):
        disk, pf = self._staged()
        pf.read_page(0)
        pf.peek_page(5)  # a charged read would make the next access random
        pf.read_page(1)
        assert disk.stats.sequential_reads == 1  # page 1 still sequential
        assert disk.stats.peek_reads == 1

    def test_filestore_peek_page_matches_read_page(self, tmp_path):
        ds = synthetic_dataset(64, [4, 4], seed=5)
        disk = DiskSimulator(page_bytes=64, backing_dir=tmp_path)
        pf = disk.load_dataset(ds)
        want = pf.read_page(2)
        charged = disk.stats.total
        assert pf.peek_page(2) == want
        assert disk.stats.total == charged
        assert disk.stats.peek_reads == 1
        with pytest.raises(StorageError, match="out of range"):
            pf.peek_page(pf.num_pages)

    def test_peeks_exported_to_metrics(self):
        from repro.obs import hooks as _obs
        from repro.obs import snapshot_to_prometheus

        _obs.enable(reset_state=True)
        try:
            disk, pf = self._staged()
            pf.peek_page(0)
            disk.close()
            text = snapshot_to_prometheus(_obs.snapshot())
            assert "repro_page_peeks_total 1" in text
        finally:
            _obs.disable()


class TestPageFile:
    def make_disk(self, page_bytes=64):
        disk = DiskSimulator(page_bytes)
        codec = RecordCodec(Schema.categorical([5] * 3))  # 16B -> 4 rec/page
        return disk, disk.create_file("f", codec)

    def test_writer_packs_full_pages(self):
        disk, pf = self.make_disk()
        with pf.writer() as w:
            for i in range(10):
                w.append(i, (0, 0, 0))
        assert pf.num_pages == 3
        assert pf.num_records == 10
        assert [rid for rid, _ in pf.peek_all_records()] == list(range(10))

    def test_sequential_vs_random_classification(self):
        disk, pf = self.make_disk()
        with pf.writer() as w:
            for i in range(12):
                w.append(i, (0, 0, 0))
        disk.stats.reset()
        pf.read_page(0)  # random (first access)
        pf.read_page(1)  # sequential
        pf.read_page(2)  # sequential
        pf.read_page(0)  # random (backwards)
        assert disk.stats.random_reads == 2
        assert disk.stats.sequential_reads == 2

    def test_switching_files_breaks_sequentiality(self):
        disk = DiskSimulator(64)
        codec = RecordCodec(Schema.categorical([5] * 3))
        a = disk.create_file("a", codec)
        b = disk.create_file("b", codec)
        for f in (a, b):
            with f.writer() as w:
                for i in range(8):
                    w.append(i, (0, 0, 0))
        disk.stats.reset()
        a.read_page(0)
        b.read_page(0)
        a.read_page(1)  # would be sequential, but the head moved to b
        assert disk.stats.random_reads == 3

    def test_out_of_range_page(self):
        disk, pf = self.make_disk()
        with pytest.raises(StorageError, match="out of range"):
            pf.read_page(0)
        with pytest.raises(StorageError, match="out of range"):
            pf.write_page(5, [])

    def test_page_overflow_rejected(self):
        disk, pf = self.make_disk()
        too_many = [(i, (0, 0, 0)) for i in range(5)]
        with pytest.raises(StorageError, match="capacity"):
            pf.write_page(0, too_many)

    def test_scan_yields_everything_in_order(self):
        disk, pf = self.make_disk()
        with pf.writer() as w:
            for i in range(9):
                w.append(i, (i % 5, 0, 0))
        seen = [rid for rid, _ in pf.scan_records()]
        assert seen == list(range(9))

    def test_truncate(self):
        disk, pf = self.make_disk()
        with pf.writer() as w:
            w.append(0, (0, 0, 0))
        pf.truncate()
        assert pf.num_pages == 0 and pf.num_records == 0

    def test_mid_file_overwrite_keeps_record_accounting(self):
        # Regression: overwriting a mid-file page with fewer (or more)
        # records must keep num_records equal to the sum of page lengths.
        disk, pf = self.make_disk()  # 4 records per page
        with pf.writer() as w:
            for i in range(12):
                w.append(i, (0, 0, 0))
        assert pf.num_records == 12
        pf.write_page(1, [(99, (1, 1, 1))])  # 4 -> 1 records
        assert pf.num_records == 9
        pf.write_page(1, [(99, (1, 1, 1)), (98, (2, 2, 2)), (97, (3, 3, 3))])
        assert pf.num_records == 11
        pf.write_page(1, pf.read_page(1))  # rewrite in place: no drift
        assert pf.num_records == 11
        assert pf.num_records == sum(
            len(pf.read_page(p)) for p in range(pf.num_pages)
        )

    def test_closed_writer_rejects_appends(self):
        disk, pf = self.make_disk()
        w = pf.writer()
        w.close()
        with pytest.raises(StorageError, match="closed"):
            w.append(0, (0, 0, 0))


class TestDiskSimulator:
    def test_duplicate_file_name(self):
        disk = DiskSimulator()
        codec = RecordCodec(Schema.categorical([2]))
        disk.create_file("x", codec)
        with pytest.raises(StorageError, match="exists"):
            disk.create_file("x", codec)

    def test_unknown_file(self):
        with pytest.raises(StorageError, match="no file"):
            DiskSimulator().file("ghost")

    def test_tiny_page_rejected(self):
        with pytest.raises(StorageError):
            DiskSimulator(4)

    def test_load_dataset_free_and_complete(self):
        ds = synthetic_dataset(100, [5, 5], seed=1)
        disk = DiskSimulator(64)
        pf = disk.load_dataset(ds)
        assert disk.stats.total == 0  # staging charges no IO
        assert pf.num_records == 100
        assert [r for _, r in pf.peek_all_records()] == ds.records


class TestMemoryBudget:
    def test_minimum_one_page(self):
        with pytest.raises(MemoryBudgetError):
            MemoryBudget(0)

    def test_fraction_of(self):
        ds = synthetic_dataset(1000, [5, 5], seed=1)  # 12B records
        budget = MemoryBudget.fraction_of(ds, 0.10, page_bytes=120)  # 100 pages
        assert budget.pages == 10

    def test_fraction_minimum(self):
        ds = synthetic_dataset(10, [5, 5], seed=1)
        budget = MemoryBudget.fraction_of(ds, 0.01, page_bytes=120, minimum_pages=2)
        assert budget.pages == 2

    def test_bad_fraction(self):
        ds = synthetic_dataset(10, [5, 5], seed=1)
        with pytest.raises(MemoryBudgetError):
            MemoryBudget.fraction_of(ds, 0.0)

    def test_second_phase_split(self):
        assert MemoryBudget(5).split_for_second_phase() == (1, 4)
        with pytest.raises(MemoryBudgetError, match="2 pages"):
            MemoryBudget(1).split_for_second_phase()

    def test_records_capacity(self):
        codec = RecordCodec(Schema.categorical([5, 5]))  # 12B
        assert MemoryBudget(3).records_capacity(codec, 120) == 30
