"""Schema and Attribute validation."""

import pytest

from repro.data.schema import CATEGORICAL, NUMERIC, Attribute, Schema
from repro.errors import SchemaError


class TestAttribute:
    def test_categorical_basics(self):
        a = Attribute("os", cardinality=3, labels=("w", "l", "m"))
        assert a.is_categorical and not a.is_numeric
        assert a.label_of(1) == "l"
        assert a.label_of(99) == "99"  # graceful fallback

    def test_numeric_basics(self):
        a = Attribute("price", kind=NUMERIC)
        assert a.is_numeric
        a.validate_value(3.5)
        a.validate_value(7)

    def test_unknown_kind(self):
        with pytest.raises(SchemaError, match="unknown attribute kind"):
            Attribute("x", kind="ordinal")

    def test_categorical_needs_cardinality(self):
        with pytest.raises(SchemaError, match="cardinality"):
            Attribute("x", kind=CATEGORICAL)

    def test_numeric_rejects_cardinality(self):
        with pytest.raises(SchemaError, match="cannot have a cardinality"):
            Attribute("x", kind=NUMERIC, cardinality=5)

    def test_label_count_checked(self):
        with pytest.raises(SchemaError, match="labels"):
            Attribute("x", cardinality=3, labels=("a",))

    def test_categorical_value_validation(self):
        a = Attribute("x", cardinality=3)
        a.validate_value(0)
        a.validate_value(2)
        with pytest.raises(SchemaError):
            a.validate_value(3)
        with pytest.raises(SchemaError):
            a.validate_value(-1)
        with pytest.raises(SchemaError):
            a.validate_value(1.5)
        with pytest.raises(SchemaError):
            a.validate_value(True)  # bools are not value ids

    def test_numeric_value_validation(self):
        a = Attribute("x", kind=NUMERIC)
        with pytest.raises(SchemaError):
            a.validate_value("cheap")
        with pytest.raises(SchemaError):
            a.validate_value(False)


class TestSchema:
    def test_empty_rejected(self):
        with pytest.raises(SchemaError, match="at least one"):
            Schema([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema([Attribute("x", cardinality=2), Attribute("x", cardinality=3)])

    def test_categorical_shorthand(self):
        s = Schema.categorical([3, 5, 2])
        assert s.num_attributes == 3
        assert s.cardinalities() == [3, 5, 2]
        assert s.names() == ["A1", "A2", "A3"]
        assert s.is_fully_categorical()

    def test_categorical_shorthand_with_names(self):
        s = Schema.categorical([2, 2], names=["os", "db"])
        assert s.index_of("db") == 1

    def test_shorthand_name_count_mismatch(self):
        with pytest.raises(SchemaError, match="equal length"):
            Schema.categorical([2, 2], names=["only-one"])

    def test_index_of_unknown(self):
        s = Schema.categorical([2])
        with pytest.raises(SchemaError, match="no attribute named"):
            s.index_of("ghost")

    def test_record_validation(self):
        s = Schema.categorical([3, 2])
        s.validate_record((2, 1))
        with pytest.raises(SchemaError, match="values"):
            s.validate_record((1,))
        with pytest.raises(SchemaError):
            s.validate_record((3, 0))

    def test_project(self):
        s = Schema.categorical([3, 5, 2])
        p = s.project([2, 0])
        assert p.cardinalities() == [2, 3]
        with pytest.raises(SchemaError, match="non-empty"):
            s.project([])

    def test_equality_and_hash(self):
        a = Schema.categorical([2, 3])
        b = Schema.categorical([2, 3])
        assert a == b
        assert hash(a) == hash(b)
        assert a != Schema.categorical([3, 2])

    def test_iteration(self):
        s = Schema.categorical([2, 3])
        kinds = [attr.is_categorical for attr in s]
        assert kinds == [True, True]
        assert s[1].cardinality == 3
