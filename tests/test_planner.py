"""Tests for the batch planner (QueryExecutor plan=True) and its shm path.

The planner's whole contract is "same answers, fewer scans": compatible
specs are grouped through one SharedScanTRS pass per chunk, and nothing
about grouping may leak into results, stats totals, fault recovery or
report shape.
"""

import numpy as np
import pytest

from repro.core.base import CostStats
from repro.data.synthetic import synthetic_dataset
from repro.engine import ReverseSkylineEngine
from repro.exec.executor import QueryExecutor, QuerySpec


@pytest.fixture(scope="module")
def ds():
    return synthetic_dataset(260, [6, 5, 5], seed=21)


@pytest.fixture()
def engine(ds):
    return ReverseSkylineEngine(ds, algorithm="TRS", log_queries=False)


def _queries(ds, n, seed=5):
    rng = np.random.default_rng(seed)
    cards = ds.schema.cardinalities()
    return [tuple(int(rng.integers(0, c)) for c in cards) for _ in range(n)]


class TestPlannedEquivalence:
    @pytest.mark.smoke
    def test_planned_serial_matches_unplanned(self, ds, engine):
        queries = _queries(ds, 12)
        want = [engine.query(q).record_ids for q in queries]
        ex = QueryExecutor(engine, pool="serial", cache=None, plan=True)
        report = ex.run_batch(queries)
        assert report.record_id_sets() == want
        assert report.planned == (True,) * len(queries)
        assert report.summary()["planned"] == len(queries)

    @pytest.mark.parametrize("pool", ["serial", "thread"])
    def test_planned_matches_across_pools(self, ds, engine, pool):
        queries = _queries(ds, 10, seed=8)
        want = [engine.query(q).record_ids for q in queries]
        ex = QueryExecutor(engine, pool=pool, workers=3, cache=None, plan=True)
        assert ex.run_batch(queries).record_id_sets() == want

    @pytest.mark.parametrize("shm", [False, True])
    def test_planned_process_pool_matches(self, ds, engine, shm):
        queries = _queries(ds, 9, seed=13)
        want = [engine.query(q).record_ids for q in queries]
        ex = QueryExecutor(
            engine, pool="process", workers=2, cache=None, plan=True, shm=shm
        )
        try:
            report = ex.run_batch(queries)
        except (OSError, PermissionError) as exc:
            pytest.skip(f"process pools unavailable here: {exc}")
        assert report.record_id_sets() == want
        assert report.planned_count == len(queries)
        from repro.exec import shm as _shm

        assert _shm.active_segments() == ()

    def test_incompatible_specs_run_as_singles(self, ds, engine):
        queries = _queries(ds, 4, seed=3)
        specs = [QuerySpec(q) for q in queries]
        specs.append(QuerySpec(queries[0], kind="skyband", k=2))
        specs.append(QuerySpec(queries[1], algorithm="BRS"))
        want = [
            engine.query(q).record_ids for q in queries
        ] + [
            engine.skyband(queries[0], k=2).record_ids,
            engine.query(queries[1], algorithm="BRS").record_ids,
        ]
        ex = QueryExecutor(engine, pool="serial", cache=None, plan=True)
        report = ex.run_batch(specs)
        assert report.record_id_sets() == want
        # TRS queries grouped; the skyband and the BRS run stayed single.
        assert report.planned == (True, True, True, True, False, False)

    def test_cache_and_planner_compose(self, ds, engine):
        queries = _queries(ds, 6, seed=4)
        batch = queries + [queries[0]]  # in-batch duplicate
        ex = QueryExecutor(engine, pool="serial", cache=True, plan=True)
        first = ex.run_batch(batch)
        assert first.dedup_hits == 1
        second = ex.run_batch(batch)
        assert second.cache_hits == len(batch)  # everything memoised
        assert second.record_id_sets() == first.record_id_sets()


class TestGroupAccounting:
    def test_member_stats_sum_to_shared_scan_stats(self, ds, engine):
        from repro.core.multiquery import SharedScanTRS

        queries = _queries(ds, 7, seed=6)
        ex = QueryExecutor(engine, pool="serial", cache=None, plan=True)
        report = ex.run_batch(queries)
        shared = SharedScanTRS(ds, backend="auto")
        mq = shared.run_batch(queries)
        merged = CostStats.merged(r.stats for r in report.results)
        assert merged.checks == mq.stats.checks
        assert merged.pruner_tests == mq.stats.pruner_tests
        assert merged.io.total == mq.stats.io.total
        assert merged.db_passes == mq.stats.db_passes
        assert merged.result_count == mq.stats.result_count

    def test_planner_emits_group_metrics(self, ds, engine):
        from repro.obs import hooks as _obs

        _obs.enable(reset_state=True)
        try:
            ex = QueryExecutor(engine, pool="serial", cache=None, plan=True)
            ex.run_batch(_queries(ds, 8, seed=9))
            from repro.obs import snapshot_to_prometheus

            text = snapshot_to_prometheus(_obs.snapshot())
            assert "repro_plan_groups_total" in text
            assert "repro_plan_group_size" in text
        finally:
            _obs.disable()


class TestPlannerUnderFaults:
    def test_group_degrades_to_singles_not_batch_abort(self, ds):
        from repro.faults import FaultInjector, FaultPlan, RetryPolicy

        plan = FaultPlan.storm(0.25)
        injector = FaultInjector(plan, seed=3)
        engine = ReverseSkylineEngine(
            ds,
            algorithm="TRS",
            log_queries=False,
            fault_injector=injector,
            retry_policy=RetryPolicy(
                max_attempts=plan.max_consecutive + 2,
                base_delay_s=0.0,
                sleep=lambda _s: None,
            ),
        )
        reference = ReverseSkylineEngine(ds, algorithm="TRS", log_queries=False)
        queries = _queries(ds, 8, seed=10)
        want = [reference.query(q).record_ids for q in queries]
        ex = QueryExecutor(engine, pool="serial", cache=None, plan=True)
        report = ex.run_batch(queries)  # must not raise
        assert report.ok
        assert report.record_id_sets() == want

    def test_chaos_equivalence_with_planner_and_shm(self):
        from repro.testing.chaos import verify_chaos_equivalence

        report = verify_chaos_equivalence(
            trials=3,
            seed=17,
            pools=("serial", "process"),
            use_plan=True,
            use_shm=True,
        )
        assert report.ok, [str(f) for f in report.failures]

    def test_executor_differential_covers_plan_modes(self):
        from repro.testing.verify import verify_executor

        report = verify_executor(
            trials=4, seed=23, pool_sizes=(2,), cache_modes=(False,)
        )
        assert report.ok, report.failures[:1]
