"""Query sampling."""

import numpy as np
import pytest

from repro.data.queries import perturbed_query, query_batch, random_query
from repro.data.synthetic import mixed_dataset, synthetic_dataset
from repro.errors import SchemaError


@pytest.fixture
def ds():
    return synthetic_dataset(60, [5, 7, 3], seed=4)


def test_random_query_in_domain(ds, rng):
    for _ in range(20):
        ds.validate_query(random_query(ds, rng))


def test_random_query_numeric_within_observed_range(rng):
    ds = mixed_dataset(40, [3], [(2.0, 9.0)], seed=5)
    column = [r[1] for r in ds.records]
    for _ in range(10):
        q = random_query(ds, rng)
        assert min(column) <= q[1] <= max(column)


def test_random_numeric_query_needs_data(rng):
    ds = mixed_dataset(0, [3], [(0.0, 1.0)], seed=5)
    with pytest.raises(SchemaError, match="empty"):
        random_query(ds, rng)


def test_perturbed_query_changes_bounded(ds, rng):
    records = set(ds.records)
    for _ in range(20):
        q = perturbed_query(ds, rng, num_changes=1)
        ds.validate_query(q)
        # At most one attribute differs from *some* record.
        diffs = min(sum(a != b for a, b in zip(q, r)) for r in records)
        assert diffs <= 1


def test_perturbed_query_empty_dataset(rng):
    ds = synthetic_dataset(0, [4], seed=1)
    with pytest.raises(SchemaError, match="empty"):
        perturbed_query(ds, rng)


def test_perturbed_num_changes_clamped(ds, rng):
    q = perturbed_query(ds, rng, num_changes=99)
    ds.validate_query(q)


def test_query_batch_reproducible(ds):
    a = query_batch(ds, 5, seed=3)
    b = query_batch(ds, 5, seed=3)
    assert a == b
    assert len(a) == 5


def test_query_batch_unperturbed(ds):
    batch = query_batch(ds, 4, seed=3, perturbed=False)
    for q in batch:
        ds.validate_query(q)
