"""Reverse-skyline algorithms: correctness against the oracles, on the
running example and randomized datasets, across memory budgets."""

import pytest

from repro.core.brs import BRS
from repro.core.naive import NaiveRS
from repro.core.registry import ALGORITHMS, get_algorithm, make_algorithm
from repro.core.srs import SRS
from repro.core.tiled import TSRS, TTRS
from repro.core.trs import TRS
from repro.data.examples import (
    RUNNING_EXAMPLE_RESULT,
    running_example,
    running_example_query,
)
from repro.data.queries import query_batch
from repro.data.synthetic import synthetic_dataset
from repro.errors import AlgorithmError, SchemaError
from repro.skyline.oracle import reverse_skyline_by_pruners
from repro.storage.disk import MemoryBudget

CATEGORICAL_ALGOS = [NaiveRS, BRS, SRS, TRS, TSRS, TTRS]


@pytest.fixture(scope="module")
def example():
    return running_example(), running_example_query()


@pytest.mark.smoke
@pytest.mark.parametrize("algo_cls", CATEGORICAL_ALGOS)
def test_running_example(example, algo_cls):
    ds, q = example
    result = algo_cls(ds, budget=MemoryBudget(2)).run(q)
    assert result.result_set == RUNNING_EXAMPLE_RESULT
    assert result.algorithm == algo_cls.name


@pytest.mark.smoke
@pytest.mark.parametrize("algo_cls", CATEGORICAL_ALGOS)
@pytest.mark.parametrize("budget_pages", [2, 3, 7])
def test_small_random_all_budgets(algo_cls, budget_pages):
    ds = synthetic_dataset(250, [6, 5, 7], seed=11)
    queries = query_batch(ds, 3, seed=5)
    expected = {q: reverse_skyline_by_pruners(ds, q) for q in queries}
    algo = algo_cls(ds, budget=MemoryBudget(budget_pages), page_bytes=64)
    for q in queries:
        assert list(algo.run(q).record_ids) == expected[q]


@pytest.mark.parametrize("algo_cls", [BRS, SRS, TRS])
def test_multibatch_medium(medium_dataset, algo_cls):
    q = query_batch(medium_dataset, 1, seed=9)[0]
    expected = reverse_skyline_by_pruners(medium_dataset, q)
    algo = algo_cls(medium_dataset, memory_fraction=0.05, page_bytes=128)
    result = algo.run(q)
    assert list(result.record_ids) == expected
    assert result.stats.phase1_batches > 1  # exercise real batching


@pytest.mark.parametrize("algo_cls", CATEGORICAL_ALGOS)
def test_query_not_in_dataset(algo_cls, small_dataset):
    # A query with values no record takes (domains are larger than data).
    q = tuple((c - 1) for c in small_dataset.schema.cardinalities())
    expected = reverse_skyline_by_pruners(small_dataset, q)
    result = algo_cls(small_dataset, budget=MemoryBudget(3), page_bytes=64).run(q)
    assert list(result.record_ids) == expected


@pytest.mark.parametrize("algo_cls", CATEGORICAL_ALGOS)
def test_empty_dataset(algo_cls):
    ds = synthetic_dataset(0, [4, 4], seed=1)
    result = algo_cls(ds, budget=MemoryBudget(2)).run((0, 0))
    assert result.record_ids == ()


@pytest.mark.parametrize("algo_cls", CATEGORICAL_ALGOS)
def test_all_duplicates(algo_cls):
    base = synthetic_dataset(1, [3, 3], seed=2)
    ds = base.with_records([base.records[0]] * 20)
    q_far = tuple((v + 1) % 3 for v in base.records[0])
    assert algo_cls(ds, budget=MemoryBudget(2), page_bytes=64).run(q_far).record_ids == ()
    q_eq = base.records[0]
    result = algo_cls(ds, budget=MemoryBudget(2), page_bytes=64).run(q_eq)
    assert result.record_ids == tuple(range(20))


@pytest.mark.parametrize("algo_cls", CATEGORICAL_ALGOS)
def test_invalid_query_rejected(algo_cls, small_dataset):
    algo = algo_cls(small_dataset, budget=MemoryBudget(2))
    with pytest.raises(SchemaError):
        algo.run((99, 0, 0))


def test_single_attribute_dataset():
    ds = synthetic_dataset(100, [9], seed=3)
    q = (4,)
    expected = reverse_skyline_by_pruners(ds, q)
    for algo_cls in CATEGORICAL_ALGOS:
        result = algo_cls(ds, budget=MemoryBudget(2), page_bytes=64).run(q)
        assert list(result.record_ids) == expected, algo_cls.name


class TestStats:
    def test_result_count_and_io_recorded(self, example):
        ds, q = example
        r = BRS(ds, budget=MemoryBudget(2)).run(q)
        assert r.stats.result_count == len(r.record_ids) == 2
        assert r.stats.io.total > 0
        assert r.stats.wall_time_s >= 0
        assert r.stats.db_passes >= 2

    def test_intermediate_superset_of_result(self, medium_dataset):
        q = query_batch(medium_dataset, 1, seed=4)[0]
        for cls in (BRS, SRS, TRS):
            r = cls(medium_dataset, memory_fraction=0.05, page_bytes=128).run(q)
            assert r.stats.intermediate_count >= r.stats.result_count

    def test_trace_checks_sum_matches_totals(self, example):
        ds, q = example
        r = SRS(ds, budget=MemoryBudget(3), page_bytes=16, trace_checks=True).run(q)
        s = r.stats
        assert sum(s.per_object_phase1.values()) == s.checks_phase1
        assert sum(s.per_object_phase2.values()) == s.checks_phase2

    def test_tracing_off_by_default(self, example):
        ds, q = example
        r = SRS(ds, budget=MemoryBudget(3), page_bytes=16).run(q)
        assert r.stats.per_object_phase1 == {}


class TestRegistry:
    def test_all_algorithms_registered(self):
        for name in ("Naive", "BRS", "SRS", "TRS", "T-SRS", "T-TRS", "NumericTRS"):
            assert name in ALGORITHMS

    def test_get_unknown(self):
        with pytest.raises(AlgorithmError, match="unknown algorithm"):
            get_algorithm("FancyRS")

    def test_make_algorithm(self, small_dataset):
        algo = make_algorithm("TRS", small_dataset, budget=MemoryBudget(4))
        assert isinstance(algo, TRS)


class TestLayouts:
    def test_srs_layout_sorted(self, small_dataset):
        algo = SRS(small_dataset, budget=MemoryBudget(2))
        values = [v for _, v in algo.layout]
        assert values == sorted(values)
        assert sorted(rid for rid, _ in algo.layout) == list(range(len(small_dataset)))

    def test_trs_layout_sorted_by_tree_order(self, small_dataset):
        algo = TRS(small_dataset, budget=MemoryBudget(2))
        order = algo.attribute_order
        keys = [tuple(v[i] for i in order) for _, v in algo.layout]
        assert keys == sorted(keys)

    def test_trs_no_presort_keeps_native_order(self, small_dataset):
        algo = TRS(small_dataset, budget=MemoryBudget(2), presort=False)
        assert [rid for rid, _ in algo.layout] == list(range(len(small_dataset)))

    def test_use_layout_rejects_wrong_length(self, small_dataset):
        algo = SRS(small_dataset, budget=MemoryBudget(2))
        with pytest.raises(AlgorithmError, match="entries"):
            algo.use_layout([(0, small_dataset[0])])

    def test_use_layout_applied(self, small_dataset):
        algo = BRS(small_dataset, budget=MemoryBudget(2))
        reversed_entries = list(enumerate(small_dataset.records))[::-1]
        algo.use_layout(reversed_entries)
        assert algo.layout[0][0] == len(small_dataset) - 1

    def test_results_in_original_ids_despite_layout(self, small_dataset):
        q = query_batch(small_dataset, 1, seed=7)[0]
        expected = reverse_skyline_by_pruners(small_dataset, q)
        srs = SRS(small_dataset, budget=MemoryBudget(3), page_bytes=64)
        assert list(srs.run(q).record_ids) == expected


class TestAblations:
    def test_trs_variants_still_correct(self, medium_dataset):
        q = query_batch(medium_dataset, 1, seed=12)[0]
        expected = reverse_skyline_by_pruners(medium_dataset, q)
        for kwargs in ({"presort": False}, {"order_children": False}):
            algo = TRS(
                medium_dataset, memory_fraction=0.05, page_bytes=128, **kwargs
            )
            assert list(algo.run(q).record_ids) == expected

    def test_budget_too_small_rejected(self, small_dataset):
        with pytest.raises(AlgorithmError):
            BRS(small_dataset, budget=MemoryBudget(1))
