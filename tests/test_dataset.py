"""Dataset: construction, validation, projection, density."""

import numpy as np
import pytest

from repro.data.dataset import Dataset, density
from repro.data.schema import Attribute, NUMERIC, Schema
from repro.data.synthetic import mixed_dataset, synthetic_dataset
from repro.dissim.generators import random_dissimilarity
from repro.dissim.numeric import AbsoluteDifference
from repro.dissim.space import DissimilaritySpace
from repro.errors import SchemaError


def make_dataset(records=((0, 1), (1, 0)), cards=(2, 2)):
    rng = np.random.default_rng(0)
    schema = Schema.categorical(list(cards))
    space = DissimilaritySpace([random_dissimilarity(c, rng) for c in cards])
    return Dataset(schema, records, space)


class TestConstruction:
    def test_basic(self):
        ds = make_dataset()
        assert len(ds) == 2
        assert ds[0] == (0, 1)
        assert list(iter(ds)) == [(0, 1), (1, 0)]

    def test_record_validation(self):
        with pytest.raises(SchemaError):
            make_dataset(records=[(0, 5)])

    def test_arity_mismatch_space_vs_schema(self, rng):
        schema = Schema.categorical([2, 2])
        space = DissimilaritySpace([random_dissimilarity(2, rng)])
        with pytest.raises(SchemaError, match="attributes"):
            Dataset(schema, [], space)

    def test_cardinality_mismatch(self, rng):
        schema = Schema.categorical([2, 2])
        space = DissimilaritySpace(
            [random_dissimilarity(2, rng), random_dissimilarity(9, rng)]
        )
        with pytest.raises(SchemaError, match="cardinality"):
            Dataset(schema, [], space)

    def test_numeric_attr_needs_numeric_dissim(self, rng):
        schema = Schema([Attribute("n", kind=NUMERIC)])
        space = DissimilaritySpace([random_dissimilarity(3, rng)])
        with pytest.raises(SchemaError, match="categorical"):
            Dataset(schema, [], space)

    def test_empty_dataset_ok(self):
        ds = make_dataset(records=[])
        assert len(ds) == 0


class TestDensity:
    def test_density_function(self):
        assert density(10, [10, 10]) == 0.1
        with pytest.raises(SchemaError):
            density(1, [0])

    def test_dataset_density(self):
        ds = make_dataset(records=[(0, 0), (1, 1)], cards=(2, 2))
        assert ds.density() == 0.5

    def test_density_undefined_for_mixed(self):
        ds = mixed_dataset(10, [3], [(0.0, 1.0)], seed=1)
        with pytest.raises(SchemaError, match="categorical"):
            ds.density()


class TestQueriesAndViews:
    def test_validate_query(self):
        ds = make_dataset()
        assert ds.validate_query([1, 1]) == (1, 1)
        with pytest.raises(SchemaError):
            ds.validate_query((2, 0))

    def test_with_records_shares_space(self):
        ds = make_dataset()
        flipped = ds.with_records([(1, 0), (0, 1)])
        assert flipped.space is ds.space
        assert flipped[0] == (1, 0)
        assert len(ds) == 2  # original untouched

    def test_project(self):
        ds = synthetic_dataset(50, [4, 5, 6], seed=2)
        p = ds.project([2, 0])
        assert p.num_attributes == 2
        assert p[0] == (ds[0][2], ds[0][0])
        assert p.schema.cardinalities() == [6, 4]

    def test_describe_mentions_size(self):
        ds = make_dataset()
        text = ds.describe()
        assert "n=2" in text and "m=2" in text
