"""Edge cases and failure injection across the stack."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.brs import BRS
from repro.core.naive import NaiveRS
from repro.core.srs import SRS
from repro.core.trs import TRS
from repro.data.dataset import Dataset
from repro.data.schema import Schema
from repro.data.synthetic import synthetic_dataset
from repro.dissim.generators import random_matrix
from repro.dissim.matrix import MatrixDissimilarity
from repro.dissim.space import DissimilaritySpace
from repro.errors import AlgorithmError
from repro.skyline.oracle import reverse_skyline_by_pruners
from repro.storage.disk import MemoryBudget

ALGOS = [NaiveRS, BRS, SRS, TRS]


class TestDegenerateDatasets:
    @pytest.mark.parametrize("cls", ALGOS)
    def test_single_record(self, cls):
        ds = synthetic_dataset(1, [4, 4], seed=1)
        q = (0, 0)
        result = cls(ds, budget=MemoryBudget(2), page_bytes=64).run(q)
        # A lone object has no possible pruner: always in the result.
        assert result.record_ids == (0,)

    @pytest.mark.parametrize("cls", ALGOS)
    def test_cardinality_one_attributes(self, cls):
        # Every object (and the query) takes the only value: all distances
        # are zero, nothing can dominate strictly, everything survives.
        ds = synthetic_dataset(30, [1, 1], seed=2)
        result = cls(ds, budget=MemoryBudget(2), page_bytes=64).run((0, 0))
        assert result.record_ids == tuple(range(30))

    @pytest.mark.parametrize("cls", ALGOS)
    def test_budget_larger_than_dataset(self, cls):
        ds = synthetic_dataset(50, [5, 5], seed=3)
        q = (1, 1)
        big = cls(ds, budget=MemoryBudget(500), page_bytes=64).run(q)
        small = cls(ds, budget=MemoryBudget(2), page_bytes=64).run(q)
        assert big.record_ids == small.record_ids
        if cls is not NaiveRS:  # Naive has no batch structure
            assert big.stats.phase1_batches == 1

    @pytest.mark.parametrize("cls", ALGOS)
    def test_one_record_per_page(self, cls):
        ds = synthetic_dataset(40, [5, 5, 5], seed=4)
        q = (0, 1, 2)
        expected = reverse_skyline_by_pruners(ds, q)
        result = cls(ds, budget=MemoryBudget(3), page_bytes=16).run(q)
        assert list(result.record_ids) == expected


class TestAsymmetricDissimilarities:
    """Non-metric includes non-symmetric: d(a,b) != d(b,a). Every distance
    in the stack must be taken in the documented direction (reference
    value first)."""

    def make(self, seed, n=120):
        rng = np.random.default_rng(seed)
        cards = [5, 4, 3]
        space = DissimilaritySpace(
            [
                MatrixDissimilarity(random_matrix(c, rng, symmetric=False))
                for c in cards
            ]
        )
        records = [tuple(int(rng.integers(0, c)) for c in cards) for _ in range(n)]
        ds = Dataset(Schema.categorical(cards), records, space, validate=False)
        q = tuple(int(rng.integers(0, c)) for c in cards)
        return ds, q

    @pytest.mark.parametrize("cls", ALGOS)
    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_algorithms_agree_with_oracle(self, cls, seed):
        ds, q = self.make(seed)
        expected = reverse_skyline_by_pruners(ds, q)
        result = cls(ds, budget=MemoryBudget(3), page_bytes=64).run(q)
        assert list(result.record_ids) == expected, cls.name

    def test_asymmetry_actually_matters(self):
        # Sanity: with asymmetric matrices, swapping argument order changes
        # the distances, so a direction bug would be caught above.
        ds, _ = self.make(11)
        d = ds.space[0]
        assert any(
            d(a, b) != d(b, a) for a in range(5) for b in range(5) if a != b
        )


class TestNonZeroDiagonalRejected:
    def test_algorithms_reject_nonzero_self_dissimilarity(self):
        rng = np.random.default_rng(5)
        arr = random_matrix(4, rng)
        arr[2, 2] = 0.7
        space = DissimilaritySpace(
            [MatrixDissimilarity(arr, require_zero_diagonal=False)]
        )
        ds = Dataset(Schema.categorical([4]), [(0,), (2,)], space)
        algo = TRS(ds, budget=MemoryBudget(2), page_bytes=64)
        with pytest.raises(AlgorithmError, match="self-dissimilarity"):
            algo.run((1,))


class TestZeroDistanceQueries:
    @pytest.mark.parametrize("cls", ALGOS)
    def test_query_equal_to_some_record(self, cls):
        ds = synthetic_dataset(100, [6, 6], seed=6)
        q = ds.records[10]
        expected = reverse_skyline_by_pruners(ds, q)
        result = cls(ds, budget=MemoryBudget(3), page_bytes=64).run(q)
        assert list(result.record_ids) == expected
        # Records equal to the query can never be pruned (all query
        # distances zero -> no strict improvement possible).
        for rid, r in enumerate(ds.records):
            if r == q:
                assert rid in result.record_ids


@given(st.integers(0, 2**16))
@settings(max_examples=20, deadline=None)
def test_trace_mode_never_changes_results(seed):
    rng = np.random.default_rng(seed)
    ds = synthetic_dataset(int(rng.integers(5, 80)), [5, 4], seed=seed)
    q = (int(rng.integers(0, 5)), int(rng.integers(0, 4)))
    plain = TRS(ds, budget=MemoryBudget(2), page_bytes=64).run(q)
    traced = TRS(ds, budget=MemoryBudget(2), page_bytes=64, trace_checks=True).run(q)
    assert plain.record_ids == traced.record_ids
    assert plain.stats.checks == traced.stats.checks
