"""Label-valued dataset construction."""

import numpy as np
import pytest

from repro.core.trs import TRS
from repro.data.convert import dataset_from_rows, query_from_labels
from repro.dissim.matrix import MatrixDissimilarity
from repro.errors import SchemaError
from repro.skyline.oracle import reverse_skyline_by_pruners
from repro.storage.disk import MemoryBudget

ROWS = [
    {"os": "RHEL", "db": "DB2"},
    {"os": "SuSE", "db": "Oracle"},
    {"os": "RHEL", "db": "Oracle"},
    {"os": "Windows", "db": "DB2"},
]


class TestDatasetFromRows:
    def test_basic_construction(self):
        ds = dataset_from_rows(ROWS, name="servers")
        assert len(ds) == 4
        assert ds.schema.names() == ["db", "os"]  # sorted by default
        assert ds.name == "servers"
        # Labels round-trip through the schema.
        os_attr = ds.schema[ds.schema.index_of("os")]
        assert set(os_attr.labels) == {"RHEL", "SuSE", "Windows"}

    def test_explicit_attribute_order(self):
        ds = dataset_from_rows(ROWS, attribute_order=["os", "db"])
        assert ds.schema.names() == ["os", "db"]
        assert ds[0] == (ds.schema[0].labels.index("RHEL"),
                         ds.schema[1].labels.index("DB2"))

    def test_expert_matrix_defines_domain(self):
        fuel = MatrixDissimilarity.from_pairs(
            ["petrol", "diesel", "electric"],
            {("petrol", "diesel"): 0.2, ("petrol", "electric"): 0.9,
             ("diesel", "electric"): 0.95},
        )
        rows = [{"fuel": "petrol"}, {"fuel": "diesel"}]
        ds = dataset_from_rows(rows, {"fuel": fuel})
        # "electric" is legal (in the matrix) though unseen in the data.
        q = query_from_labels(ds, {"fuel": "electric"})
        assert q == (fuel.value_id("electric"),)

    def test_deterministic_random_dissims(self):
        a = dataset_from_rows(ROWS, rng_seed=3)
        b = dataset_from_rows(ROWS, rng_seed=3)
        assert (a.space[0].matrix == b.space[0].matrix).all()

    def test_missing_attribute_rejected(self):
        with pytest.raises(SchemaError, match="missing attributes"):
            dataset_from_rows([{"os": "RHEL"}], attribute_order=["os", "db"])

    def test_value_outside_matrix_domain(self):
        fuel = MatrixDissimilarity.from_pairs(
            ["petrol", "diesel"], {("petrol", "diesel"): 0.2}
        )
        with pytest.raises(SchemaError, match="outside the domain"):
            dataset_from_rows([{"fuel": "coal"}], {"fuel": fuel})

    def test_unlabeled_matrix_rejected(self):
        bare = MatrixDissimilarity(np.array([[0.0, 1.0], [1.0, 0.0]]))
        with pytest.raises(SchemaError, match="labels"):
            dataset_from_rows([{"x": "a"}], {"x": bare})

    def test_empty_rows(self):
        with pytest.raises(SchemaError, match="at least one row"):
            dataset_from_rows([])


class TestQueryFromLabels:
    def test_roundtrip_and_query(self):
        ds = dataset_from_rows(ROWS)
        q = query_from_labels(ds, {"os": "Windows", "db": "Oracle"})
        expected = reverse_skyline_by_pruners(ds, q)
        result = TRS(ds, budget=MemoryBudget(2), page_bytes=64).run(q)
        assert list(result.record_ids) == expected

    def test_missing_attribute(self):
        ds = dataset_from_rows(ROWS)
        with pytest.raises(SchemaError, match="missing attribute"):
            query_from_labels(ds, {"os": "RHEL"})

    def test_unknown_label(self):
        ds = dataset_from_rows(ROWS)
        with pytest.raises(SchemaError, match="outside attribute"):
            query_from_labels(ds, {"os": "BeOS", "db": "DB2"})
