"""Chaos-equivalence: batches under injected faults still return the
fault-free answers (or structured per-query errors), on every pool kind.

The full ≥50-trial-per-pool run is the CI ``faults`` job
(``verify_chaos_equivalence(trials=50, ...)``); here each pool gets a
smaller smoke-sized slice so the suite stays fast, plus direct tests of
the degraded paths (exhaustion, crash-only storms, bad specs).
"""

import pytest

from repro.data.synthetic import synthetic_dataset
from repro.engine import ReverseSkylineEngine
from repro.faults import FaultInjector, FaultPlan, RetryPolicy
from repro.testing import verify_chaos_equivalence


def no_sleep(_):
    pass


FAST_POLICY = RetryPolicy(max_attempts=4, base_delay_s=0.0, sleep=no_sleep)


@pytest.fixture(scope="module")
def ds():
    return synthetic_dataset(200, [6, 5, 4], seed=31)


def chaos_engine(ds, plan, seed=0, policy=FAST_POLICY):
    return ReverseSkylineEngine(
        ds,
        memory_fraction=0.2,
        page_bytes=128,
        log_queries=False,
        fault_injector=FaultInjector(plan, seed=seed),
        retry_policy=policy,
    )


class TestChaosHarness:
    @pytest.mark.smoke
    def test_serial_pool_equivalence(self):
        report = verify_chaos_equivalence(trials=8, seed=100, pools=("serial",))
        assert report.ok, str(report.failures[0])
        assert report.runs == 8
        assert report.faults_injected > 0  # the storm actually stormed
        assert report.exhausted_queries == 0  # serial recovery is guaranteed

    @pytest.mark.smoke
    def test_thread_pool_equivalence(self):
        report = verify_chaos_equivalence(trials=8, seed=200, pools=("thread",))
        assert report.ok, str(report.failures[0])
        assert report.runs == 8

    @pytest.mark.smoke
    def test_process_pool_equivalence(self):
        report = verify_chaos_equivalence(trials=3, seed=300, pools=("process",))
        if report.skipped_pools:  # sandboxed CI: no process primitives
            pytest.skip(report.skipped_pools[0])
        assert report.ok, str(report.failures[0])
        assert report.runs == 3

    def test_harness_validates_inputs(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            verify_chaos_equivalence(trials=0)
        with pytest.raises(ExperimentError):
            verify_chaos_equivalence(batch_size=1)


class TestDegradedPaths:
    def test_exhausted_query_becomes_structured_error(self, ds):
        # Streaks longer than the retry budget force the exhausted path.
        plan = FaultPlan(read_error_rate=1.0, max_consecutive=10)
        engine = chaos_engine(
            ds, plan, policy=RetryPolicy(max_attempts=2, sleep=no_sleep)
        )
        queries = [(1, 2, 3), (0, 0, 0)]
        report = engine.query_many(queries, pool="serial", cache=False)
        assert not report.ok and report.failed == 2
        for i, error in report.failures():
            assert error.error_type == "RetryExhaustedError"
            assert error.query == queries[i]
            assert error.file is not None and error.page_id is not None
            assert "page" in error.describe()

    def test_one_bad_query_never_aborts_the_batch(self, ds):
        # Crash-only storm with an uncapped streak: some queries die, the
        # batch and the healthy queries survive.
        plan = FaultPlan(crash_rate=1.0, max_consecutive=10)
        engine = chaos_engine(
            ds, plan, policy=RetryPolicy(max_attempts=2, sleep=no_sleep)
        )
        report = engine.query_many([(1, 2, 3)], pool="serial", cache=False)
        assert report.failed == 1 and len(report) == 1
        assert report.results[0] is None
        assert report.errors[0].error_type == "RetryExhaustedError"
        assert "crash" in report.errors[0].message

    def test_crash_recovery_reproduces_fault_free_answers(self, ds):
        plan = FaultPlan(crash_rate=0.6, timeout_rate=0.3)  # max_consecutive=2
        clean = ReverseSkylineEngine(ds, page_bytes=128, log_queries=False)
        queries = [(1, 2, 3), (5, 4, 3), (0, 0, 0)]
        expected = [tuple(clean.query(q).record_ids) for q in queries]
        engine = chaos_engine(ds, plan, seed=4)
        report = engine.query_many(queries, pool="thread", workers=2, cache=False)
        assert report.ok
        assert [tuple(r.record_ids) for r in report.results] == expected
        assert engine.fault_injector.stats().crashes > 0

    def test_bad_spec_fails_per_query_not_per_batch(self, ds):
        from repro.exec import QuerySpec

        engine = ReverseSkylineEngine(ds, page_bytes=128, log_queries=False)
        good = QuerySpec((1, 2, 3))
        bad = QuerySpec((1,), kind="subset", attributes=("NOPE",))
        report = engine.query_many([good, bad, good], pool="serial")
        assert report.failed == 1
        assert report.errors[1].error_type == "SchemaError"
        assert report.results[0] is not None and report.results[2] is not None

    def test_failed_queries_are_logged_with_error(self, ds):
        plan = FaultPlan(read_error_rate=1.0, max_consecutive=10)
        engine = ReverseSkylineEngine(
            ds,
            page_bytes=128,
            fault_injector=FaultInjector(plan, seed=0),
            retry_policy=RetryPolicy(max_attempts=2, sleep=no_sleep),
        )
        report = engine.query_many([(1, 2, 3)], pool="serial", cache=False)
        assert report.failed == 1
        entry = engine.log[-1]
        assert entry.error is not None and "RetryExhaustedError" in entry.error
        assert entry.checks == 0 and entry.cached is False

    def test_failed_answers_are_never_cached(self, ds):
        plan = FaultPlan(read_error_rate=1.0, max_consecutive=10)
        injector = FaultInjector(plan, seed=0)
        engine = ReverseSkylineEngine(
            ds,
            page_bytes=128,
            log_queries=False,
            fault_injector=injector,
            retry_policy=RetryPolicy(max_attempts=2, sleep=no_sleep),
        )
        first = engine.query_many([(1, 2, 3)], pool="serial")
        assert first.failed == 1
        assert len(engine.result_cache()) == 0  # no poisoned entry
        second = engine.query_many([(1, 2, 3)], pool="serial")
        assert second.failed == 1 and second.cache_hits == 0
