"""Streaming reverse-skyline maintenance."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.synthetic import mixed_dataset, synthetic_dataset
from repro.errors import AlgorithmError
from repro.streaming.window import StreamingReverseSkyline


def make_stream(seed=61, cards=(5, 4, 3)):
    ds = synthetic_dataset(0, list(cards), seed=seed)
    rng = np.random.default_rng(seed)
    query = tuple(int(rng.integers(0, c)) for c in cards)
    return ds, query, rng


class TestBasics:
    def test_insert_and_result(self):
        ds, query, rng = make_stream()
        win = StreamingReverseSkyline(ds.schema, ds.space, query)
        ids = win.extend(
            tuple(int(rng.integers(0, c)) for c in (5, 4, 3)) for _ in range(50)
        )
        assert len(win) == 50
        assert win.result() == win.recompute_naive()
        assert all(i in win for i in ids)

    def test_expire_restores_members(self):
        ds, query, rng = make_stream()
        win = StreamingReverseSkyline(ds.schema, ds.space, query)
        for _ in range(60):
            win.insert(tuple(int(rng.integers(0, c)) for c in (5, 4, 3)))
        while len(win) > 10:
            win.expire_oldest()
            assert win.result() == win.recompute_naive()

    def test_capacity_slides(self):
        ds, query, rng = make_stream()
        win = StreamingReverseSkyline(ds.schema, ds.space, query, capacity=20)
        first = win.insert((0, 0, 0))
        for _ in range(25):
            win.insert(tuple(int(rng.integers(0, c)) for c in (5, 4, 3)))
        assert len(win) == 20
        assert first not in win
        assert win.result() == win.recompute_naive()

    def test_duplicates_prune_each_other(self):
        ds, query, _ = make_stream()
        win = StreamingReverseSkyline(ds.schema, ds.space, query)
        other = tuple((v + 1) % c for v, c in zip(query, (5, 4, 3)))
        a = win.insert(other)
        assert win.result() == [a]
        b = win.insert(other)
        # Twins at nonzero query distance prune each other.
        assert win.result() == []
        win.expire_oldest()
        assert win.result() == [b]

    def test_query_valued_objects_never_pruned(self):
        ds, query, rng = make_stream()
        win = StreamingReverseSkyline(ds.schema, ds.space, query)
        qid = win.insert(query)
        for _ in range(30):
            win.insert(tuple(int(rng.integers(0, c)) for c in (5, 4, 3)))
        assert qid in set(win.result())

    def test_pruner_count_accessor(self):
        ds, query, _ = make_stream()
        win = StreamingReverseSkyline(ds.schema, ds.space, query)
        oid = win.insert((0, 0, 0))
        assert win.pruner_count(oid) == 0
        with pytest.raises(AlgorithmError, match="not in the window"):
            win.pruner_count(999)


class TestValidation:
    def test_empty_expire(self):
        ds, query, _ = make_stream()
        win = StreamingReverseSkyline(ds.schema, ds.space, query)
        with pytest.raises(AlgorithmError, match="empty"):
            win.expire_oldest()

    def test_bad_capacity(self):
        ds, query, _ = make_stream()
        with pytest.raises(AlgorithmError):
            StreamingReverseSkyline(ds.schema, ds.space, query, capacity=0)

    def test_numeric_schema_rejected(self):
        ds = mixed_dataset(5, [3], [(0.0, 1.0)], seed=1)
        with pytest.raises(AlgorithmError, match="categorical"):
            StreamingReverseSkyline(ds.schema, ds.space, (0, 0.5))

    def test_invalid_record_rejected(self):
        ds, query, _ = make_stream()
        win = StreamingReverseSkyline(ds.schema, ds.space, query)
        with pytest.raises(Exception):
            win.insert((99, 0, 0))


@given(
    st.lists(
        st.one_of(
            st.tuples(st.integers(0, 3), st.integers(0, 2)),  # insert
            st.just("expire"),
        ),
        max_size=80,
    ),
    st.integers(0, 2**16),
)
@settings(max_examples=40, deadline=None)
def test_random_operation_sequences_match_naive(ops, seed):
    """After ANY insert/expire sequence, the incremental result equals a
    from-scratch recomputation."""
    ds = synthetic_dataset(0, [4, 3], seed=seed)
    rng = np.random.default_rng(seed)
    query = (int(rng.integers(0, 4)), int(rng.integers(0, 3)))
    win = StreamingReverseSkyline(ds.schema, ds.space, query)
    for op in ops:
        if op == "expire":
            if len(win):
                win.expire_oldest()
        else:
            win.insert(op)
    assert win.result() == win.recompute_naive()
