"""Tests for the process-wide plan cache (repro.kernels.plancache).

Covers the LRU/byte-bound mechanics in isolation plus the integration
contract that matters to the planner: two independent ``VectorTRS``
instances over the same (dataset, layout) share one build.
"""

import numpy as np
import pytest

from repro.data.synthetic import synthetic_dataset
from repro.kernels.plancache import (
    PlanCache,
    PlanKey,
    artifact_nbytes,
    configure,
    plan_cache,
    plan_fingerprint,
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    """Isolate every test from the process-wide cache state."""
    configure(256 * 1024 * 1024)
    yield
    configure(256 * 1024 * 1024)


def _key(i: int) -> PlanKey:
    return PlanKey("phase1", f"fp{i}", (4, 4096))


class TestPlanCacheMechanics:
    @pytest.mark.smoke
    def test_hit_miss_and_lru_eviction(self):
        cache = PlanCache(capacity_bytes=4096)
        a = np.zeros(128, dtype=np.int64)  # ~1 KiB + overhead
        assert cache.get(_key(0)) is None  # miss
        cache.put(_key(0), a)
        assert cache.get(_key(0)) is a  # hit
        # Fill past capacity: the least recently used entry must go.
        cache.put(_key(1), np.zeros(128, dtype=np.int64))
        cache.put(_key(2), np.zeros(128, dtype=np.int64))
        cache.get(_key(0))  # refresh key 0 → key 1 is now LRU
        cache.put(_key(3), np.zeros(128, dtype=np.int64))
        cache.put(_key(4), np.zeros(128, dtype=np.int64))
        s = cache.stats()
        assert s.evictions >= 1
        assert s.bytes <= cache.capacity_bytes
        assert cache.get(_key(0)) is not None  # refreshed survivor
        assert cache.get(_key(1)) is None  # evicted
        assert s.hits >= 2 and s.misses >= 1

    def test_oversize_artifact_skipped_not_cached(self):
        cache = PlanCache(capacity_bytes=512)
        cache.put(_key(0), np.zeros(4096, dtype=np.int64))
        assert cache.get(_key(0)) is None
        assert cache.stats().oversize_skips == 1
        assert cache.stats().entries == 0

    def test_put_same_key_replaces_without_leaking_bytes(self):
        cache = PlanCache(capacity_bytes=1 << 20)
        cache.put(_key(0), np.zeros(64, dtype=np.int64))
        before = cache.stats().bytes
        cache.put(_key(0), np.zeros(64, dtype=np.int64))
        assert cache.stats().bytes == before
        assert cache.stats().entries == 1

    def test_get_or_build_builds_once(self):
        cache = PlanCache()
        calls = []

        def build():
            calls.append(1)
            return np.arange(8)

        first = cache.get_or_build(_key(0), build)
        second = cache.get_or_build(_key(0), build)
        assert first is second and len(calls) == 1

    def test_configure_replaces_process_cache(self):
        c1 = plan_cache()
        c1.put(_key(0), np.arange(4))
        c2 = configure(1 << 20)
        assert plan_cache() is c2 and c2 is not c1
        assert c2.get(_key(0)) is None

    def test_artifact_nbytes_counts_nested_arrays_once(self):
        arr = np.zeros(1000, dtype=np.int64)  # 8000 payload bytes
        size = artifact_nbytes([arr, (arr, {"x": arr})])
        assert 8000 <= size < 16000  # shared array counted once


class TestPlanFingerprint:
    def test_dissimilarities_change_the_fingerprint(self):
        # Same records, different non-metric space → different plans.
        ds = synthetic_dataset(40, [4, 4], seed=3)
        layout = list(enumerate(ds.records))
        fp1 = plan_fingerprint(ds, layout)
        mat = np.array(ds.space.dissims[0].matrix, dtype=float)
        mat[0, 1] += 1.0
        mat[1, 0] += 1.0
        from repro.data.dataset import Dataset
        from repro.dissim.matrix import MatrixDissimilarity
        from repro.dissim.space import DissimilaritySpace

        other = Dataset(
            ds.schema,
            list(ds.records),
            DissimilaritySpace(
                [MatrixDissimilarity(mat)] + list(ds.space.dissims[1:])
            ),
            name=ds.name,
        )
        assert plan_fingerprint(other, layout) != fp1

    def test_layout_order_changes_the_fingerprint(self):
        ds = synthetic_dataset(40, [4, 4], seed=3)
        layout = list(enumerate(ds.records))
        assert plan_fingerprint(ds, layout) != plan_fingerprint(
            ds, list(reversed(layout))
        )


class TestPlanCacheIntegration:
    def test_two_instances_share_one_phase1_build(self):
        from repro.core.vector_trs import VectorTRS
        from repro.storage.disk import DiskSimulator

        ds = synthetic_dataset(150, [5, 5, 5], seed=11)

        def run(q):
            algo = VectorTRS(ds)
            return algo.run(q).record_ids

        q = tuple(0 for _ in range(3))
        before = plan_cache().stats()
        first = run(q)
        mid = plan_cache().stats()
        assert mid.misses > before.misses  # cold build populated the cache
        second = run(q)
        after = plan_cache().stats()
        assert second == first
        assert after.hits > mid.hits  # warm instance imported the plan
        assert after.misses == mid.misses  # ... without rebuilding anything
