"""Domination predicate, dynamic skyline operators, RS oracles."""

import pytest

from repro.data.examples import running_example, running_example_query
from repro.data.synthetic import synthetic_dataset
from repro.skyline.domination import dominates, dominates_counted, is_pruner
from repro.skyline.dynamic import bnl_skyline, sorted_skyline
from repro.skyline.oracle import (
    reverse_skyline_by_definition,
    reverse_skyline_by_pruners,
)


@pytest.fixture(scope="module")
def example():
    return running_example(), running_example_query()


class TestDomination:
    def test_paper_example_o1_prunes_o2(self, example):
        ds, q = example
        # Section 4: O1 prunes O2 (closer on Processor, equal elsewhere).
        assert dominates(ds.space, ds[0], q, ds[1])

    def test_irreflexive(self, example):
        ds, q = example
        for x in ds.records:
            assert not dominates(ds.space, x, x, x)

    def test_equal_distance_objects_do_not_dominate(self, example):
        ds, q = example
        # O1 and O4 are duplicates: neither dominates the other w.r.t. anything.
        assert not dominates(ds.space, ds[0], ds[3], ds[5])
        assert not dominates(ds.space, ds[3], ds[0], ds[5])

    def test_duplicate_dominates_query(self, example):
        ds, q = example
        # O4 (duplicate of O1) dominates Q w.r.t. O1 (Table 1: O1 pruned by O4).
        assert dominates(ds.space, ds[3], q, ds[0])

    def test_counted_early_abort(self, example):
        ds, q = example
        # O2 vs O6: fails on the first attribute -> exactly 1 check.
        ok, checks = dominates_counted(ds.space, ds[1], q, ds[5])
        assert not ok and checks == 1

    def test_counted_full_pass(self, example):
        ds, q = example
        ok, checks = dominates_counted(ds.space, ds[0], q, ds[1])
        assert ok and checks == 3

    def test_is_pruner_alias(self, example):
        ds, q = example
        assert is_pruner(ds.space, ds[0], ds[1], q) == dominates(ds.space, ds[0], q, ds[1])


class TestDynamicSkyline:
    def test_bnl_vs_sorted_agree(self):
        ds = synthetic_dataset(120, [5, 6, 4], seed=8)
        for ref in ds.records[:10]:
            assert bnl_skyline(ds.space, ds.records, ref) == sorted_skyline(
                ds.space, ds.records, ref
            )

    def test_skyline_members_not_dominated(self):
        ds = synthetic_dataset(80, [5, 5], seed=9)
        ref = ds.records[0]
        sky = set(bnl_skyline(ds.space, ds.records, ref))
        for s in sky:
            for j, z in enumerate(ds.records):
                if j != s:
                    assert not dominates(ds.space, z, ds.records[s], ref)

    def test_non_members_are_dominated(self):
        ds = synthetic_dataset(80, [5, 5], seed=9)
        ref = ds.records[0]
        sky = set(bnl_skyline(ds.space, ds.records, ref))
        for j, y in enumerate(ds.records):
            if j not in sky:
                assert any(
                    dominates(ds.space, z, y, ref)
                    for k, z in enumerate(ds.records)
                    if k != j
                )

    def test_empty_input(self):
        ds = synthetic_dataset(5, [3, 3], seed=1)
        assert bnl_skyline(ds.space, [], ds.records[0]) == []
        assert sorted_skyline(ds.space, [], ds.records[0]) == []

    def test_single_object(self):
        ds = synthetic_dataset(5, [3, 3], seed=1)
        assert bnl_skyline(ds.space, ds.records[:1], ds.records[1]) == [0]


class TestOracles:
    def test_running_example(self, example):
        ds, q = example
        assert reverse_skyline_by_definition(ds, q) == [2, 5]
        assert reverse_skyline_by_pruners(ds, q) == [2, 5]

    def test_oracles_agree_on_random_data(self):
        for seed in (1, 2, 3):
            ds = synthetic_dataset(60, [4, 5, 3], seed=seed)
            q = ds.records[0]
            assert reverse_skyline_by_definition(ds, q) == reverse_skyline_by_pruners(
                ds, q
            )

    def test_query_identical_to_all_duplicates(self):
        # A dataset of pure duplicates: with the query elsewhere, each copy
        # is pruned by its twin; with the query equal to them, none is.
        ds = synthetic_dataset(1, [3, 3], seed=1)
        dup = ds.with_records([ds.records[0]] * 4)
        q_equal = dup.records[0]
        assert reverse_skyline_by_pruners(dup, q_equal) == [0, 1, 2, 3]

    def test_empty_dataset(self):
        ds = synthetic_dataset(0, [3, 3], seed=1)
        assert reverse_skyline_by_pruners(ds, (0, 0)) == []
        assert reverse_skyline_by_definition(ds, (0, 0)) == []
