"""The repro.index candidate-generation subsystem.

Unit tests pin the index artifact (determinism, transport, plan-cache
reuse, backend agreement) and the ITRS contracts; the hypothesis
properties pin the two soundness claims the whole design rests on:

- **exact superset**: on arbitrary non-metric tables, the value rule's
  candidate set contains every true pruner of every object — which is
  why exact-mode results are bit-identical to the oracle's;
- **monotone recall**: candidate sets are nested non-decreasing in
  ``recall_target`` (quantile slacks are monotone), and the approximate
  result never loses a member of the exact reverse skyline.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.indexed import IndexedRSResult, IndexedTRS
from repro.core.registry import make_algorithm
from repro.data.dataset import Dataset
from repro.data.schema import Schema
from repro.data.synthetic import synthetic_dataset
from repro.dissim.generators import (
    nonmetric_dissimilarity,
    random_dissimilarity,
)
from repro.dissim.space import DissimilaritySpace
from repro.errors import AlgorithmError
from repro.index import IndexParams, build_index, export_index, import_index
from repro.index.candidates import scalar_candidates, vector_candidates
from repro.skyline.oracle import reverse_skyline_by_pruners


# --- strategies -------------------------------------------------------------

@st.composite
def indexed_case(draw, max_records=40, max_attrs=3, max_card=5):
    """A small fully-categorical dataset with a deliberately non-metric
    dissimilarity space, plus a query."""
    m = draw(st.integers(1, max_attrs))
    cards = [draw(st.integers(3, max_card)) for _ in range(m)]
    seed = draw(st.integers(0, 2**16))
    n = draw(st.integers(0, max_records))
    planted = draw(st.booleans())
    rng = np.random.default_rng(seed)
    schema = Schema.categorical(cards)
    factory = nonmetric_dissimilarity if planted else random_dissimilarity
    space = DissimilaritySpace([factory(c, rng) for c in cards])
    records = [
        tuple(int(rng.integers(0, c)) for c in cards) for _ in range(n)
    ]
    ds = Dataset(schema, records, space, validate=False)
    query = tuple(int(rng.integers(0, c)) for c in cards)
    return ds, query


def _tables(ds):
    return [np.asarray(t, dtype=np.float64) for t in ds.space.tables()]


def _true_pruners(tables, values, x_id, thresholds):
    """Brute-force pruner set of object ``x_id``: every other record
    within all thresholds and strictly inside at least one."""
    pruners = set()
    for y_id in range(len(values)):
        if y_id == x_id:
            continue
        d = [
            tables[i][values[x_id, i], values[y_id, i]]
            for i in range(len(thresholds))
        ]
        if all(di <= ti for di, ti in zip(d, thresholds)) and any(
            di < ti for di, ti in zip(d, thresholds)
        ):
            pruners.add(y_id)
    return pruners


def _candidate_sets(ds, query, index, slacks):
    """Per-object candidate sets from the scalar traversal."""
    tables = _tables(ds)
    m = ds.num_attributes
    out = []
    for x in ds.records:
        thresholds = [tables[i][x[i], query[i]] for i in range(m)]
        cands, _, _ = scalar_candidates(
            index, tables, tuple(x), thresholds, sum(thresholds), slacks, {}
        )
        out.append(set(cands))
    return out


# --- hypothesis: the exact superset property --------------------------------

@given(indexed_case())
@settings(max_examples=30, deadline=None)
def test_exact_candidates_contain_every_true_pruner(case):
    ds, query = case
    index = build_index(ds, IndexParams(leaf_size=4))
    tables = _tables(ds)
    values = index.values
    m = ds.num_attributes
    for x_id, x in enumerate(ds.records):
        thresholds = [tables[i][x[i], query[i]] for i in range(m)]
        cands, _, _ = scalar_candidates(
            index, tables, tuple(x), thresholds, sum(thresholds), None, {}
        )
        assert _true_pruners(tables, values, x_id, thresholds) <= set(cands)


@given(indexed_case())
@settings(max_examples=20, deadline=None)
def test_exact_mode_matches_oracle(case):
    ds, query = case
    algo = IndexedTRS(ds, index_leaf_size=4)
    assert list(algo.run(query).record_ids) == reverse_skyline_by_pruners(
        ds, query
    )


# --- hypothesis: monotone recall in the target ------------------------------

@given(indexed_case(max_records=30), st.integers(0, 4), st.integers(0, 4))
@settings(max_examples=25, deadline=None)
def test_candidate_sets_nested_in_recall_target(case, a, b):
    ds, query = case
    lo, hi = sorted((a / 4.0, b / 4.0))
    index = build_index(ds, IndexParams(leaf_size=4))
    assert index.slack(lo) <= index.slack(hi)
    assert index.slack_out(lo) <= index.slack_out(hi)
    assert index.score_cutoff(lo) >= index.score_cutoff(hi)
    sets_lo = _candidate_sets(
        ds, query, index,
        (index.slack(lo), index.slack_out(lo), index.score_cutoff(lo)),
    )
    sets_hi = _candidate_sets(
        ds, query, index,
        (index.slack(hi), index.slack_out(hi), index.score_cutoff(hi)),
    )
    sets_exact = _candidate_sets(ds, query, index, None)
    for s_lo, s_hi, s_ex in zip(sets_lo, sets_hi, sets_exact):
        assert s_lo <= s_hi <= s_ex


@given(indexed_case(max_records=30), st.integers(0, 10))
@settings(max_examples=20, deadline=None)
def test_approximate_result_superset_of_exact(case, tenths):
    ds, query = case
    exact = IndexedTRS(ds, index_leaf_size=4).run(query)
    approx = IndexedTRS(
        ds, index_leaf_size=4, recall_target=tenths / 10.0
    ).run(query)
    assert set(exact.record_ids) <= set(approx.record_ids)
    assert approx.mode == "approximate"
    assert 0.0 <= approx.measured_recall <= 1.0


# --- unit: artifact determinism and transport -------------------------------

@pytest.fixture(scope="module")
def ds():
    return synthetic_dataset(120, [6, 5, 4], seed=23)


ARRAY_FIELDS = (
    "node_parent", "child_start", "child_count", "leaf_start", "leaf_count",
    "entry_ids", "band_vantage", "band_hi", "band_lo", "value_masks",
    "value_counts", "defects", "defects_out", "cal_scores",
)


class TestArtifact:
    def test_build_is_deterministic(self, ds):
        a = build_index(ds, IndexParams(seed=3, leaf_size=8))
        b = build_index(ds, IndexParams(seed=3, leaf_size=8))
        for field in ARRAY_FIELDS:
            assert np.array_equal(getattr(a, field), getattr(b, field))

    def test_structure_invariants(self, ds):
        index = build_index(ds, IndexParams(leaf_size=8))
        assert index.num_records == len(ds)
        assert index.node_parent[0] == -1
        # BFS order: every parent id precedes its children's.
        for j in range(1, index.num_nodes):
            assert index.node_parent[j] < j
        # Leaves partition the record ids.
        assert sorted(index.entry_ids) == list(range(len(ds)))
        assert index.memory_bytes() > 0

    def test_export_import_round_trip(self, ds):
        index = build_index(ds, IndexParams(leaf_size=8))
        meta, arrays = export_index(index)
        assert "values" not in arrays  # workers reuse the dataset arrays
        assert arrays["value_masks"].dtype == np.uint8
        assert arrays["value_counts"].dtype == np.uint32
        back = import_index(meta, arrays, index.values)
        assert back.params == index.params
        for field in ARRAY_FIELDS:
            assert np.array_equal(getattr(back, field), getattr(index, field))
        q = tuple(ds.records[0])
        tables = _tables(ds)
        assert back.slack(0.5) == index.slack(0.5)
        assert back.slack_out(0.5) == index.slack_out(0.5)
        assert back.score_cutoff(0.5) == index.score_cutoff(0.5)
        for x in ds.records[:5]:
            t = [tables[i][x[i], q[i]] for i in range(ds.num_attributes)]
            got, _, _ = scalar_candidates(
                back, tables, tuple(x), t, sum(t), None, {}
            )
            want, _, _ = scalar_candidates(
                index, tables, tuple(x), t, sum(t), None, {}
            )
            assert got == want

    def test_slack_validation(self, ds):
        index = build_index(ds)
        with pytest.raises(AlgorithmError):
            index.slack(1.5)
        with pytest.raises(AlgorithmError):
            index.slack_out(-0.1)
        with pytest.raises(AlgorithmError):
            index.score_cutoff(1.5)
        assert index.slack(0.0) <= index.slack(1.0)
        assert index.score_cutoff(0.0) >= index.score_cutoff(1.0)

    def test_build_rejects_bad_params(self, ds):
        with pytest.raises(AlgorithmError):
            build_index(ds, IndexParams(leaf_size=0))
        with pytest.raises(AlgorithmError):
            build_index(ds, IndexParams(fanout=1))

    def test_empty_dataset(self):
        empty = synthetic_dataset(0, [4, 4], seed=1)
        index = build_index(empty)
        assert index.num_records == 0
        assert len(index.entry_ids) == 0
        result = IndexedTRS(empty).run((0, 0))
        assert list(result.record_ids) == []


# --- unit: backend agreement -------------------------------------------------

class TestBackends:
    @pytest.mark.parametrize("target", [None, 0.0, 0.5, 1.0])
    def test_scalar_and_vector_candidates_agree(self, ds, target):
        index = build_index(ds, IndexParams(leaf_size=8))
        tables = _tables(ds)
        query = tuple(ds.records[7])
        slacks = (
            None
            if target is None
            else (
                index.slack(target),
                index.slack_out(target),
                index.score_cutoff(target),
            )
        )
        cand_lists, total, _ = vector_candidates(index, tables, query, slacks)
        scalar_sets = _candidate_sets(ds, query, index, slacks)
        vec_total = 0
        for x_id, parts in enumerate(cand_lists):
            got = set(int(r) for part in parts for r in part)
            vec_total += sum(len(part) for part in parts)
            assert got == scalar_sets[x_id]
        assert vec_total == total

    @pytest.mark.parametrize("target", [None, 0.9])
    def test_backend_results_identical(self, ds, target):
        query = tuple(ds.records[3])
        py = IndexedTRS(ds, backend="python", recall_target=target).run(query)
        nx = IndexedTRS(ds, backend="numpy", recall_target=target).run(query)
        assert list(py.record_ids) == list(nx.record_ids)
        assert py.candidates_total == nx.candidates_total
        assert py.backend == "python" and nx.backend == "numpy"


# --- unit: the ITRS algorithm family ----------------------------------------

class TestIndexedTRS:
    def test_result_accounting(self, ds):
        result = IndexedTRS(ds).run(tuple(ds.records[0]))
        assert isinstance(result, IndexedRSResult)
        assert result.algorithm == "ITRS"
        assert result.mode == "exact"
        assert result.measured_recall == 1.0
        assert result.index_nodes > 1
        assert result.candidates_total >= 0
        assert 0.0 <= result.candidate_fraction <= 1.0
        assert result.stats.db_passes == 1

    def test_rejects_bad_recall_target(self, ds):
        with pytest.raises(AlgorithmError):
            IndexedTRS(ds, recall_target=1.5)

    def test_plan_cache_reuses_the_index(self, ds):
        a = IndexedTRS(ds)
        b = IndexedTRS(ds)
        assert a.index() is b.index()
        assert a.index_fingerprint() == b.index_fingerprint()

    def test_registry_construction(self, ds):
        algo = make_algorithm("ITRS", ds, backend="numpy", recall_target=0.8)
        assert isinstance(algo, IndexedTRS)
        assert algo.recall_target == 0.8
        with pytest.raises(AlgorithmError):
            make_algorithm("TRS", ds, recall_target=0.8)


# --- the oracle-differential harness ----------------------------------------

class TestDifferential:
    def test_verify_index_equivalence_smoke(self):
        from repro.testing import verify_index_equivalence

        report = verify_index_equivalence(
            trials=4, seed=11, pools=("serial", "thread"),
            recall_targets=(None, 0.8),
        )
        assert report.ok, report.failures

    def test_rejects_unknown_pool(self):
        from repro.errors import ExperimentError
        from repro.testing import verify_index_equivalence

        with pytest.raises(ExperimentError):
            verify_index_equivalence(trials=1, pools=("fiber",))
