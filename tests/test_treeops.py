"""AL-Tree-accelerated skyline and top-k (the paper's cited substrates)."""

import numpy as np
import pytest

from repro.data.synthetic import mixed_dataset, synthetic_dataset
from repro.errors import AlgorithmError
from repro.skyline.dynamic import bnl_skyline
from repro.skyline.treeops import tree_skyline, tree_top_k


@pytest.fixture(scope="module")
def ds():
    return synthetic_dataset(250, [6, 5, 4], seed=71)


class TestTreeSkyline:
    def test_matches_bnl(self, ds):
        rng = np.random.default_rng(5)
        for _ in range(5):
            ref = tuple(int(rng.integers(0, c)) for c in (6, 5, 4))
            assert tree_skyline(ds.space, ds.records, ref) == bnl_skyline(
                ds.space, ds.records, ref
            )

    def test_duplicate_heavy(self):
        base = synthetic_dataset(1, [3, 3], seed=2)
        records = [base.records[0]] * 10 + [(0, 0), (1, 1), (2, 2)]
        ref = (1, 0)
        assert tree_skyline(base.space, records, ref) == bnl_skyline(
            base.space, records, ref
        )

    def test_empty(self, ds):
        assert tree_skyline(ds.space, [], (0, 0, 0)) == []

    def test_explicit_order(self, ds):
        ref = (2, 2, 2)
        assert tree_skyline(
            ds.space, ds.records, ref, attribute_order=[2, 1, 0]
        ) == bnl_skyline(ds.space, ds.records, ref)

    def test_rejects_numeric(self):
        ds = mixed_dataset(10, [3], [(0.0, 1.0)], seed=1)
        with pytest.raises(AlgorithmError, match="categorical"):
            tree_skyline(ds.space, ds.records, (0, 0.5))


class TestTreeTopK:
    def exhaustive(self, space, records, ref, weights, k):
        scored = sorted(
            (
                sum(
                    w * space.d(i, ref[i], r[i])
                    for i, w in enumerate(weights)
                ),
                rid,
            )
            for rid, r in enumerate(records)
        )
        return [(rid, score) for score, rid in scored[:k]]

    def test_matches_exhaustive_scores(self, ds):
        rng = np.random.default_rng(8)
        weights = [0.5, 0.3, 0.2]
        for _ in range(4):
            ref = tuple(int(rng.integers(0, c)) for c in (6, 5, 4))
            got = tree_top_k(ds.space, ds.records, ref, weights, 10)
            want = self.exhaustive(ds.space, ds.records, ref, weights, 10)
            assert [round(s, 12) for _, s in got] == [round(s, 12) for _, s in want]
            # Ascending scores.
            scores = [s for _, s in got]
            assert scores == sorted(scores)

    def test_k_larger_than_data(self, ds):
        got = tree_top_k(ds.space, ds.records[:5], (0, 0, 0), [1, 1, 1], 50)
        assert len(got) == 5

    def test_k_zero(self, ds):
        assert tree_top_k(ds.space, ds.records, (0, 0, 0), [1, 1, 1], 0) == []

    def test_self_is_top1_with_zero_distance(self, ds):
        ref = ds.records[0]
        top = tree_top_k(ds.space, ds.records, ref, [1, 1, 1], 1)
        assert top[0][1] == pytest.approx(0.0)

    def test_negative_k(self, ds):
        with pytest.raises(AlgorithmError):
            tree_top_k(ds.space, ds.records, (0, 0, 0), [1, 1, 1], -1)

    def test_bad_weights(self, ds):
        with pytest.raises(AlgorithmError, match="weights"):
            tree_top_k(ds.space, ds.records, (0, 0, 0), [1, 1], 3)
        with pytest.raises(AlgorithmError, match="non-negative"):
            tree_top_k(ds.space, ds.records, (0, 0, 0), [1, 1, -1], 3)
