"""NumericTRS (Section 6): discretised group reasoning over mixed schemas."""

import pytest

from repro.core.numeric import Discretizer, NumericTRS
from repro.core.naive import NaiveRS
from repro.data.queries import query_batch
from repro.data.synthetic import mixed_dataset, synthetic_dataset
from repro.errors import AlgorithmError
from repro.skyline.oracle import reverse_skyline_by_pruners
from repro.storage.disk import MemoryBudget


@pytest.fixture(scope="module")
def mixed():
    return mixed_dataset(250, [5, 4], [(0.0, 10.0), (100.0, 200.0)], seed=21)


class TestDiscretizer:
    def test_bucket_layout(self, mixed):
        disc = Discretizer(mixed, num_buckets=4)
        assert not disc.is_numeric(0) and not disc.is_numeric(1)
        assert disc.is_numeric(2) and disc.is_numeric(3)

    def test_bucket_of_extremes(self, mixed):
        disc = Discretizer(mixed, num_buckets=4)
        col = [r[2] for r in mixed.records]
        assert disc.bucket_of(2, min(col)) == 0
        assert disc.bucket_of(2, max(col)) == 3

    def test_intervals_tile_the_range(self, mixed):
        disc = Discretizer(mixed, num_buckets=4)
        col = [r[2] for r in mixed.records]
        lo0, hi0 = disc.interval(2, 0)
        lo3, hi3 = disc.interval(2, 3)
        assert lo0 == pytest.approx(min(col))
        assert hi3 == pytest.approx(max(col))
        assert hi0 == pytest.approx(disc.interval(2, 1)[0])

    def test_value_in_its_bucket_interval(self, mixed):
        disc = Discretizer(mixed, num_buckets=8)
        for r in mixed.records[:40]:
            b = disc.bucket_of(2, r[2])
            lo, hi = disc.interval(2, b)
            assert lo - 1e-9 <= r[2] <= hi + 1e-9

    def test_invalid_bucket_count(self, mixed):
        with pytest.raises(AlgorithmError):
            Discretizer(mixed, num_buckets=0)

    def test_empty_dataset_rejected(self):
        ds = mixed_dataset(0, [3], [(0.0, 1.0)], seed=1)
        with pytest.raises(AlgorithmError, match="empty"):
            Discretizer(ds)


class TestNumericTRS:
    @pytest.mark.parametrize("num_buckets", [2, 5, 16])
    def test_matches_oracle(self, mixed, num_buckets):
        queries = query_batch(mixed, 3, seed=6)
        algo = NumericTRS(
            mixed, num_buckets=num_buckets, budget=MemoryBudget(3), page_bytes=128
        )
        for q in queries:
            expected = reverse_skyline_by_pruners(mixed, q)
            assert list(algo.run(q).record_ids) == expected

    def test_matches_naive_many_queries(self, mixed):
        queries = query_batch(mixed, 5, seed=61)
        trs = NumericTRS(mixed, budget=MemoryBudget(4), page_bytes=256)
        naive = NaiveRS(mixed, budget=MemoryBudget(4), page_bytes=256)
        # NaiveRS needs lookup tables, which numeric attrs lack; use oracle.
        for q in queries:
            expected = reverse_skyline_by_pruners(mixed, q)
            assert list(trs.run(q).record_ids) == expected

    def test_pure_categorical_also_works(self):
        ds = synthetic_dataset(200, [5, 6], seed=3)
        q = query_batch(ds, 1, seed=4)[0]
        expected = reverse_skyline_by_pruners(ds, q)
        algo = NumericTRS(ds, budget=MemoryBudget(3), page_bytes=64)
        assert list(algo.run(q).record_ids) == expected

    def test_numeric_only_schema(self):
        ds = mixed_dataset(150, [], [(0.0, 1.0), (0.0, 5.0)], seed=8)
        q = query_batch(ds, 1, seed=9)[0]
        expected = reverse_skyline_by_pruners(ds, q)
        algo = NumericTRS(ds, num_buckets=6, budget=MemoryBudget(3), page_bytes=128)
        assert list(algo.run(q).record_ids) == expected

    def test_phase1_is_conservative_not_lossy(self, mixed):
        """Bucket-level phase 1 may leave false positives in R but must
        never prune a true result."""
        q = query_batch(mixed, 1, seed=10)[0]
        algo = NumericTRS(mixed, num_buckets=2, budget=MemoryBudget(3), page_bytes=128)
        result = algo.run(q)
        assert result.stats.intermediate_count >= result.stats.result_count
        assert list(result.record_ids) == reverse_skyline_by_pruners(mixed, q)

    def test_categorical_algorithms_reject_numeric(self, mixed):
        from repro.core.brs import BRS

        algo = BRS(mixed, budget=MemoryBudget(2))
        with pytest.raises(AlgorithmError, match="NumericTRS"):
            algo.run(query_batch(mixed, 1, seed=2)[0])
