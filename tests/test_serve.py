"""Closed-loop tests for the resident query service (repro.serve).

Every test drives the real stack — a background server on its own
event loop, real sockets, the real protocol — because the service's
contracts are about behaviour *under concurrency*: deadlines cancel
work that has not run yet, sheds carry honest retry-after hints,
token buckets isolate tenants, the micro-batcher coalesces strangers'
queries into shared scans, and a SIGKILLed pool worker costs one
rebuild, never a hang or a wrong answer.
"""

import asyncio
import glob
import os
import signal
import time

import pytest

from repro.data.synthetic import synthetic_dataset
from repro.engine import ReverseSkylineEngine
from repro.errors import OverloadError
from repro.serve import (
    ServeClient,
    ServiceConfig,
    run_closed_loop,
    serve_in_background,
)
from repro.serve.admission import AdmissionController, TokenBucket
from repro.serve.protocol import BadRequest, decode_request, error_response


def _engine(n=200, values=(5, 5, 4), seed=3, **kw):
    ds = synthetic_dataset(n, list(values), seed=seed)
    kw.setdefault("log_queries", False)
    return ReverseSkylineEngine(ds, algorithm="TRS", **kw)


@pytest.fixture
def server_factory():
    """Start background servers; always stop them and audit /dev/shm."""
    handles = []

    def start(engine, config):
        handle = serve_in_background(engine, config)
        handles.append(handle)
        return handle

    yield start
    for handle in handles:
        handle.stop()
    assert not glob.glob("/dev/shm/repro-shm-*")


# -- protocol ----------------------------------------------------------------


class TestProtocol:
    def test_query_roundtrip_fields(self):
        req = decode_request(
            b'{"op": "query", "query": [1, 2], "tenant": "t9", '
            b'"deadline_ms": 40, "id": "r1"}'
        )
        assert req.query == (1, 2)
        assert req.tenant == "t9"
        assert req.deadline_ms == 40.0
        assert req.request_id == "r1"
        assert req.kind == "query"

    @pytest.mark.parametrize(
        "line",
        [
            b"not json",
            b"[1, 2]",
            b'{"op": "nope"}',
            b'{"op": "query"}',
            b'{"op": "query", "query": []}',
            b'{"op": "query", "query": [1], "kind": "wat"}',
            b'{"op": "query", "query": [1], "k": 0}',
            b'{"op": "query", "query": [1], "k": 2}',
            b'{"op": "query", "query": [1], "kind": "subset"}',
            b'{"op": "query", "query": [1], "deadline_ms": -5}',
        ],
    )
    def test_malformed_lines_are_bad_requests(self, line):
        with pytest.raises(BadRequest):
            decode_request(line)

    def test_error_mapping_carries_retry_after(self):
        exc = OverloadError("full", retry_after_s=0.25, reason="queue-full")
        err = error_response("id7", exc)["error"]
        assert err["type"] == "overload"
        assert err["reason"] == "queue-full"
        assert err["retry_after_s"] == 0.25


# -- admission ---------------------------------------------------------------


class TestAdmission:
    def test_token_bucket_refills_at_rate(self):
        now = [0.0]
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=lambda: now[0])
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0
        wait = bucket.try_acquire()
        assert wait == pytest.approx(0.5)  # 1 token at 2/s
        now[0] += 0.5
        assert bucket.try_acquire() == 0.0

    def test_tenant_buckets_are_independent(self):
        now = [0.0]
        ctl = AdmissionController(
            queue_depth=10, workers=1, tenant_rate=1.0, tenant_burst=1.0,
            clock=lambda: now[0],
        )
        ctl.admit("a", 0)
        with pytest.raises(OverloadError) as info:
            ctl.admit("a", 0)
        assert info.value.reason == "tenant-throttled"
        assert info.value.retry_after_s > 0
        ctl.admit("b", 0)  # unaffected by a's exhaustion

    def test_queue_full_retry_after_scales_with_backlog(self):
        ctl = AdmissionController(queue_depth=4, workers=2)
        ctl.observe_service_time(0.1)
        with pytest.raises(OverloadError) as info:
            ctl.admit("t", 4)
        assert info.value.reason == "queue-full"
        assert info.value.retry_after_s >= ctl.retry_after(0) / 2
        assert ctl.shed_by_reason == {"queue-full": 1}

    def test_disabled_rate_allocates_no_buckets(self):
        """Regression: with tenant_rate<=0 (the default) the buckets are
        pure no-ops, so wire-supplied tenant strings must not grow the
        bucket map — an adversarial client sending a fresh tenant per
        request would otherwise leak memory in a long-lived server."""
        ctl = AdmissionController(queue_depth=8, workers=1)  # rate 0
        for i in range(500):
            ctl.admit(f"tenant-{i}", 0)
        assert ctl._buckets == {}

    def test_bucket_map_is_bounded_lru(self, monkeypatch):
        from repro.serve import admission as _adm

        monkeypatch.setattr(_adm, "_MAX_TENANT_BUCKETS", 4)
        ctl = AdmissionController(
            queue_depth=8, workers=1, tenant_rate=100.0, tenant_burst=100.0
        )
        for i in range(10):
            ctl.admit(f"t{i}", 0)
        assert len(ctl._buckets) == 4
        # Least-recently-seen tenants were evicted, the newest survive.
        assert set(ctl._buckets) == {"t6", "t7", "t8", "t9"}
        ctl.admit("t6", 0)  # touch: t6 becomes most-recently-used...
        ctl.admit("t99", 0)  # ...so the eviction victim is t7, not t6
        assert "t6" in ctl._buckets and "t7" not in ctl._buckets


# -- service behaviour over real sockets -------------------------------------


class TestServiceRoundTrip:
    def test_query_ping_stats_and_cache(self, server_factory):
        engine = _engine()
        handle = server_factory(
            engine, ServiceConfig(pool="thread", workers=2)
        )
        want = list(_engine().query((0, 0, 0)).record_ids)
        with ServeClient("127.0.0.1", handle.port) as client:
            assert client.ping()
            first = client.query((0, 0, 0))
            assert first["ok"] and first["records"] == want
            again = client.query((0, 0, 0))
            assert again["cached"] and again["records"] == want
            stats = client.stats()
            assert stats["admitted"] == 2
            assert stats["cache_hits"] == 1
            kernels = stats["kernels"]
            assert kernels["fused_groups_run"] >= 0
            assert kernels["jit"]["phase"] in ("unchecked", "ready", "fallback")
            assert kernels["tier"] in ("python", "numpy", "jit")

    def test_bad_query_is_typed_and_connection_survives(self, server_factory):
        handle = server_factory(_engine(), ServiceConfig(pool="thread"))
        with ServeClient("127.0.0.1", handle.port) as client:
            resp = client.query((0, 0))  # wrong arity for the schema
            assert not resp["ok"]
            assert resp["error"]["type"] == "bad-request"
            resp = client.query((99, 0, 0))  # out-of-domain label
            assert not resp["ok"]
            assert resp["error"]["type"] == "bad-request"
            assert client.query((0, 0, 0))["ok"]  # still serving

    def test_deadline_cancellation_stops_work(self, server_factory):
        """A request whose deadline expires while queued is never
        executed: the client gets a typed deadline error and the
        engine's query log stays empty."""
        engine = _engine(log_queries=True)
        handle = server_factory(
            engine,
            # Window far longer than the deadline: the request *will*
            # still be queued when its budget runs out. Adaptivity is
            # pinned off — it would collapse the window for a lone
            # client, which is exactly what this test must not have.
            ServiceConfig(
                pool="thread",
                batch_window_s=0.3,
                cache=False,
                adaptive_window=False,
            ),
        )
        with ServeClient("127.0.0.1", handle.port) as client:
            resp = client.query((0, 0, 0), deadline_ms=30)
            assert not resp["ok"]
            assert resp["error"]["type"] == "deadline"
            assert resp["error"]["stage"] in ("queue", "dispatch", "execute")
        # Allow the still-open window to close, then prove nothing ran.
        time.sleep(0.4)
        svc = handle.service
        assert svc.stats.served == 0
        assert engine.latency_summary()["count"] == 0.0

    def test_saturation_sheds_with_retry_after(self, server_factory):
        handle = server_factory(
            _engine(400, (6, 6, 5), seed=5),
            ServiceConfig(
                pool="thread",
                workers=1,
                queue_depth=2,
                batch_window_s=0.05,
                cache=False,
            ),
        )
        queries = [(i % 6, (i // 6) % 6, i % 5) for i in range(48)]
        report = run_closed_loop(
            "127.0.0.1", handle.port, queries, clients=8, requests_per_client=6
        )
        assert report.ok > 0
        assert report.shed > 0, "saturated service must shed, not queue"
        assert all(r > 0 for r in report.retry_after_s)
        assert report.failed == 0

    def test_token_buckets_isolate_tenants(self, server_factory):
        handle = server_factory(
            _engine(),
            ServiceConfig(
                pool="thread", tenant_rate=0.5, tenant_burst=2.0
            ),
        )
        with ServeClient("127.0.0.1", handle.port) as client:
            # Tenant a burns its burst of 2, then gets throttled...
            outcomes = [
                client.query((0, 0, 0), tenant="a") for _ in range(4)
            ]
            throttled = [r for r in outcomes if not r["ok"]]
            assert len(throttled) == 2
            assert all(
                r["error"]["reason"] == "tenant-throttled" for r in throttled
            )
            assert all(r["error"]["retry_after_s"] > 0 for r in throttled)
            # ...while tenant b is untouched by a's exhaustion.
            assert client.query((0, 0, 0), tenant="b")["ok"]

    def test_microbatcher_coalesces_concurrent_strangers(self, server_factory):
        """Distinct queries from concurrent clients (cache off) must be
        answered through shared scans — the planner group path."""
        handle = server_factory(
            _engine(300),
            ServiceConfig(
                pool="thread", workers=2, batch_window_s=0.01, cache=False
            ),
        )
        queries = [(i % 5, (i // 5) % 5, i % 4) for i in range(40)]
        report = run_closed_loop(
            "127.0.0.1", handle.port, queries, clients=4, requests_per_client=8
        )
        assert report.ok == 32
        assert report.planned > 0
        batcher = handle.service._batcher.stats
        assert batcher.coalesced >= 2
        assert max(batcher.group_sizes, default=0) >= 2

    def test_grouped_answers_match_sequential_engine(self, server_factory):
        """Coalescing must never change answers: everything served under
        concurrency equals the sequential engine's result."""
        handle = server_factory(
            _engine(250),
            ServiceConfig(
                pool="thread", workers=2, batch_window_s=0.02, cache=False
            ),
        )
        queries = [(i % 5, (i // 5) % 5, i % 4) for i in range(24)]
        oracle = _engine(250)
        want = {q: list(oracle.query(q).record_ids) for q in queries}

        import threading

        got: dict = {}
        errors: list = []

        def drive(offset: int) -> None:
            try:
                with ServeClient("127.0.0.1", handle.port) as client:
                    for i in range(offset, len(queries), 4):
                        q = queries[i]
                        resp = client.query(q)
                        assert resp["ok"], resp
                        got[q] = resp["records"]
            except Exception as exc:  # pragma: no cover - fail path
                errors.append(exc)

        threads = [
            threading.Thread(target=drive, args=(c,)) for c in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert got == want


class TestAdaptiveWindow:
    """The micro-batch window must cost a lone client nothing."""

    def test_effective_window_tracks_arrival_rate(self):
        from repro.serve.batcher import MicroBatcher, PendingQuery

        now = [0.0]
        batcher = MicroBatcher(
            window_s=0.01,
            max_batch=8,
            group_key=lambda s: None,
            dispatch=lambda w, m: None,
            clock=lambda: now[0],
            adaptive=True,
        )

        def arrive():
            batcher.put(
                PendingQuery(spec=None, future=_DummyFuture(), deadline=None)
            )

        # No rate estimate yet: assume sparse, window collapsed.
        assert batcher.effective_window() == 0.0
        arrive()
        assert batcher.effective_window() == 0.0
        # Sparse traffic (1 req/s >> 10ms window): stays collapsed.
        for _ in range(4):
            now[0] += 1.0
            arrive()
        assert batcher.effective_window() == 0.0
        # A sustained burst (1ms gaps) pulls the EWMA under the window,
        # and once a round actually coalesces the full window is back.
        for _ in range(30):
            now[0] += 0.001
            arrive()
        assert batcher.effective_window() == 0.0  # no multi-round yet
        batcher._last_round_size = 2
        assert batcher.effective_window() == 0.01
        # Singleton rounds (a lone client) collapse it regardless of the
        # small gaps its fast responses produce.
        batcher._last_round_size = 1
        assert batcher.effective_window() == 0.0
        # Traffic goes sparse again: collapsed even with coalescing rounds.
        batcher._last_round_size = 4
        for _ in range(16):
            now[0] += 1.0
            arrive()
        assert batcher.effective_window() == 0.0

    def test_fixed_mode_keeps_the_window(self):
        from repro.serve.batcher import MicroBatcher

        batcher = MicroBatcher(
            window_s=0.01,
            max_batch=8,
            group_key=lambda s: None,
            dispatch=lambda w, m: None,
            clock=lambda: 0.0,
            adaptive=False,
        )
        assert batcher.effective_window() == 0.01

    def test_single_client_p50_beats_the_window(self, server_factory):
        """Regression: a lone client's median latency must come in well
        under the configured window — adaptivity removes the window tax
        the fixed batcher charged every sequential request."""
        window_s = 0.08
        handle = server_factory(
            _engine(60, (4, 4, 3)),
            ServiceConfig(
                pool="thread",
                workers=1,
                batch_window_s=window_s,
                cache=False,
            ),
        )
        walls = []
        with ServeClient("127.0.0.1", handle.port) as client:
            for i in range(9):
                t0 = time.monotonic()
                resp = client.query((i % 4, i % 4, i % 3))
                walls.append(time.monotonic() - t0)
                assert resp["ok"], resp
        p50 = sorted(walls)[len(walls) // 2]
        assert p50 < window_s / 2, (
            f"single-client p50 {p50 * 1000:.1f}ms should beat the "
            f"{window_s * 1000:.0f}ms window"
        )
        assert handle.service._batcher.stats.short_windows > 0


class _DummyFuture:
    """Just enough of a Future for batcher ingest in a loop-free test."""

    def done(self) -> bool:
        return False


class TestFailureSettlement:
    def test_internal_failure_settles_futures_with_typed_error(
        self, server_factory
    ):
        """Regression: a non-ReproError escaping the pool path (second
        BrokenProcessPool on the retry, a rebuild that could not respawn
        workers) used to escape the dispatch task without settling the
        member futures — a client with no deadline hung forever. It must
        surface as a typed query-error instead."""
        handle = server_factory(_engine(), ServiceConfig(pool="thread"))
        svc = handle.service

        async def explode(wire):
            raise RuntimeError("simulated pool loss past recovery")

        async def patch():
            svc._run_wire = explode

        handle.call(patch)
        with ServeClient("127.0.0.1", handle.port, timeout_s=10) as client:
            resp = client.query((0, 0, 0))  # no deadline: would hang before
            assert not resp["ok"]
            assert resp["error"]["type"] == "query-error"
            assert "simulated pool loss" in resp["error"]["message"]
        assert svc.stats.failed == 1

    def test_concurrent_broken_pool_rebuilds_exactly_once(self):
        """Regression: one dead worker fails every in-flight payload with
        BrokenProcessPool, so several tasks race into the rebuild path;
        only the first may rebuild — a second rebuild would tear down the
        freshly built (healthy) pool mid-verification."""
        from repro.serve.service import QueryService

        svc = QueryService(_engine(), ServiceConfig(pool="process", workers=1))
        rebuilds = []

        def fake_rebuild():
            rebuilds.append(1)
            svc._pool = object()  # "a fresh healthy pool"

        svc._rebuild_pool = fake_rebuild
        svc._pool = object()  # the broken pool every task saw

        async def storm():
            await asyncio.gather(*(svc._ensure_pool(0) for _ in range(6)))

        asyncio.run(storm())
        assert rebuilds == [1]
        assert svc.stats.pool_rebuilds == 1
        assert svc._pool_epoch == 1

    def test_closed_loop_raises_on_dead_server_instead_of_hanging(self):
        """Regression: a client thread failing before the start barrier
        (connection refused) left the main thread parked on an untimed
        barrier.wait() forever."""
        import socket

        with socket.socket() as s:  # grab a port nothing listens on
            s.bind(("127.0.0.1", 0))
            port = s.getsockname()[1]
        t0 = time.monotonic()
        with pytest.raises(OSError):
            run_closed_loop(
                "127.0.0.1",
                port,
                [(0, 0, 0)],
                clients=3,
                requests_per_client=1,
                start_timeout_s=5.0,
            )
        assert time.monotonic() - t0 < 5.0


class TestProcessPoolChaos:
    def test_killed_worker_rebuilds_and_answers_identically(
        self, server_factory
    ):
        """SIGKILL a pool worker mid-service: the affected request is
        retried on a rebuilt pool and every answer stays bit-identical
        to the sequential engine — never a hang, never a wrong answer."""
        engine = _engine()
        handle = server_factory(
            engine,
            ServiceConfig(pool="process", workers=2, batch_window_s=0.005),
        )
        svc = handle.service
        oracle = _engine()
        with ServeClient("127.0.0.1", handle.port) as client:
            baseline = client.query((0, 0, 0))
            assert baseline["ok"]
            pids = svc.worker_pids()
            assert len(pids) >= 1
            os.kill(pids[0], signal.SIGKILL)
            time.sleep(0.05)
            resp = client.query((1, 1, 1))
            # Either the structured-retry succeeded (the strong outcome)
            # or the failure is typed — the forbidden outcomes are a hang
            # (the request timeout would trip) and a wrong answer.
            assert resp["ok"], resp
            assert resp["records"] == list(oracle.query((1, 1, 1)).record_ids)
            assert svc.stats.pool_rebuilds == 1
            again = client.query((2, 0, 1))
            assert again["ok"]
            assert again["records"] == list(oracle.query((2, 0, 1)).record_ids)

    def test_shm_manifest_released_on_stop(self):
        engine = _engine()
        handle = serve_in_background(
            engine, ServiceConfig(pool="process", workers=1)
        )
        try:
            with ServeClient("127.0.0.1", handle.port) as client:
                assert client.query((0, 0, 0))["ok"]
            assert glob.glob("/dev/shm/repro-shm-*")  # published while up
        finally:
            handle.stop()
        assert not glob.glob("/dev/shm/repro-shm-*")  # audit: clean exit


class TestSwapDataset:
    def test_swap_requiesces_and_serves_new_data(self, server_factory):
        engine = _engine(150, (5, 5, 4), seed=3)
        handle = server_factory(
            engine, ServiceConfig(pool="process", workers=1)
        )
        with ServeClient("127.0.0.1", handle.port) as client:
            assert client.query((0, 0, 0))["ok"]
        new_ds = synthetic_dataset(120, [4, 4], seed=11)
        handle.call(lambda: handle.service.swap_dataset(new_ds))
        oracle = ReverseSkylineEngine(new_ds, algorithm="TRS", log_queries=False)
        with ServeClient("127.0.0.1", handle.port) as client:
            old_shape = client.query((0, 0, 0))  # 3 values: now invalid
            assert not old_shape["ok"]
            assert old_shape["error"]["type"] == "bad-request"
            resp = client.query((0, 0))
            assert resp["ok"]
            assert resp["records"] == list(oracle.query((0, 0)).record_ids)


class TestCLI:
    def test_serve_load_round_trip(self, tmp_path, capsys):
        from repro.cli import main
        from repro.persist.format import save_dataset

        ds = synthetic_dataset(150, [5, 5, 4], seed=3)
        path = str(tmp_path / "ds")
        save_dataset(ds, path)
        engine = ReverseSkylineEngine(ds, algorithm="TRS", log_queries=False)
        handle = serve_in_background(
            engine, ServiceConfig(pool="thread", workers=2)
        )
        try:
            rc = main(
                [
                    "serve-load",
                    path,
                    "--port",
                    str(handle.port),
                    "--clients",
                    "2",
                    "--requests",
                    "4",
                ]
            )
        finally:
            handle.stop()
        assert rc == 0
        out = capsys.readouterr().out
        assert "8 ok, 0 shed" in out
        assert "throughput" in out


# -- incremental maintenance over the wire -----------------------------------


def _maint_engine(n=150, values=(5, 5, 4), seed=3, **kw):
    from repro.maint import MaintainedEngine

    ds = synthetic_dataset(n, list(values), seed=seed)
    kw.setdefault("log_queries", False)
    return MaintainedEngine(ds, **kw)


def _live_ids(store, query):
    """Rebuild oracle: plain engine over the live records, answer
    translated to stable ids and sorted (order-insensitive compare)."""
    from repro.data.dataset import Dataset

    live = store.live_entries()
    if not live:
        return []
    ds = Dataset(
        store.base.schema,
        [values for _, values in live],
        store.base.space,
        validate=False,
        name="serve-oracle",
    )
    oracle = ReverseSkylineEngine(ds, log_queries=False)
    sids = [sid for sid, _ in live]
    return sorted(sids[p] for p in oracle.query(query).record_ids)


class TestMaintUpdates:
    def test_protocol_update_decode(self):
        req = decode_request(
            b'{"op": "update", "inserts": [[1, 2, 3]], "deletes": [4], "id": "u1"}'
        )
        assert req.op == "update"
        assert req.inserts == ((1, 2, 3),)
        assert req.deletes == (4,)

    @pytest.mark.parametrize(
        "line",
        [
            b'{"op": "update"}',
            b'{"op": "update", "inserts": [[]]}',
            b'{"op": "update", "inserts": [[1]], "deletes": [-1]}',
            b'{"op": "update", "inserts": [[1]], "deletes": [true]}',
            b'{"op": "update", "inserts": "nope"}',
        ],
    )
    def test_protocol_update_rejects(self, line):
        with pytest.raises(BadRequest):
            decode_request(line)

    def test_update_round_trip_thread_pool(self, server_factory):
        engine = _maint_engine()
        handle = server_factory(
            engine, ServiceConfig(pool="thread", workers=2)
        )
        with ServeClient("127.0.0.1", handle.port) as client:
            first = client.query((0, 0, 0))
            assert first["ok"]
            assert sorted(first["records"]) == _live_ids(engine.store, (0, 0, 0))
            up = client.request(
                {"op": "update", "inserts": [[4, 4, 3], [0, 1, 2]],
                 "deletes": [3, 7]}
            )
            assert up["ok"], up
            assert up["inserted"] == [150, 151]
            assert sorted(up["deleted"]) == [3, 7]
            assert up["epoch"] == 1
            after = client.query((0, 0, 0))
            assert after["ok"] and not after.get("cached")
            assert sorted(after["records"]) == _live_ids(engine.store, (0, 0, 0))

    def test_update_on_plain_engine_is_typed(self, server_factory):
        handle = server_factory(_engine(), ServiceConfig(pool="thread"))
        with ServeClient("127.0.0.1", handle.port) as client:
            resp = client.request({"op": "update", "inserts": [[1, 1, 1]]})
            assert not resp["ok"]
            assert resp["error"]["type"] == "bad-request"
            assert client.query((0, 0, 0))["ok"]  # connection survives

    def test_bad_update_values_are_typed(self, server_factory):
        engine = _maint_engine()
        handle = server_factory(engine, ServiceConfig(pool="thread"))
        with ServeClient("127.0.0.1", handle.port) as client:
            resp = client.request(
                {"op": "update", "inserts": [[99, 99]]}  # wrong arity
            )
            assert not resp["ok"]
            assert resp["error"]["type"] in ("bad-request", "query-error")
            assert client.query((0, 0, 0))["ok"]

    def test_process_pool_updates_and_compaction_rebuild(self, server_factory):
        """Non-compacting updates reach the workers via the maint wire
        envelope; a compacting update rebuilds the pool on the new base.
        Answers stay bit-identical to the rebuild oracle throughout."""
        engine = _maint_engine(
            backend="numpy", compact_min=12, compact_fraction=0.0
        )
        handle = server_factory(
            engine,
            ServiceConfig(pool="process", workers=2, batch_window_s=0.0),
        )
        with ServeClient("127.0.0.1", handle.port) as client:
            assert sorted(client.query((0, 0, 0))["records"]) == _live_ids(
                engine.store, (0, 0, 0)
            )
            up = client.request(
                {"op": "update", "inserts": [[1, 2, 3], [4, 0, 1], [2, 2, 2]],
                 "deletes": [5]}
            )
            assert up["ok"] and not up["compacted"]
            assert sorted(client.query((1, 1, 1))["records"]) == _live_ids(
                engine.store, (1, 1, 1)
            )
            # Push churn past compact_min: the service must drop the maint
            # envelope and rebuild the pool on the compacted base.
            compacted = False
            for i in range(4):
                up = client.request(
                    {"op": "update",
                     "inserts": [[i % 5, (i + 1) % 5, i % 4]] * 3}
                )
                assert up["ok"], up
                compacted = compacted or up["compacted"]
            assert compacted
            assert handle.service.stats.pool_rebuilds >= 1
            for q in ((0, 0, 0), (2, 3, 1), (4, 4, 3)):
                assert sorted(client.query(q)["records"]) == _live_ids(
                    engine.store, q
                )

    def test_read_p50_within_budget_under_writes(self, server_factory):
        """Acceptance: apply_updates never quiesces reads — p50 read
        latency under a concurrent write stream stays within 1.5x of
        the no-write baseline (plus a small absolute allowance for
        scheduler noise at sub-millisecond latencies)."""
        import json as _json
        import statistics
        import threading

        engine = _maint_engine(n=200, backend="numpy")
        handle = server_factory(
            engine, ServiceConfig(pool="thread", workers=2)
        )
        probes = [(a, b, c) for a in range(5) for b in range(5) for c in range(4)]

        def measure(client, rounds=2):
            lat = []
            for _ in range(rounds):
                for q in probes:
                    t0 = time.perf_counter()
                    assert client.query(q)["ok"]
                    lat.append(time.perf_counter() - t0)
            return statistics.median(lat)

        with ServeClient("127.0.0.1", handle.port) as client:
            measure(client, rounds=1)  # warm plans and code paths
            p50_base = measure(client)
            stop = threading.Event()
            wrote = []

            def writer():
                with ServeClient("127.0.0.1", handle.port) as wc:
                    i = 0
                    while not stop.is_set():
                        resp = wc.request(
                            {"op": "update",
                             "inserts": [[i % 5, (i + 1) % 5, i % 4]]}
                        )
                        assert resp["ok"], resp
                        wrote.append(resp["epoch"])
                        i += 1
                        time.sleep(0.002)

            th = threading.Thread(target=writer)
            th.start()
            try:
                p50_writes = measure(client)
            finally:
                stop.set()
                th.join(timeout=30)
            assert wrote, "writer never landed an update"
            assert p50_writes <= 1.5 * p50_base + 0.005, (
                f"p50 under writes {p50_writes * 1e3:.3f}ms vs baseline "
                f"{p50_base * 1e3:.3f}ms ({len(wrote)} updates applied)"
            )


class TestRecallTarget:
    @pytest.mark.parametrize(
        "line",
        [
            b'{"op": "query", "query": [1], "recall_target": "hi"}',
            b'{"op": "query", "query": [1], "recall_target": 1.5}',
            b'{"op": "query", "query": [1], "recall_target": -0.1}',
            b'{"op": "query", "query": [1], "recall_target": true}',
            b'{"op": "query", "query": [1], "kind": "count", "recall_target": 0.9}',
        ],
    )
    def test_protocol_rejects(self, line):
        with pytest.raises(BadRequest):
            decode_request(line)

    def test_cache_isolation(self, server_factory):
        """An exact cached answer must never satisfy an approximate
        request (or vice versa): recall_target is part of the result
        cache key."""
        handle = server_factory(_engine(), ServiceConfig(pool="thread"))
        with ServeClient("127.0.0.1", handle.port) as client:
            exact = client.query((0, 0, 0))
            assert exact["ok"] and not exact.get("cached")
            assert client.query((0, 0, 0))["cached"]
            approx = client.request(
                {"op": "query", "query": [0, 0, 0], "recall_target": 0.9}
            )
            assert approx["ok"], approx
            assert not approx.get("cached"), (
                "approximate request was served from the exact cache entry"
            )
            again = client.request(
                {"op": "query", "query": [0, 0, 0], "recall_target": 0.9}
            )
            assert again["cached"]
            # The exact entry is still there, untouched.
            assert client.query((0, 0, 0))["cached"]


class TestDrain:
    def test_drain_answers_inflight_then_refuses(self):
        """A request already on the wire when drain starts still gets
        its answer; afterwards the listener refuses new connections and
        existing connections see EOF."""
        import json as _json
        import socket
        import threading

        engine = _engine()
        handle = serve_in_background(
            engine, ServiceConfig(pool="thread", workers=2)
        )
        try:
            client = ServeClient("127.0.0.1", handle.port)
            assert client.query((0, 0, 0))["ok"]
            client._file.write(
                _json.dumps(
                    {"op": "query", "query": [1, 1, 1], "id": "d1"}
                ).encode()
                + b"\n"
            )
            client._file.flush()
            # Wait for admission so drain races the *answer*, not the
            # socket read — a not-yet-read line may legitimately shed.
            deadline = time.time() + 10
            while (
                handle.service.stats.admitted < 2 and time.time() < deadline
            ):
                time.sleep(0.001)
            assert handle.service.stats.admitted >= 2

            def _drain():
                asyncio.run_coroutine_threadsafe(
                    handle._server.drain(5.0), handle._loop
                ).result(timeout=30)

            th = threading.Thread(target=_drain)
            th.start()
            line = client._file.readline()
            th.join(timeout=30)
            resp = _json.loads(line)
            assert resp["ok"] and resp["id"] == "d1"
            assert client._file.readline() == b""  # server said goodbye
            with pytest.raises(OSError):
                socket.create_connection(("127.0.0.1", handle.port), timeout=2)
            client.close()
        finally:
            assert handle._thread is not None
            handle._thread.join(timeout=30)
            assert not handle._thread.is_alive()
            handle._loop = None  # loop is closed; make stop() a no-op
        assert not glob.glob("/dev/shm/repro-shm-*")

    def test_sigterm_drains_run_server(self, tmp_path):
        """run_server installs a SIGTERM handler on the main thread:
        the process answers what it accepted, exits 0, and leaves no
        shm segments behind."""
        import subprocess
        import sys

        script = (
            "import sys\n"
            "from repro.data.synthetic import synthetic_dataset\n"
            "from repro.engine import ReverseSkylineEngine\n"
            "from repro.serve import ServiceConfig\n"
            "from repro.serve.server import run_server\n"
            "ds = synthetic_dataset(80, [4, 4], seed=5)\n"
            "engine = ReverseSkylineEngine(ds, log_queries=False)\n"
            "run_server(engine, ServiceConfig(pool='thread', workers=2),\n"
            "           port_file=sys.argv[1])\n"
            "print('drained-clean', flush=True)\n"
        )
        port_file = str(tmp_path / "port")
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(root, "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", script, port_file],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            deadline = time.time() + 60
            port = None
            while time.time() < deadline:
                if os.path.exists(port_file):
                    content = open(port_file).read().strip()
                    if content:
                        port = int(content)
                        break
                if proc.poll() is not None:
                    break
                time.sleep(0.05)
            assert port is not None, proc.communicate()[1]
            with ServeClient("127.0.0.1", port) as client:
                assert client.query((0, 0))["ok"]
                proc.send_signal(signal.SIGTERM)
                out, err = proc.communicate(timeout=30)
        except BaseException:
            proc.kill()
            proc.communicate()
            raise
        assert proc.returncode == 0, err
        assert "drained-clean" in out
        assert not glob.glob("/dev/shm/repro-shm-*")
