"""Synthetic data generators (Section 5.2 reproduction)."""

import numpy as np
import pytest

from repro.data.synthetic import (
    NORMAL,
    UNIFORM,
    ZIPF,
    mixed_dataset,
    normal_value_sampler,
    synthetic_dataset,
)
from repro.errors import SchemaError


class TestNormalSampler:
    def test_values_in_domain(self, rng):
        sample = normal_value_sampler(11, rng)
        draws = [sample() for _ in range(500)]
        assert all(0 <= d < 11 for d in draws)

    def test_concentrated_around_middle(self, rng):
        # variance 3 over 11 values: the middle index must dominate.
        sample = normal_value_sampler(11, rng)
        draws = [sample() for _ in range(3000)]
        counts = np.bincount(draws, minlength=11)
        assert counts[5] > counts[0] * 3
        assert counts[5] > counts[10] * 3

    def test_single_value_domain(self, rng):
        sample = normal_value_sampler(1, rng)
        assert sample() == 0


class TestSyntheticDataset:
    def test_shape(self):
        ds = synthetic_dataset(100, [5, 7, 3], seed=1)
        assert len(ds) == 100
        assert ds.num_attributes == 3
        for r in ds.records:
            ds.schema.validate_record(r)

    def test_reproducible(self):
        a = synthetic_dataset(50, [5, 5], seed=9)
        b = synthetic_dataset(50, [5, 5], seed=9)
        assert a.records == b.records
        assert (a.space[0].matrix == b.space[0].matrix).all()

    def test_different_seeds_differ(self):
        a = synthetic_dataset(50, [5, 5], seed=9)
        b = synthetic_dataset(50, [5, 5], seed=10)
        assert a.records != b.records

    def test_empty(self):
        ds = synthetic_dataset(0, [4], seed=1)
        assert len(ds) == 0

    def test_negative_rejected(self):
        with pytest.raises(SchemaError):
            synthetic_dataset(-1, [4])

    def test_unknown_distribution(self):
        with pytest.raises(SchemaError, match="unknown distribution"):
            synthetic_dataset(10, [4], distribution="cauchy")

    def test_normal_marginal_is_centered(self):
        ds = synthetic_dataset(4000, [21], seed=3, distribution=NORMAL)
        values = [r[0] for r in ds.records]
        counts = np.bincount(values, minlength=21)
        # Middle bucket must beat the tails decisively.
        assert counts[10] > counts[0] * 2
        assert counts[10] > counts[20] * 2

    def test_uniform_marginal_is_flat(self):
        ds = synthetic_dataset(8000, [8], seed=3, distribution=UNIFORM)
        counts = np.bincount([r[0] for r in ds.records], minlength=8)
        assert counts.min() > 0.7 * counts.mean()

    def test_zipf_marginal_is_skewed(self):
        ds = synthetic_dataset(8000, [10], seed=3, distribution=ZIPF)
        counts = np.bincount([r[0] for r in ds.records], minlength=10)
        assert counts.max() > 4 * np.median(counts)


class TestMixedDataset:
    def test_schema_layout(self):
        ds = mixed_dataset(30, [4, 3], [(0.0, 10.0)], seed=2)
        assert ds.num_attributes == 3
        assert ds.schema[0].is_categorical
        assert ds.schema[2].is_numeric
        for r in ds.records:
            assert 0.0 <= r[2] <= 10.0

    def test_empty_numeric_range_rejected(self):
        with pytest.raises(SchemaError, match="empty"):
            mixed_dataset(10, [3], [(5.0, 5.0)])

    def test_queries_validate(self):
        ds = mixed_dataset(30, [4], [(0.0, 1.0)], seed=2)
        ds.validate_query((2, 0.5))
