"""Shared-scan multi-query TRS."""

import pytest

from repro.core.multiquery import SharedScanTRS
from repro.core.trs import TRS
from repro.data.queries import query_batch
from repro.data.synthetic import synthetic_dataset
from repro.errors import AlgorithmError
from repro.skyline.oracle import reverse_skyline_by_pruners
from repro.storage.disk import MemoryBudget


@pytest.fixture(scope="module")
def ds():
    return synthetic_dataset(600, [7, 6, 5], seed=121)


@pytest.fixture(scope="module")
def queries(ds):
    return query_batch(ds, 4, seed=3)


class TestCorrectness:
    def test_matches_oracle_per_query(self, ds, queries):
        engine = SharedScanTRS(ds, memory_fraction=0.10, page_bytes=128)
        out = engine.run_batch(queries)
        for q, ids in zip(out.queries, out.results):
            assert list(ids) == reverse_skyline_by_pruners(ds, q)

    def test_matches_single_query_trs(self, ds, queries):
        shared = SharedScanTRS(ds, memory_fraction=0.10, page_bytes=128)
        out = shared.run_batch(queries)
        solo = TRS(ds, memory_fraction=0.10, page_bytes=128)
        for q in queries:
            assert out.result_for(q) == solo.run(q).record_ids

    def test_single_query_batch(self, ds, queries):
        engine = SharedScanTRS(ds, memory_fraction=0.10, page_bytes=128)
        out = engine.run_batch(queries[:1])
        assert len(out.results) == 1

    def test_duplicate_queries_in_batch(self, ds, queries):
        engine = SharedScanTRS(ds, memory_fraction=0.10, page_bytes=128)
        out = engine.run_batch([queries[0], queries[0]])
        assert out.results[0] == out.results[1]

    def test_tiny_budget(self, ds, queries):
        engine = SharedScanTRS(ds, budget=MemoryBudget(2), page_bytes=64)
        out = engine.run_batch(queries[:2])
        for q, ids in zip(out.queries, out.results):
            assert list(ids) == reverse_skyline_by_pruners(ds, q)

    def test_empty_batch_rejected(self, ds):
        with pytest.raises(AlgorithmError):
            SharedScanTRS(ds).run_batch([])

    def test_result_for_unknown_query(self, ds, queries):
        engine = SharedScanTRS(ds, memory_fraction=0.10, page_bytes=128)
        out = engine.run_batch(queries[:1])
        with pytest.raises(AlgorithmError, match="not part"):
            out.result_for((0, 0, 0) if (0, 0, 0) != queries[0] else (1, 1, 1))


class TestSharing:
    def test_io_far_below_per_query_sum(self, ds, queries):
        shared = SharedScanTRS(ds, memory_fraction=0.10, page_bytes=128)
        out = shared.run_batch(queries)
        solo = TRS(ds, memory_fraction=0.10, page_bytes=128)
        solo_io = sum(solo.run(q).stats.io.total for q in queries)
        # Shared scans: the batch must cost well under half of k solo runs.
        assert out.stats.io.total < 0.5 * solo_io

    def test_checks_comparable_to_per_query_sum(self, ds, queries):
        shared = SharedScanTRS(ds, memory_fraction=0.10, page_bytes=128)
        out = shared.run_batch(queries)
        solo = TRS(ds, memory_fraction=0.10, page_bytes=128)
        solo_checks = sum(solo.run(q).stats.checks for q in queries)
        # Computation is not shared - only IO is. Allow modest deviation
        # from batching differences.
        assert out.stats.checks == pytest.approx(solo_checks, rel=0.3)

    def test_per_query_checks_sum_to_total(self, ds, queries):
        shared = SharedScanTRS(ds, memory_fraction=0.10, page_bytes=128)
        out = shared.run_batch(queries)
        assert sum(out.per_query_checks) == out.stats.checks

    def test_two_passes_for_whole_batch(self, ds, queries):
        shared = SharedScanTRS(ds, memory_fraction=0.20, page_bytes=128)
        out = shared.run_batch(queries)
        # All queries answered in two passes total when survivors fit.
        assert out.stats.db_passes == 2
