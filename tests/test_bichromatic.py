"""Bichromatic reverse skyline."""

import numpy as np
import pytest

from repro.bichromatic.query import (
    bichromatic_reverse_skyline,
    bichromatic_reverse_skyline_naive,
)
from repro.data.dataset import Dataset
from repro.data.synthetic import mixed_dataset, synthetic_dataset
from repro.errors import AlgorithmError, SchemaError
from repro.skyline.domination import dominates


@pytest.fixture(scope="module")
def populations():
    subjects = synthetic_dataset(150, [6, 5, 4], seed=51)
    # Competitors share the schema and space (same domains).
    rng = np.random.default_rng(52)
    competitors = subjects.with_records(
        [
            tuple(int(rng.integers(0, c)) for c in subjects.schema.cardinalities())
            for _ in range(80)
        ],
        name="competitors",
    )
    return subjects, competitors


class TestCorrectness:
    def test_tree_matches_naive(self, populations):
        subjects, competitors = populations
        rng = np.random.default_rng(3)
        for _ in range(4):
            q = tuple(int(rng.integers(0, c)) for c in subjects.schema.cardinalities())
            naive = bichromatic_reverse_skyline_naive(subjects, competitors, q)
            tree = bichromatic_reverse_skyline(subjects, competitors, q)
            assert tree == naive

    def test_definition_spotcheck(self, populations):
        subjects, competitors = populations
        q = (0, 0, 0)
        result = set(bichromatic_reverse_skyline(subjects, competitors, q))
        for a_id, a in enumerate(subjects.records):
            dominated = any(
                dominates(subjects.space, b, q, a) for b in competitors.records
            )
            assert (a_id not in result) == dominated

    def test_identical_subject_and_competitor_values_count(self, populations):
        """Cross-population: a competitor equal to a subject still prunes
        it (different entity), unlike monochromatic self-exclusion."""
        subjects, _ = populations
        competitors = subjects.with_records([subjects.records[0]])
        q = tuple(
            (v + 1) % c
            for v, c in zip(subjects.records[0], subjects.schema.cardinalities())
        )
        result = bichromatic_reverse_skyline(subjects, competitors, q)
        if any(
            subjects.space.d(i, subjects.records[0][i], q[i]) > 0
            for i in range(subjects.num_attributes)
        ):
            assert 0 not in result

    def test_empty_competitors_returns_all_subjects(self, populations):
        subjects, _ = populations
        empty = subjects.with_records([])
        q = (1, 1, 1)
        assert bichromatic_reverse_skyline(subjects, empty, q) == list(
            range(len(subjects))
        )

    def test_empty_subjects(self, populations):
        subjects, competitors = populations
        none = subjects.with_records([])
        assert bichromatic_reverse_skyline(none, competitors, (0, 0, 0)) == []


class TestValidation:
    def test_schema_mismatch(self, populations):
        subjects, _ = populations
        other = synthetic_dataset(10, [6, 5], seed=1)
        with pytest.raises(SchemaError, match="same schema"):
            bichromatic_reverse_skyline(subjects, other, (0, 0, 0))

    def test_mixed_schema_needs_naive(self):
        subjects = mixed_dataset(20, [3], [(0.0, 1.0)], seed=1)
        with pytest.raises(AlgorithmError, match="naive"):
            bichromatic_reverse_skyline(subjects, subjects, (0, 0.5))

    def test_naive_handles_mixed(self):
        ds = mixed_dataset(40, [3], [(0.0, 1.0)], seed=1)
        result = bichromatic_reverse_skyline_naive(ds, ds, (0, 0.5))
        # Every subject with a same-valued competitor... here subjects ==
        # competitors, so each subject has an identical competitor that
        # prunes it unless the query ties it everywhere.
        for a_id in result:
            a = ds[a_id]
            assert all(
                ds.space.d(i, a[i], (0, 0.5)[i]) == 0 for i in range(2)
            )

    def test_invalid_query(self, populations):
        subjects, competitors = populations
        with pytest.raises(SchemaError):
            bichromatic_reverse_skyline(subjects, competitors, (99, 0, 0))
