"""Integration: every production algorithm agrees with both oracles on
randomized datasets, budgets, page sizes and layouts — the strongest
correctness statement in the suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.brs import BRS
from repro.core.naive import NaiveRS
from repro.core.numeric import NumericTRS
from repro.core.srs import SRS
from repro.core.tiled import TSRS, TTRS
from repro.core.trs import TRS
from repro.data.dataset import Dataset
from repro.data.schema import Schema
from repro.data.synthetic import mixed_dataset
from repro.dissim.generators import random_dissimilarity
from repro.dissim.space import DissimilaritySpace
from repro.skyline.oracle import (
    reverse_skyline_by_definition,
    reverse_skyline_by_pruners,
)
from repro.storage.disk import MemoryBudget

ALL_ALGOS = [NaiveRS, BRS, SRS, TRS, TSRS, TTRS, NumericTRS]


@st.composite
def workload(draw):
    m = draw(st.integers(1, 4))
    cards = [draw(st.integers(2, 6)) for _ in range(m)]
    seed = draw(st.integers(0, 2**16))
    n = draw(st.integers(0, 70))
    dup_boost = draw(st.booleans())
    rng = np.random.default_rng(seed)
    schema = Schema.categorical(cards)
    space = DissimilaritySpace([random_dissimilarity(c, rng) for c in cards])
    records = [tuple(int(rng.integers(0, c)) for c in cards) for _ in range(n)]
    if dup_boost and records:
        # Make duplicates likely: repeat a random subset.
        extra = [records[int(rng.integers(0, len(records)))] for _ in range(n // 2)]
        records += extra
    ds = Dataset(schema, records, space, validate=False)
    query = tuple(int(rng.integers(0, c)) for c in cards)
    budget = draw(st.integers(2, 6))
    page_bytes = draw(st.sampled_from([16, 32, 64, 256]))
    return ds, query, budget, page_bytes


@given(workload())
@settings(max_examples=25, deadline=None)
def test_all_algorithms_match_both_oracles(wl):
    ds, q, budget, page_bytes = wl
    codec_bytes = 4 + 4 * ds.num_attributes
    if page_bytes < codec_bytes:
        page_bytes = codec_bytes
    expected = reverse_skyline_by_pruners(ds, q)
    assert expected == reverse_skyline_by_definition(ds, q)
    for cls in ALL_ALGOS:
        algo = cls(ds, budget=MemoryBudget(budget), page_bytes=page_bytes)
        got = list(algo.run(q).record_ids)
        assert got == expected, f"{cls.name}: {got} != {expected}"


@given(workload())
@settings(max_examples=10, deadline=None)
def test_repeated_runs_are_deterministic(wl):
    ds, q, budget, page_bytes = wl
    page_bytes = max(page_bytes, 4 + 4 * ds.num_attributes)
    algo = TRS(ds, budget=MemoryBudget(budget), page_bytes=page_bytes)
    first = algo.run(q)
    second = algo.run(q)
    assert first.record_ids == second.record_ids
    assert first.stats.checks == second.stats.checks
    assert first.stats.io.total == second.stats.io.total


@pytest.mark.smoke
@pytest.mark.parametrize("num_buckets", [3, 10])
def test_numeric_trs_against_oracle_mixed(num_buckets):
    ds = mixed_dataset(120, [4], [(0.0, 1.0)], seed=77)
    rng = np.random.default_rng(5)
    for _ in range(3):
        q = (int(rng.integers(0, 4)), float(rng.uniform(0, 1)))
        expected = reverse_skyline_by_pruners(ds, q)
        algo = NumericTRS(
            ds, num_buckets=num_buckets, budget=MemoryBudget(3), page_bytes=64
        )
        assert list(algo.run(q).record_ids) == expected


def test_two_pass_claim_holds_on_typical_data():
    """Section 5.7: in practice the intermediate results fit one batch, so
    every algorithm completes in two passes over the database."""
    from repro.data.synthetic import synthetic_dataset
    from repro.data.queries import query_batch

    ds = synthetic_dataset(2000, [10] * 4, seed=55)
    q = query_batch(ds, 1, seed=8)[0]
    for cls in (BRS, SRS, TRS):
        stats = cls(ds, memory_fraction=0.10, page_bytes=256).run(q).stats
        assert stats.db_passes == 2, cls.name
        assert stats.phase2_batches == 1
