"""Numeric dissimilarities and their interval bounds (Section 6 support)."""

import pytest

from repro.dissim.numeric import AbsoluteDifference, NumericDissimilarity, ScaledDifference
from repro.errors import DissimilarityError


class TestNumericDissimilarity:
    def test_wraps_callable(self):
        d = NumericDissimilarity(lambda a, b: (a - b) ** 2)
        assert d(3.0, 1.0) == 4.0
        assert d(1.0, 1.0) == 0.0

    def test_rejects_non_callable(self):
        with pytest.raises(DissimilarityError, match="callable"):
            NumericDissimilarity(42)

    def test_rejects_inverted_domain(self):
        with pytest.raises(DissimilarityError, match="invalid numeric domain"):
            NumericDissimilarity(lambda a, b: 0.0, lo=5.0, hi=1.0)

    def test_validate_value_bounds(self):
        d = NumericDissimilarity(lambda a, b: abs(a - b), lo=0.0, hi=10.0)
        d.validate_value(5.0)
        with pytest.raises(DissimilarityError, match="below"):
            d.validate_value(-1.0)
        with pytest.raises(DissimilarityError, match="above"):
            d.validate_value(11.0)
        with pytest.raises(DissimilarityError, match="non-numeric"):
            d.validate_value("x")

    def test_nan_result_rejected(self):
        d = NumericDissimilarity(lambda a, b: float("nan"))
        with pytest.raises(DissimilarityError, match="non-finite"):
            d(1.0, 2.0)

    def test_sampled_interval_bounds_cover_extremes(self):
        # Non-metric: squared difference. Bounds must contain all samples.
        d = NumericDissimilarity(lambda a, b: (a - b) ** 2)
        lo, hi = d.interval_bounds(0.0, 1.0, 2.0, 3.0)
        assert lo <= (1.0 - 2.0) ** 2 <= hi
        assert lo <= (0.0 - 3.0) ** 2 <= hi


class TestAbsoluteDifference:
    def test_values(self):
        d = AbsoluteDifference()
        assert d(2.0, 5.5) == 3.5

    @pytest.mark.parametrize(
        "a_lo,a_hi,b_lo,b_hi,want_lo,want_hi",
        [
            (0, 1, 2, 3, 1, 3),  # disjoint, a below b
            (2, 3, 0, 1, 1, 3),  # disjoint, a above b
            (0, 2, 1, 3, 0, 3),  # overlapping -> min 0
            (1, 1, 1, 1, 0, 0),  # degenerate points
        ],
    )
    def test_exact_interval_bounds(self, a_lo, a_hi, b_lo, b_hi, want_lo, want_hi):
        lo, hi = AbsoluteDifference().interval_bounds(a_lo, a_hi, b_lo, b_hi)
        assert lo == want_lo
        assert hi == want_hi

    def test_bounds_are_tight_against_sampling(self):
        d = AbsoluteDifference()
        lo, hi = d.interval_bounds(0.0, 2.0, 1.5, 4.0)
        samples = [
            abs(a - b)
            for a in (0.0, 0.5, 1.0, 1.5, 2.0)
            for b in (1.5, 2.0, 3.0, 4.0)
        ]
        assert lo <= min(samples)
        assert hi >= max(samples)
        assert hi == max(samples)  # corner attained


class TestScaledDifference:
    def test_scaling(self):
        d = ScaledDifference(2.0)
        assert d(1.0, 4.0) == 6.0

    def test_rejects_non_positive_weight(self):
        with pytest.raises(DissimilarityError, match="positive"):
            ScaledDifference(0.0)
        with pytest.raises(DissimilarityError, match="positive"):
            ScaledDifference(-1.0)

    def test_interval_bounds_scale(self):
        base_lo, base_hi = AbsoluteDifference().interval_bounds(0, 1, 3, 4)
        lo, hi = ScaledDifference(3.0).interval_bounds(0, 1, 3, 4)
        assert lo == 3 * base_lo
        assert hi == 3 * base_hi
