"""Tests for the observability subsystem (repro.obs).

Covers the metrics registry (types, labels, histogram bucket edges,
snapshot/merge/reset), structured tracing (nesting, graft determinism,
trace-context propagation across serial/thread/process pools), the
exporters (Prometheus exposition and JSON), the per-phase profiler, the
memo-vs-dedup cache accounting split, and the hard invariant the whole
subsystem is built around: instrumented runs are bit-identical to plain
ones.
"""

from __future__ import annotations

import pickle

import pytest

from repro.engine import ReverseSkylineEngine
from repro.errors import ReproError
from repro.exec.executor import QueryExecutor
from repro.data.queries import query_batch
from repro.obs import hooks
from repro.obs.export import (
    render_trace,
    snapshot_to_json,
    snapshot_to_prometheus,
    trace_to_json,
)
from repro.obs.metrics import MetricsRegistry, series_name
from repro.obs.profile import QueryProfiler, phase_breakdown
from repro.obs.trace import SpanRecord, Tracer, graft, span_tree


@pytest.fixture
def obs_on():
    """Enable observability with clean state; restore afterwards."""
    was = hooks.is_enabled()
    hooks.enable(reset_state=True)
    yield hooks
    hooks.reset()
    if not was:
        hooks.disable()


@pytest.fixture
def obs_off():
    """Guarantee observability is off (and state clean) for the test."""
    was = hooks.is_enabled()
    hooks.disable()
    hooks.reset()
    yield hooks
    if was:
        hooks.enable()


class TestMetricsRegistry:
    def test_counter_gauge_histogram_roundtrip(self):
        reg = MetricsRegistry()
        reg.inc("c_total", 2)
        reg.inc("c_total", 3)
        reg.set_gauge("g", 7.5)
        reg.observe("h_seconds", 0.02)
        snap = reg.snapshot()
        assert snap.counters["c_total"] == 5
        assert snap.gauges["g"] == 7.5
        assert snap.histograms["h_seconds"].count == 1

    def test_labels_make_distinct_series(self):
        reg = MetricsRegistry()
        reg.inc("io_total", 1, kind="read")
        reg.inc("io_total", 2, kind="write")
        snap = reg.snapshot()
        assert snap.counters[series_name("io_total", {"kind": "read"})] == 1
        assert snap.counters[series_name("io_total", {"kind": "write"})] == 2

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        reg.inc("x_total", 1, b="2", a="1")
        reg.inc("x_total", 1, a="1", b="2")
        snap = reg.snapshot()
        assert snap.counters['x_total{a="1",b="2"}'] == 2

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.inc("thing", 1)
        with pytest.raises(ReproError):
            reg.set_gauge("thing", 1.0)

    def test_reset_zeroes_but_keeps_registrations(self):
        reg = MetricsRegistry()
        reg.inc("c_total", 9)
        reg.reset()
        snap = reg.snapshot()
        assert snap.counters["c_total"] == 0

    def test_histogram_bucket_edges_use_le_semantics(self):
        # An observation exactly equal to a bound belongs to that bucket.
        reg = MetricsRegistry()
        bounds = (1.0, 2.0, 5.0)
        for v in (0.5, 1.0, 2.0, 2.0001, 5.0, 99.0):
            reg.observe("h", v, buckets=bounds)
        h = reg.snapshot().histograms["h"]
        assert h.bounds == bounds
        # Raw per-bucket counts: (-inf,1], (1,2], (2,5], (5,+inf)
        assert h.counts == (2, 1, 2, 1)
        cumulative = dict(h.cumulative())
        assert cumulative[1.0] == 2
        assert cumulative[2.0] == 3
        assert cumulative[5.0] == 5
        assert cumulative[float("inf")] == 6
        assert h.sum == pytest.approx(0.5 + 1.0 + 2.0 + 2.0001 + 5.0 + 99.0)

    def test_snapshot_pickles_and_merges(self):
        reg = MetricsRegistry()
        reg.inc("c_total", 4)
        reg.observe("h", 1.5, buckets=(1.0, 2.0))
        snap = pickle.loads(pickle.dumps(reg.snapshot()))
        other = MetricsRegistry()
        other.inc("c_total", 6)
        other.observe("h", 0.5, buckets=(1.0, 2.0))
        other.merge(snap)
        merged = other.snapshot()
        assert merged.counters["c_total"] == 10
        assert merged.histograms["h"].count == 2

    def test_merge_mismatched_histogram_bounds_raises(self):
        a = MetricsRegistry()
        a.observe("h", 1.0, buckets=(1.0, 2.0))
        b = MetricsRegistry()
        b.observe("h", 1.0, buckets=(3.0,))
        with pytest.raises(ReproError):
            b.merge(a.snapshot())


class TestTracer:
    def test_nesting_follows_context(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        recs = tr.records()
        assert [r.name for r in recs] == ["outer", "inner"]
        assert recs[0].parent_id is None
        assert recs[1].parent_id == recs[0].span_id

    def test_error_recorded_as_attr(self):
        tr = Tracer()
        with pytest.raises(ValueError):
            with tr.span("boom"):
                raise ValueError("x")
        (rec,) = tr.records()
        assert rec.attr("error") == "ValueError"

    def test_graft_rebases_ids_and_reparents_roots(self):
        records = (
            SpanRecord(0, None, "root", 0.0, 1.0),
            SpanRecord(1, 0, "child", 0.1, 0.9),
        )
        grafted = graft(records, parent_id=50, base_id=100)
        assert [(r.span_id, r.parent_id) for r in grafted] == [(100, 50), (101, 100)]

    def test_span_tree_groups_children(self):
        records = (
            SpanRecord(0, None, "a", 0.0, 1.0),
            SpanRecord(1, 0, "b", 0.0, 0.5),
            SpanRecord(2, 0, "c", 0.5, 1.0),
        )
        tree = span_tree(records)
        assert [r.name for r in tree[0]] == ["b", "c"]
        assert [r.name for r in tree[None]] == ["a"]


def _batch_trace(dataset, queries, *, pool, workers=2, cache=True):
    """Run one batch instrumented; return (report, trace records)."""
    engine = ReverseSkylineEngine(dataset, memory_fraction=0.2)
    executor = QueryExecutor(engine, pool=pool, workers=workers, cache=cache)
    hooks.reset()
    report = executor.run_batch(queries)
    return report, hooks.tracer().records()


class TestTracePropagation:
    """One batch -> one coherent trace tree, whatever pool ran it."""

    @pytest.mark.parametrize("pool", ["serial", "thread", "process"])
    def test_per_query_spans_reparent_under_batch_span(
        self, small_dataset, obs_on, pool
    ):
        queries = query_batch(small_dataset, 4, seed=5)
        try:
            report, recs = _batch_trace(small_dataset, queries, pool=pool)
        except (OSError, PermissionError) as exc:  # pragma: no cover
            pytest.skip(f"pool unavailable in sandbox: {exc}")
        assert report.ok
        tree = span_tree(recs)
        roots = tree[None]
        assert [r.name for r in roots] == ["exec.batch"]
        batch = roots[0]
        job_roots = tree[batch.span_id]
        # Every computed query contributes exactly one exec.query child.
        assert [r.name for r in job_roots] == ["exec.query"] * report.computed
        for job in job_roots:
            names = [r.name for r in tree[job.span_id]]
            assert names == ["algorithm.run"]
            run = tree[job.span_id][0]
            phases = [r.name for r in tree[run.span_id]]
            assert phases == ["algorithm.stage", "phase1", "phase2"]

    def test_trace_ids_identical_across_pools(self, small_dataset, obs_on):
        queries = query_batch(small_dataset, 4, seed=6)
        shapes = {}
        for pool in ("serial", "thread", "process"):
            try:
                _, recs = _batch_trace(small_dataset, queries, pool=pool)
            except (OSError, PermissionError) as exc:  # pragma: no cover
                pytest.skip(f"pool unavailable in sandbox: {exc}")
            shapes[pool] = tuple(
                (r.span_id, r.parent_id, r.name) for r in recs
            )
        assert shapes["serial"] == shapes["thread"] == shapes["process"]

    def test_process_pool_worker_metrics_merge_home(self, small_dataset, obs_on):
        queries = query_batch(small_dataset, 4, seed=7)
        try:
            report, _ = _batch_trace(
                small_dataset, queries, pool="process", cache=False
            )
        except (OSError, PermissionError) as exc:  # pragma: no cover
            pytest.skip(f"process pool unavailable in sandbox: {exc}")
        assert report.ok
        snap = hooks.snapshot()
        key = series_name("repro_queries_total", {"algorithm": "TRS"})
        assert snap.counters[key] == len(queries)
        # Worker-side domination checks must equal the merged report's.
        total_checks = (
            snap.counters[series_name("repro_domination_checks_total", {"phase": "1"})]
            + snap.counters[
                series_name("repro_domination_checks_total", {"phase": "2"})
            ]
        )
        assert total_checks == report.stats.checks


class TestBitIdenticalResults:
    def test_instrumented_run_matches_plain(self, small_dataset, obs_off):
        queries = query_batch(small_dataset, 5, seed=9)
        engine = ReverseSkylineEngine(small_dataset, memory_fraction=0.2)
        plain = engine.query_many(queries, pool="serial", cache=False)
        with QueryProfiler():
            engine2 = ReverseSkylineEngine(small_dataset, memory_fraction=0.2)
            traced = engine2.query_many(queries, pool="serial", cache=False)
        assert plain.record_id_sets() == traced.record_id_sets()
        assert plain.stats.checks == traced.stats.checks
        assert plain.stats.io.total == traced.stats.io.total

    def test_disabled_hooks_emit_nothing(self, small_dataset, obs_off):
        engine = ReverseSkylineEngine(small_dataset, memory_fraction=0.2)
        engine.query_many(query_batch(small_dataset, 2, seed=10), pool="serial")
        snap = hooks.snapshot()
        # reset() keeps registrations but zeroes them; a disabled run must
        # not have bumped anything or recorded any spans.
        assert all(v == 0 for v in snap.counters.values())
        assert all(h.count == 0 for h in snap.histograms.values())
        assert not hooks.tracer().records()


class TestCacheAccounting:
    def test_memo_vs_dedup_hits_are_distinct(self, small_dataset):
        queries = query_batch(small_dataset, 3, seed=11)
        engine = ReverseSkylineEngine(small_dataset, memory_fraction=0.2)
        executor = QueryExecutor(engine, pool="serial", cache=True)
        first = executor.run_batch(list(queries) + [queries[0]])
        # queries[0] repeats within the cold batch: in-batch dedup.
        assert first.memo_hits == 0
        assert first.dedup_hits == 1
        assert first.cache_hits == 1
        second = executor.run_batch(queries)
        # Warm rerun: every hit comes from the cross-batch memo.
        assert second.memo_hits == len(queries)
        assert second.dedup_hits == 0
        summary = second.summary()
        assert summary["memo_hits"] == len(queries)
        assert summary["dedup_hits"] == 0

    def test_counters_exposed_through_registry(self, small_dataset, obs_on):
        queries = query_batch(small_dataset, 2, seed=12)
        engine = ReverseSkylineEngine(small_dataset, memory_fraction=0.2)
        executor = QueryExecutor(engine, pool="serial", cache=True)
        executor.run_batch(list(queries) + [queries[0]])
        executor.run_batch(queries)
        snap = hooks.snapshot()
        assert snap.counters["repro_batch_dedup_hits_total"] == 1
        assert snap.counters["repro_batch_memo_hits_total"] == 2
        hit_key = series_name(
            "repro_result_cache_lookups_total", {"outcome": "hit"}
        )
        assert snap.counters[hit_key] == 2

    def test_no_cache_reports_zero_hits_of_either_kind(self, small_dataset):
        queries = query_batch(small_dataset, 2, seed=13)
        engine = ReverseSkylineEngine(small_dataset, memory_fraction=0.2)
        executor = QueryExecutor(engine, pool="serial", cache=None)
        report = executor.run_batch(list(queries) + [queries[0]])
        assert report.memo_hits == 0
        assert report.dedup_hits == 0
        assert report.cache_hits == 0


class TestExporters:
    def test_prometheus_format(self, obs_on):
        hooks.inc("repro_demo_total", 3, kind="x")
        hooks.observe("repro_demo_seconds", 0.002)
        text = snapshot_to_prometheus(hooks.snapshot())
        assert "# TYPE repro_demo_total counter" in text
        assert 'repro_demo_total{kind="x"} 3' in text
        assert "# TYPE repro_demo_seconds histogram" in text
        assert 'repro_demo_seconds_bucket{le="0.0025"} 1' in text
        assert 'repro_demo_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_demo_seconds_count 1" in text

    def test_prometheus_histogram_with_labels_keeps_suffix_convention(
        self, obs_on
    ):
        hooks.observe("h_seconds", 0.1, op="read")
        text = snapshot_to_prometheus(hooks.snapshot())
        assert 'h_seconds_bucket{op="read",le="0.1"} 1' in text
        assert 'h_seconds_sum{op="read"}' in text

    def test_exports_are_deterministic(self, obs_on):
        for name in ("b_total", "a_total"):
            hooks.inc(name, 1)
        one = snapshot_to_prometheus(hooks.snapshot())
        two = snapshot_to_prometheus(hooks.snapshot())
        assert one == two
        assert one.index("a_total") < one.index("b_total")
        assert snapshot_to_json(hooks.snapshot()) == snapshot_to_json(
            hooks.snapshot()
        )

    def test_trace_json_and_render(self, obs_on):
        with hooks.span("outer", tag="t"):
            with hooks.span("inner"):
                pass
        recs = hooks.tracer().records()
        doc = trace_to_json(recs)
        assert '"name": "outer"' in doc
        rendered = render_trace(recs)
        assert rendered.splitlines()[0].startswith("outer")
        assert rendered.splitlines()[1].startswith("  inner")


class TestProfiler:
    def test_breakdown_attributes_phase_time(self, small_dataset):
        engine = ReverseSkylineEngine(small_dataset, memory_fraction=0.2)
        queries = query_batch(small_dataset, 3, seed=14)
        with QueryProfiler() as prof:
            engine.query_many(queries, pool="serial", cache=False)
        assert not hooks.is_enabled()
        names = {row.name for row in prof.breakdown()}
        assert {"exec.batch", "exec.query", "algorithm.run", "phase1", "phase2"} <= names
        by_name = {row.name: row for row in prof.breakdown()}
        assert by_name["phase1"].count == len(queries)
        # Self time never exceeds total time.
        for row in prof.breakdown():
            assert 0.0 <= row.self_s <= row.total_s + 1e-9

    def test_phase_breakdown_self_time_subtracts_children(self):
        records = (
            SpanRecord(0, None, "parent", 0.0, 1.0),
            SpanRecord(1, 0, "child", 0.0, 0.75),
        )
        rows = {r.name: r for r in phase_breakdown(records)}
        assert rows["parent"].self_s == pytest.approx(0.25)
        assert rows["child"].self_s == pytest.approx(0.75)

    def test_profiler_restores_prior_enabled_state(self, obs_on):
        with QueryProfiler():
            pass
        assert hooks.is_enabled()


class TestEngineCounters:
    def test_retry_counters_on_faulty_batch(self, small_dataset, obs_on):
        from repro.faults import FaultInjector, FaultPlan, RetryPolicy

        plan = FaultPlan.storm(0.05)
        engine = ReverseSkylineEngine(
            small_dataset,
            memory_fraction=0.2,
            fault_injector=FaultInjector(plan, seed=3),
            retry_policy=RetryPolicy(sleep=lambda s: None),
        )
        executor = QueryExecutor(engine, pool="serial", cache=False)
        report = executor.run_batch(query_batch(small_dataset, 4, seed=15))
        snap = hooks.snapshot()
        io_retries = snap.counters.get(
            series_name("repro_io_retries_total", {"op": "read"}), 0
        ) + snap.counters.get(
            series_name("repro_io_retries_total", {"op": "write"}), 0
        )
        assert io_retries == report.stats.io.retries
        assert snap.counters.get("repro_io_faults_total", 0) >= 0
