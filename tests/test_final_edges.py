"""Last-mile edge coverage: scan offsets, subset caching, ordering edge
cases, uncertain thresholds, report ordering stability."""

import pytest

from repro.data.queries import query_batch
from repro.data.schema import Schema
from repro.data.synthetic import synthetic_dataset
from repro.engine import ReverseSkylineEngine
from repro.experiments.crossover import two_pass_threshold
from repro.storage.codec import RecordCodec
from repro.storage.disk import DiskSimulator
from repro.uncertain.probabilistic import probabilistic_reverse_skyline


class TestScanOffsets:
    def test_scan_from_offset(self):
        disk = DiskSimulator(64)
        pf = disk.create_file("f", RecordCodec(Schema.categorical([5] * 3)))
        with pf.writer() as w:
            for i in range(12):
                w.append(i, (0, 0, 0))
        pages = [pid for pid, _ in pf.scan(start_page=1)]
        assert pages == [1, 2]
        records = [rid for pid in pages for rid, _ in pf.read_page(pid)]
        assert records == list(range(4, 12))


class TestSubsetCaching:
    def test_subset_engines_cached_by_indices(self):
        ds = synthetic_dataset(120, [5, 4, 3], seed=231)
        engine = ReverseSkylineEngine(ds, memory_fraction=0.3)
        projected = ds.project([0, 2])
        q = projected.records[0]
        engine.query_subset([0, 2], q)
        first = engine._subset_engines[(0, 2)]
        engine.query_subset(["A1", "A3"], q)  # same indices by name
        assert engine._subset_engines[(0, 2)] is first
        assert len(engine._subset_engines) == 1


class TestCrossoverEdge:
    def test_single_fraction_grid(self):
        ds = synthetic_dataset(600, [8, 8], seed=232)
        point = two_pass_threshold(ds, "TRS", fractions=(0.5,), page_bytes=128)
        assert list(point.passes_by_fraction) == [0.5]


class TestUncertainThresholdEdges:
    def test_threshold_zero_returns_all_alive(self):
        ds = synthetic_dataset(30, [4, 4], seed=233)
        q = query_batch(ds, 1, seed=1)[0]
        result = probabilistic_reverse_skyline(ds, [0.5] * len(ds), q, threshold=0.0)
        assert set(result.record_ids) == set(range(len(ds)))

    def test_threshold_one_keeps_only_certain(self):
        ds = synthetic_dataset(30, [4, 4], seed=233)
        q = query_batch(ds, 1, seed=1)[0]
        result = probabilistic_reverse_skyline(ds, [1.0] * len(ds), q, threshold=1.0)
        from repro.skyline.oracle import reverse_skyline_by_pruners

        assert list(result.record_ids) == reverse_skyline_by_pruners(ds, q)


class TestEngineAfterMutationlessReuse:
    def test_many_queries_share_prepared_state(self):
        ds = synthetic_dataset(200, [6, 5], seed=234)
        engine = ReverseSkylineEngine(ds, memory_fraction=0.3)
        for q in query_batch(ds, 6, seed=5):
            engine.query(q)
        assert engine.summary()["queries"] == 6
        assert engine.summary()["prepared_algorithms"] == ["TRS"]


class TestTableFormatterNegative:
    def test_negative_numbers(self):
        from repro.experiments.tables import format_table

        text = format_table(["x"], [[-1234.5], [-0.25]])
        assert "-1,234" in text or "-1,235" in text
        assert "-0.25" in text
