"""The TRS traversals (Algorithms 4 and 5) in isolation."""

import pytest

from repro.altree.tree import ALTree
from repro.core.trs import is_prunable, prune_tree
from repro.data.examples import running_example, running_example_query
from repro.data.synthetic import synthetic_dataset
from repro.skyline.domination import dominates


@pytest.fixture(scope="module")
def example():
    return running_example(), running_example_query()


def build_tree(dataset, ids=None, order=None):
    order = order or list(range(dataset.num_attributes))
    tree = ALTree(order)
    for i in ids if ids is not None else range(len(dataset)):
        tree.insert(i, dataset[i])
    return tree


def qd_of(dataset, c, q):
    tables = dataset.space.tables()
    return [tables[i][c[i]][q[i]] for i in range(dataset.num_attributes)]


class TestIsPrunable:
    def test_finds_pruner_in_example(self, example):
        ds, q = example
        tables = ds.space.tables()
        # Batch {O1, O4, O6} sorted (paper Figure 2, first batch); check O1
        # with itself removed: O4 remains and prunes it.
        tree = build_tree(ds, ids=[3, 5])
        ok, checks = is_prunable(tree, ds[0], qd_of(ds, ds[0], q), tables)
        assert ok
        assert checks >= 1

    def test_o6_not_prunable_in_first_batch(self, example):
        ds, q = example
        tables = ds.space.tables()
        tree = build_tree(ds, ids=[0, 3])  # O1, O4
        ok, checks = is_prunable(tree, ds[5], qd_of(ds, ds[5], q), tables)
        assert not ok
        # Group-level elimination: one check discharges both O1 and O4
        # (they share the full path). Paper Section 4.3: 2 checks.
        assert checks == 2

    def test_group_level_saves_checks(self, example):
        ds, q = example
        tables = ds.space.tables()
        # 50 copies of O1's path: the shared prefix means the check count
        # cannot scale with the number of objects.
        tree = ALTree([0, 1, 2])
        for i in range(50):
            tree.insert(100 + i, ds[0])
        ok, checks = is_prunable(tree, ds[5], qd_of(ds, ds[5], q), tables)
        assert not ok
        assert checks == 2  # same as with 2 objects

    def test_empty_tree(self, example):
        ds, q = example
        tree = ALTree([0, 1, 2])
        ok, checks = is_prunable(tree, ds[0], qd_of(ds, ds[0], q), ds.space.tables())
        assert not ok and checks == 0

    def test_agrees_with_pairwise_domination(self):
        ds = synthetic_dataset(150, [5, 4, 6], seed=13)
        tables = ds.space.tables()
        q = (2, 1, 3)
        tree = build_tree(ds)
        for c_id in range(0, 60):
            c = ds[c_id]
            tree.remove_object(c_id, c)
            got, _ = is_prunable(tree, c, qd_of(ds, c, q), tables)
            want = any(
                dominates(ds.space, ds[y], q, c)
                for y in range(len(ds))
                if y != c_id
            )
            tree.insert(c_id, c)
            assert got == want, f"object {c_id}"

    def test_child_ordering_flag_same_answer(self):
        ds = synthetic_dataset(120, [5, 5], seed=14)
        tables = ds.space.tables()
        q = (0, 0)
        tree = build_tree(ds, order=[0, 1])
        for c_id in range(30):
            c = ds[c_id]
            tree.remove_object(c_id, c)
            a, _ = is_prunable(tree, c, qd_of(ds, c, q), tables, order_children=True)
            b, _ = is_prunable(tree, c, qd_of(ds, c, q), tables, order_children=False)
            tree.insert(c_id, c)
            assert a == b


class TestPruneTree:
    def test_removes_exactly_the_dominated(self):
        ds = synthetic_dataset(120, [5, 4, 6], seed=15)
        tables = ds.space.tables()
        q = (1, 2, 0)
        for e_id in (0, 7, 33):
            tree = build_tree(ds)
            e = ds[e_id]
            expected_removed = {
                x_id
                for x_id in range(len(ds))
                if x_id != e_id and dominates(ds.space, e, q, ds[x_id])
            }
            removed, checks = prune_tree(tree, e_id, e, q, tables)
            remaining = {rid for rid, _ in tree.iter_entries()}
            assert removed == len(expected_removed)
            assert remaining == set(range(len(ds))) - expected_removed
            tree.check_invariants()

    def test_never_removes_e_itself(self, example):
        ds, q = example
        tables = ds.space.tables()
        tree = build_tree(ds)
        # O1 prunes its duplicate O4 but must survive itself.
        prune_tree(tree, 0, ds[0], q, tables)
        remaining = {rid for rid, _ in tree.iter_entries()}
        assert 0 in remaining
        assert 3 not in remaining

    def test_e_absent_from_tree(self, example):
        ds, q = example
        tables = ds.space.tables()
        tree = build_tree(ds, ids=[2, 5])  # the result set {O3, O6}
        removed, _ = prune_tree(tree, 0, ds[0], q, tables)
        assert removed == 0
        assert tree.num_objects == 2

    def test_idempotent(self):
        ds = synthetic_dataset(80, [4, 4], seed=16)
        tables = ds.space.tables()
        q = (0, 1)
        tree = build_tree(ds, order=[0, 1])
        first, _ = prune_tree(tree, 0, ds[0], q, tables)
        second, _ = prune_tree(tree, 0, ds[0], q, tables)
        assert second == 0
