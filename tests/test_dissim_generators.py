"""Random dissimilarity generators and metricity analysis."""

import numpy as np
import pytest

from repro.dissim.analysis import analyze_metricity
from repro.dissim.generators import (
    metric_like_dissimilarity,
    nonmetric_dissimilarity,
    random_dissimilarity,
    random_matrix,
)
from repro.errors import DissimilarityError


class TestRandomMatrix:
    def test_shape_and_diagonal(self, rng):
        arr = random_matrix(10, rng)
        assert arr.shape == (10, 10)
        assert np.diagonal(arr).sum() == 0.0

    def test_values_in_unit_interval(self, rng):
        arr = random_matrix(25, rng)
        assert (arr >= 0).all() and (arr <= 1).all()

    def test_symmetric_by_default(self, rng):
        arr = random_matrix(12, rng)
        assert (arr == arr.T).all()

    def test_asymmetric_option(self, rng):
        arr = random_matrix(12, rng, symmetric=False)
        assert not (arr == arr.T).all()

    def test_rejects_zero_cardinality(self, rng):
        with pytest.raises(DissimilarityError):
            random_matrix(0, rng)

    def test_deterministic_given_seed(self):
        a = random_matrix(8, np.random.default_rng(5))
        b = random_matrix(8, np.random.default_rng(5))
        assert (a == b).all()


class TestGenerators:
    def test_random_dissimilarity_usable(self, rng):
        d = random_dissimilarity(6, rng)
        assert d.cardinality == 6
        assert d(2, 2) == 0.0

    def test_nonmetric_has_triangle_violation(self, rng):
        d = nonmetric_dissimilarity(5, rng)
        report = analyze_metricity(d)
        assert report.triangle_violations > 0
        assert not report.is_metric

    def test_nonmetric_needs_three_values(self, rng):
        with pytest.raises(DissimilarityError, match="3 values"):
            nonmetric_dissimilarity(2, rng)

    def test_metric_like_is_metric(self, rng):
        d = metric_like_dissimilarity(8, rng)
        report = analyze_metricity(d)
        assert report.is_metric, report.summary()


class TestAnalysis:
    def test_paper_figure1_os_matrix_is_nonmetric(self):
        # d1(MSW, SL)=1.0 > d1(MSW, RHL)+d1(RHL, SL)=0.9 (Section 4).
        arr = np.array([[0.0, 0.8, 1.0], [0.8, 0.0, 0.1], [1.0, 0.1, 0.0]])
        report = analyze_metricity(arr)
        assert not report.is_metric
        assert report.triangle_violations > 0
        assert report.is_symmetric
        assert report.is_reflexive
        x, y, z = report.worst_violation
        assert arr[x, z] > arr[x, y] + arr[y, z]
        assert report.worst_violation_margin == pytest.approx(
            arr[x, z] - arr[x, y] - arr[y, z]
        )

    def test_metric_matrix_report(self):
        arr = np.array([[0.0, 1.0], [1.0, 0.0]])
        report = analyze_metricity(arr)
        assert report.is_metric
        assert report.violation_rate == 0.0
        assert "metric" in report.summary()

    def test_asymmetric_detected(self):
        arr = np.array([[0.0, 0.2], [0.5, 0.0]])
        report = analyze_metricity(arr)
        assert not report.is_symmetric
        assert "asymmetric" in report.summary()

    def test_violation_rate_bounds(self, rng):
        report = analyze_metricity(random_matrix(10, rng))
        assert 0.0 <= report.violation_rate <= 1.0
