"""Reproduction of the paper's Tables 1-3 (the running-example walkthrough).

Table 2 reproduces exactly. For Table 3, the per-object SRS check counts
reproduce the paper *exactly* (total 38); the TRS counts depend on the
paper's (internally inconsistent) hand-counting convention for Algorithm 4,
so the assertions there are structural: the group-level savings the table
illustrates must appear where the paper says they appear.
"""

import pytest

from repro.core.brs import BRS
from repro.core.srs import SRS
from repro.core.trs import TRS
from repro.data.examples import (
    RUNNING_EXAMPLE_RESULT,
    running_example,
    running_example_query,
)
from repro.storage.disk import MemoryBudget

# The whole running-example walkthrough finishes in milliseconds — it is
# part of the pre-merge smoke gate.
pytestmark = pytest.mark.smoke

# One record = 4B id + 3 x 4B values = 16B: a 16-byte page holds exactly
# one object, matching the paper's "hypothetical page size that can hold
# only one object, and a memory size of 3 pages".
PAGE = 16
BUDGET = 3


@pytest.fixture(scope="module")
def setup():
    return running_example(), running_example_query()


class TestTable2:
    def test_brs_phases(self, setup):
        ds, q = setup
        r = BRS(ds, budget=MemoryBudget(BUDGET), page_bytes=PAGE).run(q)
        s = r.stats
        # BRS: 1st phase prunes {O2}, {O5}; R = {O1, O3, O4, O6};
        # 2nd phase prunes {O1}, {O4} in 2 batches.
        assert s.phase1_pruned == 2
        assert s.intermediate_count == 4
        assert s.phase2_batches == 2
        assert r.result_set == RUNNING_EXAMPLE_RESULT

    def test_srs_phases(self, setup):
        ds, q = setup
        r = SRS(ds, budget=MemoryBudget(BUDGET), page_bytes=PAGE).run(q)
        s = r.stats
        # SRS: sorted order {O1,O4,O6,O2,O5,O3}; 1st phase prunes
        # {O1,O4},{O2,O5}; R = {O3,O6}; single second-phase batch, no
        # second-phase pruning.
        assert s.phase1_pruned == 4
        assert s.intermediate_count == 2
        assert s.phase2_batches == 1
        assert r.result_set == RUNNING_EXAMPLE_RESULT

    def test_srs_sorted_order_matches_paper(self, setup):
        ds, q = setup
        srs = SRS(ds, budget=MemoryBudget(BUDGET), page_bytes=PAGE)
        # {O1, O4, O6, O2, O5, O3} in 0-based ids:
        assert [rid for rid, _ in srs.layout] == [0, 3, 5, 1, 4, 2]

    def test_srs_saves_a_database_scan_vs_brs(self, setup):
        ds, q = setup
        brs = BRS(ds, budget=MemoryBudget(BUDGET), page_bytes=PAGE).run(q)
        srs = SRS(ds, budget=MemoryBudget(BUDGET), page_bytes=PAGE).run(q)
        assert srs.stats.db_passes == brs.stats.db_passes - 1


class TestTable3:
    def run(self, cls, setup, **kwargs):
        ds, q = setup
        algo = cls(
            ds, budget=MemoryBudget(BUDGET), page_bytes=PAGE, trace_checks=True, **kwargs
        )
        return algo.run(q)

    def test_srs_per_object_checks_match_paper_exactly(self, setup):
        r = self.run(SRS, setup)
        s = r.stats
        # Paper Table 3, SRS columns (ids are 0-based: O1..O6 -> 0..5).
        assert s.per_object_phase1 == {0: 3, 3: 3, 5: 4, 1: 3, 4: 3, 2: 4}
        assert s.per_object_phase2 == {0: 4, 3: 4, 5: 3, 1: 3, 4: 3, 2: 1}
        assert s.checks == 38  # the paper's SRS total

    def test_trs_batching_matches_paper(self, setup):
        r = self.run(TRS, setup, attribute_order=[0, 1, 2])
        s = r.stats
        # Same phase behaviour as SRS (Table 2 holds for TRS too).
        assert s.phase1_pruned == 4
        assert s.intermediate_count == 2
        assert s.phase2_batches == 1

    def test_trs_group_reasoning_helps_o6(self, setup):
        """The paper's Section 4.3 walkthrough: checking O6 against the
        {O1, O4} group costs 2 checks in TRS vs 4 in SRS, because the
        shared prefix discharges both with one comparison per level."""
        trs = self.run(TRS, setup, attribute_order=[0, 1, 2]).stats
        srs = self.run(SRS, setup).stats
        assert trs.per_object_phase1[5] == 2
        assert srs.per_object_phase1[5] == 4

    def test_trs_duplicate_groups_cheap(self, setup):
        """O2/O5 (duplicates) are resolved by duplicate reasoning: the
        twin at distance zero prunes as soon as one attribute puts the
        query strictly farther — 1 check here (paper Table 3: 1)."""
        trs = self.run(TRS, setup, attribute_order=[0, 1, 2]).stats
        assert trs.per_object_phase1[1] == 1
        assert trs.per_object_phase1[4] == 1
