"""Two-pass regime detection."""

import pytest

from repro.data.queries import query_batch
from repro.data.synthetic import synthetic_dataset
from repro.errors import ExperimentError
from repro.experiments.crossover import two_pass_threshold


@pytest.fixture(scope="module")
def ds():
    return synthetic_dataset(4000, [20] * 4, seed=211)


def test_profile_monotone_and_threshold_found(ds):
    point = two_pass_threshold(
        ds, "TRS", fractions=(0.02, 0.05, 0.10, 0.20), page_bytes=256
    )
    assert point.algorithm == "TRS"
    profile = point.passes_by_fraction
    fractions = sorted(profile)
    # More memory never costs more passes.
    for a, b in zip(fractions, fractions[1:]):
        assert profile[b] <= profile[a]
    assert point.reached()
    assert profile[point.threshold_fraction] == 2.0


def test_trs_reaches_two_passes_no_later_than_brs(ds):
    queries = query_batch(ds, 2, seed=3)
    grid = (0.02, 0.04, 0.08, 0.16)
    trs = two_pass_threshold(ds, "TRS", fractions=grid, queries=queries, page_bytes=256)
    brs = two_pass_threshold(ds, "BRS", fractions=grid, queries=queries, page_bytes=256)
    if trs.reached() and brs.reached():
        assert trs.threshold_fraction <= brs.threshold_fraction
    # At every grid point TRS needs no more passes than BRS.
    for f in grid:
        assert trs.passes_by_fraction[f] <= brs.passes_by_fraction[f]


def test_threshold_can_be_unreached():
    tiny = synthetic_dataset(1500, [30] * 5, seed=212)  # sparse: big |R|
    point = two_pass_threshold(tiny, "BRS", fractions=(0.02,), page_bytes=64)
    assert 0.02 in point.passes_by_fraction
    if not point.reached():
        assert point.threshold_fraction is None


def test_empty_fraction_grid_rejected(ds):
    with pytest.raises(ExperimentError):
        two_pass_threshold(ds, "TRS", fractions=())
