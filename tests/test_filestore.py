"""Real file-backed page store: round trips, IO parity with the in-memory
backend, and end-to-end algorithm equivalence."""

import pytest

from repro.core.brs import BRS
from repro.core.srs import SRS
from repro.core.trs import TRS
from repro.data.queries import query_batch
from repro.data.schema import Schema
from repro.data.synthetic import mixed_dataset, synthetic_dataset
from repro.errors import StorageError
from repro.sorting.external import external_sort
from repro.storage.codec import RecordCodec
from repro.storage.disk import DiskSimulator, MemoryBudget


@pytest.fixture
def real_disk(tmp_path):
    return DiskSimulator(page_bytes=64, backing_dir=tmp_path / "pages")


class TestFilePageStore:
    def test_write_read_roundtrip(self, real_disk):
        codec = RecordCodec(Schema.categorical([5] * 3))
        pf = real_disk.create_file("f", codec)
        with pf.writer() as w:
            for i in range(10):
                w.append(i, (i % 5, (i * 2) % 5, (i * 3) % 5))
        assert pf.num_records == 10
        back = [entry for _, page in pf.scan() for entry in page]
        assert back == [(i, (i % 5, (i * 2) % 5, (i * 3) % 5)) for i in range(10)]

    def test_numeric_values_roundtrip(self, tmp_path):
        ds = mixed_dataset(30, [3], [(0.0, 1.0)], seed=5)
        disk = DiskSimulator(page_bytes=64, backing_dir=tmp_path / "p")
        pf = disk.load_dataset(ds)
        back = [values for _, values in pf.peek_all_records()]
        assert back == ds.records  # float64 is bit-exact

    def test_stage_entries_charges_no_io(self, real_disk):
        codec = RecordCodec(Schema.categorical([5] * 3))
        pf = real_disk.create_file("g", codec)
        pf.stage_entries((i, (0, 0, 0)) for i in range(20))
        assert real_disk.stats.total == 0
        assert pf.num_records == 20

    def test_io_classification_matches_memory_backend(self, tmp_path):
        def run(disk):
            codec = RecordCodec(Schema.categorical([5] * 3))
            pf = disk.create_file("x", codec)
            pf.stage_entries((i, (0, 0, 0)) for i in range(20))
            pf.read_page(0)
            pf.read_page(1)
            pf.read_page(4)
            pf.read_page(0)
            return disk.stats.snapshot()

        mem = run(DiskSimulator(page_bytes=64))
        real = run(DiskSimulator(page_bytes=64, backing_dir=tmp_path / "q"))
        assert (mem.sequential_reads, mem.random_reads) == (
            real.sequential_reads,
            real.random_reads,
        )

    def test_overwrite_page(self, real_disk):
        codec = RecordCodec(Schema.categorical([5] * 3))
        pf = real_disk.create_file("h", codec)
        pf.write_page(0, [(0, (1, 1, 1)), (1, (2, 2, 2))])
        pf.write_page(0, [(9, (4, 4, 4))])
        assert pf.read_page(0) == [(9, (4, 4, 4))]
        assert pf.num_records == 1

    def test_out_of_range(self, real_disk):
        codec = RecordCodec(Schema.categorical([5] * 3))
        pf = real_disk.create_file("i", codec)
        with pytest.raises(StorageError):
            pf.read_page(0)
        with pytest.raises(StorageError):
            pf.write_page(3, [])

    def test_capacity_enforced(self, real_disk):
        codec = RecordCodec(Schema.categorical([5] * 3))
        pf = real_disk.create_file("j", codec)
        too_many = [(i, (0, 0, 0)) for i in range(pf.records_per_page + 1)]
        with pytest.raises(StorageError):
            pf.write_page(0, too_many)

    def test_truncate_and_close(self, real_disk):
        codec = RecordCodec(Schema.categorical([5] * 3))
        pf = real_disk.create_file("k", codec)
        pf.stage_entries((i, (0, 0, 0)) for i in range(8))
        pf.truncate()
        assert pf.num_pages == 0 and pf.num_records == 0
        real_disk.close()

    def test_mid_file_overwrite_keeps_record_accounting(self, real_disk):
        codec = RecordCodec(Schema.categorical([5] * 3))  # 4 rec/page
        pf = real_disk.create_file("m", codec)
        pf.stage_entries((i, (0, 0, 0)) for i in range(12))
        pf.write_page(1, [(99, (1, 1, 1))])  # 4 -> 1 records
        assert pf.num_records == 9
        pf.write_page(1, [(99, (1, 1, 1)), (98, (2, 2, 2))])
        assert pf.num_records == 10
        assert pf.num_records == sum(
            len(pf.read_page(p)) for p in range(pf.num_pages)
        )


class TestLifecycle:
    """Handle hygiene: context managers, idempotent close, closed-file
    errors (the file-handle-leak regression)."""

    def test_disk_context_manager_closes_real_handles(self, tmp_path):
        codec = RecordCodec(Schema.categorical([5] * 3))
        with DiskSimulator(page_bytes=64, backing_dir=tmp_path / "cm") as disk:
            pf = disk.create_file("f", codec)
            pf.stage_entries((i, (0, 0, 0)) for i in range(8))
            assert not pf.closed
        assert pf.closed

    def test_store_context_manager_and_double_close(self, real_disk):
        codec = RecordCodec(Schema.categorical([5] * 3))
        pf = real_disk.create_file("n", codec)
        with pf as same:
            assert same is pf
            pf.stage_entries((i, (0, 0, 0)) for i in range(4))
        assert pf.closed
        pf.close()  # idempotent: second close is a no-op
        pf.close()
        real_disk.close()  # disk close after store close is fine too

    def test_closed_store_raises_storage_error(self, real_disk):
        from repro.errors import StorageError, TransientError

        codec = RecordCodec(Schema.categorical([5] * 3))
        pf = real_disk.create_file("o", codec)
        pf.stage_entries((i, (0, 0, 0)) for i in range(4))
        pf.close()
        with pytest.raises(StorageError) as info:
            pf.read_page(0)
        # Closed-file misuse is terminal, never a retryable fault.
        assert not isinstance(info.value, TransientError)
        with pytest.raises(StorageError):
            pf.write_page(0, [(0, (0, 0, 0))])
        with pytest.raises(StorageError):
            pf.truncate()

    def test_aborted_external_sort_drops_scratch_files(self, tmp_path):
        from repro.errors import RetryExhaustedError
        from repro.faults import FaultInjector, FaultPlan, RetryPolicy

        ds = synthetic_dataset(300, [6, 5, 4], seed=9)
        plan = FaultPlan(read_error_rate=1.0, max_consecutive=99)
        disk = DiskSimulator(
            page_bytes=64,
            backing_dir=tmp_path / "abort",
            fault_injector=FaultInjector(plan, seed=0),
            retry_policy=RetryPolicy(max_attempts=2, sleep=lambda _: None),
        )
        source = disk.load_dataset(ds)
        with pytest.raises(RetryExhaustedError):
            external_sort(disk, source, MemoryBudget(4), [0, 1, 2])
        # Every scratch file the sort created was dropped on the abort
        # path; only the source registration survives.
        assert set(disk._files) == {"data"}
        disk.close()  # and the handles it held are closed, not leaked


class TestEndToEnd:
    @pytest.mark.parametrize("cls", [BRS, SRS, TRS])
    def test_algorithms_identical_over_real_files(self, tmp_path, cls):
        ds = synthetic_dataset(500, [7, 6, 5], seed=141)
        q = query_batch(ds, 1, seed=3)[0]
        mem_algo = cls(ds, budget=MemoryBudget(3), page_bytes=128)
        mem_result = mem_algo.run(q)
        real_algo = cls(ds, budget=MemoryBudget(3), page_bytes=128)
        real_algo.backing_dir = tmp_path / "run"
        real_result = real_algo.run(q)
        assert real_result.record_ids == mem_result.record_ids
        assert real_result.stats.checks == mem_result.stats.checks
        assert real_result.stats.io.sequential == mem_result.stats.io.sequential
        assert real_result.stats.io.random == mem_result.stats.io.random

    def test_external_sort_over_real_files(self, tmp_path):
        ds = synthetic_dataset(300, [6, 5, 4], seed=9)
        disk = DiskSimulator(page_bytes=64, backing_dir=tmp_path / "sortrun")
        source = disk.load_dataset(ds)
        out, stats = external_sort(disk, source, MemoryBudget(4), [0, 1, 2])
        assert [v for _, v in out.peek_all_records()] == sorted(ds.records)
        assert stats.initial_runs > 1
        disk.close()
