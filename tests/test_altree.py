"""AL-Tree structure: insertion, removal, counts, invariants."""

import pytest

from repro.altree.tree import ALTree
from repro.errors import AlgorithmError


def build(records, order=(0, 1, 2)):
    tree = ALTree(list(order))
    for i, r in enumerate(records):
        tree.insert(i, r)
    return tree


RECORDS = [
    (0, 0, 1),
    (0, 0, 1),  # duplicate of record 0
    (0, 1, 1),
    (1, 0, 0),
    (2, 1, 2),
]


class TestConstruction:
    def test_rejects_empty_order(self):
        with pytest.raises(AlgorithmError):
            ALTree([])

    def test_rejects_duplicate_order(self):
        with pytest.raises(AlgorithmError):
            ALTree([0, 0])

    def test_counts(self):
        tree = build(RECORDS)
        assert tree.num_objects == 5
        assert len(tree) == 5
        tree.check_invariants()

    def test_prefix_sharing(self):
        tree = build(RECORDS)
        # Paths: 001(x2), 011, 100, 212 -> nodes: level1 {0,1,2}=3,
        # level2 {00,01,10,21}=4, level3 {001,011,100,212}=4 -> 11.
        assert tree.num_nodes == 11
        assert tree.node_count() == 12  # + root

    def test_duplicates_share_leaf(self):
        tree = build(RECORDS)
        leaf = tree.find_leaf((0, 0, 1))
        assert leaf.count == 2
        assert {rid for rid, _ in leaf.entries} == {0, 1}

    def test_attribute_order_reorders_paths(self):
        tree = ALTree([2, 0, 1])
        tree.insert(0, (5, 6, 7))
        leaf = tree.find_leaf((5, 6, 7))
        assert leaf.path_keys() == [7, 5, 6]

    def test_find_missing(self):
        tree = build(RECORDS)
        assert tree.find_leaf((2, 2, 2)) is None


class TestRemoval:
    def test_remove_object_by_id(self):
        tree = build(RECORDS)
        assert tree.remove_object(0, (0, 0, 1))
        assert tree.num_objects == 4
        leaf = tree.find_leaf((0, 0, 1))
        assert leaf.count == 1 and leaf.entries[0][0] == 1
        tree.check_invariants()

    def test_remove_object_missing_id(self):
        tree = build(RECORDS)
        assert not tree.remove_object(99, (0, 0, 1))
        assert not tree.remove_object(0, (2, 2, 2))
        assert tree.num_objects == 5

    def test_remove_last_entry_deletes_path(self):
        tree = build(RECORDS)
        tree.remove_object(3, (1, 0, 0))
        assert tree.find_leaf((1, 0, 0)) is None
        assert tree.root.child(1) is None  # whole branch gone
        tree.check_invariants()

    def test_remove_leaf(self):
        tree = build(RECORDS)
        leaf = tree.find_leaf((0, 0, 1))
        tree.remove_leaf(leaf)
        assert tree.num_objects == 3
        assert tree.find_leaf((0, 0, 1)) is None
        # Sibling path under the same level-1 node must survive.
        assert tree.find_leaf((0, 1, 1)) is not None
        tree.check_invariants()

    def test_remove_entries_predicate(self):
        tree = build(RECORDS)
        leaf = tree.find_leaf((0, 0, 1))
        removed = tree.remove_entries(leaf, keep=lambda e: e[0] == 1)
        assert removed == 1
        assert tree.num_objects == 4
        tree.check_invariants()

    def test_num_nodes_tracks_removals(self):
        tree = build(RECORDS)
        before = tree.num_nodes
        tree.remove_object(4, (2, 1, 2))  # unique path: 3 nodes vanish
        assert tree.num_nodes == before - 3
        tree.check_invariants()

    def test_soft_remove_and_restore(self):
        tree = build(RECORDS)
        leaf = tree.find_leaf((0, 0, 1))
        entry = tree.soft_remove(leaf, 0)
        assert entry == (0, (0, 0, 1))
        assert tree.num_objects == 4
        assert leaf.count == 1
        # Nodes are NOT deleted (that is the point): counts hit zero instead.
        unique_leaf = tree.find_leaf((2, 1, 2))
        removed = tree.soft_remove(unique_leaf, 4)
        assert unique_leaf.descendants == 0
        assert tree.root.child(2).descendants == 0
        assert tree.root.child(2) is not None  # still attached
        tree.soft_restore(unique_leaf, removed)
        tree.soft_restore(leaf, entry)
        assert tree.num_objects == len(RECORDS)
        tree.check_invariants()

    def test_soft_remove_missing_id(self):
        tree = build(RECORDS)
        leaf = tree.find_leaf((0, 0, 1))
        assert tree.soft_remove(leaf, 999) is None
        assert tree.num_objects == 5

    def test_reinsert_after_removal(self):
        tree = build(RECORDS)
        tree.remove_object(4, (2, 1, 2))
        tree.insert(4, (2, 1, 2))
        assert tree.num_objects == 5
        assert tree.find_leaf((2, 1, 2)).count == 1
        tree.check_invariants()


class TestTraversals:
    def test_leaves_cover_all_entries(self):
        tree = build(RECORDS)
        entries = sorted(tree.iter_entries())
        assert entries == sorted(enumerate(RECORDS))

    def test_children_by_promise_ascending(self):
        tree = build(RECORDS)
        counts = [c.descendants for c in tree.root.children_by_promise()]
        assert counts == sorted(counts)
        assert counts == [1, 1, 3]

    def test_memory_bytes_compacts_shared_prefixes(self):
        shared = build([(0, 0, 0)] * 50)
        flat = build([(i % 3, i % 5, i) for i in range(50)], order=(0, 1, 2))
        assert shared.memory_bytes() < flat.memory_bytes()
        assert shared.memory_bytes() == 3 * 8 + 50 * 4

    def test_empty_tree(self):
        tree = ALTree([0])
        assert tree.num_objects == 0
        assert list(tree.leaves()) == []
        assert list(tree.iter_entries()) == []
        tree.check_invariants()

    def test_key_fn_buckets(self):
        tree = ALTree([0], key_fn=lambda pos, v: v // 10)
        tree.insert(0, (5,))
        tree.insert(1, (7,))
        tree.insert(2, (15,))
        assert tree.find_leaf((3,)).count == 2  # bucket 0
        assert tree.num_nodes == 2


class TestMaintenanceMutations:
    def test_delete_counts_churn(self):
        tree = build(RECORDS)
        assert tree.delete(3, RECORDS[3])
        assert tree.num_objects == 4
        assert tree.deleted_count == 1
        assert not tree.delete(3, RECORDS[3])  # already gone
        assert tree.deleted_count == 1
        tree.check_invariants()

    def test_delete_one_of_duplicates(self):
        tree = build(RECORDS)
        assert tree.delete(0, RECORDS[0])
        # The duplicate (record 1, same values) is untouched.
        leaf = tree.find_leaf(RECORDS[1])
        assert [rid for rid, _ in leaf.entries] == [1]
        tree.check_invariants()

    def test_merge_from_combines_objects_and_churn(self):
        a = build(RECORDS[:3])
        b = ALTree([0, 1, 2])
        for i, r in enumerate(RECORDS[3:], start=3):
            b.insert(i, r)
        b.delete(4, RECORDS[4])
        merged = a.merge_from(b)
        assert merged == 1  # record 3 (record 4 was deleted from b)
        assert a.num_objects == 4
        assert a.deleted_count == 1  # churn travels with the merge
        assert sorted(rid for rid, _ in a.iter_entries()) == [0, 1, 2, 3]
        a.check_invariants()
        # The source is left untouched.
        assert b.num_objects == 1
        b.check_invariants()

    def test_merge_from_shares_prefix_paths(self):
        a = build([(0, 0, 1), (0, 0, 2)])
        b = ALTree([0, 1, 2])
        b.insert(10, (0, 0, 3))
        before_nodes = a.num_nodes
        a.merge_from(b)
        # Same (0, 0) prefix: only the new leaf is added.
        assert a.num_nodes == before_nodes + 1

    def test_merge_from_rejects_mismatched_orders(self):
        a = ALTree([0, 1, 2])
        b = ALTree([2, 1, 0])
        with pytest.raises(AlgorithmError):
            a.merge_from(b)
