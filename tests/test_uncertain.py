"""Probabilistic reverse skyline (existential uncertainty)."""

import numpy as np
import pytest

from repro.data.queries import query_batch
from repro.data.synthetic import mixed_dataset, synthetic_dataset
from repro.errors import AlgorithmError
from repro.skyline.oracle import reverse_skyline_by_pruners
from repro.uncertain.probabilistic import (
    monte_carlo_membership,
    probabilistic_reverse_skyline,
)


@pytest.fixture(scope="module")
def ds():
    return synthetic_dataset(120, [5, 4, 6], seed=221)


@pytest.fixture(scope="module")
def q(ds):
    return query_batch(ds, 1, seed=2)[0]


class TestExact:
    def test_certain_world_reduces_to_deterministic_rs(self, ds, q):
        result = probabilistic_reverse_skyline(ds, [1.0] * len(ds), q, threshold=0.999)
        assert list(result.record_ids) == reverse_skyline_by_pruners(ds, q)
        for rid, p in enumerate(result.probabilities):
            assert p in (0.0, 1.0)

    def test_probability_formula_spotcheck(self, ds, q):
        from repro.skyline.domination import dominates

        rng = np.random.default_rng(5)
        ps = rng.uniform(0.2, 0.9, size=len(ds)).tolist()
        result = probabilistic_reverse_skyline(ds, ps, q, threshold=0.0)
        for x_id in range(0, len(ds), 17):
            expected = ps[x_id]
            for y_id, y in enumerate(ds.records):
                if y_id != x_id and dominates(ds.space, y, q, ds[x_id]):
                    expected *= 1 - ps[y_id]
            assert result.probabilities[x_id] == pytest.approx(expected)

    def test_threshold_monotone(self, ds, q):
        ps = [0.7] * len(ds)
        low = set(probabilistic_reverse_skyline(ds, ps, q, threshold=0.1).record_ids)
        high = set(probabilistic_reverse_skyline(ds, ps, q, threshold=0.6).record_ids)
        assert high <= low

    def test_zero_probability_object_never_member(self, ds, q):
        ps = [0.8] * len(ds)
        ps[3] = 0.0
        result = probabilistic_reverse_skyline(ds, ps, q, threshold=0.0)
        assert result.probabilities[3] == 0.0
        assert result.probability_of(3) == 0.0

    def test_mixed_schema_falls_back_to_pairwise(self):
        ds = mixed_dataset(60, [4], [(0.0, 1.0)], seed=6)
        q = query_batch(ds, 1, seed=7)[0]
        result = probabilistic_reverse_skyline(ds, [1.0] * len(ds), q, threshold=0.9)
        assert list(result.record_ids) == reverse_skyline_by_pruners(ds, q)

    def test_validation(self, ds, q):
        with pytest.raises(AlgorithmError, match="probabilities"):
            probabilistic_reverse_skyline(ds, [0.5], q)
        with pytest.raises(AlgorithmError, match="outside"):
            probabilistic_reverse_skyline(ds, [1.5] * len(ds), q)
        with pytest.raises(AlgorithmError, match="threshold"):
            probabilistic_reverse_skyline(ds, [0.5] * len(ds), q, threshold=2.0)


class TestMonteCarloAgreement:
    def test_closed_form_matches_sampling(self):
        ds = synthetic_dataset(40, [4, 3], seed=222)
        q = query_batch(ds, 1, seed=3)[0]
        rng = np.random.default_rng(9)
        ps = rng.uniform(0.3, 0.9, size=len(ds)).tolist()
        exact = probabilistic_reverse_skyline(ds, ps, q, threshold=0.0).probabilities
        estimate = monte_carlo_membership(ds, ps, q, trials=1500, seed=11)
        for e, s in zip(exact, estimate):
            assert s == pytest.approx(e, abs=0.06)

    def test_trials_validated(self, ds, q):
        with pytest.raises(AlgorithmError):
            monte_carlo_membership(ds, [0.5] * len(ds), q, trials=0)
