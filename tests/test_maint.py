"""Incremental maintenance: delta trees, compaction, epoch caching,
the continuous monitor, and the equivalence harness."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.data.dataset import Dataset
from repro.data.synthetic import synthetic_dataset
from repro.engine import ReverseSkylineEngine
from repro.errors import AlgorithmError
from repro.kernels.plancache import configure, plan_cache
from repro.maint import MaintainedEngine, MaintStore
from repro.streaming import ReverseSkylineMonitor
from repro.testing import verify_maint_equivalence


@pytest.fixture(autouse=True)
def _fresh_plan_cache():
    """Isolate the process-wide plan cache between tests."""
    configure(256 * 1024 * 1024)
    yield
    configure(256 * 1024 * 1024)


@pytest.fixture
def ds():
    return synthetic_dataset(120, [6, 5, 7], seed=123)


def _rand_records(dataset, n, rng):
    cards = dataset.schema.cardinalities()
    return [tuple(rng.randrange(c) for c in cards) for _ in range(n)]


def _oracle_ids(store, query):
    live = store.live_entries()
    if not live:
        return ()
    oracle = ReverseSkylineEngine(
        Dataset(
            store.base.schema,
            [v for _, v in live],
            store.base.space,
            validate=False,
            name="oracle",
        ),
        log_queries=False,
    )
    sids = [sid for sid, _ in live]
    return tuple(sorted(sids[p] for p in oracle.query(query).record_ids))


class TestMaintStore:
    def test_stable_ids_are_monotone_and_survive_compaction(self, ds):
        store = MaintStore(ds, compact_min=10_000)
        r1 = store.apply(inserts=[ds.records[0], ds.records[1]], deletes=[5])
        assert r1.inserted == (120, 121)
        assert r1.deleted == (5,)
        store.compact()
        # The compacted base keeps every live stable id; 5 is gone.
        assert 5 not in store.base_ids
        assert 120 in store.base_ids and 121 in store.base_ids
        r2 = store.apply(inserts=[ds.records[2]])
        assert r2.inserted == (122,)

    def test_bad_delete_batch_is_a_no_op(self, ds):
        store = MaintStore(ds, compact_min=10_000)
        with pytest.raises(AlgorithmError):
            store.apply(inserts=[ds.records[0]], deletes=[9999])
        with pytest.raises(AlgorithmError):
            store.apply(deletes=[3, 3])
        assert store.epoch == 0
        assert store.delta_records == 0
        assert store.tombstone_count == 0

    def test_delete_of_uncompacted_insert_counts_as_churn(self, ds):
        store = MaintStore(ds, compact_min=10_000)
        (sid,) = store.apply(inserts=[ds.records[0]]).inserted
        store.apply(deletes=[sid])
        assert store.delta_records == 0
        assert store.tombstone_count == 0  # never reached the base
        assert store._churn() == 1  # but the work is remembered

    def test_size_tiered_merge_keeps_tier_count_logarithmic(self, ds):
        store = MaintStore(ds, compact_min=10_000)
        rng = random.Random(5)
        for _ in range(30):
            store.apply(inserts=_rand_records(ds, 2, rng))
        stats = store.stats()
        assert stats["delta_records"] == 60
        assert stats["delta_tiers"] <= 8
        assert stats["tier_merges"] > 0

    def test_compaction_threshold_triggers_automatically(self, ds):
        store = MaintStore(ds, compact_min=8, compact_fraction=0.0)
        rng = random.Random(6)
        res = store.apply(inserts=_rand_records(ds, 9, rng))
        assert res.compacted
        assert store.compactions == 1
        assert store.delta_records == 0
        assert len(store.base) == 129

    def test_crash_mid_compaction_leaves_store_untouched(self, ds):
        store = MaintStore(ds, compact_min=10_000)
        rng = random.Random(7)
        store.apply(inserts=_rand_records(ds, 5, rng), deletes=[1, 2])
        before = (store.epoch, store.base, store.base_ids,
                  store.delta_records, store.tombstone_count)

        def _boom():
            raise RuntimeError("crash")

        store._crash_hook = _boom
        with pytest.raises(RuntimeError):
            store.compact()
        store._crash_hook = None
        after = (store.epoch, store.base, store.base_ids,
                 store.delta_records, store.tombstone_count)
        assert before == after
        assert store.compact()  # clean retry succeeds
        assert store.delta_records == 0

    def test_wire_state_roundtrip(self, ds):
        parent = MaintStore(ds, compact_min=10_000)
        rng = random.Random(8)
        parent.apply(inserts=_rand_records(ds, 4, rng), deletes=[0, 7])
        worker = MaintStore(ds, compact_min=10_000)
        assert worker.install_wire_state(parent.wire_state())
        assert worker.live_entries() == parent.live_entries()
        # Idempotent: same epoch again is ignored.
        assert not worker.install_wire_state(parent.wire_state())

    def test_wire_state_carries_base_ids_after_compaction(self, ds):
        parent = MaintStore(ds, compact_min=10_000)
        rng = random.Random(9)
        parent.apply(inserts=_rand_records(ds, 3, rng), deletes=[2])
        parent.compact()
        parent.apply(inserts=_rand_records(ds, 2, rng))
        blob = parent.wire_state()
        assert blob["base_ids"] == parent.base_ids  # non-identity now
        worker = MaintStore(parent.base, compact_min=10_000)
        assert worker.install_wire_state(blob)
        assert worker.live_entries() == parent.live_entries()

    def test_wire_state_rejects_out_of_sync_base(self, ds):
        parent = MaintStore(ds, compact_min=10_000)
        parent.apply(deletes=[90])  # beyond the shrunken worker base below
        other = synthetic_dataset(40, [6, 5, 7], seed=9)
        worker = MaintStore(other, compact_min=10_000)
        with pytest.raises(AlgorithmError):
            worker.install_wire_state(parent.wire_state())


class TestMaintainedEngine:
    def test_answers_match_rebuild_oracle_through_churn(self, ds):
        rng = random.Random(11)
        engine = MaintainedEngine(
            ds, backend="numpy", compact_min=15, compact_fraction=0.0,
            log_queries=False,
        )
        queries = _rand_records(ds, 4, rng)
        for _ in range(6):
            live = [sid for sid, _ in engine.store.live_entries()]
            engine.apply_updates(
                inserts=_rand_records(ds, rng.randrange(0, 5), rng),
                deletes=rng.sample(live, rng.randrange(0, 3)),
            )
            for q in queries:
                assert tuple(engine.query(q).record_ids) == _oracle_ids(
                    engine.store, q
                )
        assert engine.store.compactions >= 1  # churn tripped at least one

    def test_updates_leave_plan_cache_entries_warm(self, ds):
        engine = MaintainedEngine(
            ds, backend="numpy", compact_min=10_000, log_queries=False
        )
        rng = random.Random(12)
        q = _rand_records(ds, 1, rng)[0]
        engine.query(q)
        entries = plan_cache().stats().entries
        assert entries > 0
        misses_before = plan_cache().stats().misses
        for _ in range(3):
            engine.apply_updates(inserts=_rand_records(ds, 2, rng))
            engine.query(q)
        stats = plan_cache().stats()
        # Surgical invalidation: update epochs drop nothing and never
        # rebuild — epoch instances are clones of epoch 0's, sharing its
        # plan outright (stronger than a cache hit, which would at least
        # re-fingerprint the layout).
        assert stats.entries == entries
        assert stats.misses == misses_before
        assert engine.plans_invalidated_total == 0
        # Acceptance floor: >= 50% of entries retained across a batch.
        assert stats.entries >= entries * 0.5

    def test_compaction_drops_only_this_bases_plans(self, ds):
        other = synthetic_dataset(80, [5, 4, 6], seed=55)
        bystander = ReverseSkylineEngine(
            other, backend="numpy", log_queries=False
        )
        rng = random.Random(13)
        bystander.query(tuple(rng.randrange(c) for c in other.schema.cardinalities()))
        bystander_entries = plan_cache().stats().entries
        assert bystander_entries > 0
        engine = MaintainedEngine(
            ds, backend="numpy", compact_min=10_000, log_queries=False
        )
        q = _rand_records(ds, 1, rng)[0]
        engine.query(q)
        engine.apply_updates(inserts=_rand_records(ds, 3, rng))
        engine.compact()
        assert engine.plans_invalidated_total > 0
        # The bystander dataset's plans survived the compaction.
        assert plan_cache().stats().entries >= bystander_entries

    def test_result_cache_never_crosses_epochs(self, ds):
        engine = MaintainedEngine(ds, compact_min=10_000, log_queries=False)
        fp0 = engine.layout_fingerprint()
        engine.apply_updates(inserts=[ds.records[0]])
        assert engine.layout_fingerprint() != fp0
        assert engine.layout_fingerprint().endswith("#e1")

    def test_where_filter_sees_stable_id_values(self, ds):
        engine = MaintainedEngine(ds, compact_min=10_000, log_queries=False)
        rng = random.Random(14)
        q = _rand_records(ds, 1, rng)[0]
        full = engine.query(q)
        none = engine.query(q, where=lambda values: False)
        assert none.record_ids == ()
        sub = engine.query(q, where=lambda values: values[0] == 0)
        assert set(sub.record_ids) <= set(full.record_ids)

    def test_unsupported_surfaces_raise(self, ds):
        engine = MaintainedEngine(ds, log_queries=False)
        with pytest.raises(AlgorithmError):
            engine.skyband((0, 0, 0), 2)
        with pytest.raises(AlgorithmError):
            engine.query_subset([0], (0,))
        with pytest.raises(AlgorithmError):
            engine.influence({"p": (0, 0, 0)})
        with pytest.raises(AlgorithmError):
            MaintainedEngine(ds, shards=2)

    def test_recall_target_requires_index_capable_algorithm(self, ds):
        engine = MaintainedEngine(ds, log_queries=False)
        from repro.exec.executor import QuerySpec

        with pytest.raises(AlgorithmError):
            QuerySpec((0, 0, 0), recall_target=1.5)
        with pytest.raises(AlgorithmError):
            QuerySpec((0, 0, 0), kind="skyband", k=2, recall_target=0.9)
        # TRS + recall_target routes to ITRS instead of failing.
        spec = QuerySpec(tuple(0 for _ in ds.schema.cardinalities()),
                         recall_target=1.0)
        result = engine._execute_spec(spec)
        assert result.algorithm in ("ITRS", "IndexedTRS")


class TestMonitor:
    def test_events_track_naive_membership(self, ds):
        rng = random.Random(21)
        mon = ReverseSkylineMonitor.from_dataset(ds)
        queries = {f"q{i}": _rand_records(ds, 1, rng)[0] for i in range(4)}
        members = {
            qid: set(mon.register(qid, q)) for qid, q in queries.items()
        }
        for qid in queries:
            assert members[qid] == set(mon.recompute_naive(qid))
        for _ in range(12):
            live = [o for o in range(mon._next_id) if o in mon]
            res = mon.apply(
                inserts=_rand_records(ds, rng.randrange(0, 3), rng),
                deletes=rng.sample(live, rng.randrange(0, 3)),
            )
            for delta in res.deltas:
                assert not (set(delta.entered) & members[delta.query_id])
                assert set(delta.left) <= members[delta.query_id]
                members[delta.query_id] -= set(delta.left)
                members[delta.query_id] |= set(delta.entered)
            for qid in queries:
                assert members[qid] == set(mon.recompute_naive(qid))

    def test_ids_align_with_maint_store(self, ds):
        rng = random.Random(22)
        store = MaintStore(ds, compact_min=10_000)
        mon = ReverseSkylineMonitor.from_dataset(ds)
        mon.register("q", _rand_records(ds, 1, rng)[0])
        for _ in range(4):
            ins = _rand_records(ds, 2, rng)
            live = [sid for sid, _ in store.live_entries()]
            dels = rng.sample(live, 1)
            res_store = store.apply(inserts=ins, deletes=dels)
            res_mon = mon.apply(inserts=ins, deletes=dels)
            assert res_mon.inserted == res_store.inserted

    def test_influence_filter_is_sound_and_counted(self, ds):
        rng = random.Random(23)
        mon = ReverseSkylineMonitor.from_dataset(ds)
        for i in range(3):
            mon.register(f"q{i}", _rand_records(ds, 1, rng)[0])
        for _ in range(10):
            mon.apply(inserts=_rand_records(ds, 2, rng))
        stats = mon.stats()
        assert stats["evaluated"] + stats["filtered"] == 3 * 20
        for i in range(3):
            assert mon.members(f"q{i}") == mon.recompute_naive(f"q{i}")

    def test_bad_batches_and_lookups_raise(self, ds):
        mon = ReverseSkylineMonitor.from_dataset(ds)
        with pytest.raises(AlgorithmError):
            mon.apply(deletes=[9999])
        with pytest.raises(AlgorithmError):
            mon.apply(deletes=[1, 1])
        with pytest.raises(AlgorithmError):
            mon.members("nope")
        mon.register("q", ds.records[0])
        with pytest.raises(AlgorithmError):
            mon.register("q", ds.records[1])
        mon.unregister("q")
        with pytest.raises(AlgorithmError):
            mon.unregister("q")


class TestHarness:
    def test_verify_maint_equivalence_storm(self):
        report = verify_maint_equivalence(
            trials=4, seed=0, pools=("serial", "thread")
        )
        assert report.ok, str(report.failures[0])
        assert report.batches > 0
        assert report.compactions > 0
        assert report.crash_recoveries > 0

    def test_harness_validates_arguments(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            verify_maint_equivalence(trials=0)
        with pytest.raises(ExperimentError):
            verify_maint_equivalence(pools=("fiber",))


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    ops=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 2)), min_size=1, max_size=6
    ),
    compact_min=st.integers(min_value=3, max_value=40),
)
def test_property_random_interleavings_match_rebuild(seed, ops, compact_min):
    """Any interleaving of inserts/deletes/compactions answers
    bit-identically to a from-scratch rebuild over the live records."""
    rng = random.Random(seed)
    base = synthetic_dataset(30 + seed % 20, [4, 3, 5], seed=seed % 7)
    engine = MaintainedEngine(
        base, compact_min=compact_min, compact_fraction=0.0, log_queries=False
    )
    cards = base.schema.cardinalities()
    query = tuple(rng.randrange(c) for c in cards)
    for n_ins, n_del in ops:
        live = [sid for sid, _ in engine.store.live_entries()]
        engine.apply_updates(
            inserts=[
                tuple(rng.randrange(c) for c in cards) for _ in range(n_ins)
            ],
            deletes=rng.sample(live, min(n_del, len(live))),
        )
        assert tuple(engine.query(query).record_ids) == _oracle_ids(
            engine.store, query
        )
    engine.compact()
    assert tuple(engine.query(query).record_ids) == _oracle_ids(
        engine.store, query
    )
