"""Z-order curve and multi-dimensional tiling."""

import pytest

from repro.data.synthetic import mixed_dataset, synthetic_dataset
from repro.errors import AlgorithmError
from repro.tiling.order import tile_order_dataset
from repro.tiling.tiles import TileGrid
from repro.tiling.zorder import bits_needed, z_decode, z_encode


class TestZOrder:
    def test_roundtrip_2d(self):
        for x in range(8):
            for y in range(8):
                code = z_encode((x, y), 3)
                assert z_decode(code, 2, 3) == (x, y)

    def test_roundtrip_high_dim(self):
        coords = (3, 1, 0, 2, 3)
        assert z_decode(z_encode(coords, 2), 5, 2) == coords

    def test_bijection_2d(self):
        codes = {z_encode((x, y), 2) for x in range(4) for y in range(4)}
        assert len(codes) == 16
        assert codes == set(range(16))

    def test_locality_first_quadrant_contiguous(self):
        # The 2x2 block at the origin occupies Morton codes 0..3.
        block = {z_encode((x, y), 2) for x in range(2) for y in range(2)}
        assert block == {0, 1, 2, 3}

    def test_out_of_range_coordinate(self):
        with pytest.raises(AlgorithmError, match="fit"):
            z_encode((4,), 2)

    def test_empty_coords(self):
        with pytest.raises(AlgorithmError):
            z_encode((), 2)

    def test_bits_needed(self):
        assert bits_needed(0) == 1
        assert bits_needed(1) == 1
        assert bits_needed(7) == 3
        assert bits_needed(8) == 4
        with pytest.raises(AlgorithmError):
            bits_needed(-1)


class TestTileGrid:
    def test_categorical_striping(self):
        ds = synthetic_dataset(20, [8, 4], seed=1)
        grid = TileGrid.for_dataset(ds, tiles_per_dim=4)
        assert grid.tile_of((0, 0)) == (0, 0)
        assert grid.tile_of((7, 3)) == (3, 3)
        assert grid.tile_of((4, 2)) == (2, 2)

    def test_small_domain_clamped(self):
        ds = synthetic_dataset(20, [2, 16], seed=1)
        grid = TileGrid.for_dataset(ds, tiles_per_dim=4)
        assert grid.num_tiles == 2 * 4
        assert grid.tile_of((1, 15)) == (1, 3)

    def test_numeric_bounds_derived(self):
        ds = mixed_dataset(50, [4], [(0.0, 10.0)], seed=2)
        grid = TileGrid.for_dataset(ds, tiles_per_dim=4)
        column = [r[1] for r in ds.records]
        lo_tile = grid.tile_of((0, min(column)))[1]
        hi_tile = grid.tile_of((0, max(column)))[1]
        assert lo_tile == 0
        assert hi_tile == 3

    def test_numeric_out_of_bounds_clamped(self):
        ds = mixed_dataset(50, [4], [(0.0, 10.0)], seed=2)
        grid = TileGrid.for_dataset(ds, tiles_per_dim=4)
        assert grid.tile_of((0, -99.0))[1] == 0
        assert grid.tile_of((0, 99.0))[1] == 3

    def test_numeric_needs_bounds(self):
        ds = mixed_dataset(10, [4], [(0.0, 1.0)], seed=2)
        with pytest.raises(AlgorithmError, match="bounds"):
            TileGrid(ds.schema, 4)

    def test_zero_tiles_rejected(self):
        ds = synthetic_dataset(5, [4], seed=1)
        with pytest.raises(AlgorithmError):
            TileGrid(ds.schema, 0)

    def test_constant_numeric_column_collapses_to_one_stripe(self):
        # Regression: a numeric attribute with a single distinct value used
        # to produce zero-width tile bins. It must collapse to one stripe.
        ds = mixed_dataset(30, [4], [(0.0, 10.0)], seed=7)
        records = [(r[0], 5.0) for r in ds.records]
        from repro.data.dataset import Dataset

        const = Dataset(ds.schema, records, ds.space, validate=False, name="const")
        grid = TileGrid.for_dataset(const, tiles_per_dim=4)
        assert grid.num_tiles == 4  # 4 categorical stripes x 1 numeric stripe
        coords = {grid.tile_of(r)[1] for r in const.records}
        assert coords == {0}
        # And the Morton index still works (no division by zero).
        for r in const.records[:5]:
            assert grid.z_index(r) >= 0

    def test_explicit_degenerate_bounds_accepted(self):
        ds = mixed_dataset(10, [4], [(0.0, 1.0)], seed=2)
        grid = TileGrid(ds.schema, 4, numeric_bounds={1: (5.0, 5.0)})
        assert grid.tile_of((2, 5.0))[1] == 0
        assert grid.tile_of((2, 99.0))[1] == 0  # out-of-range clamps too

    def test_inverted_numeric_bounds_rejected(self):
        ds = mixed_dataset(10, [4], [(0.0, 1.0)], seed=2)
        with pytest.raises(AlgorithmError, match="inverted"):
            TileGrid(ds.schema, 4, numeric_bounds={1: (2.0, 1.0)})

    def test_z_index_consistent_with_tile(self):
        ds = synthetic_dataset(100, [8, 8], seed=3)
        grid = TileGrid.for_dataset(ds, tiles_per_dim=4)
        for r in ds.records[:20]:
            assert grid.z_index(r) == z_encode(grid.tile_of(r), 2)


class TestTileOrderDataset:
    def test_is_permutation(self):
        ds = synthetic_dataset(200, [8, 8, 4], seed=4)
        out = tile_order_dataset(ds, tiles_per_dim=2)
        assert sorted(out.records) == sorted(ds.records)

    def test_tiles_are_contiguous(self):
        ds = synthetic_dataset(300, [8, 8], seed=4)
        out = tile_order_dataset(ds, tiles_per_dim=2)
        grid = TileGrid.for_dataset(ds, tiles_per_dim=2)
        zs = [grid.z_index(r) for r in out.records]
        assert zs == sorted(zs)

    def test_sorted_within_tile(self):
        ds = synthetic_dataset(300, [8, 8], seed=4)
        out = tile_order_dataset(ds, tiles_per_dim=2)
        grid = TileGrid.for_dataset(ds, tiles_per_dim=2)
        current = None
        prev = None
        for r in out.records:
            z = grid.z_index(r)
            if z != current:
                current, prev = z, None
            if prev is not None:
                assert r >= prev
            prev = r
