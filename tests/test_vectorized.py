"""Vectorised BRS: result parity with scalar BRS, IO parity, and scale."""

import time

import pytest

from repro.core.brs import BRS
from repro.core.vectorized import VectorBRS
from repro.data.queries import query_batch
from repro.data.synthetic import mixed_dataset, synthetic_dataset
from repro.errors import AlgorithmError
from repro.skyline.oracle import reverse_skyline_by_pruners
from repro.storage.disk import MemoryBudget
from repro.testing.verify import verify_algorithm


class TestCorrectness:
    def test_matches_oracle(self):
        ds = synthetic_dataset(400, [7, 6, 5], seed=171)
        algo = VectorBRS(ds, budget=MemoryBudget(3), page_bytes=128)
        for q in query_batch(ds, 3, seed=1):
            assert list(algo.run(q).record_ids) == reverse_skyline_by_pruners(ds, q)

    def test_differential_fuzz(self):
        report = verify_algorithm(
            lambda ds, budget, page: VectorBRS(ds, budget=budget, page_bytes=page),
            trials=30,
            seed=7000,
        )
        assert report.ok, str(report.failures[0])

    def test_matches_brs_membership_and_io(self):
        ds = synthetic_dataset(800, [8, 7, 6], seed=172)
        q = query_batch(ds, 1, seed=2)[0]
        brs = BRS(ds, memory_fraction=0.10, page_bytes=256).run(q)
        vec = VectorBRS(ds, memory_fraction=0.10, page_bytes=256).run(q)
        assert vec.record_ids == brs.record_ids
        # Same batching, same pass structure, same page IOs.
        assert vec.stats.db_passes == brs.stats.db_passes
        assert vec.stats.io.sequential == brs.stats.io.sequential
        assert vec.stats.phase1_batches == brs.stats.phase1_batches
        # No early abort in vectorised code: it does >= the scalar checks.
        assert vec.stats.checks >= brs.stats.checks

    def test_duplicates_and_identity(self):
        base = synthetic_dataset(1, [4, 4], seed=3)
        ds = base.with_records([base.records[0]] * 15)
        q_far = tuple((v + 1) % 4 for v in base.records[0])
        assert VectorBRS(ds, budget=MemoryBudget(2), page_bytes=64).run(q_far).record_ids == ()
        q_eq = base.records[0]
        result = VectorBRS(ds, budget=MemoryBudget(2), page_bytes=64).run(q_eq)
        assert result.record_ids == tuple(range(15))

    def test_empty_dataset(self):
        ds = synthetic_dataset(0, [4, 4], seed=1)
        assert VectorBRS(ds, budget=MemoryBudget(2)).run((0, 0)).record_ids == ()

    def test_rejects_numeric(self):
        ds = mixed_dataset(20, [3], [(0.0, 1.0)], seed=1)
        with pytest.raises(AlgorithmError, match="categorical"):
            VectorBRS(ds, budget=MemoryBudget(2)).run((0, 0.5))

    def test_column_block_boundary(self):
        # Force many column blocks inside one batch.
        import repro.core.vectorized as vec_mod

        ds = synthetic_dataset(600, [6, 5], seed=173)
        q = query_batch(ds, 1, seed=4)[0]
        expected = reverse_skyline_by_pruners(ds, q)
        original = vec_mod._COL_BLOCK
        vec_mod._COL_BLOCK = 37
        try:
            got = VectorBRS(ds, budget=MemoryBudget(50), page_bytes=256).run(q)
        finally:
            vec_mod._COL_BLOCK = original
        assert list(got.record_ids) == expected


class TestScale:
    def test_faster_than_scalar_brs_at_scale(self):
        ds = synthetic_dataset(12000, [24] * 5, seed=174)
        q = query_batch(ds, 1, seed=5)[0]
        t0 = time.perf_counter()
        brs = BRS(ds, memory_fraction=0.10, page_bytes=512).run(q)
        scalar_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        vec = VectorBRS(ds, memory_fraction=0.10, page_bytes=512).run(q)
        vector_s = time.perf_counter() - t0
        assert vec.record_ids == brs.record_ids
        # Vectorisation should win decisively at this size; a loose factor
        # keeps the assertion robust on slow machines.
        assert vector_s < scalar_s
