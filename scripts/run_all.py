#!/usr/bin/env python3
"""Run the full reproduction: tests, benchmarks, report.

Usage:  python scripts/run_all.py [--skip-tests] [--scale MULT]

Equivalent to the commands README documents, in order, failing fast:

    pytest tests/
    pytest benchmarks/ --benchmark-only
    repro-skyline report --out REPORT.md
"""

from __future__ import annotations

import argparse
import os
import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent


def run(cmd: list[str], env: dict) -> None:
    print(f"\n$ {' '.join(cmd)}", flush=True)
    result = subprocess.run(cmd, cwd=ROOT, env=env)
    if result.returncode != 0:
        sys.exit(result.returncode)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--skip-tests", action="store_true")
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="REPRO_SCALE workload multiplier (default: unset = 1.0)",
    )
    args = parser.parse_args()

    env = dict(os.environ)
    if args.scale is not None:
        env["REPRO_SCALE"] = str(args.scale)

    if not args.skip_tests:
        run([sys.executable, "-m", "pytest", "tests/"], env)
    run([sys.executable, "-m", "pytest", "benchmarks/", "--benchmark-only"], env)
    run(
        [
            sys.executable,
            "-m",
            "repro",
            "report",
            "--results",
            "benchmarks/results",
            "--out",
            "REPORT.md",
        ],
        env,
    )
    print("\nAll done. See REPORT.md and EXPERIMENTS.md.")


if __name__ == "__main__":
    main()
