"""Figures 9 & 10: IO and response time vs % memory on synthetic normal
data (paper: 1M x 5 attrs x 50 values, memory 5-20%; scaled here).

Paper shape: "The IO trends are very similar to those observed for the
real datasets" and likewise for response times.
"""

from conftest import by_algorithm, mean
from repro.core.trs import TRS
from repro.experiments.tables import format_measurements
from repro.experiments.workloads import queries_for

IO_COLUMNS = (
    ("algorithm", "algo"),
    ("seq_io", "seq_pages"),
    ("rand_io", "rand_pages"),
    ("intermediate_size", "|R|"),
)
RESP_COLUMNS = (
    ("algorithm", "algo"),
    ("response_ms", "resp_ms(model)"),
    ("computation_ms", "comp_ms"),
    ("io_ms", "io_ms"),
)


def test_fig09_io(synth, synth_memory_sweep, benchmark, emit):
    algo = TRS(synth, memory_fraction=0.10, page_bytes=512)
    algo.prepare()
    benchmark(algo.run, queries_for(synth, 1)[0])
    emit(
        "fig09_io_synthetic",
        f"Figure 9 — IO vs % memory on {synth.name}",
        format_measurements(synth_memory_sweep, columns=IO_COLUMNS, param_keys=("memory",)),
    )
    groups = by_algorithm(synth_memory_sweep)
    rand = {name: mean(m.rand_io for m in rows) for name, rows in groups.items()}
    assert rand["TRS"] <= rand["SRS"] <= rand["BRS"]
    for rows in groups.values():
        assert rows[-1].rand_io <= rows[0].rand_io


def test_fig10_response(synth, synth_memory_sweep, benchmark, emit):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit(
        "fig10_response_synthetic",
        f"Figure 10 — response time vs % memory on {synth.name}",
        format_measurements(
            synth_memory_sweep, columns=RESP_COLUMNS, param_keys=("memory",)
        ),
    )
    groups = by_algorithm(synth_memory_sweep)
    resp = {name: mean(m.response_ms for m in rows) for name, rows in groups.items()}
    assert resp["TRS"] < resp["SRS"] < resp["BRS"]
