"""Section 5.7: pass counts and intermediate-result ratios.

Paper: "each of our experiments needed just two passes in total" — the
first-phase results always fit one second-phase batch — and intermediate
results range "only upto 4-5 times" the (small, 10-100-element) result
sets. We measure both on all three standard workloads.
"""

import pytest

from repro.core.brs import BRS
from repro.core.srs import SRS
from repro.core.trs import TRS
from repro.experiments.tables import format_table
from repro.experiments.workloads import ci_dataset, fc_dataset, queries_for, standard_synthetic


@pytest.fixture(scope="module")
def measurements():
    rows = []
    per_algo = {}
    for ds in (ci_dataset(), fc_dataset(), standard_synthetic()):
        q = queries_for(ds, 1)[0]
        for cls in (BRS, SRS, TRS):
            s = cls(ds, memory_fraction=0.10, page_bytes=512).run(q).stats
            ratio = s.intermediate_count / max(1, s.result_count)
            rows.append(
                [ds.name, cls.name, s.db_passes, s.phase2_batches,
                 s.result_count, s.intermediate_count, f"{ratio:.1f}"]
            )
            per_algo.setdefault(cls.name, []).append(s)
    return rows, per_algo


def test_sec57_pass_counts(measurements, benchmark, emit):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows, per_algo = measurements
    emit(
        "sec57_pass_counts",
        "Section 5.7 — database passes and |R|/|RS| ratios at 10% memory",
        format_table(
            ["dataset", "algo", "db passes", "p2 batches", "|RS|", "|R|", "|R|/|RS|"],
            rows,
        ),
    )
    # TRS (the algorithm of choice) always completes in two passes.
    for s in per_algo["TRS"]:
        assert s.db_passes == 2
        assert s.phase2_batches == 1
    # SRS too, on these workloads.
    for s in per_algo["SRS"]:
        assert s.db_passes <= 3
    # Intermediate results stay a small multiple of the result set for the
    # sorted/tree approaches (the paper reports 4-5x at full scale; scaled
    # runs with single-digit |RS| are noisier but must stay in the same
    # order of magnitude).
    for name in ("SRS", "TRS"):
        for s in per_algo[name]:
            assert s.intermediate_count <= 20 * max(1, s.result_count)
