"""Shared infrastructure for the per-figure benchmark modules.

Every benchmark regenerates one table or figure of the paper. The
rendered series are printed *and* written to ``benchmarks/results/`` so
the artifacts survive pytest's output capture; EXPERIMENTS.md records the
paper-vs-measured comparison for each.

Workloads are scaled down for pure Python (see
``repro.experiments.workloads``); set ``REPRO_SCALE`` to grow them.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.sweeps import memory_sweep
from repro.experiments.workloads import (
    ci_dataset,
    fc_dataset,
    queries_for,
    standard_synthetic,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

MEMORY_FRACTIONS = (0.04, 0.08, 0.12, 0.16, 0.20)


@pytest.fixture(scope="session")
def ci():
    return ci_dataset()


@pytest.fixture(scope="session")
def fc():
    return fc_dataset()


@pytest.fixture(scope="session")
def synth():
    return standard_synthetic()


@pytest.fixture(scope="session")
def ci_memory_sweep(ci):
    """Shared CI memory sweep backing Figures 3, 5 and 7."""
    return memory_sweep(ci, fractions=MEMORY_FRACTIONS, queries=queries_for(ci, 2))


@pytest.fixture(scope="session")
def fc_memory_sweep(fc):
    """Shared FC memory sweep backing Figures 4, 6 and 8."""
    return memory_sweep(fc, fractions=MEMORY_FRACTIONS, queries=queries_for(fc, 2))


@pytest.fixture(scope="session")
def synth_memory_sweep(synth):
    """Shared synthetic memory sweep backing Figures 9 and 10."""
    return memory_sweep(
        synth, fractions=(0.05, 0.10, 0.15, 0.20), queries=queries_for(synth, 2)
    )


def by_algorithm(measurements):
    """Group a sweep's rows into {algorithm: [rows in sweep order]}."""
    out: dict[str, list] = {}
    for m in measurements:
        out.setdefault(m.algorithm, []).append(m)
    return out


def mean(values):
    values = list(values)
    return sum(values) / len(values)


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def emit(results_dir):
    """Print a rendered experiment table and persist it to results/."""

    def _emit(name: str, title: str, text: str) -> None:
        block = f"\n=== {title} ===\n{text}\n"
        print(block)
        (results_dir / f"{name}.txt").write_text(block.lstrip("\n"))

    return _emit
