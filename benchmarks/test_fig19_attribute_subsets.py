"""Figure 19: response time vs attribute subsets (paper: 100k rows x 7
attrs x 50 values; scaled: 3k x 7 x 8).

The data is laid out once — multi-attribute sort for SRS/TRS, Z-ordered
tiles for T-SRS/T-TRS — and queries then use only a chosen attribute
subset. Paper shape: SRS deteriorates when the subset omits the leading
sort attributes; T-SRS is much less sensitive; TRS is fairly insensitive
already (it needs only ~#attribute checks once an object and its pruner
share a block) and matches or beats T-TRS when the subset contains the
first sort attribute.
"""

import pytest

from conftest import mean
from repro.data.synthetic import synthetic_dataset
from repro.experiments.sweeps import subset_sweep
from repro.experiments.tables import format_measurements
from repro.experiments.workloads import scaled

# Subsets from prefix-aligned to suffix-only (the paper's x-axis walks
# through subset choices like {A1,A2,A3} vs {A3,A4,A5}).
SUBSETS = (
    [0, 1, 2],      # prefix of the sort order — SRS's best case
    [0, 2, 4],      # contains the leading attribute
    [2, 3, 4],      # middle block
    [3, 4, 5],      # late block
    [4, 5, 6],      # suffix — SRS's worst case
)


@pytest.fixture(scope="module")
def sweep():
    ds = synthetic_dataset(scaled(3000), [8] * 7, seed=29)
    return subset_sweep(ds, subsets=SUBSETS)


def _series(sweep, algo):
    return [m for m in sweep if m.algorithm == algo]


def test_fig19(sweep, benchmark, emit):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit(
        "fig19_attribute_subsets",
        "Figure 19 — response time vs attribute subsets",
        format_measurements(
            sweep,
            columns=(("algorithm", "algo"), ("response_ms", "resp_ms(model)"),
                     ("checks", "checks"), ("rand_io", "rand_pages")),
            param_keys=("subset",),
        ),
    )
    srs = _series(sweep, "SRS")
    tsrs = _series(sweep, "T-SRS")
    trs = _series(sweep, "TRS")
    ttrs = _series(sweep, "T-TRS")

    # SRS deteriorates on the suffix subset relative to its prefix case.
    assert srs[-1].checks > 1.3 * srs[0].checks

    # T-SRS is less sensitive to the subset choice than SRS.
    def spread(series):
        values = [m.checks for m in series]
        return max(values) / max(min(values), 1)

    assert spread(tsrs) < spread(srs)
    # TRS and T-TRS stay comparatively flat.
    assert spread(trs) < spread(srs)
    assert spread(ttrs) < spread(srs)

    # TRS matches (or beats) T-TRS when the first sort attribute is in
    # the chosen subset (paper's closing observation).
    assert trs[0].checks <= ttrs[0].checks * 1.25

    # Tree methods dominate the block methods overall.
    assert mean(m.checks for m in trs) < mean(m.checks for m in srs)
    assert mean(m.checks for m in ttrs) < mean(m.checks for m in tsrs)
