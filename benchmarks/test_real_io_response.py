"""Response time over REAL file IO (the paper's Section 5.1 methodology).

The figure benchmarks measure response time with the modeled IO latency;
this bench additionally validates the ordering claim with *genuine*
filesystem reads and writes: every page access goes through byte-packed
files on disk (``DiskSimulator(backing_dir=...)``). The result sets, check
counts and IO counts are asserted identical to the in-memory backend, and
the wall-clock ordering TRS < BRS must survive real IO.
"""

import pytest

from conftest import mean
from repro.core.brs import BRS
from repro.core.srs import SRS
from repro.core.trs import TRS
from repro.experiments.tables import format_table
from repro.experiments.workloads import queries_for, standard_synthetic


@pytest.fixture(scope="module")
def workload():
    ds = standard_synthetic(n=6000)
    return ds, queries_for(ds, 2)


def test_real_io_response(workload, tmp_path_factory, benchmark, emit):
    ds, queries = workload
    backing = tmp_path_factory.mktemp("realio")

    def run_all():
        rows = []
        outcomes = {}
        for cls in (BRS, SRS, TRS):
            mem_algo = cls(ds, memory_fraction=0.10, page_bytes=512)
            mem_results = [mem_algo.run(q) for q in queries]
            real_algo = cls(ds, memory_fraction=0.10, page_bytes=512)
            real_algo.backing_dir = backing / cls.name
            real_results = [real_algo.run(q) for q in queries]
            outcomes[cls.name] = (mem_results, real_results)
            rows.append(
                [
                    cls.name,
                    f"{mean(r.stats.wall_time_s for r in real_results) * 1000:.1f}",
                    f"{mean(r.stats.wall_time_s for r in mem_results) * 1000:.1f}",
                    f"{mean(r.stats.io.total for r in real_results):.0f}",
                ]
            )
        return rows, outcomes

    rows, outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit(
        "real_io_response",
        "Response time over real byte-packed page files vs in-memory simulation",
        format_table(
            ["algo", "real-file wall ms", "in-memory wall ms", "page IOs"], rows
        ),
    )
    for name, (mem_results, real_results) in outcomes.items():
        for m, r in zip(mem_results, real_results):
            assert m.record_ids == r.record_ids, name
            assert m.stats.checks == r.stats.checks, name
            assert m.stats.io.total == r.stats.io.total, name
    # The headline ordering survives genuine file IO.
    real_wall = {
        name: mean(r.stats.wall_time_s for r in outcomes[name][1])
        for name in outcomes
    }
    assert real_wall["TRS"] < real_wall["BRS"]
