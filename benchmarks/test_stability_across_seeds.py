"""Stability of the headline result across random workloads.

The paper's figures are single instances of randomized workloads (random
value dissimilarities, sampled queries). This bench guards the headline
ordering — TRS < SRS < BRS in attribute checks — across several
independently seeded datasets and query batches, so the reproduction's
conclusions don't hinge on one lucky seed.
"""

import pytest

from conftest import mean
from repro.experiments.runner import compare_algorithms
from repro.experiments.tables import format_table
from repro.experiments.workloads import queries_for, scaled
from repro.data.synthetic import synthetic_dataset

SEEDS = (7, 23, 101, 777)


@pytest.fixture(scope="module")
def per_seed():
    out = []
    for seed in SEEDS:
        ds = synthetic_dataset(scaled(6000), [24] * 5, seed=seed)
        rows = compare_algorithms(
            ds,
            queries_for(ds, 2, seed=seed + 1),
            ("BRS", "SRS", "TRS"),
            memory_fraction=0.10,
            page_bytes=512,
        )
        out.append((seed, {m.algorithm: m for m in rows}))
    return out


def test_ordering_stable_across_seeds(per_seed, benchmark, emit):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for seed, by_algo in per_seed:
        rows.append(
            [seed,
             f"{by_algo['BRS'].checks:,.0f}",
             f"{by_algo['SRS'].checks:,.0f}",
             f"{by_algo['TRS'].checks:,.0f}",
             f"{by_algo['SRS'].checks / by_algo['TRS'].checks:.1f}x",
             f"{by_algo['BRS'].checks / by_algo['TRS'].checks:.1f}x"]
        )
    emit(
        "stability_across_seeds",
        "Headline ordering across independent seeds (checks/query)",
        format_table(["seed", "BRS", "SRS", "TRS", "SRS/TRS", "BRS/TRS"], rows),
    )
    for seed, by_algo in per_seed:
        assert by_algo["TRS"].checks < by_algo["SRS"].checks < by_algo["BRS"].checks, seed
        assert by_algo["TRS"].rand_io <= by_algo["SRS"].rand_io, seed
    # Average factors stay in the paper's band.
    srs_factor = mean(b["SRS"].checks / b["TRS"].checks for _, b in per_seed)
    brs_factor = mean(b["BRS"].checks / b["TRS"].checks for _, b in per_seed)
    assert srs_factor > 1.5
    assert brs_factor > 3.0
