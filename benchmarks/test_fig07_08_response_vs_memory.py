"""Figures 7 & 8: response time vs % memory on CI and FC.

Paper shape: response time mirrors computational cost plus IO; TRS
responds "many times faster" than SRS/BRS at every memory size. On the
dense CI, IO contributes a large share of the response time (the paper
reports up to 65%); on the sparse FC, computation dominates at full
scale — at our scaled-down sizes the modeled IO share is larger, which
EXPERIMENTS.md discusses.
"""

import pytest

from conftest import by_algorithm, mean
from repro.core.brs import BRS
from repro.experiments.tables import format_measurements
from repro.experiments.workloads import queries_for

COLUMNS = (
    ("algorithm", "algo"),
    ("response_ms", "resp_ms(model)"),
    ("computation_ms", "comp_ms"),
    ("io_ms", "io_ms"),
    ("wall_ms", "py_wall_ms"),
)


def _assert_shape(sweep):
    groups = by_algorithm(sweep)
    resp = {name: mean(m.response_ms for m in rows) for name, rows in groups.items()}
    assert resp["TRS"] < resp["SRS"] < resp["BRS"]
    # Response time improves (or stays flat) with more memory.
    for rows in groups.values():
        assert rows[-1].response_ms <= rows[0].response_ms * 1.1


@pytest.mark.parametrize("which", ["ci", "fc"])
def test_fig07_08(which, ci, fc, ci_memory_sweep, fc_memory_sweep, benchmark, emit):
    dataset, sweep = (ci, ci_memory_sweep) if which == "ci" else (fc, fc_memory_sweep)
    fig = "Figure 7 (CI)" if which == "ci" else "Figure 8 (FC)"
    algo = BRS(dataset, memory_fraction=0.10, page_bytes=512)
    algo.prepare()
    query = queries_for(dataset, 1)[0]
    benchmark(algo.run, query)
    emit(
        f"fig07_08_response_{which}",
        f"{fig} — response time vs % memory on {dataset.name}",
        format_measurements(sweep, columns=COLUMNS, param_keys=("memory",)),
    )
    _assert_shape(sweep)


def test_io_share_larger_on_dense_ci(ci_memory_sweep, fc_memory_sweep, benchmark):
    """Section 5.3: IO's share of response time is larger on the dense CI
    than on the sparse FC (denser data prunes cheaply, so computation
    shrinks relative to IO)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def io_share(sweep):
        rows = [m for m in sweep if m.algorithm == "TRS"]
        return mean(m.io_ms / (m.io_ms + m.computation_ms) for m in rows)

    assert io_share(ci_memory_sweep) > io_share(fc_memory_sweep)
