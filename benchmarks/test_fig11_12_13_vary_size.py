"""Figures 11-13: computation, IO and response time vs density, varying
the dataset size (paper: 0.1M-1.2M rows at 5 attrs x 50 values, density
3e-4..3e-3; scaled: 2k-24k rows at 5 attrs x 24 values, same densities).

Paper shape: computation dominates response time; TRS outperforms BRS by
up to an order of magnitude and SRS by ~5x in computation/response; all
algorithms track each other in sequential IO while TRS wins random IO.
"""

import pytest

from conftest import by_algorithm, mean
from repro.experiments.sweeps import size_sweep
from repro.experiments.tables import format_measurements

SIZES = (2000, 4000, 8000, 12000, 16000, 24000)


@pytest.fixture(scope="module")
def sweep():
    return size_sweep(sizes=SIZES)


def test_fig11_computation(sweep, benchmark, emit):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit(
        "fig11_computation_vs_size",
        "Figure 11 — computation vs density (varying dataset size)",
        format_measurements(
            sweep,
            columns=(("algorithm", "algo"), ("computation_ms", "comp_ms(model)"),
                     ("checks", "checks"), ("wall_ms", "py_wall_ms")),
            param_keys=("n", "density"),
        ),
    )
    groups = by_algorithm(sweep)
    assert mean(m.checks for m in groups["TRS"]) < mean(
        m.checks for m in groups["SRS"]
    ) < mean(m.checks for m in groups["BRS"])
    # Paper: TRS up to an order of magnitude better than BRS.
    ratios = [
        b.checks / t.checks for b, t in zip(groups["BRS"], groups["TRS"])
    ]
    assert max(ratios) > 4.0


def test_fig12_io(sweep, benchmark, emit):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit(
        "fig12_io_vs_size",
        "Figure 12 — IO vs density (varying dataset size)",
        format_measurements(
            sweep,
            columns=(("algorithm", "algo"), ("seq_io", "seq_pages"),
                     ("rand_io", "rand_pages"), ("intermediate_size", "|R|")),
            param_keys=("n", "density"),
        ),
    )
    groups = by_algorithm(sweep)
    # BRS and SRS "follow each other closely" in sequential IO; TRS wins random.
    for brs_m, srs_m, trs_m in zip(groups["BRS"], groups["SRS"], groups["TRS"]):
        assert trs_m.rand_io <= srs_m.rand_io * 1.05
        assert trs_m.rand_io <= brs_m.rand_io * 1.05
    # "TRS ... incurs half as much of IO costs as the other approaches on
    # the average" — in this two-pass regime the savings concentrate in
    # the random IOs (sequential cost is the mandatory two scans for all).
    rand = {name: mean(m.rand_io for m in rows) for name, rows in groups.items()}
    assert rand["TRS"] <= rand["BRS"] * 0.6


def test_fig13_response(sweep, benchmark, emit):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit(
        "fig13_response_vs_size",
        "Figure 13 — response time vs density (varying dataset size)",
        format_measurements(
            sweep,
            columns=(("algorithm", "algo"), ("response_ms", "resp_ms(model)"),
                     ("computation_ms", "comp_ms"), ("io_ms", "io_ms")),
            param_keys=("n", "density"),
        ),
    )
    groups = by_algorithm(sweep)
    resp = {name: mean(m.response_ms for m in rows) for name, rows in groups.items()}
    assert resp["TRS"] < resp["SRS"] < resp["BRS"]
