"""Table 2: BRS vs SRS phase behaviour on the running example.

Paper (memory = 3 one-object pages):

    approach  1st-phase prunings   R                2nd-phase prunings  batches
    BRS       {O2}, {O5}           {O1,O3,O4,O6}    {O1}, {O4}          2
    SRS       {O1,O4}, {O2,O5}     {O3,O6}          {}                  1
"""

from repro.core.brs import BRS
from repro.core.srs import SRS
from repro.data.examples import (
    RUNNING_EXAMPLE_RESULT,
    running_example,
    running_example_query,
)
from repro.experiments.tables import format_table
from repro.storage.disk import MemoryBudget

PAGE = 16  # one object per page
BUDGET = 3


def _run():
    ds = running_example()
    q = running_example_query()
    rows = []
    stats = {}
    for cls in (BRS, SRS):
        r = cls(ds, budget=MemoryBudget(BUDGET), page_bytes=PAGE).run(q)
        s = r.stats
        stats[cls.name] = (r, s)
        rows.append(
            [cls.name, s.phase1_pruned, s.intermediate_count,
             s.intermediate_count - s.result_count, s.phase2_batches, s.db_passes]
        )
    return stats, rows


def test_table2(benchmark, emit):
    stats, rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit(
        "table2_phase_behaviour",
        "Table 2 — BRS vs SRS on the running example (3 one-object pages)",
        format_table(
            ["approach", "p1 pruned", "|R|", "p2 pruned", "p2 batches", "db passes"],
            rows,
        ),
    )
    brs_r, brs = stats["BRS"]
    srs_r, srs = stats["SRS"]
    # Paper values, exactly.
    assert (brs.phase1_pruned, brs.intermediate_count, brs.phase2_batches) == (2, 4, 2)
    assert (srs.phase1_pruned, srs.intermediate_count, srs.phase2_batches) == (4, 2, 1)
    assert brs_r.result_set == srs_r.result_set == RUNNING_EXAMPLE_RESULT
    # "SRS ... incurring one less database scan as compared to BRS."
    assert srs.db_passes == brs.db_passes - 1
