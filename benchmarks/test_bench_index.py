"""Candidate-generation index benchmark — the ``repro.index`` CI gate.

Two claims, measured in the cost model's own currency (candidate
fraction: index candidates over the ``n²`` all-pairs pruner scan) and
written to ``BENCH_index.json`` at the repository root:

- **Sublinear candidates (exact mode).**  On a quasimetric growth
  workload whose value space grows with the data (``c ≈ 4√n``), the
  exact candidate fraction must *shrink* as n grows — constant leaf
  size means tree depth, and with it the value rule's precision, grows
  with n.  Gate: strictly decreasing across a 16x size sweep, largest
  size at most ``MAX_FRACTION_RATIO`` of the smallest.
- **Approximate mode pays for itself.**  On a single wide Gaussian
  cluster with independent attributes — the regime where the value
  rule is weakest, because every leaf satisfies every attribute
  through *different* entries — a ``recall_target=0.95`` run must cut
  candidates at least ``MIN_CANDIDATE_REDUCTION``x below the exact
  mode while keeping mean pruning recall at or above
  ``MIN_PRUNING_RECALL``.  Pruning recall is computed exactly from the
  two survivor sets (no sampling); the result's own audited
  ``measured_recall`` estimate is reported per query alongside it.

Exact-mode answers are asserted bit-identical to the plain TRS oracle
before anything is measured, and approximate answers must be supersets
of exact ones.  Everything here is deterministic: fractions and recalls
are pure functions of the workload seeds, so the gates are stable.
"""

from __future__ import annotations

import json
import pathlib
import platform
import time

import numpy as np

from repro.core.indexed import IndexedTRS
from repro.core.trs import TRS
from repro.data.dataset import Dataset
from repro.data.schema import Schema
from repro.dissim.matrix import MatrixDissimilarity
from repro.dissim.space import DissimilaritySpace
from repro.experiments.tables import format_table
from repro.experiments.workloads import scale_factor, scaled

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_index.json"

#: Sublinear gate: largest-size fraction over smallest-size fraction.
MAX_FRACTION_RATIO = 0.85
#: Approximate gate: exact candidates over approximate candidates.
MIN_CANDIDATE_REDUCTION = 2.0
#: Approximate gate: mean pruning recall across the query batch.
MIN_PRUNING_RECALL = 0.95

GROWTH_SIZES = (1000, 4000, 16000)
RECALL_TARGET = 0.95


def _quasimetric_matrix(c: int, rng: np.random.Generator, jitter: float) -> np.ndarray:
    """|a−b|/(c−1) with multiplicative asymmetric jitter: a quasimetric —
    zero diagonal, positive off-diagonal, no symmetry, no triangle
    inequality.  Exactly the 'arbitrary non-metric measure' setting."""
    a = np.arange(c, dtype=np.float64)
    base = np.abs(a[:, None] - a[None, :]) / (c - 1)
    arr = base * (1.0 + jitter * rng.uniform(-1.0, 1.0, (c, c)))
    np.fill_diagonal(arr, 0.0)
    return arr


def _space(cards: list[int], rng: np.random.Generator, jitter: float):
    return DissimilaritySpace(
        [MatrixDissimilarity(_quasimetric_matrix(c, rng, jitter)) for c in cards]
    )


def _perturbed_queries(records, c: int, count: int, spread: int = 2):
    """Queries near the data (the non-trivial reverse-skyline regime)."""
    qr = np.random.default_rng(17)
    queries = []
    for _ in range(count):
        base = records[int(qr.integers(0, len(records)))]
        queries.append(
            tuple(
                int(min(c - 1, max(0, v + qr.integers(-spread, spread + 1))))
                for v in base
            )
        )
    return queries


def _growth_workload(n: int, m: int = 4, seed: int = 5):
    """Uniform records over a value space that grows with n (c ≈ 4√n):
    constant density regime, so fraction changes isolate the tree-depth
    effect rather than a density artefact."""
    c = max(8, int(round(4 * np.sqrt(n))))
    rng = np.random.default_rng(seed)
    space = _space([c] * m, rng, 0.25)  # matrices first: fixed rng order
    vals = rng.integers(0, c, size=(n, m))
    records = [tuple(int(v) for v in row) for row in vals]
    ds = Dataset(
        Schema.categorical([c] * m), records, space,
        validate=False, name=f"quasi-growth-{n}",
    )
    return ds, _perturbed_queries(records, c, 2)


def _cluster_workload(n: int, m: int = 4, c: int = 64, sigma: float = 8.0, seed: int = 5):
    """One wide Gaussian cluster with independent attributes — the value
    rule's worst case and the leaf-score rule's best."""
    rng = np.random.default_rng(seed)
    space = _space([c] * m, rng, 0.10)  # matrices first: fixed rng order
    vals = np.clip(np.round(rng.normal(c / 2, sigma, size=(n, m))), 0, c - 1)
    records = [tuple(int(v) for v in row) for row in vals.astype(int)]
    ds = Dataset(
        Schema.categorical([c] * m), records, space,
        validate=False, name=f"gauss-cluster-{n}",
    )
    return ds, _perturbed_queries(records, c, 5)


def _pruning_recall(n: int, exact_ids, approx_ids) -> float:
    """Exact pruning recall from the two survivor sets: the share of
    exactly-pruned objects the approximate run also pruned."""
    pruned_exact = set(range(n)) - set(exact_ids)
    pruned_approx = set(range(n)) - set(approx_ids)
    if not pruned_exact:
        return 1.0
    return len(pruned_exact & pruned_approx) / len(pruned_exact)


def test_bench_index_gates(emit):
    # -- exact mode: sublinear candidate growth -----------------------------
    growth = []
    for base_n in GROWTH_SIZES:
        ds, queries = _growth_workload(scaled(base_n))
        algo = IndexedTRS(ds, backend="numpy", index_leaf_size=16)
        oracle = TRS(ds) if base_n <= 4000 else None
        fractions = []
        t0 = time.perf_counter()
        for q in queries:
            r = algo.run(q)
            fractions.append(r.candidate_fraction)
            if oracle is not None:  # results must match before timing counts
                assert list(r.record_ids) == list(oracle.run(q).record_ids)
        growth.append(
            {
                "records": len(ds),
                "cardinality": ds.schema.cardinalities()[0],
                "queries": len(queries),
                "candidate_fraction": float(np.mean(fractions)),
                "index_nodes": algo.index().num_nodes,
                "wall_time_s": time.perf_counter() - t0,
            }
        )

    # -- approximate mode: recall vs candidate reduction --------------------
    ds, queries = _cluster_workload(scaled(4000))
    n = len(ds)
    exact = IndexedTRS(ds, backend="numpy", index_leaf_size=32, index_fanout=8)
    approx = IndexedTRS(
        ds, backend="numpy", index_leaf_size=32, index_fanout=8,
        recall_target=RECALL_TARGET,
    )
    oracle = TRS(ds)
    per_query = []
    t0 = time.perf_counter()
    for q in queries:
        re_ = exact.run(q)
        assert list(re_.record_ids) == list(oracle.run(q).record_ids)
        ra = approx.run(q)
        assert set(re_.record_ids) <= set(ra.record_ids)  # never lose a member
        per_query.append(
            {
                "query": list(q),
                "exact_fraction": re_.candidate_fraction,
                "approx_fraction": ra.candidate_fraction,
                "pruning_recall": _pruning_recall(n, re_.record_ids, ra.record_ids),
                "measured_recall": ra.measured_recall,
                "result_size_exact": len(re_.record_ids),
                "result_size_approx": len(ra.record_ids),
            }
        )
    approx_wall = time.perf_counter() - t0
    exact_frac = float(np.mean([r["exact_fraction"] for r in per_query]))
    approx_frac = float(np.mean([r["approx_fraction"] for r in per_query]))
    reduction = exact_frac / approx_frac
    mean_recall = float(np.mean([r["pruning_recall"] for r in per_query]))

    doc = {
        "workloads": {
            "growth": {
                "model": "uniform quasimetric, c = max(8, 4*sqrt(n)), m=4, "
                         "jitter 0.25, leaf_size 16, exact mode",
                "sizes": [scaled(s) for s in GROWTH_SIZES],
            },
            "approximate": {
                "model": "single Gaussian cluster, c=64, sigma=8, m=4, "
                         "jitter 0.10, leaf_size 32, fanout 8",
                "records": n,
                "recall_target": RECALL_TARGET,
                "queries": len(queries),
                "wall_time_s": approx_wall,
            },
            "repro_scale": scale_factor(),
        },
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "gate": {
            "max_fraction_ratio": MAX_FRACTION_RATIO,
            "min_candidate_reduction": MIN_CANDIDATE_REDUCTION,
            "min_pruning_recall": MIN_PRUNING_RECALL,
        },
        "growth": growth,
        "approximate": {
            "exact_fraction": exact_frac,
            "approx_fraction": approx_frac,
            "candidate_reduction": reduction,
            "mean_pruning_recall": mean_recall,
            "per_query": per_query,
        },
    }
    BENCH_PATH.write_text(json.dumps(doc, indent=2) + "\n")

    growth_rows = [
        [
            str(g["records"]),
            str(g["cardinality"]),
            f"{g['candidate_fraction']:.4f}",
            str(g["index_nodes"]),
            f"{g['wall_time_s']:.1f}",
        ]
        for g in growth
    ]
    approx_rows = [
        [
            f"{r['exact_fraction']:.4f}",
            f"{r['approx_fraction']:.4f}",
            f"{r['exact_fraction'] / r['approx_fraction']:.2f}x",
            f"{r['pruning_recall']:.4f}",
            f"{r['measured_recall']:.4f}",
        ]
        for r in per_query
    ]
    emit(
        "bench_index",
        "Candidate-generation index: sublinear exact candidates + "
        "approximate recall/reduction",
        format_table(
            ["n", "card", "exact fraction", "nodes", "wall s"], growth_rows
        )
        + "\n\napproximate mode (recall_target "
        + f"{RECALL_TARGET}, mean reduction {reduction:.2f}x, "
        + f"mean pruning recall {mean_recall:.4f}):\n"
        + format_table(
            ["exact frac", "approx frac", "reduction", "pruning recall",
             "audited recall"],
            approx_rows,
        )
        + f"\n(canonical artifact: {BENCH_PATH.name})",
    )

    fracs = [g["candidate_fraction"] for g in growth]
    assert all(b < a for a, b in zip(fracs, fracs[1:])), (
        f"candidate fraction not strictly decreasing with n: {fracs}"
    )
    assert fracs[-1] <= MAX_FRACTION_RATIO * fracs[0], (
        f"16x growth only moved the candidate fraction {fracs[0]:.4f} -> "
        f"{fracs[-1]:.4f}; gate requires ratio <= {MAX_FRACTION_RATIO}"
    )
    assert reduction >= MIN_CANDIDATE_REDUCTION, (
        f"approximate mode reduced candidates only {reduction:.2f}x "
        f"(gate {MIN_CANDIDATE_REDUCTION}x)"
    )
    assert mean_recall >= MIN_PRUNING_RECALL, (
        f"mean pruning recall {mean_recall:.4f} below the "
        f"{MIN_PRUNING_RECALL} gate"
    )
