"""Extension benchmark — observability overhead and per-phase attribution.

The ``repro.obs`` contract has two measurable halves:

1. **Overhead** — with observability *enabled* (spans around every
   query/phase, counters flushed per query and per disk), a 125-query
   batch must run within 5% of the uninstrumented wall time, and the
   answers must be bit-identical. The hooks are designed for this:
   aggregate flush points instead of per-event emissions, so the hot
   domination-check and page-IO loops are untouched.
2. **Attribution** — the captured trace must account for where the time
   went, per phase (phase1/phase2/layout staging), which is the paper's
   per-stage evaluation methodology generalised over the whole stack.

Artifacts: ``results/ext_obs.txt`` (timings + attribution table) and
``results/ext_obs_metrics.prom`` (the batch's Prometheus exposition, the
CI artifact).
"""

import time

import pytest

from repro.engine import ReverseSkylineEngine
from repro.exec import QueryExecutor
from repro.data.synthetic import synthetic_dataset
from repro.experiments.tables import format_table
from repro.experiments.workloads import queries_for, scaled
from repro.obs import QueryProfiler, snapshot_to_prometheus

ROUNDS = 3
OVERHEAD_CEILING = 1.05


@pytest.fixture(scope="module")
def dataset():
    return synthetic_dataset(scaled(3000), [12] * 4, seed=202)


@pytest.fixture(scope="module")
def batch(dataset):
    # 25 distinct queries, each repeated 5x -> 125 queries (>= 100).
    distinct = queries_for(dataset, 25)
    return [q for q in distinct for _ in range(5)]


def fresh_executor(dataset):
    engine = ReverseSkylineEngine(
        dataset, memory_fraction=0.10, page_bytes=512, log_queries=False
    )
    engine._algorithm("TRS")  # pay the one-time prepare outside the timers
    # Cache off so every round computes all 125 queries (worst case for
    # instrumentation: maximal span and counter volume).
    return QueryExecutor(engine, pool="serial", cache=None)


def test_ext_obs_overhead(dataset, batch, benchmark, emit, results_dir):
    def run():
        plain_times, obs_times = [], []
        plain_ids = obs_ids = None
        prof = None
        # Interleave rounds so drift (thermal, page cache) hits both arms.
        for _ in range(ROUNDS):
            executor = fresh_executor(dataset)
            t0 = time.perf_counter()
            report = executor.run_batch(batch)
            plain_times.append(time.perf_counter() - t0)
            plain_ids = report.record_id_sets()

            executor = fresh_executor(dataset)
            with QueryProfiler() as p:
                t0 = time.perf_counter()
                report = executor.run_batch(batch)
                obs_times.append(time.perf_counter() - t0)
            obs_ids = report.record_id_sets()
            prof = p
        return min(plain_times), min(obs_times), plain_ids, obs_ids, prof

    t_plain, t_obs, plain_ids, obs_ids, prof = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    # Determinism: instrumentation must never change an answer.
    assert plain_ids == obs_ids

    ratio = t_obs / t_plain
    rows = [
        ["plain", f"{t_plain * 1000:.0f}", f"{len(batch) / t_plain:.0f}", "1.00x"],
        ["instrumented", f"{t_obs * 1000:.0f}", f"{len(batch) / t_obs:.0f}",
         f"{ratio:.2f}x"],
    ]
    timing_table = format_table(
        ["run (125-query batch, serial)", "ms (min of 3)", "q/s", "vs plain"], rows
    )

    breakdown = prof.breakdown()
    traced_total = sum(row.self_s for row in breakdown)
    attribution = format_table(
        ["span", "count", "total ms", "self ms", "share"],
        [
            [
                row.name,
                row.count,
                f"{row.total_s * 1000:.1f}",
                f"{row.self_s * 1000:.1f}",
                f"{row.self_s / traced_total:.1%}" if traced_total else "-",
            ]
            for row in breakdown
        ],
    )
    emit(
        "ext_obs",
        "Extension — observability overhead + per-phase attribution",
        f"{timing_table}\n\noverhead: {(ratio - 1) * 100:+.1f}% "
        f"(ceiling {OVERHEAD_CEILING:.2f}x)\n\n{attribution}",
    )
    (results_dir / "ext_obs_metrics.prom").write_text(
        snapshot_to_prometheus(prof.snapshot)
    )

    # The trace must cover the whole batch: one span per computed query
    # and per algorithm phase.
    by_name = {row.name: row for row in breakdown}
    assert by_name["exec.query"].count == len(batch)
    assert by_name["phase1"].count == len(batch)
    assert by_name["phase2"].count == len(batch)

    # The acceptance bar: <= 5% wall overhead with observability enabled
    # (min-of-3 on both arms; +20ms absorbs timer jitter at this scale).
    assert t_obs <= t_plain * OVERHEAD_CEILING + 0.02, (
        f"observability overhead {ratio:.3f}x exceeds {OVERHEAD_CEILING}x "
        f"({t_plain * 1000:.0f}ms plain vs {t_obs * 1000:.0f}ms instrumented)"
    )
