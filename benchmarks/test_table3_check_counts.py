"""Table 3: per-object attribute-check counts, TRS vs SRS, on the running
example (memory = 3 one-object pages).

Paper totals: TRS 30, SRS 38 ("21% lesser"). Our SRS counts match the
paper *exactly* per object and in total. The paper's TRS numbers follow a
hand-counting convention for Algorithm 4 that its own walkthrough applies
inconsistently (e.g. O2 is charged 1 check but the analogous O1 is
charged 3); our implementation counts every evaluated child condition, so
the TRS assertions here are the structural ones the table is meant to
show: group-level reasoning makes O6 cost 2 checks instead of SRS's 4,
duplicates (O2/O5) resolve in 1 check, and TRS's total stays within the
same small-example ballpark while winning by multiples on real data
(see the figure benchmarks).
"""

from repro.core.srs import SRS
from repro.core.trs import TRS
from repro.data.examples import running_example, running_example_query
from repro.experiments.tables import format_table
from repro.storage.disk import MemoryBudget

PAGE = 16
BUDGET = 3

PAPER_SRS_P1 = {0: 3, 3: 3, 5: 4, 1: 3, 4: 3, 2: 4}
PAPER_SRS_P2 = {0: 4, 3: 4, 5: 3, 1: 3, 4: 3, 2: 1}
PAPER_TRS_TOTAL = 30
PAPER_SRS_TOTAL = 38


def _run():
    ds = running_example()
    q = running_example_query()
    out = {}
    for cls, kwargs in ((TRS, {"attribute_order": [0, 1, 2]}), (SRS, {})):
        r = cls(
            ds, budget=MemoryBudget(BUDGET), page_bytes=PAGE, trace_checks=True, **kwargs
        ).run(q)
        out[cls.name] = r.stats
    return out


def test_table3(benchmark, emit):
    stats = benchmark.pedantic(_run, rounds=1, iterations=1)
    trs, srs = stats["TRS"], stats["SRS"]
    order = [0, 3, 5, 1, 4, 2]  # O1, O4, O6, O2, O5, O3 (paper row order)
    rows = []
    for rid in order:
        rows.append(
            [
                f"O{rid + 1}",
                trs.per_object_phase1.get(rid, 0),
                trs.per_object_phase2.get(rid, 0),
                srs.per_object_phase1.get(rid, 0),
                srs.per_object_phase2.get(rid, 0),
            ]
        )
    rows.append(["Total", trs.checks_phase1, trs.checks_phase2,
                 srs.checks_phase1, srs.checks_phase2])
    emit(
        "table3_check_counts",
        f"Table 3 — checks per object (paper totals: TRS {PAPER_TRS_TOTAL}, "
        f"SRS {PAPER_SRS_TOTAL}; measured: TRS {trs.checks}, SRS {srs.checks})",
        format_table(["ID", "TRS p1", "TRS p2", "SRS p1", "SRS p2"], rows),
    )
    # SRS matches the paper exactly.
    assert srs.per_object_phase1 == PAPER_SRS_P1
    assert srs.per_object_phase2 == PAPER_SRS_P2
    assert srs.checks == PAPER_SRS_TOTAL
    # TRS structural claims from the Section 4.3 walkthrough.
    assert trs.per_object_phase1[5] == 2  # O6: group discharge of {O1,O4}
    assert srs.per_object_phase1[5] == 4
    assert trs.per_object_phase1[1] == 1  # O2: duplicate reasoning
    assert trs.per_object_phase1[4] == 1  # O5
    # Six objects is too small for tree traversal to win outright; the
    # crossover is demonstrated on real data by the figure benches.
    assert trs.checks <= 2 * srs.checks
