"""Value-distribution robustness (beyond the paper).

The paper generates synthetic data with normal marginals only
(Section 5.2). This bench checks that the headline ordering — TRS < SRS <
BRS in checks, TRS best on random IO — is not an artifact of that choice:
the same sweep runs under normal, uniform and Zipf value distributions.
Zipf (heavy value reuse) is TRS-friendly (huge groups near the root);
uniform is the stress case (smallest groups).
"""

import pytest

from conftest import mean
from repro.data.synthetic import NORMAL, UNIFORM, ZIPF, synthetic_dataset
from repro.experiments.runner import compare_algorithms
from repro.experiments.tables import format_measurements
from repro.experiments.workloads import queries_for, scaled


@pytest.fixture(scope="module")
def sweep():
    rows = []
    for distribution in (NORMAL, UNIFORM, ZIPF):
        ds = synthetic_dataset(
            scaled(6000), [24] * 5, seed=7, distribution=distribution,
            name=f"synthetic-{distribution}",
        )
        rows.extend(
            compare_algorithms(
                ds,
                queries_for(ds, 2),
                ("BRS", "SRS", "TRS"),
                memory_fraction=0.10,
                page_bytes=512,
                params={"distribution": distribution},
            )
        )
    return rows


def test_ext_distributions(sweep, benchmark, emit):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit(
        "ext_distributions",
        "Extension — robustness across value distributions",
        format_measurements(
            sweep,
            columns=(("algorithm", "algo"), ("checks", "checks"),
                     ("rand_io", "rand_pages"), ("result_size", "|RS|")),
            param_keys=("distribution",),
        ),
    )
    for distribution in (NORMAL, UNIFORM, ZIPF):
        rows = {m.algorithm: m for m in sweep if m.params["distribution"] == distribution}
        assert rows["TRS"].checks < rows["SRS"].checks < rows["BRS"].checks, distribution
        # Random IO: TRS wins where values cluster (normal/zipf); under the
        # uniform stress case prefix sharing collapses and the tree's batch
        # compaction advantage disappears — TRS is then merely tied (within
        # a small slack), an honest limit of the design.
        assert rows["TRS"].rand_io <= rows["SRS"].rand_io * 1.25, distribution
    # Group reasoning keeps a multiple-factor computational win under every
    # distribution (even uniform, where SRS's neighbour heuristic also
    # degrades, widening rather than closing TRS's relative lead).
    for distribution in (NORMAL, UNIFORM, ZIPF):
        rows = {m.algorithm: m for m in sweep if m.params["distribution"] == distribution}
        assert rows["SRS"].checks / rows["TRS"].checks > 1.5, distribution