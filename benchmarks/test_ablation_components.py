"""Ablation: isolate each optimization's contribution (DESIGN.md §5).

The paper presents BRS -> SRS -> TRS as a stack of optimizations
(block accesses, pre-sorting, group-level reasoning + early pruning) and
reports how "techniques that use a subset of the above optimizations
fare". This bench ablates TRS's two internal design choices as well:

- ``TRS/no-sort``   — trees over the native (unsorted) layout
- ``TRS/no-child-order`` — Algorithm 4 without promising-subtree-first
"""

import pytest

from conftest import mean
from repro.experiments.sweeps import ablation_sweep
from repro.experiments.tables import format_measurements
from repro.experiments.workloads import queries_for, standard_synthetic


@pytest.fixture(scope="module")
def sweep():
    ds = standard_synthetic()
    return ablation_sweep(ds, queries=queries_for(ds, 2))


def _row(sweep, variant, algo=None):
    rows = [
        m
        for m in sweep
        if m.params["variant"] == variant and (algo is None or m.algorithm == algo)
    ]
    assert rows, (variant, algo)
    return rows[0]


def test_ablation(sweep, benchmark, emit):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit(
        "ablation_components",
        "Ablation — contribution of each optimization (synthetic workload)",
        format_measurements(
            sweep,
            columns=(("algorithm", "algo"), ("checks", "checks"),
                     ("intermediate_size", "|R|"), ("rand_io", "rand_pages"),
                     ("response_ms", "resp_ms(model)")),
            param_keys=("variant",),
        ),
    )
    brs = _row(sweep, "baseline", "BRS")
    srs = _row(sweep, "baseline", "SRS")
    trs = _row(sweep, "baseline", "TRS")
    no_sort = _row(sweep, "TRS/no-sort")
    no_order = _row(sweep, "TRS/no-child-order")

    # The paper's optimization stack, in computational cost:
    assert trs.checks < srs.checks < brs.checks

    # Pre-sorting matters to TRS too: without it, phase-1 clustering is
    # weaker, so the intermediate result grows.
    assert trs.intermediate_size <= no_sort.intermediate_size
    assert trs.checks <= no_sort.checks * 1.1

    # Child ordering (promising-subtree first) must not hurt.
    assert trs.checks <= no_order.checks * 1.1
