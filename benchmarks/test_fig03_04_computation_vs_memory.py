"""Figures 3 & 4: computational cost vs % memory on CI and FC.

Paper shape: costs are flat across memory sizes (>=4%), and TRS is
roughly 3x cheaper than SRS and 6x cheaper than BRS; the sparser FC costs
far more per object than the dense CI.
"""

import pytest

from conftest import by_algorithm, mean
from repro.core.trs import TRS
from repro.experiments.tables import format_measurements
from repro.experiments.workloads import queries_for

COLUMNS = (
    ("algorithm", "algo"),
    ("computation_ms", "comp_ms(model)"),
    ("checks", "checks"),
    ("wall_ms", "py_wall_ms"),
)


def _assert_shape(sweep):
    groups = by_algorithm(sweep)
    brs = mean(m.checks for m in groups["BRS"])
    srs = mean(m.checks for m in groups["SRS"])
    trs = mean(m.checks for m in groups["TRS"])
    # Who wins, by roughly what factor (paper: TRS ~3x vs SRS, ~6x vs BRS;
    # the dense CI surrogate sits at the soft end of those multiples).
    assert trs < srs < brs
    assert srs / trs > 1.4
    assert brs / trs > 2.0
    # Flat across memory sizes: no algorithm's computation varies wildly.
    for rows in groups.values():
        checks = [m.checks for m in rows]
        assert max(checks) < 2.5 * min(checks)


@pytest.mark.parametrize("which", ["ci", "fc"])
def test_fig03_04(which, ci, fc, ci_memory_sweep, fc_memory_sweep, benchmark, emit):
    dataset, sweep = (ci, ci_memory_sweep) if which == "ci" else (fc, fc_memory_sweep)
    fig = "Figure 3 (CI)" if which == "ci" else "Figure 4 (FC)"
    # pytest-benchmark timing: one representative TRS query at 10% memory.
    algo = TRS(dataset, memory_fraction=0.10, page_bytes=512)
    algo.prepare()
    query = queries_for(dataset, 1)[0]
    benchmark(algo.run, query)
    emit(
        f"fig03_04_computation_{which}",
        f"{fig} — computation vs % memory on {dataset.name}",
        format_measurements(sweep, columns=COLUMNS, param_keys=("memory",)),
    )
    _assert_shape(sweep)


def test_fc_costs_more_than_ci(ci_memory_sweep, fc_memory_sweep, benchmark):
    """Section 5.3: the sparse FC dataset is far costlier than the dense CI
    (pruners are harder to find)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    ci_trs = mean(m.checks for m in ci_memory_sweep if m.algorithm == "TRS")
    fc_trs = mean(m.checks for m in fc_memory_sweep if m.algorithm == "TRS")
    assert fc_trs > 1.5 * ci_trs
