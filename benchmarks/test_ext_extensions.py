"""Extension benchmarks (beyond the paper's figures).

Quantifies the three capability extensions DESIGN.md lists — reverse
k-skyband, bichromatic reverse skyline, and streaming maintenance — so
their costs are tracked alongside the paper reproduction:

- skyband: result growth and cost vs k (k=1 equals TRS).
- bichromatic: tree-accelerated vs pairwise-naive checks/time.
- streaming: amortised per-update cost vs periodic recomputation.
"""

import time

import numpy as np
import pytest

from repro.bichromatic.query import (
    bichromatic_reverse_skyline,
    bichromatic_reverse_skyline_naive,
)
from repro.core.skyband import ReverseSkybandTRS
from repro.core.trs import TRS
from repro.data.synthetic import synthetic_dataset
from repro.experiments.tables import format_table
from repro.experiments.workloads import queries_for, scaled
from repro.streaming.window import StreamingReverseSkyline


@pytest.fixture(scope="module")
def dataset():
    return synthetic_dataset(scaled(5000), [12] * 4, seed=111)


def test_ext_skyband_vs_k(dataset, benchmark, emit):
    query = queries_for(dataset, 1)[0]

    def run():
        rows = []
        for k in (1, 2, 4, 8, 16):
            algo = ReverseSkybandTRS(
                dataset, k=k, memory_fraction=0.10, page_bytes=512
            )
            r = algo.run(query)
            rows.append([k, len(r.record_ids), r.stats.intermediate_count,
                         f"{r.stats.checks:,}"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ext_skyband",
        "Extension — reverse k-skyband vs k",
        format_table(["k", "|RSB_k|", "|R|", "checks"], rows),
    )
    sizes = [row[1] for row in rows]
    assert sizes == sorted(sizes)  # monotone in k
    trs = TRS(dataset, memory_fraction=0.10, page_bytes=512).run(query)
    assert sizes[0] == len(trs.record_ids)  # k=1 == reverse skyline


def test_ext_bichromatic_tree_vs_naive(dataset, benchmark, emit):
    rng = np.random.default_rng(7)
    competitors = dataset.with_records(
        [
            tuple(int(rng.integers(0, c)) for c in dataset.schema.cardinalities())
            for _ in range(scaled(1500))
        ],
        name="competitors",
    )
    queries = queries_for(dataset, 2)

    def run():
        rows = []
        for label, fn in (
            ("naive", bichromatic_reverse_skyline_naive),
            ("tree", bichromatic_reverse_skyline),
        ):
            t0 = time.perf_counter()
            results = [fn(dataset, competitors, q) for q in queries]
            ms = (time.perf_counter() - t0) * 1000 / len(queries)
            rows.append([label, len(results[0]), f"{ms:.1f}"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ext_bichromatic",
        "Extension — bichromatic RS, tree-accelerated vs pairwise",
        format_table(["variant", "|result| (q0)", "ms/query"], rows),
    )
    assert rows[0][1] == rows[1][1]  # identical results
    naive_ms = float(rows[0][2])
    tree_ms = float(rows[1][2])
    assert tree_ms < naive_ms  # group reasoning wins across populations


def test_ext_vectorized_scaling(benchmark, emit):
    """VectorBRS vs scalar BRS across sizes: identical results and page
    IOs; vectorisation buys wall time at scale despite performing more
    raw comparisons (no per-pair early abort)."""
    from repro.core.brs import BRS
    from repro.core.vectorized import VectorBRS

    rows = []
    outcomes = []

    def run():
        for n in (scaled(4000), scaled(16000), scaled(32000)):
            ds = synthetic_dataset(n, [24] * 5, seed=191)
            q = queries_for(ds, 1)[0]
            brs = BRS(ds, memory_fraction=0.10, page_bytes=512)
            vec = VectorBRS(ds, memory_fraction=0.10, page_bytes=512)
            t0 = time.perf_counter()
            r_brs = brs.run(q)
            brs_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            r_vec = vec.run(q)
            vec_s = time.perf_counter() - t0
            outcomes.append((r_brs, r_vec))
            rows.append(
                [n, f"{brs_s * 1000:.0f}", f"{vec_s * 1000:.0f}",
                 f"{r_brs.stats.checks / 1e6:.1f}M",
                 f"{r_vec.stats.checks / 1e6:.1f}M"]
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ext_vectorized",
        "Extension — VectorBRS (numpy) vs scalar BRS",
        format_table(
            ["n", "BRS ms", "VectorBRS ms", "BRS checks", "Vec checks"], rows
        ),
    )
    for r_brs, r_vec in outcomes:
        assert r_vec.record_ids == r_brs.record_ids
        assert r_vec.stats.io.total == r_brs.stats.io.total
    # At the largest size, vectorisation wins wall time.
    largest_brs, largest_vec = outcomes[-1]
    assert largest_vec.stats.wall_time_s < largest_brs.stats.wall_time_s


def test_ext_streaming_amortized(benchmark, emit):
    cards = [8, 6, 5]
    donor = synthetic_dataset(0, cards, seed=13)
    rng = np.random.default_rng(19)
    query = tuple(int(rng.integers(0, c)) for c in cards)
    updates = scaled(3000)

    def run():
        win = StreamingReverseSkyline(
            donor.schema, donor.space, query, capacity=500
        )
        t0 = time.perf_counter()
        for _ in range(updates):
            win.insert(tuple(int(rng.integers(0, c)) for c in cards))
        incr_s = time.perf_counter() - t0
        # Compare with recomputing from scratch every 100 updates.
        t0 = time.perf_counter()
        recomputes = max(1, updates // 100)
        for _ in range(recomputes):
            win.recompute_naive()
        recompute_s = time.perf_counter() - t0
        return win, incr_s * 1e6 / updates, recompute_s * 1000 / recomputes

    win, us_per_update, ms_per_recompute = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    emit(
        "ext_streaming",
        "Extension — streaming maintenance cost",
        format_table(
            ["metric", "value"],
            [
                ["updates", updates],
                ["window capacity", 500],
                ["incremental cost (us/update)", f"{us_per_update:.1f}"],
                ["naive recompute (ms each)", f"{ms_per_recompute:.2f}"],
                ["final |RS| over window", len(win.result())],
            ],
        ),
    )
    assert win.result() == win.recompute_naive()
    # Amortised incremental updates must be far cheaper than recomputation.
    assert us_per_update / 1000 < ms_per_recompute
