"""Figures 14-16: computation, IO and response time vs density, varying
the number of values per attribute (paper: 45-70 values at 1M rows;
scaled: 20-32 values at 8k rows, sweeping comparable densities).

Paper shape: costs vary widely with the changing result sets, but TRS
outperforms BRS and SRS by ~6x and ~3x on average; the random-IO gap
between TRS and the others is wider than in the size sweep.
"""

import pytest

from conftest import by_algorithm, mean
from repro.experiments.sweeps import values_sweep
from repro.experiments.tables import format_measurements

VALUES = (20, 22, 24, 26, 28, 32)


@pytest.fixture(scope="module")
def sweep():
    return values_sweep(value_counts=VALUES)


def test_fig14_computation(sweep, benchmark, emit):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit(
        "fig14_computation_vs_values",
        "Figure 14 — computation vs density (varying #values/attribute)",
        format_measurements(
            sweep,
            columns=(("algorithm", "algo"), ("computation_ms", "comp_ms(model)"),
                     ("checks", "checks")),
            param_keys=("values", "density"),
        ),
    )
    groups = by_algorithm(sweep)
    trs = mean(m.checks for m in groups["TRS"])
    srs = mean(m.checks for m in groups["SRS"])
    brs = mean(m.checks for m in groups["BRS"])
    assert trs < srs < brs
    assert srs / trs > 1.5  # paper: ~3x on average
    assert brs / trs > 2.5  # paper: ~6x on average


def test_fig15_io(sweep, benchmark, emit):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit(
        "fig15_io_vs_values",
        "Figure 15 — IO vs density (varying #values/attribute)",
        format_measurements(
            sweep,
            columns=(("algorithm", "algo"), ("seq_io", "seq_pages"),
                     ("rand_io", "rand_pages"), ("intermediate_size", "|R|")),
            param_keys=("values", "density"),
        ),
    )
    groups = by_algorithm(sweep)
    rand = {name: mean(m.rand_io for m in rows) for name, rows in groups.items()}
    assert rand["TRS"] <= rand["SRS"]
    assert rand["TRS"] <= rand["BRS"]


def test_fig16_response(sweep, benchmark, emit):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit(
        "fig16_response_vs_values",
        "Figure 16 — response time vs density (varying #values/attribute)",
        format_measurements(
            sweep,
            columns=(("algorithm", "algo"), ("response_ms", "resp_ms(model)"),
                     ("computation_ms", "comp_ms"), ("io_ms", "io_ms")),
            param_keys=("values", "density"),
        ),
    )
    groups = by_algorithm(sweep)
    resp = {name: mean(m.response_ms for m in rows) for name, rows in groups.items()}
    # Paper: TRS 3-6x faster overall.
    assert resp["TRS"] < resp["SRS"] < resp["BRS"]
