"""Figures 5 & 6: IO cost (sequential and random page IOs) vs % memory.

Paper shape: all approaches pay the same ~2 sequential scans once the
intermediate result fits one second-phase batch; random IO falls with
memory and TRS incurs the least (its prefix-tree batches are larger, so
fewer intermediate results and fewer writes/seeks).
"""

import pytest

from conftest import by_algorithm, mean
from repro.core.srs import SRS
from repro.experiments.tables import format_measurements
from repro.experiments.workloads import queries_for

COLUMNS = (
    ("algorithm", "algo"),
    ("seq_io", "seq_pages"),
    ("rand_io", "rand_pages"),
    ("intermediate_size", "|R|"),
    ("db_passes", "passes"),
)


def _assert_shape(sweep, fractions):
    groups = by_algorithm(sweep)
    # Random IO: TRS <= SRS <= BRS on average.
    rand = {name: mean(m.rand_io for m in rows) for name, rows in groups.items()}
    assert rand["TRS"] <= rand["SRS"] <= rand["BRS"]
    # Random IO falls (or stays flat) as memory grows, per algorithm.
    for rows in groups.values():
        assert rows[-1].rand_io <= rows[0].rand_io
    # At the largest memory size every algorithm needs just two passes and
    # hence near-identical sequential IO (Section 5.3).
    last = {name: rows[-1] for name, rows in groups.items()}
    seqs = [m.seq_io for m in last.values()]
    assert max(seqs) <= 1.6 * min(seqs)
    # TRS never produces more intermediate results than SRS/BRS.
    for a, b in (("TRS", "SRS"), ("SRS", "BRS")):
        assert mean(m.intermediate_size for m in groups[a]) <= mean(
            m.intermediate_size for m in groups[b]
        ) * 1.05


@pytest.mark.parametrize("which", ["ci", "fc"])
def test_fig05_06(which, ci, fc, ci_memory_sweep, fc_memory_sweep, benchmark, emit):
    dataset, sweep = (ci, ci_memory_sweep) if which == "ci" else (fc, fc_memory_sweep)
    fig = "Figure 5 (CI)" if which == "ci" else "Figure 6 (FC)"
    algo = SRS(dataset, memory_fraction=0.10, page_bytes=512)
    algo.prepare()
    query = queries_for(dataset, 1)[0]
    benchmark(algo.run, query)
    emit(
        f"fig05_06_io_{which}",
        f"{fig} — IO cost vs % memory on {dataset.name}",
        format_measurements(sweep, columns=COLUMNS, param_keys=("memory",)),
    )
    _assert_shape(sweep, fractions=(0.04, 0.08, 0.12, 0.16, 0.20))
