"""Table 1: the running example's reverse skyline and pruner sets.

Paper: for Q = [MSW, Intel, DB2], RS = {O3, O6}; pruners:
O1×{4}, O2×{1,4,5}, O4×{1}, O5×{1,2,4}.
"""

from repro.core.trs import TRS
from repro.data.examples import (
    RUNNING_EXAMPLE_PRUNERS,
    RUNNING_EXAMPLE_RESULT,
    running_example,
    running_example_query,
)
from repro.experiments.tables import format_table
from repro.skyline.domination import dominates
from repro.storage.disk import MemoryBudget


def _table1():
    ds = running_example()
    q = running_example_query()
    result = TRS(ds, budget=MemoryBudget(2)).run(q)
    rows = []
    for x_id in range(len(ds)):
        pruners = {
            y_id
            for y_id in range(len(ds))
            if y_id != x_id and dominates(ds.space, ds[y_id], q, ds[x_id])
        }
        labels = [ds.schema[i].label_of(v) for i, v in enumerate(ds[x_id])]
        member = "yes" if x_id in result.result_set else "x" + str(
            sorted(p + 1 for p in pruners)
        )
        rows.append([f"O{x_id + 1}", *labels, member])
    return ds, q, result, rows


def test_table1(benchmark, emit):
    ds, q, result, rows = benchmark.pedantic(_table1, rounds=1, iterations=1)
    emit(
        "table1_running_example",
        "Table 1 — running example, Q=[MSW,Intel,DB2]",
        format_table(["Id", "OS", "Processor", "DB", "in RS(Q)?"], rows),
    )
    assert result.result_set == RUNNING_EXAMPLE_RESULT
    # Pruner sets exactly as printed in Table 1.
    for x_id, expected in RUNNING_EXAMPLE_PRUNERS.items():
        got = {
            y_id
            for y_id in range(len(ds))
            if y_id != x_id and dominates(ds.space, ds[y_id], q, ds[x_id])
        }
        assert got == expected
