"""Extension benchmark — retry overhead under injected storage faults.

The fault-injection layer (``repro.faults``) promises that recovery is
*cheap*: a faulting batch re-runs only the page IOs that actually
failed, so throughput should degrade roughly in proportion to the fault
rate, not collapse. This benchmark measures that — the same batch is
answered fault-free and under increasingly hostile IO-fault storms, and
every chaotic run is asserted bit-identical to the clean one.

Backoff delays are zeroed (the ``sleep`` hook is injectable) so the
table isolates the *mechanical* overhead of retries — re-executed page
IOs, injector consultations, repair writes — from configured wait time.
"""

import time

import pytest

from repro.data.synthetic import synthetic_dataset
from repro.engine import ReverseSkylineEngine
from repro.experiments.tables import format_table
from repro.experiments.workloads import queries_for, scaled
from repro.faults import FaultInjector, FaultPlan, RetryPolicy


@pytest.fixture(scope="module")
def dataset():
    return synthetic_dataset(scaled(3000), [12] * 4, seed=207)


@pytest.fixture(scope="module")
def batch(dataset):
    return queries_for(dataset, scaled(40))


def run_batch(dataset, batch, rate, seed=11):
    injector = None
    if rate:
        injector = FaultInjector(FaultPlan.io_only(rate), seed=seed)
    engine = ReverseSkylineEngine(
        dataset,
        memory_fraction=0.10,
        page_bytes=512,
        log_queries=False,
        fault_injector=injector,
        retry_policy=RetryPolicy(max_attempts=4, sleep=lambda _: None),
    )
    engine._algorithm("TRS")  # pay the one-time prepare outside the timer
    t0 = time.perf_counter()
    report = engine.query_many(batch, pool="serial", cache=False)
    return report, time.perf_counter() - t0


def test_ext_faults_retry_overhead(dataset, batch, benchmark, emit):
    def run():
        clean, clean_s = run_batch(dataset, batch, rate=0.0)
        assert clean.ok
        rows = [
            [
                "0% (fault-free)",
                f"{clean.stats.io.total:,}",
                0,
                0,
                f"{clean_s * 1000:.0f}",
                "1.00x",
            ]
        ]
        overheads = {}
        for rate in (0.01, 0.05, 0.10, 0.20):
            report, wall_s = run_batch(dataset, batch, rate)
            # Recovery, not degradation: answers and logical IO identical.
            assert report.ok
            assert report.record_id_sets() == clean.record_id_sets()
            assert report.stats.io.total == clean.stats.io.total
            overheads[rate] = wall_s / clean_s
            rows.append(
                [
                    f"{rate:.0%}",
                    f"{report.stats.io.total:,}",
                    report.stats.io.faults_seen,
                    report.stats.io.retries,
                    f"{wall_s * 1000:.0f}",
                    f"{wall_s / clean_s:.2f}x",
                ]
            )
        return rows, overheads

    rows, overheads = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ext_faults",
        "Extension — retry overhead under injected IO faults "
        "(serial batch, zero backoff delay)",
        format_table(
            ["fault rate", "logical ios", "faults", "retries", "ms", "vs clean"],
            rows,
        ),
    )
    # The acceptance bar: recovering from a 10% IO-fault storm costs well
    # under a 2x slowdown (retries re-run single page IOs, not queries).
    assert overheads[0.10] < 2.0
