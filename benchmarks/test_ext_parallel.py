"""Extension benchmark — batch-query throughput: sequential vs pooled vs cached.

Answers the ROADMAP's serving question: given a realistic batch of
repeated queries (production traffic is heavy-tailed — hot probe objects
recur), how much does the ``repro.exec`` executor buy over the sequential
one-query-at-a-time loop?

Strategies compared on the same >=100-query batch:

- ``sequential``: ``engine.query`` in a plain loop (the pre-exec path).
- ``thread x4``: pooled ``query_many`` with the result cache off —
  bounded by the GIL for this CPU-bound pure-Python work, so roughly
  sequential speed; listed to keep the comparison honest.
- ``thread x4 + cache``: pooled with the LRU result cache on; repeats
  collapse via in-flight dedup, so only the distinct queries compute.
- ``process x4``: worker processes sidestep the GIL (skipped gracefully
  where the sandbox forbids multiprocessing primitives).
"""

import time

import pytest

from repro.engine import ReverseSkylineEngine
from repro.exec import QueryExecutor, ResultCache
from repro.data.synthetic import synthetic_dataset
from repro.experiments.tables import format_table
from repro.experiments.workloads import queries_for, scaled


@pytest.fixture(scope="module")
def dataset():
    return synthetic_dataset(scaled(3000), [12] * 4, seed=202)


@pytest.fixture(scope="module")
def batch(dataset):
    # 25 distinct queries, each repeated 5x -> 125 queries (>= 100).
    distinct = queries_for(dataset, 25)
    return [q for q in distinct for _ in range(5)]


def fresh_engine(dataset):
    engine = ReverseSkylineEngine(
        dataset, memory_fraction=0.10, page_bytes=512, log_queries=False
    )
    engine._algorithm("TRS")  # pay the one-time prepare outside the timers
    return engine


def test_ext_parallel_throughput(dataset, batch, benchmark, emit):
    def run():
        rows = []
        timings = {}

        def add_row(label, seconds, computed, checks):
            timings[label] = seconds
            rows.append(
                [
                    label,
                    len(batch),
                    computed,
                    f"{checks:,}",
                    f"{seconds * 1000:.0f}",
                    f"{len(batch) / seconds:.0f}",
                    f"{timings['sequential'] / seconds:.2f}x",
                ]
            )

        engine = fresh_engine(dataset)
        t0 = time.perf_counter()
        seq_results = [engine.query(q) for q in batch]
        add_row(
            "sequential",
            time.perf_counter() - t0,
            len(batch),
            sum(r.stats.checks for r in seq_results),
        )

        configs = [
            ("thread x4", "thread", False),
            ("thread x4 + cache", "thread", True),
        ]
        for label, pool, cache in configs:
            engine = fresh_engine(dataset)
            t0 = time.perf_counter()
            report = engine.query_many(batch, pool=pool, workers=4, cache=cache)
            add_row(
                label, time.perf_counter() - t0, report.computed, report.stats.checks
            )
            assert report.record_id_sets() == [
                tuple(r.record_ids) for r in seq_results
            ]

        try:
            engine = fresh_engine(dataset)
            executor = QueryExecutor(
                engine, pool="process", workers=4, cache=ResultCache()
            )
            t0 = time.perf_counter()
            report = executor.run_batch(batch)
            add_row(
                "process x4 + cache",
                time.perf_counter() - t0,
                report.computed,
                report.stats.checks,
            )
            assert report.record_id_sets() == [
                tuple(r.record_ids) for r in seq_results
            ]
        except (OSError, PermissionError):
            rows.append(["process x4 + cache", len(batch), "-", "-", "n/a", "-", "-"])

        return rows, timings

    rows, timings = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ext_parallel",
        "Extension — batch-query executor throughput (125-query batch, 5x repeats)",
        format_table(
            ["strategy", "queries", "computed", "checks", "ms", "q/s", "speedup"],
            rows,
        ),
    )
    # The acceptance bar: pooled query_many beats the sequential loop.
    assert timings["thread x4 + cache"] < timings["sequential"]
