"""Canonical core-kernel benchmark — scalar vs numpy backends.

Runs the standard 125-query batch workload (25 distinct queries x 5
repeats, the same shape as the executor and observability benchmarks)
through scalar TRS, VectorTRS and VectorBRS, and writes the measurements
to ``BENCH_core.json`` at the repository root — the canonical artifact CI
uploads and gates on.

Gates: VectorTRS must answer the batch at least ``MIN_SPEEDUP``x faster
than scalar TRS; the fused multi-query kernels must beat the per-query
kernel loop by ``MIN_FUSED_SPEEDUP``x on the same batch; and VectorBRS
must beat scalar BRS by ``MIN_VECTOR_BRS_SPEEDUP``x on the dense
low-cardinality workload (the shape its ``auto`` re-admission is gated
on). The differential suites (tests/test_kernels.py, tests/test_fused.py)
separately enforce that the speedups change *nothing* observable —
results, batch structure and page IOs stay bit-identical; only the
checks accounting granularity differs (see docs/performance.md).
"""

from __future__ import annotations

import json
import pathlib
import platform
import time

from repro.core.trs import TRS
from repro.core.vector_trs import VectorTRS
from repro.core.vectorized import VectorBRS
from repro.data.synthetic import synthetic_dataset
from repro.experiments.tables import format_table
from repro.experiments.workloads import queries_for, scale_factor, scaled

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_core.json"

#: Minimum required VectorTRS-over-TRS batch speedup (the CI gate).
#: Raised from 3.0 once the fused shared-scan kernels landed and the
#: measured batch speedup settled above 4x.
MIN_SPEEDUP = 3.5

ALGORITHMS = (TRS, VectorTRS, VectorBRS)


def _run_batch(cls, dataset, batch):
    """Time one algorithm over the whole batch (prepare paid outside the
    timer — physical design is offline in the paper's cost model)."""
    algo = cls(dataset, memory_fraction=0.10, page_bytes=512)
    algo.prepare()
    checks = 0
    page_ios = 0
    results = []
    t0 = time.perf_counter()
    for q in batch:
        r = algo.run(q)
        checks += r.stats.checks
        page_ios += r.stats.io.total
        results.append(r.record_ids)
    seconds = time.perf_counter() - t0
    return {
        "algorithm": cls.name,
        "backend": cls.backend,
        "queries": len(batch),
        "wall_time_s": seconds,
        "ms_per_query": seconds * 1000 / len(batch),
        "queries_per_s": len(batch) / seconds,
        "checks": checks,
        "page_ios": page_ios,
    }, results


def test_bench_core_backends(emit):
    dataset = synthetic_dataset(scaled(3000), [12] * 4, seed=202)
    distinct = queries_for(dataset, 25)
    batch = [q for q in distinct for _ in range(5)]  # 125 queries

    measurements = []
    answers = {}
    for cls in ALGORITHMS:
        row, results = _run_batch(cls, dataset, batch)
        measurements.append(row)
        answers[cls.name] = results

    # The benchmark only counts if every backend computed the same thing.
    assert answers["VectorTRS"] == answers["TRS"]
    assert answers["VectorBRS"] == answers["TRS"]

    base = measurements[0]["wall_time_s"]
    for row in measurements:
        row["speedup_vs_trs"] = base / row["wall_time_s"]

    doc = {
        "workload": {
            "dataset": dataset.describe(),
            "records": len(dataset),
            "attributes": dataset.num_attributes,
            "distinct_queries": len(distinct),
            "repeats": 5,
            "queries": len(batch),
            "memory_fraction": 0.10,
            "page_bytes": 512,
            "repro_scale": scale_factor(),
        },
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "gate": {"min_vector_trs_speedup": MIN_SPEEDUP},
        "measurements": measurements,
    }
    BENCH_PATH.write_text(json.dumps(doc, indent=2) + "\n")

    rows = [
        [
            m["algorithm"],
            m["backend"],
            f"{m['wall_time_s'] * 1000:.0f}",
            f"{m['ms_per_query']:.2f}",
            f"{m['queries_per_s']:.0f}",
            f"{m['checks']:,}",
            f"{m['page_ios']:,}",
            f"{m['speedup_vs_trs']:.2f}x",
        ]
        for m in measurements
    ]
    emit(
        "bench_core",
        "Core kernels: 125-query batch, scalar vs numpy backends",
        format_table(
            ["algorithm", "backend", "batch ms", "ms/query", "q/s",
             "checks", "page ios", "speedup"],
            rows,
        )
        + f"\n(canonical artifact: {BENCH_PATH.name})",
    )

    vec_trs = next(m for m in measurements if m["algorithm"] == "VectorTRS")
    assert vec_trs["speedup_vs_trs"] >= MIN_SPEEDUP, (
        f"VectorTRS speedup {vec_trs['speedup_vs_trs']:.2f}x "
        f"below the {MIN_SPEEDUP}x gate"
    )


#: Minimum fused-over-per-query shared-scan batch speedup (CI gate).
MIN_FUSED_SPEEDUP = 1.5

#: Minimum VectorBRS-over-scalar-BRS speedup on the dense workload (CI
#: gate) — the measurement behind VectorBRS's shape-gated `auto`
#: re-admission.
MIN_VECTOR_BRS_SPEEDUP = 1.5


def test_bench_core_fused_groups(emit):
    """Fused multi-query kernels vs the per-query kernel loop.

    The same 125-query batch through ``SharedScanTRS`` three ways: the
    scalar python path (checks baseline), the numpy backend with the
    legacy per-query kernel loop (``fused=False``), and the fused
    kernels (one invocation per phase/batch for the whole group). All
    three must agree on every result; the fused path must beat the
    per-query loop by ``MIN_FUSED_SPEEDUP``x. The artifact additionally
    records the fused/scalar checks ratio — the price of frontier- and
    group-granular accounting.
    """
    from repro.core.multiquery import SharedScanTRS

    dataset = synthetic_dataset(scaled(3000), [12] * 4, seed=202)
    distinct = queries_for(dataset, 25)
    batch = [q for q in distinct for _ in range(5)]  # 125 queries

    cells = (
        ("python", "python", True),
        ("per-query", "numpy", False),
        ("fused", "numpy", True),
    )
    measurements = []
    answers = {}
    for label, backend, fused in cells:
        algo = SharedScanTRS(
            dataset,
            backend=backend,
            fused=fused,
            memory_fraction=0.10,
            page_bytes=512,
        )
        algo.prepare()
        t0 = time.perf_counter()
        result = algo.run_batch(batch)
        seconds = time.perf_counter() - t0
        answers[label] = result.results
        measurements.append(
            {
                "variant": label,
                "backend": result.backend,
                "fused": fused,
                "queries": len(batch),
                "wall_time_s": seconds,
                "ms_per_query": seconds * 1000 / len(batch),
                "queries_per_s": len(batch) / seconds,
                "checks": result.stats.checks,
                "page_ios": result.stats.io.total,
            }
        )

    assert answers["fused"] == answers["python"]
    assert answers["per-query"] == answers["python"]

    scalar = next(m for m in measurements if m["variant"] == "python")
    per_query = next(m for m in measurements if m["variant"] == "per-query")
    fused_row = next(m for m in measurements if m["variant"] == "fused")
    for row in measurements:
        row["speedup_vs_per_query"] = (
            per_query["wall_time_s"] / row["wall_time_s"]
        )
    checks_ratio = fused_row["checks"] / scalar["checks"]

    doc = json.loads(BENCH_PATH.read_text()) if BENCH_PATH.exists() else {}
    doc.setdefault("gate", {})["min_fused_group_speedup"] = MIN_FUSED_SPEEDUP
    doc["fused_measurements"] = measurements
    doc["fused_checks_ratio_vs_scalar"] = checks_ratio
    BENCH_PATH.write_text(json.dumps(doc, indent=2) + "\n")

    rows = [
        [
            m["variant"],
            m["backend"],
            f"{m['wall_time_s'] * 1000:.0f}",
            f"{m['ms_per_query']:.2f}",
            f"{m['checks']:,}",
            f"{m['page_ios']:,}",
            f"{m['speedup_vs_per_query']:.2f}x",
        ]
        for m in measurements
    ]
    emit(
        "bench_core_fused",
        "Shared-scan kernels: 125-query batch, per-query loop vs fused",
        format_table(
            ["variant", "backend", "batch ms", "ms/query", "checks",
             "page ios", "vs per-query"],
            rows,
        )
        + f"\nfused/scalar checks ratio: {checks_ratio:.2f}"
        + f"\n(canonical artifact: {BENCH_PATH.name})",
    )

    speedup = fused_row["speedup_vs_per_query"]
    assert speedup >= MIN_FUSED_SPEEDUP, (
        f"fused shared-scan batch only {speedup:.2f}x over the per-query "
        f"kernel loop (gate {MIN_FUSED_SPEEDUP}x)"
    )


def test_bench_core_dense_workload(emit):
    """Dense low-cardinality workload: the BRS family's home turf.

    A [4,4,4,4] schema packs 3000 records into 256 value cells
    (density ~11.7); block pruning eliminates ~99% of phase 1, the
    shape on which VectorBRS's ``auto`` re-admission and the advisor's
    BRS-family rule are gated. The gate requires VectorBRS to beat
    scalar BRS by ``MIN_VECTOR_BRS_SPEEDUP``x here; TRS and VectorTRS
    rows are recorded for cross-family context.
    """
    from repro.core.brs import BRS

    dataset = synthetic_dataset(scaled(3000), [4] * 4, seed=202)
    distinct = queries_for(dataset, 25)
    batch = [q for q in distinct for _ in range(5)]  # 125 queries

    measurements = []
    answers = {}
    for cls in (TRS, VectorTRS, BRS, VectorBRS):
        row, results = _run_batch(cls, dataset, batch)
        measurements.append(row)
        answers[cls.name] = results

    assert answers["VectorTRS"] == answers["TRS"]
    assert answers["BRS"] == answers["TRS"]
    assert answers["VectorBRS"] == answers["TRS"]

    base = measurements[0]["wall_time_s"]
    brs_s = next(
        m for m in measurements if m["algorithm"] == "BRS"
    )["wall_time_s"]
    for row in measurements:
        row["speedup_vs_trs"] = base / row["wall_time_s"]
        row["speedup_vs_brs"] = brs_s / row["wall_time_s"]

    doc = json.loads(BENCH_PATH.read_text()) if BENCH_PATH.exists() else {}
    doc.setdefault("gate", {})["min_vector_brs_speedup"] = (
        MIN_VECTOR_BRS_SPEEDUP
    )
    doc["dense_workload"] = {
        "dataset": dataset.describe(),
        "records": len(dataset),
        "cardinalities": [4, 4, 4, 4],
        "density": dataset.density(),
        "queries": len(batch),
        "measurements": measurements,
    }
    BENCH_PATH.write_text(json.dumps(doc, indent=2) + "\n")

    rows = [
        [
            m["algorithm"],
            m["backend"],
            f"{m['wall_time_s'] * 1000:.0f}",
            f"{m['ms_per_query']:.2f}",
            f"{m['checks']:,}",
            f"{m['page_ios']:,}",
            f"{m['speedup_vs_trs']:.2f}x",
            f"{m['speedup_vs_brs']:.2f}x",
        ]
        for m in measurements
    ]
    emit(
        "bench_core_dense",
        "Dense [4,4,4,4] workload: BRS family vs TRS family",
        format_table(
            ["algorithm", "backend", "batch ms", "ms/query", "checks",
             "page ios", "vs TRS", "vs BRS"],
            rows,
        )
        + f"\n(canonical artifact: {BENCH_PATH.name})",
    )

    vec_brs = next(m for m in measurements if m["algorithm"] == "VectorBRS")
    assert vec_brs["speedup_vs_brs"] >= MIN_VECTOR_BRS_SPEEDUP, (
        f"VectorBRS only {vec_brs['speedup_vs_brs']:.2f}x over scalar BRS "
        f"on the dense workload (gate {MIN_VECTOR_BRS_SPEEDUP}x)"
    )


#: Minimum planned-over-unplanned process-pool batch speedup (CI gate).
MIN_PLANNED_SPEEDUP = 2.0

#: (pool, plan, shm) cells for the executor throughput table. The shm
#: column only matters on the process pool; the planned process cell
#: runs the full tentpole configuration (planner + shared memory).
BATCH_CELLS = (
    ("serial", False, False),
    ("serial", True, False),
    ("thread", False, False),
    ("thread", True, False),
    ("process", False, False),
    ("process", True, True),
)


def test_bench_core_batch_pools(emit):
    """Executor batch throughput per pool, planner off vs on.

    Same 125-query workload as the backend benchmark, answered through
    ``QueryExecutor`` with a fresh engine per cell (no result cache — the
    point is compute throughput, not memoization). Every cell must be
    bit-identical to the serial unplanned reference; the gate requires
    the planned process pool to beat the unplanned one by
    ``MIN_PLANNED_SPEEDUP``x.
    """
    from repro.engine import ReverseSkylineEngine
    from repro.exec.executor import QueryExecutor

    dataset = synthetic_dataset(scaled(3000), [12] * 4, seed=202)
    distinct = queries_for(dataset, 25)
    batch = [q for q in distinct for _ in range(5)]  # 125 queries

    reference = None
    measurements = []
    for pool, plan, shm in BATCH_CELLS:
        engine = ReverseSkylineEngine(
            dataset,
            algorithm="TRS",
            memory_fraction=0.10,
            page_bytes=512,
            log_queries=False,
        )
        executor = QueryExecutor(
            engine, pool=pool, workers=4, cache=None, plan=plan, shm=shm
        )
        report = executor.run_batch(batch)
        assert report.ok
        answers = report.record_id_sets()
        if reference is None:
            reference = answers
        assert answers == reference  # bit-identical whatever the path
        measurements.append(
            {
                "pool": pool,
                "workers": 4,
                "plan": plan,
                "shm": shm,
                "queries": len(batch),
                "planned_queries": report.planned_count,
                "wall_time_s": report.wall_time_s,
                "ms_per_query": report.wall_time_s * 1000 / len(batch),
                "queries_per_s": len(batch) / report.wall_time_s,
            }
        )

    base = measurements[0]["wall_time_s"]
    for row in measurements:
        row["speedup_vs_serial"] = base / row["wall_time_s"]

    # Fold the rows into the canonical artifact next to the backend
    # measurements (this test runs after test_bench_core_backends in
    # file order; standalone runs start a fresh skeleton).
    doc = json.loads(BENCH_PATH.read_text()) if BENCH_PATH.exists() else {}
    doc.setdefault("gate", {})["min_planned_process_speedup"] = (
        MIN_PLANNED_SPEEDUP
    )
    doc["batch_measurements"] = measurements
    BENCH_PATH.write_text(json.dumps(doc, indent=2) + "\n")

    rows = [
        [
            m["pool"],
            "on" if m["plan"] else "off",
            "on" if m["shm"] else "off",
            str(m["planned_queries"]),
            f"{m['wall_time_s'] * 1000:.0f}",
            f"{m['queries_per_s']:.0f}",
            f"{m['speedup_vs_serial']:.2f}x",
        ]
        for m in measurements
    ]
    emit(
        "bench_core_batch",
        "Executor throughput: 125-query batch per pool, planner off/on",
        format_table(
            ["pool", "plan", "shm", "planned", "batch ms", "q/s", "vs serial"],
            rows,
        )
        + f"\n(canonical artifact: {BENCH_PATH.name})",
    )

    unplanned = next(
        m for m in measurements if m["pool"] == "process" and not m["plan"]
    )
    planned = next(
        m for m in measurements if m["pool"] == "process" and m["plan"]
    )
    speedup = unplanned["wall_time_s"] / planned["wall_time_s"]
    planned["speedup_vs_unplanned_process"] = speedup
    doc["batch_measurements"] = measurements
    BENCH_PATH.write_text(json.dumps(doc, indent=2) + "\n")
    assert speedup >= MIN_PLANNED_SPEEDUP, (
        f"planned process-pool batch only {speedup:.2f}x over unplanned "
        f"(gate {MIN_PLANNED_SPEEDUP}x)"
    )
