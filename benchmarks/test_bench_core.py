"""Canonical core-kernel benchmark — scalar vs numpy backends.

Runs the standard 125-query batch workload (25 distinct queries x 5
repeats, the same shape as the executor and observability benchmarks)
through scalar TRS, VectorTRS and VectorBRS, and writes the measurements
to ``BENCH_core.json`` at the repository root — the canonical artifact CI
uploads and gates on.

The gate: VectorTRS must answer the batch at least 3x faster than scalar
TRS. The differential suite (tests/test_kernels.py) separately enforces
that the speedup changes *nothing* observable — results, batch structure
and page IOs stay bit-identical; only the checks accounting granularity
differs (see docs/performance.md).
"""

from __future__ import annotations

import json
import pathlib
import platform
import time

from repro.core.trs import TRS
from repro.core.vector_trs import VectorTRS
from repro.core.vectorized import VectorBRS
from repro.data.synthetic import synthetic_dataset
from repro.experiments.tables import format_table
from repro.experiments.workloads import queries_for, scale_factor, scaled

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_core.json"

#: Minimum required VectorTRS-over-TRS batch speedup (the CI gate).
MIN_SPEEDUP = 3.0

ALGORITHMS = (TRS, VectorTRS, VectorBRS)


def _run_batch(cls, dataset, batch):
    """Time one algorithm over the whole batch (prepare paid outside the
    timer — physical design is offline in the paper's cost model)."""
    algo = cls(dataset, memory_fraction=0.10, page_bytes=512)
    algo.prepare()
    checks = 0
    page_ios = 0
    results = []
    t0 = time.perf_counter()
    for q in batch:
        r = algo.run(q)
        checks += r.stats.checks
        page_ios += r.stats.io.total
        results.append(r.record_ids)
    seconds = time.perf_counter() - t0
    return {
        "algorithm": cls.name,
        "backend": cls.backend,
        "queries": len(batch),
        "wall_time_s": seconds,
        "ms_per_query": seconds * 1000 / len(batch),
        "queries_per_s": len(batch) / seconds,
        "checks": checks,
        "page_ios": page_ios,
    }, results


def test_bench_core_backends(emit):
    dataset = synthetic_dataset(scaled(3000), [12] * 4, seed=202)
    distinct = queries_for(dataset, 25)
    batch = [q for q in distinct for _ in range(5)]  # 125 queries

    measurements = []
    answers = {}
    for cls in ALGORITHMS:
        row, results = _run_batch(cls, dataset, batch)
        measurements.append(row)
        answers[cls.name] = results

    # The benchmark only counts if every backend computed the same thing.
    assert answers["VectorTRS"] == answers["TRS"]
    assert answers["VectorBRS"] == answers["TRS"]

    base = measurements[0]["wall_time_s"]
    for row in measurements:
        row["speedup_vs_trs"] = base / row["wall_time_s"]

    doc = {
        "workload": {
            "dataset": dataset.describe(),
            "records": len(dataset),
            "attributes": dataset.num_attributes,
            "distinct_queries": len(distinct),
            "repeats": 5,
            "queries": len(batch),
            "memory_fraction": 0.10,
            "page_bytes": 512,
            "repro_scale": scale_factor(),
        },
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "gate": {"min_vector_trs_speedup": MIN_SPEEDUP},
        "measurements": measurements,
    }
    BENCH_PATH.write_text(json.dumps(doc, indent=2) + "\n")

    rows = [
        [
            m["algorithm"],
            m["backend"],
            f"{m['wall_time_s'] * 1000:.0f}",
            f"{m['ms_per_query']:.2f}",
            f"{m['queries_per_s']:.0f}",
            f"{m['checks']:,}",
            f"{m['page_ios']:,}",
            f"{m['speedup_vs_trs']:.2f}x",
        ]
        for m in measurements
    ]
    emit(
        "bench_core",
        "Core kernels: 125-query batch, scalar vs numpy backends",
        format_table(
            ["algorithm", "backend", "batch ms", "ms/query", "q/s",
             "checks", "page ios", "speedup"],
            rows,
        )
        + f"\n(canonical artifact: {BENCH_PATH.name})",
    )

    vec_trs = next(m for m in measurements if m["algorithm"] == "VectorTRS")
    assert vec_trs["speedup_vs_trs"] >= MIN_SPEEDUP, (
        f"VectorTRS speedup {vec_trs['speedup_vs_trs']:.2f}x "
        f"below the {MIN_SPEEDUP}x gate"
    )


#: Minimum planned-over-unplanned process-pool batch speedup (CI gate).
MIN_PLANNED_SPEEDUP = 2.0

#: (pool, plan, shm) cells for the executor throughput table. The shm
#: column only matters on the process pool; the planned process cell
#: runs the full tentpole configuration (planner + shared memory).
BATCH_CELLS = (
    ("serial", False, False),
    ("serial", True, False),
    ("thread", False, False),
    ("thread", True, False),
    ("process", False, False),
    ("process", True, True),
)


def test_bench_core_batch_pools(emit):
    """Executor batch throughput per pool, planner off vs on.

    Same 125-query workload as the backend benchmark, answered through
    ``QueryExecutor`` with a fresh engine per cell (no result cache — the
    point is compute throughput, not memoization). Every cell must be
    bit-identical to the serial unplanned reference; the gate requires
    the planned process pool to beat the unplanned one by
    ``MIN_PLANNED_SPEEDUP``x.
    """
    from repro.engine import ReverseSkylineEngine
    from repro.exec.executor import QueryExecutor

    dataset = synthetic_dataset(scaled(3000), [12] * 4, seed=202)
    distinct = queries_for(dataset, 25)
    batch = [q for q in distinct for _ in range(5)]  # 125 queries

    reference = None
    measurements = []
    for pool, plan, shm in BATCH_CELLS:
        engine = ReverseSkylineEngine(
            dataset,
            algorithm="TRS",
            memory_fraction=0.10,
            page_bytes=512,
            log_queries=False,
        )
        executor = QueryExecutor(
            engine, pool=pool, workers=4, cache=None, plan=plan, shm=shm
        )
        report = executor.run_batch(batch)
        assert report.ok
        answers = report.record_id_sets()
        if reference is None:
            reference = answers
        assert answers == reference  # bit-identical whatever the path
        measurements.append(
            {
                "pool": pool,
                "workers": 4,
                "plan": plan,
                "shm": shm,
                "queries": len(batch),
                "planned_queries": report.planned_count,
                "wall_time_s": report.wall_time_s,
                "ms_per_query": report.wall_time_s * 1000 / len(batch),
                "queries_per_s": len(batch) / report.wall_time_s,
            }
        )

    base = measurements[0]["wall_time_s"]
    for row in measurements:
        row["speedup_vs_serial"] = base / row["wall_time_s"]

    # Fold the rows into the canonical artifact next to the backend
    # measurements (this test runs after test_bench_core_backends in
    # file order; standalone runs start a fresh skeleton).
    doc = json.loads(BENCH_PATH.read_text()) if BENCH_PATH.exists() else {}
    doc.setdefault("gate", {})["min_planned_process_speedup"] = (
        MIN_PLANNED_SPEEDUP
    )
    doc["batch_measurements"] = measurements
    BENCH_PATH.write_text(json.dumps(doc, indent=2) + "\n")

    rows = [
        [
            m["pool"],
            "on" if m["plan"] else "off",
            "on" if m["shm"] else "off",
            str(m["planned_queries"]),
            f"{m['wall_time_s'] * 1000:.0f}",
            f"{m['queries_per_s']:.0f}",
            f"{m['speedup_vs_serial']:.2f}x",
        ]
        for m in measurements
    ]
    emit(
        "bench_core_batch",
        "Executor throughput: 125-query batch per pool, planner off/on",
        format_table(
            ["pool", "plan", "shm", "planned", "batch ms", "q/s", "vs serial"],
            rows,
        )
        + f"\n(canonical artifact: {BENCH_PATH.name})",
    )

    unplanned = next(
        m for m in measurements if m["pool"] == "process" and not m["plan"]
    )
    planned = next(
        m for m in measurements if m["pool"] == "process" and m["plan"]
    )
    speedup = unplanned["wall_time_s"] / planned["wall_time_s"]
    planned["speedup_vs_unplanned_process"] = speedup
    doc["batch_measurements"] = measurements
    BENCH_PATH.write_text(json.dumps(doc, indent=2) + "\n")
    assert speedup >= MIN_PLANNED_SPEEDUP, (
        f"planned process-pool batch only {speedup:.2f}x over unplanned "
        f"(gate {MIN_PLANNED_SPEEDUP}x)"
    )
