"""Canonical core-kernel benchmark — scalar vs numpy backends.

Runs the standard 125-query batch workload (25 distinct queries x 5
repeats, the same shape as the executor and observability benchmarks)
through scalar TRS, VectorTRS and VectorBRS, and writes the measurements
to ``BENCH_core.json`` at the repository root — the canonical artifact CI
uploads and gates on.

The gate: VectorTRS must answer the batch at least 3x faster than scalar
TRS. The differential suite (tests/test_kernels.py) separately enforces
that the speedup changes *nothing* observable — results, batch structure
and page IOs stay bit-identical; only the checks accounting granularity
differs (see docs/performance.md).
"""

from __future__ import annotations

import json
import pathlib
import platform
import time

from repro.core.trs import TRS
from repro.core.vector_trs import VectorTRS
from repro.core.vectorized import VectorBRS
from repro.data.synthetic import synthetic_dataset
from repro.experiments.tables import format_table
from repro.experiments.workloads import queries_for, scale_factor, scaled

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_core.json"

#: Minimum required VectorTRS-over-TRS batch speedup (the CI gate).
MIN_SPEEDUP = 3.0

ALGORITHMS = (TRS, VectorTRS, VectorBRS)


def _run_batch(cls, dataset, batch):
    """Time one algorithm over the whole batch (prepare paid outside the
    timer — physical design is offline in the paper's cost model)."""
    algo = cls(dataset, memory_fraction=0.10, page_bytes=512)
    algo.prepare()
    checks = 0
    page_ios = 0
    results = []
    t0 = time.perf_counter()
    for q in batch:
        r = algo.run(q)
        checks += r.stats.checks
        page_ios += r.stats.io.total
        results.append(r.record_ids)
    seconds = time.perf_counter() - t0
    return {
        "algorithm": cls.name,
        "backend": cls.backend,
        "queries": len(batch),
        "wall_time_s": seconds,
        "ms_per_query": seconds * 1000 / len(batch),
        "queries_per_s": len(batch) / seconds,
        "checks": checks,
        "page_ios": page_ios,
    }, results


def test_bench_core_backends(emit):
    dataset = synthetic_dataset(scaled(3000), [12] * 4, seed=202)
    distinct = queries_for(dataset, 25)
    batch = [q for q in distinct for _ in range(5)]  # 125 queries

    measurements = []
    answers = {}
    for cls in ALGORITHMS:
        row, results = _run_batch(cls, dataset, batch)
        measurements.append(row)
        answers[cls.name] = results

    # The benchmark only counts if every backend computed the same thing.
    assert answers["VectorTRS"] == answers["TRS"]
    assert answers["VectorBRS"] == answers["TRS"]

    base = measurements[0]["wall_time_s"]
    for row in measurements:
        row["speedup_vs_trs"] = base / row["wall_time_s"]

    doc = {
        "workload": {
            "dataset": dataset.describe(),
            "records": len(dataset),
            "attributes": dataset.num_attributes,
            "distinct_queries": len(distinct),
            "repeats": 5,
            "queries": len(batch),
            "memory_fraction": 0.10,
            "page_bytes": 512,
            "repro_scale": scale_factor(),
        },
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "gate": {"min_vector_trs_speedup": MIN_SPEEDUP},
        "measurements": measurements,
    }
    BENCH_PATH.write_text(json.dumps(doc, indent=2) + "\n")

    rows = [
        [
            m["algorithm"],
            m["backend"],
            f"{m['wall_time_s'] * 1000:.0f}",
            f"{m['ms_per_query']:.2f}",
            f"{m['queries_per_s']:.0f}",
            f"{m['checks']:,}",
            f"{m['page_ios']:,}",
            f"{m['speedup_vs_trs']:.2f}x",
        ]
        for m in measurements
    ]
    emit(
        "bench_core",
        "Core kernels: 125-query batch, scalar vs numpy backends",
        format_table(
            ["algorithm", "backend", "batch ms", "ms/query", "q/s",
             "checks", "page ios", "speedup"],
            rows,
        )
        + f"\n(canonical artifact: {BENCH_PATH.name})",
    )

    vec_trs = next(m for m in measurements if m["algorithm"] == "VectorTRS")
    assert vec_trs["speedup_vs_trs"] >= MIN_SPEEDUP, (
        f"VectorTRS speedup {vec_trs['speedup_vs_trs']:.2f}x "
        f"below the {MIN_SPEEDUP}x gate"
    )
