"""Section 5.5: pre-processing (external multi-attribute sort) costs.

Paper: with memory at 10% of the dataset, sorting took 3.2s (ForestCover),
2.1s (Census-Income) and 4.2s (1M-row synthetic) — "negligible, for all
practical settings". We reproduce the experiment with our external sorter
at the same 10% memory and assert the same conclusion: the one-time sort
costs a small multiple of ONE query's response time, and orders of
magnitude less than the per-query savings it unlocks (SRS/TRS vs BRS).
"""

import pytest

from repro.core.brs import BRS
from repro.core.srs import SRS
from repro.experiments.tables import format_table
from repro.experiments.workloads import ci_dataset, fc_dataset, queries_for, standard_synthetic
from repro.sorting.external import external_sort
from repro.storage.disk import DiskSimulator, MemoryBudget


def _sort_one(dataset, page_bytes=512):
    disk = DiskSimulator(page_bytes)
    source = disk.load_dataset(dataset)
    total_pages = source.num_pages
    budget = MemoryBudget(max(2, total_pages // 10))
    out, stats = external_sort(
        disk, source, budget, list(range(dataset.num_attributes))
    )
    assert [v for _, v in out.peek_all_records()] == sorted(dataset.records)
    return stats


@pytest.fixture(scope="module")
def datasets():
    return [ci_dataset(), fc_dataset(), standard_synthetic()]


def test_sec55_preprocessing(datasets, benchmark, emit):
    stats = benchmark.pedantic(
        lambda: [_sort_one(ds) for ds in datasets], rounds=1, iterations=1
    )
    rows = []
    for ds, s in zip(datasets, stats):
        rows.append(
            [ds.name, s.num_records, s.initial_runs, s.merge_passes,
             s.pages_read, s.pages_written, f"{s.wall_time_s * 1000:.1f}"]
        )
    emit(
        "sec55_preprocessing",
        "Section 5.5 — external sort pre-processing at 10% memory "
        "(paper: 2.1s CI / 3.2s FC / 4.2s synthetic at full scale)",
        format_table(
            ["dataset", "records", "runs", "merge passes", "pages read",
             "pages written", "sort ms"],
            rows,
        ),
    )
    for s in stats:
        assert s.wall_time_s < 30.0  # "negligible" at our scale too

    # The sort pays for itself within a few queries: SRS (sorted) beats
    # BRS (unsorted) per query by far more than the amortised sort cost.
    ds = datasets[0]
    q = queries_for(ds, 1)[0]
    brs = BRS(ds, memory_fraction=0.10, page_bytes=512).run(q)
    srs = SRS(ds, memory_fraction=0.10, page_bytes=512).run(q)
    assert srs.stats.checks < brs.stats.checks
