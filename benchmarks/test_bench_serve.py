"""Resident-service throughput benchmark — the serving CI gate.

Drives the real ``repro.serve`` stack (background server, real
sockets, the closed-loop load driver) at 1, 4 and 16 concurrent
clients over *distinct* queries with the result cache off, and writes
``BENCH_serve.json`` at the repository root.

This machine has one core, so the multi-client gain cannot come from
parallelism: it comes from the micro-batcher coalescing concurrent
strangers into shared multi-query scans (one scan amortised over the
whole window — the PR-5 planner's economics applied continuously).
The single-client run cannot coalesce (closed loop: its next query
only exists after its previous answer) and sets the baseline; the
gate requires 16 clients to deliver ``MIN_CLIENT_SCALING``x its qps.

Also measured: warm vs cold plan-cache first-request latency, and a
deliberately saturated run (tiny admission queue) proving overload
turns into typed sheds with retry-after hints, not unbounded latency.

Answers served under concurrency are checked bit-identical to the
sequential engine before any timing counts.
"""

from __future__ import annotations

import json
import pathlib
import platform

from repro.data.synthetic import synthetic_dataset
from repro.engine import ReverseSkylineEngine
from repro.experiments.tables import format_table
from repro.experiments.workloads import scale_factor, scaled
from repro.serve import (
    ServeClient,
    ServiceConfig,
    run_closed_loop,
    serve_in_background,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_serve.json"

#: The CI gate: minimum 16-client qps over 1-client qps.
MIN_CLIENT_SCALING = 3.0

CLIENT_POINTS = ((1, 24), (4, 12), (16, 8))  # (clients, requests each)
WINDOW_S = 0.005


def _dataset():
    return synthetic_dataset(scaled(3000), [8, 8, 6, 6], seed=77)


def _queries():
    """64 distinct queries — concurrent clients never repeat each
    other's requests, so coalescing (not memoisation) is what's timed."""
    return [(i % 8, (i // 2) % 8, i % 6, (i // 3) % 6) for i in range(64)]


def _fresh_server(ds, **overrides):
    base = dict(
        pool="thread", workers=2, batch_window_s=WINDOW_S, cache=False
    )
    base.update(overrides)
    config = ServiceConfig(**base)
    engine = ReverseSkylineEngine(ds, algorithm="TRS", log_queries=False)
    return serve_in_background(engine, config)


def test_bench_serve_throughput(emit):
    ds = _dataset()
    queries = _queries()

    # -- correctness before timing: served answers == sequential engine
    oracle = ReverseSkylineEngine(ds, algorithm="TRS", log_queries=False)
    handle = _fresh_server(ds)
    try:
        with ServeClient("127.0.0.1", handle.port) as client:
            for q in queries[:6]:
                resp = client.query(q)
                assert resp["ok"]
                assert resp["records"] == list(oracle.query(q).record_ids)
    finally:
        handle.stop()

    # -- client scaling sweep (fresh server per point: no carry-over) --
    measurements = []
    for clients, rpc in CLIENT_POINTS:
        handle = _fresh_server(ds)
        try:
            report = run_closed_loop(
                "127.0.0.1",
                handle.port,
                queries,
                clients=clients,
                requests_per_client=rpc,
            )
        finally:
            handle.stop()
        assert report.failed == 0 and report.shed == 0
        assert report.ok == clients * rpc
        row = report.as_dict()
        row["coalesced"] = row.pop("planned")
        measurements.append(row)

    qps1 = measurements[0]["qps"]
    for row in measurements:
        row["scaling_vs_one_client"] = row["qps"] / qps1

    # -- warm vs cold plan cache: first coalesced burst ----------------
    # The plan cache only matters on the shared-scan path, so the probe
    # is a 4-client burst (one group scan), and the process-wide cache
    # is emptied first — otherwise "cold" inherits the sweep's plans.
    import time as _time

    from repro.kernels.plancache import configure as _reset_plan_cache

    first_ms = {}
    for label, plan in (("cold", False), ("warm", True)):
        _reset_plan_cache(256 * 1024 * 1024)
        handle = _fresh_server(ds, plan=plan)
        try:
            t0 = _time.perf_counter()
            burst = run_closed_loop(
                "127.0.0.1",
                handle.port,
                queries,
                clients=4,
                requests_per_client=1,
            )
            first_ms[label] = (_time.perf_counter() - t0) * 1000.0
            assert burst.ok == 4 and burst.planned == 4
        finally:
            handle.stop()
    _reset_plan_cache(256 * 1024 * 1024)

    # -- saturation: overload must shed (typed), not queue unboundedly -
    handle = _fresh_server(ds, workers=1, queue_depth=2, batch_window_s=0.05)
    try:
        saturated = run_closed_loop(
            "127.0.0.1", handle.port, queries, clients=16, requests_per_client=4
        )
    finally:
        handle.stop()
    assert saturated.shed > 0, "saturated service must shed load"
    assert all(r > 0 for r in saturated.retry_after_s)
    assert saturated.failed == 0

    doc = {
        "workload": {
            "dataset": ds.describe(),
            "records": len(ds),
            "attributes": ds.num_attributes,
            "distinct_queries": len(queries),
            "result_cache": False,
            "batch_window_ms": WINDOW_S * 1000,
            "pool": "thread x 2",
            "repro_scale": scale_factor(),
        },
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": 1,
        },
        "model": (
            "closed-loop clients over real sockets; multi-client gain is "
            "micro-batch coalescing into shared scans, not parallelism"
        ),
        "gate": {"min_16_client_scaling": MIN_CLIENT_SCALING},
        "measurements": measurements,
        "plan_cache_first_burst_ms": {
            "warm": round(first_ms["warm"], 3),
            "cold": round(first_ms["cold"], 3),
        },
        "saturation": saturated.as_dict(),
    }
    BENCH_PATH.write_text(json.dumps(doc, indent=2) + "\n")

    rows = [
        [
            str(m["clients"]),
            f"{m['qps']:.0f}",
            f"{m['p50_ms']:.1f}",
            f"{m['p95_ms']:.1f}",
            f"{m['p99_ms']:.1f}",
            str(m["coalesced"]),
            f"{m['scaling_vs_one_client']:.2f}x",
        ]
        for m in measurements
    ]
    emit(
        "bench_serve",
        "Resident service: closed-loop scaling, 64 distinct queries, cache off",
        format_table(
            ["clients", "qps", "p50 ms", "p95 ms", "p99 ms",
             "coalesced", "scaling"],
            rows,
        )
        + (
            f"\nfirst coalesced burst: warm plans {first_ms['warm']:.1f} ms, "
            f"cold plans {first_ms['cold']:.1f} ms"
            f"\nsaturated (queue_depth=2): {saturated.ok} ok, "
            f"{saturated.shed} shed with retry-after, p95 "
            f"{saturated.p95_ms:.1f} ms"
            f"\n(canonical artifact: {BENCH_PATH.name})"
        ),
    )

    c16 = next(m for m in measurements if m["clients"] == 16)
    assert c16["scaling_vs_one_client"] >= MIN_CLIENT_SCALING, (
        f"16-client scaling {c16['scaling_vs_one_client']:.2f}x is below the "
        f"{MIN_CLIENT_SCALING}x gate — micro-batch coalescing regressed"
    )
