"""Scatter-gather scan-scaling benchmark — the sharding CI gate.

Runs a query batch through ``SGTRS`` at K = 1, 2 and 4 shards over a
10x core workload (30k records at default scale) and writes the
measurements to ``BENCH_shard.json`` at the repository root.

This machine has no spare cores, so the distributed claim is measured
with the cost model's own currency: every shard job runs serially and
reports its private scan wall (``ShardStats.scan_wall_s`` — "each shard
is a machine"), and the modelled response time of one round is the
**critical path**, the slowest shard. The gate requires the K=4 critical
path to beat the K=1 scan wall by ``MIN_SCAN_SPEEDUP``x — near-linear
scaling, with slack for the merge round the single-shard run never pays.

Answers at every K must be bit-identical to the unsharded oracle run
before any timing counts.
"""

from __future__ import annotations

import json
import pathlib
import platform
import time

from repro.core.trs import TRS
from repro.data.synthetic import synthetic_dataset
from repro.experiments.tables import format_table
from repro.experiments.workloads import queries_for, scale_factor, scaled
from repro.shard import ScatterGatherTRS

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_shard.json"

#: Minimum required K=1 -> K=4 critical-path scan speedup (the CI gate).
MIN_SCAN_SPEEDUP = 2.5

SHARD_COUNTS = (1, 2, 4)


def _run_cell(dataset, batch, shards):
    """Answer the batch at one shard count; aggregate the per-shard walls."""
    algo = ScatterGatherTRS(
        dataset, shards=shards, memory_fraction=0.10, page_bytes=512
    )
    algo.prepare()
    scan_critical = 0.0  # sum over queries of the slowest shard's scan
    scan_total = 0.0  # sum of all shard scan walls (total work)
    merge_critical = 0.0
    results = []
    t0 = time.perf_counter()
    for q in batch:
        r = algo.run(q)
        scan_critical += max(p.scan_wall_s for p in r.shard_stats)
        scan_total += sum(p.scan_wall_s for p in r.shard_stats)
        merge_critical += max(p.merge_wall_s for p in r.shard_stats)
        results.append(r.record_ids)
    seconds = time.perf_counter() - t0
    return {
        "shards": shards,
        "strategy": algo.shard_plan.strategy,
        "queries": len(batch),
        "wall_time_s": seconds,
        "scan_critical_path_s": scan_critical,
        "scan_total_work_s": scan_total,
        "merge_critical_path_s": merge_critical,
        "modelled_response_s": scan_critical + merge_critical,
    }, results


def test_bench_shard_scaling(emit):
    dataset = synthetic_dataset(scaled(3000) * 10, [12] * 4, seed=202)
    distinct = queries_for(dataset, 5)
    batch = [q for q in distinct for _ in range(2)]  # 10 queries

    oracle = TRS(dataset, memory_fraction=0.10, page_bytes=512)
    oracle.prepare()
    expected = [oracle.run(q).record_ids for q in batch]

    measurements = []
    for k in SHARD_COUNTS:
        row, results = _run_cell(dataset, batch, k)
        assert results == expected  # sharding must be invisible
        measurements.append(row)

    base = measurements[0]["scan_critical_path_s"]
    for row in measurements:
        row["scan_speedup_vs_one_shard"] = base / row["scan_critical_path_s"]

    doc = {
        "workload": {
            "dataset": dataset.describe(),
            "records": len(dataset),
            "attributes": dataset.num_attributes,
            "distinct_queries": len(distinct),
            "repeats": 2,
            "queries": len(batch),
            "memory_fraction": 0.10,
            "page_bytes": 512,
            "repro_scale": scale_factor(),
        },
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "model": (
            "shard jobs run serially; per-round response is the critical "
            "path max(ShardStats.scan_wall_s) — each shard is a machine"
        ),
        "gate": {"min_scan_speedup_k4": MIN_SCAN_SPEEDUP},
        "measurements": measurements,
    }
    BENCH_PATH.write_text(json.dumps(doc, indent=2) + "\n")

    rows = [
        [
            str(m["shards"]),
            m["strategy"],
            f"{m['scan_critical_path_s'] * 1000:.0f}",
            f"{m['scan_total_work_s'] * 1000:.0f}",
            f"{m['merge_critical_path_s'] * 1000:.0f}",
            f"{m['modelled_response_s'] * 1000:.0f}",
            f"{m['scan_speedup_vs_one_shard']:.2f}x",
        ]
        for m in measurements
    ]
    emit(
        "bench_shard",
        "Scatter-gather scan scaling: 10-query batch, 30k records, K=1/2/4",
        format_table(
            ["K", "strategy", "scan crit ms", "scan work ms",
             "merge crit ms", "response ms", "scan speedup"],
            rows,
        )
        + f"\n(canonical artifact: {BENCH_PATH.name})",
    )

    k4 = next(m for m in measurements if m["shards"] == 4)
    assert k4["scan_speedup_vs_one_shard"] >= MIN_SCAN_SPEEDUP, (
        f"K=4 critical-path scan speedup {k4['scan_speedup_vs_one_shard']:.2f}x "
        f"below the {MIN_SCAN_SPEEDUP}x gate"
    )
