"""Figures 17 & 18: IO and response time vs density, varying the number
of attributes (paper: 3-7 attrs at 1M rows x 50 values; scaled: 3-7 attrs
at 8k rows x 20 values — density swinging from 1.0 down to ~6e-6).

Paper shape: IO trends as before (similar sequential, TRS best random);
response time grows steeply as attributes sparsify the space, but TRS's
group-level gains *scale with the number of attributes* — it responds up
to 5x faster than SRS and up to 8x faster than BRS.
"""

import pytest

from conftest import by_algorithm, mean
from repro.experiments.sweeps import attrs_sweep
from repro.experiments.tables import format_measurements

ATTRS = (3, 4, 5, 6, 7)


@pytest.fixture(scope="module")
def sweep():
    return attrs_sweep(attr_counts=ATTRS)


def test_fig17_io(sweep, benchmark, emit):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit(
        "fig17_io_vs_attrs",
        "Figure 17 — IO vs density (varying #attributes)",
        format_measurements(
            sweep,
            columns=(("algorithm", "algo"), ("seq_io", "seq_pages"),
                     ("rand_io", "rand_pages"), ("intermediate_size", "|R|")),
            param_keys=("attrs", "density"),
        ),
    )
    groups = by_algorithm(sweep)
    rand = {name: mean(m.rand_io for m in rows) for name, rows in groups.items()}
    assert rand["TRS"] <= rand["SRS"]
    assert rand["TRS"] <= rand["BRS"]


def test_fig18_response(sweep, benchmark, emit):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit(
        "fig18_response_vs_attrs",
        "Figure 18 — response time vs density (varying #attributes, "
        "paper plots log scale)",
        format_measurements(
            sweep,
            columns=(("algorithm", "algo"), ("response_ms", "resp_ms(model)"),
                     ("computation_ms", "comp_ms"), ("checks", "checks")),
            param_keys=("attrs", "density"),
        ),
    )
    groups = by_algorithm(sweep)
    resp = {name: mean(m.response_ms for m in rows) for name, rows in groups.items()}
    assert resp["TRS"] < resp["SRS"] < resp["BRS"]
    # The incremental gain of group-level reasoning must not collapse as
    # attributes grow: TRS still beats SRS at m=7.
    last = {name: rows[-1] for name, rows in groups.items()}
    assert last["TRS"].checks < last["SRS"].checks
    assert last["TRS"].checks < last["BRS"].checks
