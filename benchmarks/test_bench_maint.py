"""Incremental maintenance benchmark — the ``repro.maint`` CI gate.

Two claims, measured wall-clock against the only alternative the rest of
the repo offers (rebuild the engine whenever the data changes) and
written to ``BENCH_maint.json`` at the repository root:

- **Maintained beats rebuild-per-batch.**  On a 90% read / 10% insert
  mixed workload, a :class:`~repro.maint.MaintainedEngine` absorbing
  each write into its delta overlay must finish the whole op sequence at
  least ``MIN_THROUGHPUT_RATIO``x faster than re-preparing a fresh
  engine after every write.  Both strategies answer every read; their
  answer sequences are asserted identical before the ratio counts.
  The gate compares each side's *best* of ``REPS`` interleaved
  repetitions: the op sequence is deterministic, so any excess over a
  run's minimum is scheduler/frequency interference, which best-of-k
  strips symmetrically (per-rep ratios are recorded alongside).  The
  process-wide plan cache is reset before every run so neither strategy
  inherits the other's plans (real update sequences never repeat, so a
  cross-run warm cache would flatter the rebuild side).
- **Updates keep the plan cache warm.**  Across a non-compacting update
  batch the engine must retain at least ``MIN_PLAN_RETENTION`` of the
  plan-cache entries its reads had built — surgical invalidation drops
  plans only when a compaction actually rewrites the base they were
  built from.

Everything here is deterministic except the clock: the op sequence, the
queries, and both strategies' answers are pure functions of the seeds.
"""

from __future__ import annotations

import json
import pathlib
import platform
import random
import statistics
import time

from repro.data.synthetic import synthetic_dataset
from repro.engine import ReverseSkylineEngine
from repro.experiments.tables import format_table
from repro.experiments.workloads import scale_factor, scaled
from repro.kernels import plancache
from repro.maint import MaintainedEngine

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_maint.json"

#: Throughput gate: rebuild-per-batch wall time over maintained wall time.
MIN_THROUGHPUT_RATIO = 3.0
#: Plan-cache gate: share of entries surviving a non-compacting batch.
MIN_PLAN_RETENTION = 0.5

CARDS = [12, 10, 8]
NUM_QUERIES = 40
OPS = 200  # 10% of these are single-record inserts
REPS = 4


def _workload(n: int, seed: int = 21):
    ds = synthetic_dataset(n, CARDS, seed=seed)
    rng = random.Random(7)

    def rec():
        return tuple(rng.randrange(c) for c in CARDS)

    queries = [rec() for _ in range(NUM_QUERIES)]
    ops = []
    qi = 0
    for i in range(OPS):
        if i % 10 == 5:
            ops.append(("insert", rec()))
        else:
            ops.append(("read", queries[qi % NUM_QUERIES]))
            qi += 1
    return ds, ops


def _run_maintained(ds, ops):
    eng = MaintainedEngine(ds, backend="numpy", log_queries=False)
    answers = []
    t0 = time.perf_counter()
    for kind, payload in ops:
        if kind == "insert":
            eng.apply_updates(inserts=[payload])
        else:
            answers.append(eng.query(payload).record_ids)
    return time.perf_counter() - t0, answers


def _run_rebuild(ds, ops):
    records = list(ds.records)
    cur = ds
    eng = ReverseSkylineEngine(cur, backend="numpy", log_queries=False)
    answers = []
    t0 = time.perf_counter()
    for kind, payload in ops:
        if kind == "insert":
            records = records + [payload]
            cur = cur.with_records(records)
            eng = ReverseSkylineEngine(cur, backend="numpy", log_queries=False)
        else:
            answers.append(eng.query(payload).record_ids)
    return time.perf_counter() - t0, answers


def test_bench_maint_gates(emit):
    n = scaled(10000)
    ds, ops = _workload(n)
    reads = sum(1 for kind, _ in ops if kind == "read")
    writes = OPS - reads

    # -- throughput: maintained vs rebuild-per-batch ------------------------
    reps = []
    for _rep in range(REPS):
        plancache.configure(plancache.DEFAULT_CAPACITY_BYTES)
        maint_s, maint_answers = _run_maintained(ds, ops)
        plancache.configure(plancache.DEFAULT_CAPACITY_BYTES)
        rebuild_s, rebuild_answers = _run_rebuild(ds, ops)
        # Identical answer sequences, or the ratio means nothing.
        assert maint_answers == rebuild_answers
        reps.append({
            "maintained_s": maint_s,
            "rebuild_s": rebuild_s,
            "ratio": rebuild_s / maint_s,
        })
    best_maint = min(r["maintained_s"] for r in reps)
    best_rebuild = min(r["rebuild_s"] for r in reps)
    ratio = best_rebuild / best_maint
    median_ratio = statistics.median(r["ratio"] for r in reps)

    # -- plan-cache retention across a non-compacting batch -----------------
    plancache.configure(plancache.DEFAULT_CAPACITY_BYTES)
    eng = MaintainedEngine(
        ds, backend="numpy", compact_min=10_000, log_queries=False
    )
    rng = random.Random(99)
    probe = tuple(rng.randrange(c) for c in CARDS)
    eng.query(probe)
    entries_before = plancache.plan_cache().stats().entries
    assert entries_before > 0
    eng.apply_updates(
        inserts=[tuple(rng.randrange(c) for c in CARDS) for _ in range(5)]
    )
    eng.query(probe)
    entries_after = plancache.plan_cache().stats().entries
    invalidated = eng.plans_invalidated_total
    retention = (entries_before - invalidated) / entries_before

    doc = {
        "workload": {
            "model": f"normal synthetic, cards {CARDS}, {OPS} ops "
                     f"({reads} reads over {NUM_QUERIES} distinct queries, "
                     f"{writes} single-record inserts), backend numpy",
            "records": n,
            "repro_scale": scale_factor(),
            "reps": REPS,
        },
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "gate": {
            "min_throughput_ratio": MIN_THROUGHPUT_RATIO,
            "min_plan_retention": MIN_PLAN_RETENTION,
        },
        "throughput": {
            "reps": reps,
            "best_maintained_s": best_maint,
            "best_rebuild_s": best_rebuild,
            "best_ratio": ratio,
            "median_ratio": median_ratio,
        },
        "plan_cache": {
            "entries_before": entries_before,
            "entries_after": entries_after,
            "invalidated": invalidated,
            "retention": retention,
        },
    }
    BENCH_PATH.write_text(json.dumps(doc, indent=2) + "\n")

    rep_rows = [
        [
            str(i),
            f"{r['maintained_s']:.3f}",
            f"{r['rebuild_s']:.3f}",
            f"{r['ratio']:.2f}x",
        ]
        for i, r in enumerate(reps)
    ]
    emit(
        "bench_maint",
        "Incremental maintenance: delta overlays vs rebuild-per-batch",
        format_table(["rep", "maintained s", "rebuild s", "ratio"], rep_rows)
        + f"\n\nbest-of-{REPS} ratio {ratio:.2f}x "
        + f"(median {median_ratio:.2f}x, gate {MIN_THROUGHPUT_RATIO}x); "
        + f"plan-cache retention {retention:.2f} "
        + f"({invalidated} of {entries_before} entries invalidated, "
        + f"gate {MIN_PLAN_RETENTION})"
        + f"\n(canonical artifact: {BENCH_PATH.name})",
    )

    assert ratio >= MIN_THROUGHPUT_RATIO, (
        f"maintained engine only {ratio:.2f}x faster than rebuild-per-batch "
        f"(gate {MIN_THROUGHPUT_RATIO}x)"
    )
    assert retention >= MIN_PLAN_RETENTION, (
        f"update batch kept only {retention:.2f} of plan-cache entries "
        f"(gate {MIN_PLAN_RETENTION})"
    )
    assert entries_after >= entries_before, (
        "a non-compacting update batch dropped plan-cache entries: "
        f"{entries_before} -> {entries_after}"
    )
