"""Section 6: TRS over mixed categorical + numeric schemas.

The paper sketches (without measurements) how discretisation lets TRS
handle numeric attributes: bucket-level certain-domination checks in
phase 1 (admitting false positives into R) and exact leaf refinement in
phase 2. We validate the design quantitatively: correctness against the
oracle, the false-positive behaviour of coarse vs fine bucketings, and
the computational win of group reasoning over the Naive baseline.
"""

import pytest

from repro.core.naive import NaiveRS
from repro.core.numeric import NumericTRS
from repro.data.queries import query_batch
from repro.data.synthetic import mixed_dataset
from repro.experiments.tables import format_table
from repro.experiments.workloads import scaled
from repro.skyline.oracle import reverse_skyline_by_pruners


@pytest.fixture(scope="module")
def workload():
    ds = mixed_dataset(
        scaled(1200), [10, 8], [(0.0, 100.0), (0.0, 1.0)], seed=41
    )
    queries = query_batch(ds, 2, seed=42)
    return ds, queries


def test_sec6_numeric(workload, benchmark, emit):
    ds, queries = workload
    rows = []
    stats_by_buckets = {}

    def run_all():
        for buckets in (2, 4, 8, 16):
            algo = NumericTRS(ds, num_buckets=buckets, memory_fraction=0.10, page_bytes=512)
            results = [algo.run(q) for q in queries]
            stats_by_buckets[buckets] = results
        return stats_by_buckets

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    expected = {q: reverse_skyline_by_pruners(ds, q) for q in queries}
    for buckets, results in stats_by_buckets.items():
        checks = sum(r.stats.checks for r in results) / len(results)
        inter = sum(r.stats.intermediate_count for r in results) / len(results)
        size = sum(len(r.record_ids) for r in results) / len(results)
        rows.append([buckets, f"{checks:,.0f}", inter, size])
        for q, r in zip(queries, results):
            assert list(r.record_ids) == expected[q], f"buckets={buckets}"

    emit(
        "sec6_numeric_attributes",
        "Section 6 — NumericTRS over mixed schema (2 categorical + 2 numeric)",
        format_table(["buckets", "checks", "|R|", "|RS|"], rows),
    )

    # Finer bucketing strengthens phase 1: fewer false positives in R.
    inter_by_buckets = {
        b: sum(r.stats.intermediate_count for r in rs) / len(rs)
        for b, rs in stats_by_buckets.items()
    }
    assert inter_by_buckets[16] <= inter_by_buckets[2]
