"""Exception hierarchy for the ``repro`` library.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library failures without
catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SchemaError(ReproError):
    """A dataset, record or query does not conform to its schema."""


class DissimilarityError(ReproError):
    """A dissimilarity function was queried with values outside its domain,
    or was constructed from an inconsistent specification."""


class StorageError(ReproError):
    """A simulated-disk operation failed (bad page id, closed file, ...)."""


class TransientError(ReproError):
    """A failure that may succeed if the operation is retried (the base of
    the fault-injection / recovery hierarchy, see :mod:`repro.faults`)."""


class TransientIOError(TransientError, StorageError):
    """One page IO failed transiently (injected or a real ``OSError``).

    Carries the failing site so retry accounting and error reports can
    name it: ``op`` (``"read"``/``"write"``), ``file`` and ``page_id``.
    """

    def __init__(self, message: str, *, op: str, file: str, page_id: int) -> None:
        super().__init__(message)
        self.op = op
        self.file = file
        self.page_id = page_id


class WorkerCrashError(TransientError):
    """A pool worker died (or timed out) while answering one query.

    Carries the ``query`` it was answering and the crash ``reason``
    (``"crash"`` or ``"timeout"``).
    """

    def __init__(self, message: str, *, query: tuple, reason: str = "crash") -> None:
        super().__init__(message)
        self.query = query
        self.reason = reason


class RetryExhaustedError(ReproError):
    """A transient failure persisted through every allowed retry.

    Deliberately **not** a :class:`TransientError`: once the retry budget
    is spent the failure is final and must surface as a structured
    per-query error, never trigger another retry loop. Carries the
    ``attempts`` made and the ``last_error`` (the final transient
    failure, whose own context names the failing site).
    """

    def __init__(
        self, message: str, *, attempts: int, last_error: Exception | None = None
    ) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


class ServiceError(ReproError):
    """A resident query-service request failed before/around execution
    (admission, deadline, shutdown — see :mod:`repro.serve`)."""


class OverloadError(ServiceError):
    """The service shed this request instead of queueing it unboundedly.

    Carries ``retry_after_s`` — the client's backpressure signal: how
    long to wait before retrying — and the shedding ``reason``
    (``"queue-full"``, ``"tenant-throttled"``, ``"shutdown"``).
    """

    def __init__(
        self, message: str, *, retry_after_s: float, reason: str = "queue-full"
    ) -> None:
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)
        self.reason = reason


class DeadlineError(ServiceError):
    """A request's deadline expired before its answer was produced.

    ``stage`` names where the deadline hit: ``"queue"`` (dropped before
    any work ran), ``"dispatch"`` (dropped at the worker just before
    execution) or ``"execute"`` (the response timed out while the pool
    was computing; the discarded result is thrown away).
    """

    def __init__(self, message: str, *, stage: str = "execute") -> None:
        super().__init__(message)
        self.stage = stage


class MemoryBudgetError(ReproError):
    """The configured memory budget is too small for the requested operation
    (for example, smaller than a single disk page)."""


class AlgorithmError(ReproError):
    """An algorithm was invoked with an invalid configuration."""


class ExperimentError(ReproError):
    """An experiment specification is invalid or cannot be executed."""
