"""Exception hierarchy for the ``repro`` library.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library failures without
catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SchemaError(ReproError):
    """A dataset, record or query does not conform to its schema."""


class DissimilarityError(ReproError):
    """A dissimilarity function was queried with values outside its domain,
    or was constructed from an inconsistent specification."""


class StorageError(ReproError):
    """A simulated-disk operation failed (bad page id, closed file, ...)."""


class MemoryBudgetError(ReproError):
    """The configured memory budget is too small for the requested operation
    (for example, smaller than a single disk page)."""


class AlgorithmError(ReproError):
    """An algorithm was invoked with an invalid configuration."""


class ExperimentError(ReproError):
    """An experiment specification is invalid or cannot be executed."""
