"""Fault injection and recovery for the query stack.

The paper's algorithms are scan-based over a paged disk; there is no
index to fall back on, so the scan/IO substrate has to survive failures
on its own. This package provides the two halves of that hardening:

- :class:`FaultPlan` / :class:`FaultInjector` — a deterministic,
  seedable source of transient read/write errors, torn appends, latency
  spikes and worker crashes, wired into
  :class:`~repro.storage.disk.DiskSimulator` and
  :class:`~repro.exec.executor.QueryExecutor`.
- :class:`RetryPolicy` — exponential-backoff retries for the transient
  failures (injected *or* real ``OSError`` from the file-backed store),
  escalating to :class:`~repro.errors.RetryExhaustedError` when spent.

``repro.testing.chaos`` replays randomized workloads under injection and
asserts the recovered answers are bit-identical to fault-free runs.
"""

from repro.faults.inject import FaultInjector, FaultPlan, FaultStats, PageAction
from repro.faults.retry import NO_RETRY, RetryPolicy

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "NO_RETRY",
    "PageAction",
    "RetryPolicy",
]
