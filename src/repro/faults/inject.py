"""Deterministic, seedable fault injection for the query stack.

A :class:`FaultPlan` says *what* can go wrong and how often; a
:class:`FaultInjector` decides, per operation, *whether* it goes wrong —
by hashing ``(seed, site, attempt)`` rather than drawing from a shared
RNG stream, so every decision is a pure function of the seed and the
site's own consultation history. Replaying the same serial workload with
the same seed injects exactly the same faults; under a concurrent pool
the per-site decisions stay deterministic while interleaving may vary,
and the recovery machinery guarantees the *answers* never depend on the
schedule (see ``repro.testing.chaos``).

Fault model
-----------
- **transient read/write errors** — a page IO raises
  :class:`~repro.errors.TransientIOError`; the storage layer retries it
  under the :class:`~repro.faults.retry.RetryPolicy`.
- **torn appends** — an appending page write persists only a prefix of
  the page's records before failing; the retry re-commits the full page
  over the torn slot (page commits are idempotent).
- **latency spikes** — an IO stalls for ``latency_s`` before succeeding.
- **worker crash / timeout** — a pool worker raises
  :class:`~repro.errors.WorkerCrashError` mid-query; the executor
  retries the whole query and, if retries run out, degrades it into a
  structured error entry in the batch report.

``max_consecutive`` caps how many times in a row one site may fail, so
any retry policy with ``max_attempts > max_consecutive`` is guaranteed to
recover (the chaos harness relies on this to assert bit-identical
results); plans with ``max_consecutive >= max_attempts`` force the
retry-exhausted path instead.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field

from repro.errors import ReproError, TransientIOError, WorkerCrashError

__all__ = ["FaultPlan", "FaultInjector", "FaultStats", "PageAction"]


@dataclass(frozen=True)
class FaultPlan:
    """Static description of the faults to inject (all rates in [0, 1])."""

    read_error_rate: float = 0.0
    write_error_rate: float = 0.0
    torn_append_rate: float = 0.0
    latency_rate: float = 0.0
    #: Stall length for one injected latency spike (kept tiny by default
    #: so chaos runs stay fast; the *accounting* is what tests assert).
    latency_s: float = 0.0002
    crash_rate: float = 0.0
    timeout_rate: float = 0.0
    #: Per-site cap on consecutive failures. Recovery is guaranteed when
    #: the retry policy allows more attempts than this.
    max_consecutive: int = 2

    def __post_init__(self) -> None:
        for name in (
            "read_error_rate",
            "write_error_rate",
            "torn_append_rate",
            "latency_rate",
            "crash_rate",
            "timeout_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ReproError(f"{name} must be in [0, 1], got {rate}")
        if self.latency_s < 0:
            raise ReproError(f"latency_s must be >= 0, got {self.latency_s}")
        if self.max_consecutive < 0:
            raise ReproError(
                f"max_consecutive must be >= 0, got {self.max_consecutive}"
            )

    @classmethod
    def storm(cls, rate: float = 0.05) -> "FaultPlan":
        """Every fault kind enabled at ``rate`` — the chaos-harness default."""
        return cls(
            read_error_rate=rate,
            write_error_rate=rate,
            torn_append_rate=rate,
            latency_rate=rate,
            crash_rate=rate,
            timeout_rate=rate / 2,
        )

    @classmethod
    def io_only(cls, rate: float = 0.1) -> "FaultPlan":
        """Storage faults only (no worker crashes) — isolates the disk
        retry path."""
        return cls(read_error_rate=rate, write_error_rate=rate, torn_append_rate=rate)

    @property
    def any_io_faults(self) -> bool:
        return bool(
            self.read_error_rate
            or self.write_error_rate
            or self.torn_append_rate
            or self.latency_rate
        )

    @property
    def any_query_faults(self) -> bool:
        return bool(self.crash_rate or self.timeout_rate)


@dataclass
class FaultStats:
    """Counters of injected faults (snapshot via :meth:`FaultInjector.stats`)."""

    read_errors: int = 0
    write_errors: int = 0
    torn_appends: int = 0
    latency_spikes: int = 0
    crashes: int = 0
    timeouts: int = 0

    @property
    def total(self) -> int:
        return (
            self.read_errors
            + self.write_errors
            + self.torn_appends
            + self.latency_spikes
            + self.crashes
            + self.timeouts
        )


@dataclass(frozen=True)
class PageAction:
    """The injector's verdict for one page IO. ``"torn"`` (appends only)
    means the store persists a prefix of the page and then fails."""

    kind: str = "ok"  # "ok" | "fail" | "torn"
    latency_s: float = 0.0


_OK = PageAction()


class FaultInjector:
    """Seeded decision-maker consulted by the storage layer and executor.

    Thread-safe; picklable (process-pool workers rebuild it from
    ``(plan, seed)`` with fresh per-site counters, keeping worker-side
    decisions deterministic per worker).
    """

    def __init__(self, plan: FaultPlan, seed: int = 0) -> None:
        self.plan = plan
        self.seed = int(seed)
        self._lock = threading.Lock()
        #: site -> (total consults, consecutive failures so far)
        self._sites: dict[tuple, tuple[int, int]] = {}
        self._stats = FaultStats()

    def __reduce__(self):
        return (type(self), (self.plan, self.seed))

    # -- deterministic draws -------------------------------------------------
    def _uniform(self, *site) -> float:
        """A pure-function draw in [0, 1) for this site consultation."""
        token = f"{self.seed}|" + "|".join(map(str, site))
        digest = hashlib.blake2b(token.encode(), digest_size=8).digest()
        return int.from_bytes(digest, "big") / 2**64

    def _consult(self, site: tuple, rate: float) -> bool:
        """Should this consultation of ``site`` fail? Applies the
        ``max_consecutive`` cap and updates the site history."""
        return self._consult_kinds(site, (("fail", rate),)) is not None

    def _consult_kinds(
        self, site: tuple, kinds: tuple[tuple[str, float], ...]
    ) -> str | None:
        """One site-level failure decision covering several fault kinds.

        All kinds that can hit an operation MUST share one site: separate
        sites would keep separate ``max_consecutive`` streaks that reset
        each other, letting the *combined* failure streak exceed the cap
        and silently void the recovery guarantee. Returns the failing
        kind's name (chosen by a rate-weighted secondary draw) or ``None``.
        """
        survive = 1.0
        for _, rate in kinds:
            survive *= 1.0 - rate
        combined = 1.0 - survive
        if combined <= 0.0:
            return None
        with self._lock:
            consults, consecutive = self._sites.get(site, (0, 0))
            if consecutive >= self.plan.max_consecutive:
                fail = False  # cap reached: this attempt must succeed
            else:
                fail = self._uniform(*site, consults) < combined
            self._sites[site] = (consults + 1, consecutive + 1 if fail else 0)
        if not fail:
            return None
        pick = self._uniform("kind", *site, consults) * sum(r for _, r in kinds)
        acc = 0.0
        for name, rate in kinds:
            acc += rate
            if pick < acc:
                return name
        return kinds[-1][0]  # float round-off fallback

    # -- storage hooks -------------------------------------------------------
    def page_io_action(
        self, file: str, page_id: int, *, write: bool, appending: bool = False
    ) -> PageAction:
        """Verdict for one page IO (called by
        :meth:`repro.storage.disk.DiskSimulator.execute_page_io`)."""
        plan = self.plan
        latency = 0.0
        if plan.latency_rate and self._consult(
            ("latency", file, page_id), plan.latency_rate
        ):
            latency = plan.latency_s
            with self._lock:
                self._stats.latency_spikes += 1
        if write:
            torn_rate = plan.torn_append_rate if appending else 0.0
            kind = self._consult_kinds(
                ("write", file, page_id),
                (("torn", torn_rate), ("fail", plan.write_error_rate)),
            )
            if kind == "torn":
                with self._lock:
                    self._stats.torn_appends += 1
                return PageAction("torn", latency_s=latency)
            if kind == "fail":
                with self._lock:
                    self._stats.write_errors += 1
                return PageAction("fail", latency_s=latency)
        elif self._consult(("read", file, page_id), plan.read_error_rate):
            with self._lock:
                self._stats.read_errors += 1
            return PageAction("fail", latency_s=latency)
        if latency:
            return PageAction("ok", latency_s=latency)
        return _OK

    def io_error(self, op: str, file: str, page_id: int) -> TransientIOError:
        """The transient error for a failed page IO (context included)."""
        return TransientIOError(
            f"injected {op} fault on {file!r} page {page_id}",
            op=op,
            file=file,
            page_id=page_id,
        )

    # -- executor hooks ------------------------------------------------------
    def query_fault(self, query: tuple) -> None:
        """Maybe kill the worker answering ``query`` (raises
        :class:`~repro.errors.WorkerCrashError`)."""
        plan = self.plan
        kind = self._consult_kinds(
            ("queryfault", tuple(query)),
            (("crash", plan.crash_rate), ("timeout", plan.timeout_rate)),
        )
        if kind is None:
            return
        with self._lock:
            if kind == "crash":
                self._stats.crashes += 1
            else:
                self._stats.timeouts += 1
        raise WorkerCrashError(
            f"injected worker {kind} while answering {tuple(query)}",
            query=tuple(query),
            reason=kind,
        )

    # -- observability -------------------------------------------------------
    def stats(self) -> FaultStats:
        with self._lock:
            s = self._stats
            return FaultStats(
                s.read_errors,
                s.write_errors,
                s.torn_appends,
                s.latency_spikes,
                s.crashes,
                s.timeouts,
            )

    def reset(self) -> None:
        """Forget all site history and counters (a fresh schedule)."""
        with self._lock:
            self._sites.clear()
            self._stats = FaultStats()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultInjector(seed={self.seed}, injected={self.stats().total})"
