"""Retry-with-exponential-backoff policy for transient failures.

One policy object serves both recovery sites: the storage layer retries
individual page IOs (:meth:`repro.storage.disk.DiskSimulator.execute_page_io`)
and the batch executor retries whole queries after a worker crash
(:func:`repro.exec.executor._run_with_recovery`). Delays grow
geometrically from ``base_delay_s`` up to ``max_delay_s``; when
``max_attempts`` is spent the policy raises
:class:`~repro.errors.RetryExhaustedError` wrapping the last transient
failure, so callers see one final, structured error instead of the raw
fault.

The ``sleep`` hook is injectable so tests and the deterministic chaos
harness can run with zero real waiting.

Jitter
------
A fleet of pool workers that all hit the same transient fault at the
same moment must not retry in lockstep (the thundering herd re-creates
the very contention that caused the fault). Each delay is therefore
shortened by a deterministic, seed-derived fraction: a ``blake2b`` hash
of ``(jitter_salt, attempt)`` — the same pure-function seeding style
:mod:`repro.faults.inject` uses — drawn in ``[0, 1)`` and scaled by
``jitter``. With the default ``jitter_salt=None`` the salt is the
worker's own pid, so real processes decorrelate automatically; chaos
and regression runs pass a fixed salt and get bit-identical schedules.
Jittered delays always stay inside the existing ``[0, max_delay_s]``
bounds, and :data:`NO_RETRY` never sleeps at all.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ReproError, RetryExhaustedError
from repro.obs import hooks as _obs

__all__ = ["RetryPolicy", "NO_RETRY"]


def _jitter_draw(salt, attempt: int) -> float:
    """A pure-function draw in [0, 1) for (salt, attempt)."""
    token = f"{salt}|{attempt}"
    digest = hashlib.blake2b(token.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2**64


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry a transient failure, and how long to wait.

    Parameters
    ----------
    max_attempts:
        Total attempts including the first one (``1`` disables retries).
    base_delay_s:
        Backoff before the first retry; attempt ``n`` waits
        ``base_delay_s * multiplier**(n-1)``, capped at ``max_delay_s``.
    jitter:
        Fraction of each delay subject to decorrelation, in ``[0, 1]``.
        The jittered delay is ``d * (1 - jitter * u)`` with ``u`` the
        deterministic draw for ``(jitter_salt, attempt)`` — never longer
        than the unjittered delay, never negative. ``0`` restores the
        exact geometric ladder.
    jitter_salt:
        Seed for the jitter draws. ``None`` (the default) uses the
        calling process's pid, so concurrent pool workers sharing one
        policy decorrelate; pass any fixed value for reproducible
        schedules (the chaos harness does).
    sleep:
        The wait primitive (``time.sleep``); tests pass a no-op.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.001
    multiplier: float = 2.0
    max_delay_s: float = 0.050
    jitter: float = 0.5
    jitter_salt: int | str | None = None
    sleep: Callable[[float], None] = field(default=time.sleep, compare=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ReproError(
                f"retry policy needs max_attempts >= 1, got {self.max_attempts}"
            )
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ReproError("retry delays must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ReproError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay_for(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based), jittered."""
        delay = min(
            self.max_delay_s, self.base_delay_s * self.multiplier ** (attempt - 1)
        )
        if self.jitter <= 0.0 or delay <= 0.0:
            return delay
        salt = self.jitter_salt if self.jitter_salt is not None else os.getpid()
        return delay * (1.0 - self.jitter * _jitter_draw(salt, attempt))

    def backoff(self, attempt: int, error: Exception) -> None:
        """Wait before retry ``attempt``, or raise when the budget is spent.

        ``attempt`` counts the failures seen so far; when it reaches
        ``max_attempts`` the transient ``error`` is wrapped in a
        :class:`~repro.errors.RetryExhaustedError` and re-raised.
        """
        if attempt >= self.max_attempts:
            if _obs.enabled:
                _obs.inc("repro_retry_exhausted_total")
            raise RetryExhaustedError(
                f"gave up after {attempt} attempts: {error}",
                attempts=attempt,
                last_error=error,
            ) from error
        if _obs.enabled:
            _obs.inc("repro_retry_backoffs_total")
        delay = self.delay_for(attempt)
        if delay > 0:
            self.sleep(delay)


#: Fail on the first transient error (the pre-faults behaviour).
NO_RETRY = RetryPolicy(max_attempts=1)
