"""Retry-with-exponential-backoff policy for transient failures.

One policy object serves both recovery sites: the storage layer retries
individual page IOs (:meth:`repro.storage.disk.DiskSimulator.execute_page_io`)
and the batch executor retries whole queries after a worker crash
(:func:`repro.exec.executor._run_with_recovery`). Delays grow
geometrically from ``base_delay_s`` up to ``max_delay_s``; when
``max_attempts`` is spent the policy raises
:class:`~repro.errors.RetryExhaustedError` wrapping the last transient
failure, so callers see one final, structured error instead of the raw
fault.

The ``sleep`` hook is injectable so tests and the deterministic chaos
harness can run with zero real waiting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ReproError, RetryExhaustedError
from repro.obs import hooks as _obs

__all__ = ["RetryPolicy", "NO_RETRY"]


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry a transient failure, and how long to wait.

    Parameters
    ----------
    max_attempts:
        Total attempts including the first one (``1`` disables retries).
    base_delay_s:
        Backoff before the first retry; attempt ``n`` waits
        ``base_delay_s * multiplier**(n-1)``, capped at ``max_delay_s``.
    sleep:
        The wait primitive (``time.sleep``); tests pass a no-op.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.001
    multiplier: float = 2.0
    max_delay_s: float = 0.050
    sleep: Callable[[float], None] = field(default=time.sleep, compare=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ReproError(
                f"retry policy needs max_attempts >= 1, got {self.max_attempts}"
            )
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ReproError("retry delays must be non-negative")

    def delay_for(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        return min(self.max_delay_s, self.base_delay_s * self.multiplier ** (attempt - 1))

    def backoff(self, attempt: int, error: Exception) -> None:
        """Wait before retry ``attempt``, or raise when the budget is spent.

        ``attempt`` counts the failures seen so far; when it reaches
        ``max_attempts`` the transient ``error`` is wrapped in a
        :class:`~repro.errors.RetryExhaustedError` and re-raised.
        """
        if attempt >= self.max_attempts:
            if _obs.enabled:
                _obs.inc("repro_retry_exhausted_total")
            raise RetryExhaustedError(
                f"gave up after {attempt} attempts: {error}",
                attempts=attempt,
                last_error=error,
            ) from error
        if _obs.enabled:
            _obs.inc("repro_retry_backoffs_total")
        delay = self.delay_for(attempt)
        if delay > 0:
            self.sleep(delay)


#: Fail on the first transient error (the pre-faults behaviour).
NO_RETRY = RetryPolicy(max_attempts=1)
