"""The resident query service: warm engine, persistent pool, admission.

:class:`QueryService` is the event-loop-side owner of everything a
one-shot :class:`~repro.exec.executor.QueryExecutor` builds and throws
away per batch:

- the warm :class:`~repro.engine.ReverseSkylineEngine` (layout sort,
  prepared algorithm instances, numpy plans — paid once at startup),
- the process-wide plan cache and the engine's result cache,
- a *persistent* worker pool. In ``process`` mode the dataset and the
  warmed plans are published once over shared memory
  (:mod:`repro.exec.shm`) and every worker attaches at initialization;
  requests then ship only specs, never data.

Requests flow admission → micro-batcher → pool::

    submit() --admit--> result-cache probe --miss--> MicroBatcher
        window closes --> planner groups --> pool (shared scans)
        outcome --> future --> submit() returns

Deadlines are enforced at three stages (the wire error names which):
``queue`` (expired while batching — never executed), ``dispatch``
(expired between batching and pool submit — never executed) and
``execute`` (the awaiting client timed out; sunk worker cost is
bounded by one payload).

A crashed pool worker (``BrokenProcessPool``) triggers one in-place
pool rebuild reusing the published manifest, and the in-flight payload
is retried once — the retried result is bit-identical because answers
depend only on the spec. A second failure surfaces as a structured
``query-error``.
"""

from __future__ import annotations

import asyncio
import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.errors import (
    AlgorithmError,
    DeadlineError,
    OverloadError,
    ReproError,
    ServiceError,
)
from repro.exec.cache import CacheKey
from repro.exec.executor import (
    QueryExecutor,
    QuerySpec,
    _process_worker_init,
    _process_worker_run_payload,
    _run_group,
    _run_with_recovery,
    planner_group_key,
)
from repro.obs import hooks as _obs
from repro.serve.admission import AdmissionController
from repro.serve.batcher import MicroBatcher, PendingQuery
from repro.serve.protocol import BadRequest, ServeRequest

__all__ = ["ServiceConfig", "ServiceStats", "QueryService", "ExecutionFailed"]


class ExecutionFailed(ReproError):
    """A query failed past recovery; wraps the structured QueryError."""

    def __init__(self, query_error) -> None:
        super().__init__(query_error.describe())
        self.query_error = query_error


def _worker_ident(delay_s: float) -> int:
    """Pool-worker probe: hold the worker briefly so concurrent probes
    land on distinct workers, then report its pid. Module-level so the
    process pool can pickle it."""
    time.sleep(delay_s)
    return os.getpid()


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables for one :class:`QueryService`."""

    #: ``"thread"`` shares the warm engine under the GIL (best when the
    #: batcher coalesces most work); ``"process"`` sidesteps the GIL via
    #: the persistent shm-fed pool.
    pool: str = "thread"
    workers: int = 2
    #: Max admitted-but-unfinished requests before shedding.
    queue_depth: int = 64
    #: Micro-batch collection window (seconds) and size cap.
    batch_window_s: float = 0.002
    max_batch: int = 32
    #: Collapse the window to zero while arrivals are slower than one
    #: request per window — a lone client then never pays the window as
    #: added latency (see :class:`repro.serve.batcher.MicroBatcher`).
    adaptive_window: bool = True
    #: Per-tenant token bucket; rate 0 disables throttling.
    tenant_rate: float = 0.0
    tenant_burst: float = 0.0
    #: Applied when a request carries no deadline; ``None`` = unbounded.
    default_deadline_s: float | None = None
    #: Warm + use the numpy plan cache at startup.
    plan: bool = True
    #: Process pool only: feed workers through shared memory.
    shm: bool = True
    #: Serve repeat queries from the engine's result cache.
    cache: bool = True

    def __post_init__(self) -> None:
        if self.pool not in ("thread", "process"):
            raise AlgorithmError(
                f"unknown service pool {self.pool!r}; known: thread, process"
            )
        if self.workers < 1:
            raise AlgorithmError(f"workers must be >= 1, got {self.workers}")


@dataclass
class ServiceStats:
    """Always-on counters (obs metrics mirror these when enabled)."""

    admitted: int = 0
    served: int = 0
    failed: int = 0
    cache_hits: int = 0
    deadline_queue: int = 0
    deadline_dispatch: int = 0
    deadline_execute: int = 0
    pool_rebuilds: int = 0
    shed: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "admitted": self.admitted,
            "served": self.served,
            "failed": self.failed,
            "cache_hits": self.cache_hits,
            "deadline": {
                "queue": self.deadline_queue,
                "dispatch": self.deadline_dispatch,
                "execute": self.deadline_execute,
            },
            "pool_rebuilds": self.pool_rebuilds,
            "shed": dict(self.shed),
        }


class QueryService:
    """Owns the engine, pool and batcher; answers :class:`ServeRequest`s.

    Single-loop discipline: every method except the pool-side callables
    runs on the asyncio event loop, so the counters and the admission
    state need no locks.
    """

    def __init__(self, engine, config: ServiceConfig | None = None) -> None:
        self.engine = engine
        self.config = config or ServiceConfig()
        self.stats = ServiceStats()
        self._admission = AdmissionController(
            queue_depth=self.config.queue_depth,
            workers=self.config.workers,
            tenant_rate=self.config.tenant_rate,
            tenant_burst=self.config.tenant_burst,
        )
        self._batcher = MicroBatcher(
            window_s=self.config.batch_window_s,
            max_batch=self.config.max_batch,
            group_key=lambda spec: planner_group_key(self.engine, spec),
            dispatch=self._dispatch,
            adaptive=self.config.adaptive_window,
        )
        self._pool = None
        #: Bumped on every successful rebuild; payload tasks remember the
        #: epoch they submitted against so concurrent BrokenProcessPool
        #: failures trigger exactly one rebuild (see :meth:`_ensure_pool`).
        self._pool_epoch = 0
        self._rebuild_lock = asyncio.Lock()
        self._manifests: tuple = ()
        self._initargs = None
        #: Latest maintained-engine delta wire state; every process-pool
        #: payload is wrapped in a ``("maint", blob, wire)`` envelope so
        #: workers sync to the parent's epoch lazily, without a pool
        #: rebuild or republish (sync is idempotent — stale blobs no-op).
        self._maint_blob = None
        self._inflight = 0
        self._running = False
        self._tasks: set[asyncio.Task] = set()

    # -- lifecycle -------------------------------------------------

    async def start(self) -> None:
        """Warm the engine, publish shared state, spawn the pool."""
        if self._running:
            return
        loop = asyncio.get_running_loop()
        # Preparation is CPU-heavy (layout sort, plan build) — run it off
        # the loop so a server starting under traffic stays responsive.
        await loop.run_in_executor(
            None, lambda: self.engine.warm(plans=self.config.plan)
        )
        if self.config.pool == "process":
            await loop.run_in_executor(None, self._build_process_pool)
        else:
            self._pool = ThreadPoolExecutor(
                max_workers=self.config.workers,
                thread_name_prefix="repro-serve",
            )
        self._running = True
        self._batcher.start()
        if _obs.enabled:
            _obs.set_gauge("repro_serve_running", 1.0)

    def _build_process_pool(self) -> None:
        """Publish the dataset + plans once, then start a pool whose
        initializer attaches every worker to the published segment."""
        helper = QueryExecutor(
            self.engine,
            pool="process",
            workers=self.config.workers,
            plan=self.config.plan,
            shm=self.config.shm,
        )
        if self._initargs is None:
            self._manifests, self._initargs = helper._process_initargs(
                warm=self.config.plan
            )
        self._pool = ProcessPoolExecutor(
            max_workers=self.config.workers,
            initializer=_process_worker_init,
            initargs=self._initargs,
        )
        # Pre-spawn and verify every worker now, not on first request.
        hold = 0.05 if self.config.workers > 1 else 0.0
        probes = [
            self._pool.submit(_worker_ident, hold)
            for _ in range(self.config.workers)
        ]
        self._worker_pids = sorted({p.result(timeout=60) for p in probes})

    def worker_pids(self) -> list[int]:
        """Pids of the live pool workers (process pool; chaos tests)."""
        if self.config.pool != "process" or self._pool is None:
            return []
        procs = getattr(self._pool, "_processes", None) or {}
        return sorted(procs.keys())

    async def stop(self) -> None:
        """Stop admitting, fail queued work, tear down pool + segments."""
        if not self._running:
            return
        self._running = False
        await self._batcher.stop()
        for p in self._batcher.drain():
            p.fail(
                OverloadError(
                    "service shutting down", retry_after_s=1.0, reason="shutdown"
                )
            )
        # Let in-flight payload tasks finish (their results still land).
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        pool, self._pool = self._pool, None
        if pool is not None:
            await asyncio.get_running_loop().run_in_executor(
                None, lambda: pool.shutdown(wait=True)
            )
        self._release_shared_state()
        if _obs.enabled:
            _obs.set_gauge("repro_serve_running", 0.0)

    def _release_shared_state(self) -> None:
        """Unlink the published segments (base + any delta segment) and
        drop any attachment of them — the /dev/shm audit must come back
        clean after shutdown."""
        from repro.exec import shm as _shm

        for manifest in self._manifests:
            _shm.detach_manifest(manifest)
            _shm.unlink_manifest(manifest)
        self._manifests = ()
        self._initargs = None

    async def swap_dataset(self, dataset) -> None:
        """Replace the served dataset: quiesce, release the old shared
        segment (detach + unlink), rebuild engine state, republish."""
        from repro.engine import ReverseSkylineEngine

        was_running = self._running
        if was_running:
            await self.stop()
        old = self.engine
        self.engine = ReverseSkylineEngine(
            dataset,
            algorithm=old.default_algorithm,
            backend=getattr(old, "backend", None),
            shards=getattr(old, "shards", None),
            recall_target=getattr(old, "recall_target", None),
            memory_fraction=old.memory_fraction,
            page_bytes=old.page_bytes,
            log_queries=False,
        )
        if was_running:
            await self.start()

    async def apply_updates(self, inserts=(), deletes=()) -> dict:
        """Absorb an update batch into a served
        :class:`~repro.maint.MaintainedEngine` without quiescing reads.

        Unlike :meth:`swap_dataset` (stop-the-world), in-flight and
        concurrent queries keep running against the epoch they started
        on. The batch is applied off-loop; afterwards, process-pool
        workers are brought to the new epoch lazily by wrapping every
        payload in a ``("maint", blob, wire)`` envelope — no pool
        rebuild, no republish. Only a *compaction* (which rewrites the
        base the shm segment and worker engines were built from) forces
        a pool rebuild, and even then in-flight payloads retry against
        the replacement pool instead of failing.
        """
        apply = getattr(self.engine, "apply_updates", None)
        if apply is None:
            raise BadRequest(
                "the served engine does not accept updates; "
                "serve a repro.maint.MaintainedEngine"
            )
        loop = asyncio.get_running_loop()
        res = await loop.run_in_executor(
            None, lambda: apply(inserts=inserts, deletes=deletes)
        )
        if self.config.pool == "process" and self._pool is not None:
            if res.compacted:
                self._maint_blob = None
                await self._rebuild_pool_for_base()
            else:
                self._maint_blob = self.engine._export_maint_wire()
        return {
            "epoch": res.epoch,
            "inserted": res.inserted,
            "deleted": res.deleted,
            "compacted": res.compacted,
            "delta_records": res.delta_records,
            "tombstones": res.tombstones,
        }

    async def _rebuild_pool_for_base(self) -> None:
        """Compaction rewrote the base dataset: the published segment
        and every worker's attached engine describe the *old* base, so
        replace the pool against a freshly republished segment. Payloads
        in flight on the old pool see their futures cancelled and retry
        through :meth:`_ensure_pool`, which observes the bumped epoch
        and resubmits to the replacement — no request is failed."""
        async with self._rebuild_lock:
            self.stats.pool_rebuilds += 1
            if _obs.enabled:
                _obs.inc("repro_serve_pool_rebuilds_total")

            def _swap() -> None:
                old, self._pool = self._pool, None
                if old is not None:
                    old.shutdown(wait=False, cancel_futures=True)
                self._release_shared_state()
                self._build_process_pool()

            await asyncio.get_running_loop().run_in_executor(None, _swap)
            self._pool_epoch += 1

    async def drain(self, deadline_s: float = 5.0) -> None:
        """Graceful shutdown: stop admitting, *answer* everything
        already accepted, then tear down.

        The contrast with :meth:`stop` is what happens to queued work:
        ``stop`` fails it with :class:`OverloadError`, ``drain``
        dispatches it and waits up to ``deadline_s`` for the answers to
        settle. Only payloads still running past the deadline are
        cancelled (their clients get a typed :class:`ServiceError`)."""
        if not self._running:
            return
        loop = asyncio.get_running_loop()
        deadline = loop.time() + deadline_s
        self._running = False  # new submits shed with reason="shutdown"
        await self._batcher.stop()
        # The collection loop is gone; anything still queued would
        # otherwise hang its client forever — dispatch it now.
        for p in self._batcher.drain():
            if not p.future.done():
                self._dispatch(("single", p.spec), [p])
        if self._tasks:
            await asyncio.wait(
                tuple(self._tasks), timeout=max(0.0, deadline - loop.time())
            )
        for t in tuple(self._tasks):
            if not t.done():
                t.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        pool, self._pool = self._pool, None
        if pool is not None:
            await loop.run_in_executor(None, lambda: pool.shutdown(wait=True))
        self._release_shared_state()
        if _obs.enabled:
            _obs.set_gauge("repro_serve_running", 0.0)

    # -- request path ----------------------------------------------

    def _spec_for(self, req: ServeRequest) -> QuerySpec:
        try:
            query = self.engine.dataset.validate_query(req.query)
        except ReproError as exc:
            raise BadRequest(f"query failed validation: {exc}") from exc
        try:
            return QuerySpec(
                query=query,
                kind=req.kind,
                k=req.k if req.k is not None else 1,
                algorithm=req.algorithm,
                attributes=req.attributes,
                recall_target=req.recall_target,
            )
        except ReproError as exc:
            raise BadRequest(str(exc)) from exc

    def _cache_key(self, spec: QuerySpec) -> CacheKey | None:
        if not self.config.cache:
            return None
        try:
            return CacheKey(
                kind=spec.kind,
                algorithm=spec.algorithm or self.engine.default_algorithm,
                fingerprint=self.engine.layout_fingerprint(),
                query=tuple(spec.query),
                k=spec.k,
                attributes=(
                    self.engine._resolve_indices(spec.attributes)
                    if spec.attributes is not None
                    else None
                ),
                recall_target=spec.recall_target,
            )
        except ReproError:
            return None

    async def submit(self, req: ServeRequest) -> dict:
        """Answer one request; raises the typed service errors
        (:class:`OverloadError`, :class:`DeadlineError`,
        :class:`BadRequest`, :class:`ExecutionFailed`)."""
        if not self._running:
            raise OverloadError(
                "service is not running", retry_after_s=1.0, reason="shutdown"
            )
        loop = asyncio.get_running_loop()
        spec = self._spec_for(req)
        self._admission.admit(req.tenant, self._inflight)
        self.stats.admitted += 1
        if _obs.enabled:
            _obs.inc("repro_serve_requests_total", 1, tenant=req.tenant)

        key = self._cache_key(spec)
        if key is not None:
            hit = self.engine.result_cache().get(key)
            if hit is not None:
                self.stats.cache_hits += 1
                if _obs.enabled:
                    _obs.inc("repro_serve_cache_hits_total")
                return self._payload(hit, cached=True, wall_s=0.0)

        deadline_s = (
            req.deadline_ms / 1000.0
            if req.deadline_ms is not None
            else self.config.default_deadline_s
        )
        deadline = loop.time() + deadline_s if deadline_s is not None else None
        pending = PendingQuery(
            spec=spec,
            future=loop.create_future(),
            deadline=deadline,
            tenant=req.tenant,
            request_id=req.request_id,
            admitted_at=loop.time(),
        )
        self._inflight += 1
        try:
            self._batcher.put(pending)
            if deadline is None:
                outcome, wall_s = await pending.future
            else:
                try:
                    # wait_for cancels the future on timeout; the batcher
                    # and dispatcher skip done futures, so expiry here
                    # also cancels work that has not started yet.
                    outcome, wall_s = await asyncio.wait_for(
                        pending.future, deadline - loop.time()
                    )
                except (asyncio.TimeoutError, TimeoutError):
                    self.stats.deadline_execute += 1
                    if _obs.enabled:
                        _obs.inc(
                            "repro_serve_deadline_total", 1, stage="execute"
                        )
                    raise DeadlineError(
                        f"deadline of {deadline_s * 1000:.0f}ms expired",
                        stage="execute",
                    ) from None
        except DeadlineError as exc:
            if exc.stage == "queue":
                self.stats.deadline_queue += 1
            elif exc.stage == "dispatch":
                self.stats.deadline_dispatch += 1
            raise
        finally:
            self._inflight -= 1
        self.stats.served += 1
        return self._payload(outcome.result, cached=False, wall_s=wall_s)

    def _payload(self, result, *, cached: bool, wall_s: float) -> dict:
        return {
            "records": list(result.record_ids),
            "algorithm": result.algorithm,
            "backend": getattr(result, "backend", None),
            "planned": result.algorithm == "SharedScanTRS",
            "cached": cached,
            "wall_ms": wall_s * 1000.0,
        }

    def stats_payload(self) -> dict:
        """The ``stats`` op response body."""
        out = self.stats.as_dict()
        out["shed"] = dict(self._admission.shed_by_reason)
        out["shed_total"] = self._admission.shed_total
        out["inflight"] = self._inflight
        out["queue_depth"] = self.config.queue_depth
        out["pool"] = self.config.pool
        out["workers"] = self.config.workers
        b = self._batcher.stats
        out["batcher"] = {
            "rounds": b.rounds,
            "coalesced": b.coalesced,
            "singles": b.singles,
            "expired_in_queue": b.expired_in_queue,
            "short_windows": b.short_windows,
            "effective_window_ms": self._batcher.effective_window() * 1000.0,
            "max_group": max(b.group_sizes, default=0),
        }
        out["latency"] = self.engine.latency_summary()
        from repro.kernels import fused as fused_kernels
        from repro.kernels import jit as jit_kernels

        backend = getattr(self.engine, "backend", None)
        out["kernels"] = {
            "fused_groups_run": fused_kernels.fused_groups_run(),
            "jit": jit_kernels.status(),
            # The concrete kernel tier batches run on right now.
            "tier": (
                "python"
                if backend in (None, "python")
                else jit_kernels.effective_tier(backend)
            ),
        }
        return out

    # -- dispatch / execution --------------------------------------

    def _dispatch(self, wire, members: list[PendingQuery]) -> None:
        """Batcher callback: run one planner payload without blocking
        the collection loop."""
        task = asyncio.get_running_loop().create_task(
            self._execute_payload(wire, members)
        )
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _execute_payload(self, wire, members: list[PendingQuery]) -> None:
        loop = asyncio.get_running_loop()
        now = loop.time()
        live: list[PendingQuery] = []
        for p in members:
            if p.future.done():
                continue  # client gave up; work is cancelled before it starts
            if p.deadline is not None and now >= p.deadline:
                self.stats.deadline_dispatch += 1
                if _obs.enabled:
                    _obs.inc("repro_serve_deadline_total", 1, stage="dispatch")
                p.fail(
                    DeadlineError(
                        "deadline expired before dispatch", stage="dispatch"
                    )
                )
                continue
            live.append(p)
        if not live:
            return
        # Re-shape the wire after deadline attrition: a group that lost
        # members must still match its spec list one-for-one.
        if wire[0] == "group":
            if len(live) >= 2:
                wire = ("group", tuple(p.spec for p in live), wire[2])
            else:
                wire = ("single", live[0].spec)

        start = loop.time()
        try:
            out = await self._run_wire(wire)
        except ReproError as exc:
            for p in live:
                p.fail(exc)
            self.stats.failed += len(live)
            return
        except BaseException as exc:
            # Anything non-library that escapes the pool path (a second
            # BrokenProcessPool on the post-rebuild retry, a rebuild that
            # could not respawn workers, cancellation at teardown) must
            # still settle every member future — a client with no
            # deadline would otherwise await forever.
            err = ServiceError(f"query execution failed in the pool: {exc!r}")
            err.__cause__ = exc if isinstance(exc, Exception) else None
            for p in live:
                p.fail(err)
            self.stats.failed += len(live)
            if _obs.enabled:
                _obs.inc("repro_serve_failures_total", len(live))
            if isinstance(exc, asyncio.CancelledError):
                raise
            return
        wall_s = loop.time() - start
        self._admission.observe_service_time(wall_s / len(live))
        if _obs.enabled:
            _obs.observe("repro_serve_payload_seconds", wall_s)
        outcomes = out if isinstance(out, list) else [out]
        for p, outcome in zip(live, outcomes):
            self._settle(p, outcome, wall_s)

    def _settle(self, p: PendingQuery, outcome, wall_s: float) -> None:
        if outcome.error is not None:
            self.stats.failed += 1
            if _obs.enabled:
                _obs.inc("repro_serve_failures_total")
            self.engine._record_failure("serve-query", p.spec, outcome.error)
            p.fail(ExecutionFailed(outcome.error))
            return
        key = self._cache_key(p.spec)
        if key is not None:
            self.engine.result_cache().put(key, outcome.result)
        self.engine._record(
            "serve-query", outcome.result, wall_time_s=wall_s, cached=False
        )
        p.resolve((outcome, wall_s))

    async def _run_wire(self, wire):
        """Run one payload on the pool; process pools get one in-place
        rebuild + retry if a worker died mid-request."""
        loop = asyncio.get_running_loop()
        if self.config.pool == "process":
            pool, epoch = self._pool, self._pool_epoch
            if pool is None:
                raise ServiceError("process pool unavailable (rebuild failed)")
            blob = self._maint_blob
            if blob is not None:
                # Piggyback the latest delta state on the payload; the
                # worker's sync is idempotent (epoch-guarded) so repeat
                # delivery costs one dict comparison, never a rebuild.
                wire = ("maint", blob, wire)
            try:
                return await loop.run_in_executor(
                    pool, _process_worker_run_payload, wire
                )
            except (BrokenProcessPool, asyncio.CancelledError, RuntimeError) as exc:
                # BrokenProcessPool: a worker died under us. The other
                # two are collateral of a *concurrent* rebuild tearing
                # down the pool we submitted to (cancel_futures cancels
                # our future; submit-after-shutdown raises RuntimeError)
                # — but only when the pool really was swapped out; a
                # cancellation or RuntimeError with our pool still
                # current is not ours to absorb.
                if not isinstance(exc, BrokenProcessPool) and pool is self._pool:
                    raise
                await self._ensure_pool(epoch)
                pool = self._pool
                if pool is None:
                    raise ServiceError(
                        "process pool unavailable (rebuild failed)"
                    ) from None
                # Retry once: answers depend only on the spec, so the
                # retried result is bit-identical to an undisturbed run.
                return await loop.run_in_executor(
                    pool, _process_worker_run_payload, wire
                )
        return await loop.run_in_executor(self._pool, self._run_inline, wire)

    async def _ensure_pool(self, epoch: int) -> None:
        """Serialize pool rebuilds. One dead worker fails *every*
        in-flight payload with ``BrokenProcessPool``, so several tasks
        arrive here at once; only the first to take the lock rebuilds,
        the rest see the epoch has moved on and simply retry against the
        replacement — a second rebuild would tear down a healthy pool
        mid-verification."""
        async with self._rebuild_lock:
            if self._pool_epoch != epoch and self._pool is not None:
                return  # someone else already replaced the pool we saw break
            self.stats.pool_rebuilds += 1
            if _obs.enabled:
                _obs.inc("repro_serve_pool_rebuilds_total")
            await asyncio.get_running_loop().run_in_executor(
                None, self._rebuild_pool
            )
            self._pool_epoch += 1

    def _rebuild_pool(self) -> None:
        """Replace a broken process pool, reusing the published manifest
        and initargs (the shared segment survived the worker). On a
        failed rebuild ``self._pool`` stays ``None`` and callers surface
        a typed error instead of executing on the default executor."""
        broken, self._pool = self._pool, None
        if broken is not None:
            broken.shutdown(wait=False, cancel_futures=True)
        self._build_process_pool()

    def _run_inline(self, wire):
        """Thread-pool payload runner against the shared warm engine."""
        injector = getattr(self.engine, "fault_injector", None)
        policy = getattr(self.engine, "retry_policy", None)
        if policy is None:
            from repro.faults.retry import RetryPolicy

            policy = RetryPolicy()
        if wire[0] == "single":
            return _run_with_recovery(self.engine, wire[1], injector, policy)
        _, specs, backend = wire
        return _run_group(self.engine, specs, backend, injector, policy)
