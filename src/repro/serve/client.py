"""Blocking client + closed-loop load driver for the resident service.

:class:`ServeClient` is the minimal correct counterpart of the wire
protocol — a socket, a buffered line reader, JSON in/out. It is what
the tests, the benchmark and ``repro-skyline serve-load`` all use, so
measured numbers exercise the same path real clients would.

:func:`run_closed_loop` drives N closed-loop clients (each thread
waits for its response before sending the next request — the standard
saturation-free load model) and reduces per-request observations into
a :class:`LoadReport` with latency percentiles and outcome counts.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Sequence

__all__ = ["ServeClient", "LoadReport", "run_closed_loop"]


class ServeClient:
    """One connection to a serve endpoint; not thread-safe (use one
    client per thread, as the load driver does)."""

    def __init__(
        self, host: str, port: int, *, timeout_s: float = 60.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout_s)
        self._file = self._sock.makefile("rwb")
        self._next_id = 0

    # -- wire ------------------------------------------------------

    def request(self, obj: dict[str, Any]) -> dict[str, Any]:
        if "id" not in obj:
            self._next_id += 1
            obj = {**obj, "id": str(self._next_id)}
        self._file.write(json.dumps(obj).encode() + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def query(
        self,
        query: Sequence,
        *,
        kind: str = "query",
        k: int | None = None,
        algorithm: str | None = None,
        attributes: Sequence | None = None,
        tenant: str = "default",
        deadline_ms: float | None = None,
    ) -> dict[str, Any]:
        obj: dict[str, Any] = {
            "op": "query",
            "query": list(query),
            "kind": kind,
            "tenant": tenant,
        }
        if k is not None:
            obj["k"] = k
        if algorithm is not None:
            obj["algorithm"] = algorithm
        if attributes is not None:
            obj["attributes"] = list(attributes)
        if deadline_ms is not None:
            obj["deadline_ms"] = deadline_ms
        return self.request(obj)

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("pong"))

    def stats(self) -> dict[str, Any]:
        return self.request({"op": "stats"})["stats"]

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _percentile(sorted_vals: list[float], q: float) -> float:
    """Nearest-rank percentile over an already-sorted list."""
    if not sorted_vals:
        return 0.0
    rank = max(1, round(q / 100.0 * len(sorted_vals)))
    return sorted_vals[min(rank, len(sorted_vals)) - 1]


@dataclass
class LoadReport:
    """What one closed-loop run observed."""

    clients: int
    requests: int = 0
    ok: int = 0
    shed: int = 0
    deadline: int = 0
    failed: int = 0
    wall_s: float = 0.0
    qps: float = 0.0
    p50_ms: float = 0.0
    p95_ms: float = 0.0
    p99_ms: float = 0.0
    #: Retry-after hints observed on shed responses (seconds).
    retry_after_s: list[float] = field(default_factory=list)
    #: Server-reported planned (shared-scan) answers among the oks.
    planned: int = 0
    cached: int = 0

    def as_dict(self) -> dict[str, Any]:
        out = {
            "clients": self.clients,
            "requests": self.requests,
            "ok": self.ok,
            "shed": self.shed,
            "deadline": self.deadline,
            "failed": self.failed,
            "wall_s": round(self.wall_s, 6),
            "qps": round(self.qps, 3),
            "p50_ms": round(self.p50_ms, 4),
            "p95_ms": round(self.p95_ms, 4),
            "p99_ms": round(self.p99_ms, 4),
            "planned": self.planned,
            "cached": self.cached,
        }
        if self.retry_after_s:
            out["retry_after_min_s"] = round(min(self.retry_after_s), 4)
            out["retry_after_max_s"] = round(max(self.retry_after_s), 4)
        return out


def run_closed_loop(
    host: str,
    port: int,
    queries: Sequence[Sequence],
    *,
    clients: int = 4,
    requests_per_client: int = 25,
    tenant_per_client: bool = False,
    deadline_ms: float | None = None,
    algorithm: str | None = None,
    start_timeout_s: float = 30.0,
) -> LoadReport:
    """Drive ``clients`` concurrent closed-loop connections.

    Client ``c`` sends ``requests_per_client`` requests, walking the
    query list round-robin from offset ``c`` (so concurrent clients
    send *different* queries — throughput gains must come from shared
    scans, not result-cache hits). A barrier aligns the start so the
    measured window covers genuinely concurrent load; a client that
    fails before reaching it (connection refused, dead server) aborts
    the barrier so the run raises instead of hanging forever.
    """
    if not queries:
        raise ValueError("need at least one query")
    lock = threading.Lock()
    report = LoadReport(clients=clients)
    latencies: list[float] = []
    barrier = threading.Barrier(clients + 1)
    setup_errors: list[BaseException] = []

    def drive(c: int) -> None:
        try:
            client = ServeClient(host, port)
        except BaseException as exc:
            with lock:
                setup_errors.append(exc)
            barrier.abort()
            return
        tenant = f"tenant-{c}" if tenant_per_client else "default"
        try:
            try:
                client.ping()  # connection warm before the measured window
                barrier.wait(timeout=start_timeout_s)
            except threading.BrokenBarrierError:
                return  # another client aborted the start; bail quietly
            except BaseException as exc:
                with lock:
                    setup_errors.append(exc)
                barrier.abort()
                return
            for i in range(requests_per_client):
                q = queries[(c + i * clients) % len(queries)]
                t0 = time.perf_counter()
                resp = client.query(
                    q,
                    tenant=tenant,
                    deadline_ms=deadline_ms,
                    algorithm=algorithm,
                )
                dt_ms = (time.perf_counter() - t0) * 1000.0
                with lock:
                    report.requests += 1
                    if resp.get("ok"):
                        report.ok += 1
                        latencies.append(dt_ms)
                        if resp.get("planned"):
                            report.planned += 1
                        if resp.get("cached"):
                            report.cached += 1
                    else:
                        err = resp.get("error", {})
                        if err.get("type") == "overload":
                            report.shed += 1
                            report.retry_after_s.append(
                                float(err.get("retry_after_s", 0.0))
                            )
                        elif err.get("type") == "deadline":
                            report.deadline += 1
                        else:
                            report.failed += 1
        finally:
            client.close()

    threads = [
        threading.Thread(target=drive, args=(c,), name=f"serve-load-{c}")
        for c in range(clients)
    ]
    for t in threads:
        t.start()
    try:
        barrier.wait(timeout=start_timeout_s)
    except threading.BrokenBarrierError:
        for t in threads:
            t.join()
        if setup_errors:
            raise setup_errors[0]
        raise RuntimeError(
            f"load clients failed to start within {start_timeout_s}s"
        ) from None
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    report.wall_s = time.perf_counter() - t0
    if report.wall_s > 0:
        report.qps = report.ok / report.wall_s
    latencies.sort()
    report.p50_ms = _percentile(latencies, 50)
    report.p95_ms = _percentile(latencies, 95)
    report.p99_ms = _percentile(latencies, 99)
    return report
