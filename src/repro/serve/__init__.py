"""Resident query service with admission control and micro-batching.

Everything below :mod:`repro.serve` turns the one-shot batch machinery
into a long-lived server (the paper's §1 influence / market-analysis
applications are standing workloads):

- :class:`~repro.serve.service.QueryService` owns a warm
  :class:`~repro.engine.ReverseSkylineEngine`, the process-wide plan
  cache and a *persistent* worker pool fed through the existing
  shared-memory manifests — dataset and plans published once at
  startup, never per-request.
- :class:`~repro.serve.admission.AdmissionController` sheds load
  *before* it queues: per-tenant token buckets plus a bounded admission
  queue, both failing with a typed
  :class:`~repro.errors.OverloadError` carrying ``retry_after_s``.
- :class:`~repro.serve.batcher.MicroBatcher` coalesces compatible
  in-flight queries over a small time/size window into the batch
  planner's layout-fingerprint groups, so concurrent clients share
  scans instead of queueing behind each other.
- :class:`~repro.serve.server.ServeServer` speaks a newline-delimited
  JSON protocol over TCP; :class:`~repro.serve.client.ServeClient` and
  :func:`~repro.serve.client.run_closed_loop` are the matching client
  and closed-loop load driver (``repro-skyline serve`` /
  ``repro-skyline serve-load``).
"""

from repro.serve.admission import AdmissionController, TokenBucket
from repro.serve.batcher import MicroBatcher
from repro.serve.client import LoadReport, ServeClient, run_closed_loop
from repro.serve.server import ServeServer, serve_in_background, run_server
from repro.serve.service import QueryService, ServiceConfig

__all__ = [
    "AdmissionController",
    "LoadReport",
    "MicroBatcher",
    "QueryService",
    "ServeClient",
    "ServeServer",
    "ServiceConfig",
    "TokenBucket",
    "run_closed_loop",
    "run_server",
    "serve_in_background",
]
