"""Asyncio TCP front end for :class:`~repro.serve.service.QueryService`.

One connection = one line-oriented session; requests on a connection
are answered in order (each line is awaited before the next is read,
which gives natural per-connection backpressure — concurrency comes
from concurrent *connections*, matching the closed-loop load driver).

:func:`serve_in_background` runs a full server on a private event
loop in a daemon thread and returns a handle with ``port`` and
``stop()`` — the harness tests and the benchmark drive real sockets
against it from the main thread.
"""

from __future__ import annotations

import asyncio
import signal
import threading
from typing import Any

from repro.obs import hooks as _obs
from repro.serve import protocol
from repro.serve.protocol import BadRequest
from repro.serve.service import QueryService, ServiceConfig

__all__ = ["ServeServer", "run_server", "serve_in_background", "BackgroundServer"]

#: A request line larger than this is a protocol violation, not a query.
_MAX_LINE_BYTES = 1 << 20


class ServeServer:
    """Bind, accept, decode, delegate to the service, encode."""

    def __init__(
        self,
        engine,
        config: ServiceConfig | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = QueryService(engine, config)
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._shutdown = asyncio.Event()
        self._max_requests: int | None = None
        self._handled = 0
        self._conn_tasks: set[asyncio.Task] = set()

    # -- lifecycle -------------------------------------------------

    async def start(self) -> None:
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=_MAX_LINE_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Idle connection handlers sit in readline() forever; cancel
        # them so the loop shuts down without destroying pending tasks.
        for task in tuple(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        await self.service.stop()
        self._shutdown.set()

    async def drain(self, deadline_s: float = 5.0) -> None:
        """Graceful shutdown (SIGTERM path): stop accepting connections,
        let every request already on the wire get its *answer*, then
        shut down.

        Ordering matters: the listener closes first (new connections are
        refused), then the service drains (queued and in-flight queries
        settle and their responses are written back to still-connected
        clients), and only then are idle connection handlers — blocked
        in ``readline()`` with nothing left to say — cancelled."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.drain(deadline_s)
        # Give handlers one beat to flush the final responses to their
        # sockets before cancelling the idle readline() waits.
        if self._conn_tasks:
            await asyncio.wait(tuple(self._conn_tasks), timeout=0.5)
        for task in tuple(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._shutdown.set()

    async def serve_until_shutdown(self, max_requests: int | None = None) -> None:
        """Run until :meth:`stop` is called (or ``max_requests`` query
        responses have been written — a test/CI convenience)."""
        self._max_requests = max_requests
        await self._shutdown.wait()

    # -- connection handling ---------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if _obs.enabled:
            _obs.inc("repro_serve_connections_total")
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError,
                    ValueError,
                    ConnectionResetError,
                ):
                    break
                if not line:
                    break
                response = await self._respond(line)
                writer.write(protocol.encode(response))
                await writer.drain()
                if (
                    self._max_requests is not None
                    and self._handled >= self._max_requests
                ):
                    self._shutdown.set()
                    break
        except (ConnectionResetError, asyncio.CancelledError):
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    async def _respond(self, line: bytes) -> dict[str, Any]:
        try:
            req = protocol.decode_request(line)
        except BadRequest as exc:
            return protocol.error_response("", exc)
        if req.op == "ping":
            return protocol.ok_response(req.request_id, {"pong": True})
        if req.op == "stats":
            return protocol.ok_response(
                req.request_id, {"stats": self.service.stats_payload()}
            )
        if req.op == "update":
            try:
                payload = await self.service.apply_updates(
                    inserts=req.inserts, deletes=req.deletes
                )
            except Exception as exc:
                return protocol.error_response(req.request_id, exc)
            finally:
                self._handled += 1
            return protocol.ok_response(req.request_id, payload)
        try:
            payload = await self.service.submit(req)
        except Exception as exc:  # typed service errors -> wire errors
            return protocol.error_response(req.request_id, exc)
        finally:
            self._handled += 1
        return protocol.ok_response(req.request_id, payload)


async def _run(
    engine,
    config: ServiceConfig | None,
    host: str,
    port: int,
    *,
    max_requests: int | None = None,
    port_file: str | None = None,
    started: "threading.Event | None" = None,
    handle: "BackgroundServer | None" = None,
    drain_deadline_s: float = 5.0,
) -> None:
    server = ServeServer(engine, config, host=host, port=port)
    await server.start()
    loop = asyncio.get_running_loop()
    sigterm_installed = False
    try:
        # SIGTERM = graceful drain: answer what was accepted, then exit.
        # Unavailable off the main thread (serve_in_background) and on
        # loops without signal support — fall back to plain stop there.
        loop.add_signal_handler(
            signal.SIGTERM,
            lambda: asyncio.ensure_future(server.drain(drain_deadline_s)),
        )
        sigterm_installed = True
    except (NotImplementedError, RuntimeError, ValueError):
        pass
    if port_file:
        with open(port_file, "w") as fh:
            fh.write(str(server.port))
    if handle is not None:
        handle._server = server
        handle.port = server.port
    if started is not None:
        started.set()
    try:
        await server.serve_until_shutdown(max_requests)
    finally:
        if sigterm_installed:
            loop.remove_signal_handler(signal.SIGTERM)
        await server.stop()


def run_server(
    engine,
    config: ServiceConfig | None = None,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    max_requests: int | None = None,
    port_file: str | None = None,
    drain_deadline_s: float = 5.0,
) -> None:
    """Blocking entry point for ``repro-skyline serve``.

    Installs a SIGTERM handler that drains gracefully: in-flight and
    queued requests are answered (up to ``drain_deadline_s``) before
    the process exits, so rolling restarts never drop accepted work."""
    try:
        asyncio.run(
            _run(
                engine,
                config,
                host,
                port,
                max_requests=max_requests,
                port_file=port_file,
                drain_deadline_s=drain_deadline_s,
            )
        )
    except KeyboardInterrupt:
        pass


class BackgroundServer:
    """Handle for a server running on a daemon-thread event loop."""

    def __init__(self) -> None:
        self.port: int = 0
        self._server: ServeServer | None = None
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None

    @property
    def service(self) -> QueryService:
        assert self._server is not None
        return self._server.service

    def call(self, coro_factory):
        """Run a coroutine on the server loop from any thread."""
        assert self._loop is not None
        return asyncio.run_coroutine_threadsafe(
            coro_factory(), self._loop
        ).result(timeout=60)

    def stop(self) -> None:
        if self._loop is None or self._server is None:
            return
        loop, server = self._loop, self._server

        def _request_stop() -> None:
            server._shutdown.set()

        loop.call_soon_threadsafe(_request_stop)
        assert self._thread is not None
        self._thread.join(timeout=60)
        self._loop = None


def serve_in_background(
    engine,
    config: ServiceConfig | None = None,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
) -> BackgroundServer:
    """Start a server on its own loop in a daemon thread; returns once
    the socket is bound (``handle.port`` is real)."""
    handle = BackgroundServer()
    started = threading.Event()
    failure: list[BaseException] = []

    def main() -> None:
        loop = asyncio.new_event_loop()
        handle._loop = loop
        try:
            loop.run_until_complete(
                _run(
                    engine,
                    config,
                    host,
                    port,
                    started=started,
                    handle=handle,
                )
            )
        except BaseException as exc:  # surface startup failures to the caller
            failure.append(exc)
            started.set()
        finally:
            loop.close()

    thread = threading.Thread(target=main, name="repro-serve", daemon=True)
    handle._thread = thread
    thread.start()
    if not started.wait(timeout=120):
        raise RuntimeError("server did not start within 120s")
    if failure:
        raise failure[0]
    return handle
