"""Admission control for the resident query service.

Two gates run before a request is allowed to queue:

1. A per-tenant :class:`TokenBucket` — a misbehaving tenant exhausts
   its own budget and gets throttled without starving the others.
2. A bounded admission-queue depth check — once the service has
   ``queue_depth`` requests in flight, new arrivals are shed instead
   of growing an unbounded backlog.

Both gates fail with :class:`repro.errors.OverloadError`, which
carries a ``retry_after_s`` hint so clients can back off sensibly
(combined with the jittered :class:`repro.faults.retry.RetryPolicy`
this avoids a synchronized retry herd). The hint is derived from an
EWMA of recent service times scaled by the current backlog — an
honest "when will a slot plausibly free up", not a constant.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import OverloadError

__all__ = ["TokenBucket", "AdmissionController"]

# Bounds for the retry-after hint (seconds). The lower bound stops a
# fast service from telling clients "retry in 40µs" (a herd by another
# name); the upper bound keeps a saturated service from parking
# clients forever.
_RETRY_AFTER_MIN_S = 0.005
_RETRY_AFTER_MAX_S = 5.0

#: Cap on distinct per-tenant buckets. The tenant string arrives off
#: the wire, so an adversarial (or merely sloppy) client sending a
#: fresh tenant per request would otherwise grow ``_buckets`` without
#: bound in a long-lived server. Past the cap the least-recently-seen
#: tenant is evicted — it just re-earns a full burst on its next visit.
_MAX_TENANT_BUCKETS = 4096


@dataclass
class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s refill, ``burst`` cap.

    ``try_acquire`` never blocks — it either takes the tokens and
    returns ``0.0``, or returns the seconds until enough tokens will
    have refilled. ``rate <= 0`` disables the bucket (unlimited).
    """

    rate: float
    burst: float
    clock: Callable[[], float] = time.monotonic
    _tokens: float = field(init=False, default=0.0)
    _stamp: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        if self.rate > 0 and self.burst <= 0:
            raise ValueError("burst must be positive when rate > 0")
        self._tokens = self.burst
        self._stamp = self.clock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._stamp)
        self._stamp = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)

    def try_acquire(self, n: float = 1.0) -> float:
        """Take ``n`` tokens if available; else seconds until they are."""
        if self.rate <= 0:
            return 0.0
        now = self.clock()
        self._refill(now)
        if self._tokens >= n:
            self._tokens -= n
            return 0.0
        return (n - self._tokens) / self.rate


class AdmissionController:
    """Front door of the service: tenant buckets + bounded queue.

    The controller does not own the queue — the service reports its
    depth through ``depth_probe`` so admission and dispatch cannot
    deadlock on a shared lock. All methods are called from the single
    event-loop thread; no internal locking is needed.
    """

    def __init__(
        self,
        *,
        queue_depth: int,
        workers: int,
        tenant_rate: float = 0.0,
        tenant_burst: float = 0.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.queue_depth = queue_depth
        self.workers = max(1, workers)
        self.tenant_rate = tenant_rate
        self.tenant_burst = tenant_burst if tenant_burst > 0 else max(1.0, tenant_rate)
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        # EWMA of observed service time, seeded pessimistically so the
        # first shed (before any completions) still gives a sane hint.
        self._ewma_service_s = 0.05
        self.shed_total = 0
        self.shed_by_reason: dict[str, int] = {}

    # -- learning --------------------------------------------------

    def observe_service_time(self, seconds: float) -> None:
        """Feed a completed request's wall time into the EWMA."""
        if seconds > 0:
            self._ewma_service_s = 0.8 * self._ewma_service_s + 0.2 * seconds

    def retry_after(self, backlog: int) -> float:
        """Estimate seconds until a queue slot frees up."""
        est = self._ewma_service_s * (backlog + 1) / self.workers
        return min(_RETRY_AFTER_MAX_S, max(_RETRY_AFTER_MIN_S, est))

    # -- gating ----------------------------------------------------

    def _bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.pop(tenant, None)
        if bucket is None:
            if len(self._buckets) >= _MAX_TENANT_BUCKETS:
                self._buckets.pop(next(iter(self._buckets)))
            bucket = TokenBucket(
                rate=self.tenant_rate, burst=self.tenant_burst, clock=self._clock
            )
        # Re-insert on every touch: dict order doubles as the LRU order.
        self._buckets[tenant] = bucket
        return bucket

    def _shed(self, reason: str, retry_after_s: float, message: str) -> OverloadError:
        self.shed_total += 1
        self.shed_by_reason[reason] = self.shed_by_reason.get(reason, 0) + 1
        return OverloadError(message, retry_after_s=retry_after_s, reason=reason)

    def admit(self, tenant: str, backlog: int) -> None:
        """Raise :class:`OverloadError` if the request must be shed.

        ``backlog`` is the current number of admitted-but-unfinished
        requests (queued + executing), probed by the caller.
        """
        if self.tenant_rate > 0:
            # rate <= 0 (the default) means no throttling at all — do
            # not even allocate a bucket, or wire-supplied tenant
            # strings would grow the map unboundedly for no effect.
            wait = self._bucket(tenant).try_acquire()
            if wait > 0:
                raise self._shed(
                    "tenant-throttled",
                    max(_RETRY_AFTER_MIN_S, wait),
                    f"tenant {tenant!r} exceeded its rate budget",
                )
        if backlog >= self.queue_depth:
            raise self._shed(
                "queue-full",
                self.retry_after(backlog),
                f"admission queue full ({backlog}/{self.queue_depth})",
            )
