"""Continuous micro-batching for the resident query service.

The PR-5 batch planner groups *whole batches* handed to it at once;
a server never sees whole batches, only a trickle of concurrent
requests. The :class:`MicroBatcher` closes that gap: admitted
requests land on an asyncio queue, and the batcher drains it in
rounds — the first request opens a window of ``window_s`` seconds
(or ``max_batch`` requests, whichever fills first), then everything
collected is partitioned by the planner's compatibility key
(:func:`repro.exec.executor.planner_group_key` — layout fingerprint,
algorithm family, backend) and dispatched.

Groups of two or more compatible queries ride one shared
:class:`~repro.core.multiquery.SharedScanTRS` scan, which is where
the service's multi-client throughput comes from: N concurrent
clients cost one scan, not N. Dispatch is fire-and-forget — the next
window starts forming while the previous round executes, so the
window bounds *added latency*, never throughput.

Deadline discipline: a request whose budget expired while queued is
resolved with :class:`~repro.errors.DeadlineError` (``stage="queue"``)
at dispatch time and is **never** handed to a worker — cancelled work
stops costing anything at the first opportunity.

Adaptive window (``adaptive=True``): the fixed window is the right
trade only under concurrency — a lone client gains nothing from
waiting and pays the whole window as added latency on every request.
The batcher keeps an EWMA of request inter-arrival times; the
*effective* window collapses to zero unless arrivals are faster than
one per window **and** the previous round actually collected more
than one request. Both signals are needed: a lone sequential client
produces a short gap right after every fast response (which alone
would re-open the window and re-tax the next request), but its rounds
are always singletons, so the window stays collapsed. Concurrency is
still detected with a zero window because requests that land while a
round executes queue up and are drained together at the next round —
a multi-member round plus a sub-window EWMA re-opens the full window.
The window cap never grows, so adaptivity only sheds latency.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import DeadlineError
from repro.obs import hooks as _obs

__all__ = ["PendingQuery", "MicroBatcher"]

_STOP = object()


@dataclass
class PendingQuery:
    """One admitted request waiting for (or in) execution."""

    spec: Any  # QuerySpec
    future: asyncio.Future
    #: Absolute loop-clock deadline, or None for no deadline.
    deadline: float | None
    tenant: str = "default"
    request_id: str = ""
    admitted_at: float = 0.0

    def resolve(self, result: Any) -> None:
        if not self.future.done():
            self.future.set_result(result)

    def fail(self, exc: BaseException) -> None:
        if not self.future.done():
            self.future.set_exception(exc)


@dataclass
class BatcherStats:
    rounds: int = 0
    #: Queries that went through a shared-scan group (group size >= 2).
    coalesced: int = 0
    #: Queries dispatched individually.
    singles: int = 0
    #: Queries whose deadline expired while queued (never executed).
    expired_in_queue: int = 0
    #: Rounds the adaptive window collapsed to zero (sparse arrivals).
    short_windows: int = 0
    group_sizes: list[int] = field(default_factory=list)


class MicroBatcher:
    """Collect admitted queries into windows; dispatch planner payloads.

    Parameters
    ----------
    group_key:
        ``spec -> key | None`` — the planner compatibility key
        (``None`` means the spec must run alone).
    dispatch:
        ``(wire, members) -> None`` — called once per payload with the
        executor wire format (``("single", spec)`` or ``("group",
        specs, backend)``) and the :class:`PendingQuery` members in
        spec order. Must not block: the service wraps execution in a
        task so the batcher can keep collecting.
    adaptive:
        Collapse the collection window to zero while the observed
        arrival rate is below one request per window (module
        docstring); ``window_s`` stays the upper bound either way.
    """

    #: EWMA smoothing for inter-arrival times: heavy enough that one
    #: stray gap does not re-open the window, light enough that a burst
    #: restores batching within a few requests.
    EWMA_ALPHA = 0.2

    def __init__(
        self,
        *,
        window_s: float,
        max_batch: int,
        group_key: Callable[[Any], Any],
        dispatch: Callable[[Any, list[PendingQuery]], None],
        clock: Callable[[], float] | None = None,
        adaptive: bool = False,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.window_s = max(0.0, window_s)
        self.max_batch = max_batch
        self.adaptive = adaptive
        self._group_key = group_key
        self._dispatch = dispatch
        self._clock = clock
        self._queue: asyncio.Queue = asyncio.Queue()
        self._task: asyncio.Task | None = None
        self._last_arrival: float | None = None
        self._ewma_interval: float | None = None
        self._last_round_size = 0
        self.stats = BatcherStats()

    # -- lifecycle -------------------------------------------------

    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name="repro-serve-batcher"
            )

    async def stop(self) -> None:
        """Stop collecting; requests still queued fail at dispatch in
        the service's shutdown path (it drains the queue itself)."""
        if self._task is None:
            return
        self._queue.put_nowait(_STOP)
        await self._task
        self._task = None

    def drain(self) -> list[PendingQuery]:
        """Remove and return everything still queued (shutdown path)."""
        out: list[PendingQuery] = []
        while True:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                return out
            if item is not _STOP:
                out.append(item)

    # -- ingest ----------------------------------------------------

    def put(self, pending: PendingQuery) -> None:
        if self.adaptive:
            now = self._now()
            if self._last_arrival is not None:
                gap = now - self._last_arrival
                if self._ewma_interval is None:
                    self._ewma_interval = gap
                else:
                    self._ewma_interval += self.EWMA_ALPHA * (
                        gap - self._ewma_interval
                    )
            self._last_arrival = now
        self._queue.put_nowait(pending)

    def depth(self) -> int:
        return self._queue.qsize()

    def effective_window(self) -> float:
        """The collection window the next round will use: the full
        ``window_s`` only when the arrival EWMA says a second request is
        likely to land inside it *and* the previous round proved there
        is concurrency to coalesce (module docstring). Before two
        arrivals there is no rate estimate — assume sparse (zero
        window), which is the latency-safe default."""
        if not self.adaptive:
            return self.window_s
        if self._ewma_interval is None or self._ewma_interval > self.window_s:
            return 0.0
        if self._last_round_size < 2:
            return 0.0
        return self.window_s

    # -- the collection loop ---------------------------------------

    def _now(self) -> float:
        if self._clock is not None:
            return self._clock()
        return asyncio.get_running_loop().time()

    async def _run(self) -> None:
        while True:
            first = await self._queue.get()
            if first is _STOP:
                return
            batch = [first]
            # The window opens when the first query of the round lands;
            # later arrivals do not extend it (no starvation).
            window = self.effective_window()
            if window <= 0.0 and self.window_s > 0.0:
                self.stats.short_windows += 1
            closes_at = self._now() + window
            # A burst that queued up while the previous round executed
            # coalesces regardless of the window — it costs no waiting.
            while len(batch) < self.max_batch:
                try:
                    item = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if item is _STOP:
                    self._round(batch)
                    return
                batch.append(item)
            while len(batch) < self.max_batch:
                remaining = closes_at - self._now()
                if remaining <= 0:
                    break
                try:
                    item = await asyncio.wait_for(self._queue.get(), remaining)
                except asyncio.TimeoutError:
                    break
                if item is _STOP:
                    self._round(batch)
                    return
                batch.append(item)
            self._round(batch)

    def _round(self, batch: list[PendingQuery]) -> None:
        """Partition one window's worth of queries and dispatch."""
        self.stats.rounds += 1
        self._last_round_size = len(batch)
        now = self._now()
        live: list[PendingQuery] = []
        for p in batch:
            if p.future.done():
                continue  # client gave up (e.g. wait_for timeout) — drop
            if p.deadline is not None and now >= p.deadline:
                self.stats.expired_in_queue += 1
                if _obs.enabled:
                    _obs.inc("repro_serve_deadline_total", 1, stage="queue")
                p.fail(
                    DeadlineError(
                        "deadline expired while queued", stage="queue"
                    )
                )
                continue
            live.append(p)
        if not live:
            return

        groups: dict[Any, list[PendingQuery]] = {}
        singles: list[PendingQuery] = []
        for p in live:
            key = self._group_key(p.spec)
            if key is None:
                singles.append(p)
            else:
                groups.setdefault(key, []).append(p)
        for key, members in groups.items():
            if len(members) < 2:
                singles.extend(members)
                continue
            self.stats.coalesced += len(members)
            self.stats.group_sizes.append(len(members))
            if _obs.enabled:
                _obs.inc("repro_serve_groups_total")
                _obs.observe("repro_serve_group_size", len(members))
            wire = ("group", tuple(p.spec for p in members), key[2])
            self._dispatch(wire, members)
        for p in singles:
            self.stats.singles += 1
            self._dispatch(("single", p.spec), [p])
