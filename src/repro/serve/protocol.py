"""Wire protocol for the resident query service.

Newline-delimited JSON over TCP — one request object per line, one
response object per line, in order. Chosen over HTTP deliberately:
the repo has no web-framework dependency, the protocol is trivially
driveable from tests and ``nc``, and framing by line keeps both ends
at ~30 lines of code.

Request::

    {"op": "query", "query": [0, 1, 2], "kind": "query",
     "k": null, "algorithm": null, "tenant": "default",
     "deadline_ms": 250, "id": "c1-17"}

``op`` may also be ``"ping"`` (liveness), ``"stats"`` (service
counters) or ``"update"`` (maintained engines only: ``inserts`` is an
array of value arrays, ``deletes`` an array of stable record ids).
Responses echo ``id`` and carry ``ok``; errors are typed::

    {"id": "c1-17", "ok": false,
     "error": {"type": "overload", "reason": "queue-full",
               "retry_after_s": 0.12, "message": "..."}}

Error types: ``overload`` (shed — retry after ``retry_after_s``),
``deadline`` (the request's own budget expired at ``stage``),
``query-error`` (execution failed after retries), ``bad-request``
(malformed or failing validation — do not retry).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from repro.errors import DeadlineError, OverloadError, ReproError

__all__ = [
    "ServeRequest",
    "decode_request",
    "encode",
    "error_response",
    "ok_response",
]

_VALID_OPS = ("query", "ping", "stats", "update")
_VALID_KINDS = ("query", "skyband", "subset")


@dataclass(frozen=True)
class ServeRequest:
    """A validated, decoded request line."""

    op: str
    request_id: str
    query: tuple[Any, ...] | None = None
    kind: str = "query"
    k: int | None = None
    algorithm: str | None = None
    attributes: tuple[int, ...] | None = None
    tenant: str = "default"
    deadline_ms: float | None = None
    #: kind='query' only — route through the index-capable approximate
    #: path with this measured-recall floor. Part of the cache identity.
    recall_target: float | None = None
    #: op='update' only — records to insert (list of value arrays) and
    #: stable record ids to delete.
    inserts: tuple[tuple[Any, ...], ...] = ()
    deletes: tuple[int, ...] = ()


class BadRequest(ReproError):
    """Malformed request line; reported as ``bad-request``, never retried."""


def decode_request(line: bytes | str) -> ServeRequest:
    """Parse one wire line into a :class:`ServeRequest`.

    Raises :class:`BadRequest` on anything malformed. Validation here
    is structural only — semantic checks (query arity, label range)
    happen against the dataset in the service, where the schema lives.
    """
    try:
        obj = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise BadRequest(f"request is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise BadRequest("request must be a JSON object")
    op = obj.get("op", "query")
    if op not in _VALID_OPS:
        raise BadRequest(f"unknown op {op!r} (expected one of {_VALID_OPS})")
    request_id = str(obj.get("id", ""))
    if op == "update":
        inserts = obj.get("inserts") or ()
        deletes = obj.get("deletes") or ()
        if not isinstance(inserts, (list, tuple)):
            raise BadRequest("inserts must be an array of value arrays")
        for rec in inserts:
            if not isinstance(rec, (list, tuple)) or not rec:
                raise BadRequest("each insert must be a non-empty array")
        if not isinstance(deletes, (list, tuple)):
            raise BadRequest("deletes must be an array of record ids")
        for rid in deletes:
            if not isinstance(rid, int) or isinstance(rid, bool) or rid < 0:
                raise BadRequest("each delete must be a non-negative record id")
        if not inserts and not deletes:
            raise BadRequest("update needs at least one insert or delete")
        return ServeRequest(
            op="update",
            request_id=request_id,
            inserts=tuple(tuple(rec) for rec in inserts),
            deletes=tuple(deletes),
        )
    if op != "query":
        return ServeRequest(op=op, request_id=request_id)
    query = obj.get("query")
    if not isinstance(query, (list, tuple)) or not query:
        raise BadRequest("query must be a non-empty array")
    kind = obj.get("kind", "query")
    if kind not in _VALID_KINDS:
        raise BadRequest(f"unknown kind {kind!r} (expected one of {_VALID_KINDS})")
    k = obj.get("k")
    if k is not None:
        if not isinstance(k, int) or isinstance(k, bool) or k < 1:
            raise BadRequest("k must be a positive integer")
        if kind != "skyband":
            raise BadRequest("k is only meaningful for kind='skyband'")
    attributes = obj.get("attributes")
    if attributes is not None:
        if not isinstance(attributes, (list, tuple)) or not attributes:
            raise BadRequest("attributes must be a non-empty array")
        attributes = tuple(attributes)
    elif kind == "subset":
        raise BadRequest("kind='subset' needs an attributes array")
    deadline_ms = obj.get("deadline_ms")
    if deadline_ms is not None:
        if not isinstance(deadline_ms, (int, float)) or isinstance(
            deadline_ms, bool
        ) or deadline_ms <= 0:
            raise BadRequest("deadline_ms must be a positive number")
        deadline_ms = float(deadline_ms)
    algorithm = obj.get("algorithm")
    if algorithm is not None and not isinstance(algorithm, str):
        raise BadRequest("algorithm must be a string")
    recall_target = obj.get("recall_target")
    if recall_target is not None:
        if (
            not isinstance(recall_target, (int, float))
            or isinstance(recall_target, bool)
            or not 0.0 <= recall_target <= 1.0
        ):
            raise BadRequest("recall_target must be a number in [0, 1]")
        if kind != "query":
            raise BadRequest("recall_target is only meaningful for kind='query'")
        recall_target = float(recall_target)
    return ServeRequest(
        op="query",
        request_id=request_id,
        query=tuple(query),
        kind=kind,
        k=k,
        algorithm=algorithm,
        attributes=attributes,
        tenant=str(obj.get("tenant", "default")),
        deadline_ms=deadline_ms,
        recall_target=recall_target,
    )


def encode(obj: dict[str, Any]) -> bytes:
    """Serialize one response object to a wire line."""
    return json.dumps(obj, separators=(",", ":")).encode() + b"\n"


def ok_response(request_id: str, payload: dict[str, Any]) -> dict[str, Any]:
    out = {"id": request_id, "ok": True}
    out.update(payload)
    return out


def error_response(request_id: str, exc: BaseException) -> dict[str, Any]:
    """Map an exception to its typed wire error."""
    err: dict[str, Any]
    if isinstance(exc, OverloadError):
        err = {
            "type": "overload",
            "reason": exc.reason,
            "retry_after_s": exc.retry_after_s,
        }
    elif isinstance(exc, DeadlineError):
        err = {"type": "deadline", "stage": exc.stage}
    elif isinstance(exc, BadRequest):
        err = {"type": "bad-request"}
    else:
        # ExecutionFailed wraps a structured QueryError — surface the
        # original failure type, not the wrapper's.
        inner = getattr(exc, "query_error", None)
        kind = inner.error_type if inner is not None else type(exc).__name__
        err = {"type": "query-error", "kind": kind}
        if inner is not None:
            err["attempts"] = inner.attempts
    err["message"] = str(exc)
    return {"id": request_id, "ok": False, "error": err}
