"""Run algorithms over query batches and aggregate measurements."""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.core.base import ReverseSkylineAlgorithm
from repro.core.registry import make_algorithm
from repro.data.dataset import Dataset
from repro.errors import ExperimentError
from repro.experiments.costmodel import DEFAULT_COST_MODEL, CostModel

__all__ = ["Measurement", "run_algorithm", "compare_algorithms"]


@dataclass
class Measurement:
    """Per-algorithm averages over a query batch."""

    algorithm: str
    dataset: str
    num_queries: int
    params: dict = field(default_factory=dict)
    # Averages per query:
    checks: float = 0.0
    checks_phase1: float = 0.0
    checks_phase2: float = 0.0
    seq_io: float = 0.0
    rand_io: float = 0.0
    wall_ms: float = 0.0
    computation_ms: float = 0.0
    io_ms: float = 0.0
    response_ms: float = 0.0
    result_size: float = 0.0
    intermediate_size: float = 0.0
    db_passes: float = 0.0
    phase2_batches: float = 0.0

    def as_row(self, columns: Sequence[str]) -> list:
        return [getattr(self, c) for c in columns]


def run_algorithm(
    algorithm: ReverseSkylineAlgorithm,
    queries: Sequence[tuple],
    *,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    params: dict | None = None,
) -> Measurement:
    """Run one prepared algorithm over all queries, averaging costs."""
    if not queries:
        raise ExperimentError("need at least one query")
    m = Measurement(
        algorithm=algorithm.name,
        dataset=algorithm.dataset.name,
        num_queries=len(queries),
        params=dict(params or {}),
    )
    algorithm.prepare()
    for q in queries:
        result = algorithm.run(q)
        s = result.stats
        m.checks += s.checks
        m.checks_phase1 += s.checks_phase1
        m.checks_phase2 += s.checks_phase2
        m.seq_io += s.io.sequential
        m.rand_io += s.io.random
        m.wall_ms += s.wall_time_s * 1000.0
        m.computation_ms += cost_model.computation_ms(s)
        m.io_ms += cost_model.io_ms(s)
        m.response_ms += cost_model.response_ms(s)
        m.result_size += s.result_count
        m.intermediate_size += s.intermediate_count
        m.db_passes += s.db_passes
        m.phase2_batches += s.phase2_batches
    n = len(queries)
    for attr in (
        "checks",
        "checks_phase1",
        "checks_phase2",
        "seq_io",
        "rand_io",
        "wall_ms",
        "computation_ms",
        "io_ms",
        "response_ms",
        "result_size",
        "intermediate_size",
        "db_passes",
        "phase2_batches",
    ):
        setattr(m, attr, getattr(m, attr) / n)
    return m


def compare_algorithms(
    dataset: Dataset,
    queries: Sequence[tuple],
    algorithm_names: Sequence[str] = ("BRS", "SRS", "TRS"),
    *,
    memory_fraction: float = 0.10,
    page_bytes: int = 512,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    algorithm_kwargs: dict | None = None,
    params: dict | None = None,
) -> list[Measurement]:
    """Build each named algorithm over ``dataset`` and measure it on the
    same query batch. ``page_bytes`` defaults to 512 so that scaled-down
    datasets still span hundreds of pages, preserving the page-count
    structure of the paper's 32 KiB-page, million-row setups."""
    per_algo = algorithm_kwargs or {}
    out = []
    for name in algorithm_names:
        kwargs = dict(memory_fraction=memory_fraction, page_bytes=page_bytes)
        kwargs.update(per_algo.get(name, {}))
        algo = make_algorithm(name, dataset, **kwargs)
        out.append(
            run_algorithm(algo, queries, cost_model=cost_model, params=params)
        )
    return out
