"""Aggregate benchmark artifacts into one markdown report.

Every benchmark module writes its rendered series to
``benchmarks/results/<name>.txt``. :func:`generate_report` stitches those
files into a single markdown document (the machine-generated companion to
the hand-written EXPERIMENTS.md), so a full reproduction run can be
archived or diffed as one artifact::

    pytest benchmarks/ --benchmark-only
    python -c "from repro.experiments.report import write_report; \\
               write_report('benchmarks/results', 'REPORT.md')"
"""

from __future__ import annotations

import pathlib
import time

from repro.errors import ExperimentError

__all__ = ["generate_report", "write_report"]

# Render order: paper artifacts first, extensions last.
_SECTION_ORDER = [
    ("Tables", "table"),
    ("Figures", "fig"),
    ("Sections 5.5-6", "sec"),
    ("Ablation", "ablation"),
    ("Extensions", "ext"),
]


def generate_report(results_dir) -> str:
    """Build the markdown report from a results directory."""
    path = pathlib.Path(results_dir)
    if not path.is_dir():
        raise ExperimentError(f"{path} is not a directory")
    artifacts = sorted(path.glob("*.txt"))
    if not artifacts:
        raise ExperimentError(
            f"{path} contains no benchmark artifacts; run "
            "`pytest benchmarks/ --benchmark-only` first"
        )
    lines = [
        "# Reproduction report",
        "",
        f"Generated {time.strftime('%Y-%m-%d %H:%M:%S')} from "
        f"{len(artifacts)} benchmark artifacts in `{path}`.",
        "",
        "Regenerate with `pytest benchmarks/ --benchmark-only`. Paper-vs-"
        "measured commentary lives in EXPERIMENTS.md; this file records the "
        "raw series of the latest run.",
        "",
    ]
    consumed: set[pathlib.Path] = set()
    for title, prefix in _SECTION_ORDER:
        group = [a for a in artifacts if a.stem.startswith(prefix)]
        if not group:
            continue
        lines.append(f"## {title}")
        lines.append("")
        for artifact in group:
            consumed.add(artifact)
            content = artifact.read_text().strip()
            lines.append(f"### {artifact.stem}")
            lines.append("")
            lines.append("```")
            lines.append(content)
            lines.append("```")
            lines.append("")
    leftovers = [a for a in artifacts if a not in consumed]
    if leftovers:
        lines.append("## Other artifacts")
        lines.append("")
        for artifact in leftovers:
            lines.append(f"### {artifact.stem}")
            lines.append("")
            lines.append("```")
            lines.append(artifact.read_text().strip())
            lines.append("```")
            lines.append("")
    return "\n".join(lines)


def write_report(results_dir, output_path) -> pathlib.Path:
    """Generate and write the report; returns the output path."""
    out = pathlib.Path(output_path)
    out.write_text(generate_report(results_dir))
    return out
