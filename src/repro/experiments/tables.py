"""Plain-text table rendering for experiment output.

Benchmarks print the same rows/series the paper plots; these helpers keep
that output aligned and diff-friendly.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_table", "format_measurements"]


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render an aligned text table with a header rule."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(parts):
        return "  ".join(p.rjust(w) for p, w in zip(parts, widths))
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def format_measurements(
    measurements,
    columns: Sequence[tuple[str, str]] = (
        ("algorithm", "algo"),
        ("computation_ms", "comp_ms"),
        ("seq_io", "seq_io"),
        ("rand_io", "rand_io"),
        ("response_ms", "resp_ms"),
        ("wall_ms", "py_wall_ms"),
        ("checks", "checks"),
        ("result_size", "|RS|"),
        ("intermediate_size", "|R|"),
    ),
    param_keys: Sequence[str] = (),
) -> str:
    """Render a list of :class:`~repro.experiments.runner.Measurement`."""
    headers = list(param_keys) + [label for _, label in columns]
    rows = []
    for m in measurements:
        row = [m.params.get(k, "") for k in param_keys]
        row += [getattr(m, attr) for attr, _ in columns]
        rows.append(row)
    return format_table(headers, rows)
