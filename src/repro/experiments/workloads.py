"""Experiment workloads: datasets + query batches, with size scaling.

The paper's experiments run on 0.1M-1.2M-row datasets; pure Python costs
roughly two orders of magnitude more per comparison than the authors'
native implementation, so the default workloads are scaled down while
preserving the *density regimes* (the quantity the paper sweeps). Set the
``REPRO_SCALE`` environment variable (a float multiplier, default 1.0) to
grow every workload proportionally — ``REPRO_SCALE=50`` approximates the
paper's full sizes if you have the hours.

Scaling note: density ``n / v^m`` governs pruning behaviour. The defaults
keep ``m`` at the paper's values and shrink ``n`` and ``v`` together so the
swept densities land in the paper's ranges (documented per sweep in
EXPERIMENTS.md).
"""

from __future__ import annotations

import os

from repro.data.dataset import Dataset
from repro.data.queries import query_batch
from repro.data.realistic import census_income_like, forest_cover_like
from repro.data.synthetic import synthetic_dataset

__all__ = [
    "scale_factor",
    "scaled",
    "ci_dataset",
    "fc_dataset",
    "standard_synthetic",
    "queries_for",
]


def scale_factor() -> float:
    """The global workload multiplier from ``REPRO_SCALE`` (default 1)."""
    try:
        value = float(os.environ.get("REPRO_SCALE", "1"))
    except ValueError:
        return 1.0
    return max(value, 0.01)


def scaled(n: int) -> int:
    """Apply the global multiplier to a row count."""
    return max(16, int(n * scale_factor()))


def ci_dataset() -> Dataset:
    """The Census-Income surrogate (dense, the paper's 6.9%; ~3k rows at
    scale 1, the paper's full 199,523 rows at REPRO_SCALE≈67)."""
    return census_income_like(scale=min(1.0, 0.015 * scale_factor()))


def fc_dataset() -> Dataset:
    """The ForestCover surrogate (very sparse, the paper's ~0.04%; ~5k
    rows at scale 1)."""
    return forest_cover_like(scale=min(1.0, 0.0085 * scale_factor()))


def standard_synthetic(
    n: int = 8000, values: int = 24, attrs: int = 5, seed: int = 7
) -> Dataset:
    """The scaled analogue of the paper's standard synthetic configuration
    (1M rows x 5 attributes x 50 values, normal value distribution). The
    default (8k x 5 x 24) sits at density ~1e-3, inside the paper's swept
    density range [3e-4, 3e-3]."""
    return synthetic_dataset(scaled(n), [values] * attrs, seed=seed)


def queries_for(dataset: Dataset, count: int = 3, seed: int = 17) -> list[tuple]:
    """A reproducible perturbed-query batch (queries near the data, the
    regime where reverse skylines are non-trivial; Section 5.7 notes
    result sets of ~10-100)."""
    return query_batch(dataset, count, seed=seed, perturbed=True)
