"""Regime analysis: where does an algorithm reach the two-pass regime?

Section 5.3's IO discussion has an implicit crossover: below some memory
fraction, the intermediate result no longer fits one second-phase batch
and extra database scans appear (the BRS line's knee in Figures 5/6).
:func:`two_pass_threshold` locates that knee empirically — the smallest
memory fraction at which an algorithm answers in exactly two passes — so
capacity planning ("how much memory do I need for this dataset?") has a
direct answer.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.registry import make_algorithm
from repro.data.dataset import Dataset
from repro.data.queries import query_batch
from repro.errors import ExperimentError

__all__ = ["CrossoverPoint", "two_pass_threshold"]


@dataclass(frozen=True)
class CrossoverPoint:
    """The located regime boundary for one algorithm."""

    algorithm: str
    threshold_fraction: float | None  # None: never reached within the grid
    passes_by_fraction: dict[float, float]

    def reached(self) -> bool:
        return self.threshold_fraction is not None


def two_pass_threshold(
    dataset: Dataset,
    algorithm: str,
    *,
    fractions: Sequence[float] = (0.02, 0.03, 0.04, 0.06, 0.08, 0.12, 0.16, 0.20),
    queries: Sequence[tuple] | None = None,
    page_bytes: int = 512,
) -> CrossoverPoint:
    """Find the smallest memory fraction (on the given grid) at which
    ``algorithm`` completes every query in two database passes.

    Returns the full passes-per-fraction profile so the knee is visible
    even when the threshold lies outside the grid.
    """
    if not fractions:
        raise ExperimentError("need at least one memory fraction")
    if queries is None:
        queries = query_batch(dataset, 2, seed=17)
    ordered = sorted(fractions)
    profile: dict[float, float] = {}
    threshold: float | None = None
    for fraction in ordered:
        algo = make_algorithm(
            algorithm, dataset, memory_fraction=fraction, page_bytes=page_bytes
        )
        passes = [algo.run(q).stats.db_passes for q in queries]
        profile[fraction] = sum(passes) / len(passes)
        if threshold is None and max(passes) == 2:
            threshold = fraction
    return CrossoverPoint(
        algorithm=algorithm, threshold_fraction=threshold, passes_by_fraction=profile
    )
