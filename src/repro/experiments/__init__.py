"""Experiment harness — workloads, cost model, sweeps, table rendering.

Public surface:

- :class:`CostModel` / :data:`DEFAULT_COST_MODEL`
- :class:`Measurement` / :func:`run_algorithm` / :func:`compare_algorithms`
- :func:`memory_sweep` / :func:`size_sweep` / :func:`values_sweep` /
  :func:`attrs_sweep` / :func:`subset_sweep` / :func:`ablation_sweep`
- :func:`ci_dataset` / :func:`fc_dataset` / :func:`standard_synthetic` /
  :func:`queries_for` — scaled workloads (``REPRO_SCALE`` grows them)
- :func:`format_table` / :func:`format_measurements`
"""

from repro.experiments.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.experiments.crossover import CrossoverPoint, two_pass_threshold
from repro.experiments.report import generate_report, write_report
from repro.experiments.runner import Measurement, compare_algorithms, run_algorithm
from repro.experiments.sweeps import (
    ablation_sweep,
    attrs_sweep,
    memory_sweep,
    size_sweep,
    subset_sweep,
    values_sweep,
)
from repro.experiments.tables import format_measurements, format_table
from repro.experiments.workloads import (
    ci_dataset,
    fc_dataset,
    queries_for,
    scale_factor,
    scaled,
    standard_synthetic,
)

__all__ = [
    "CostModel",
    "CrossoverPoint",
    "DEFAULT_COST_MODEL",
    "Measurement",
    "generate_report",
    "two_pass_threshold",
    "write_report",
    "ablation_sweep",
    "attrs_sweep",
    "ci_dataset",
    "compare_algorithms",
    "fc_dataset",
    "format_measurements",
    "format_table",
    "memory_sweep",
    "queries_for",
    "run_algorithm",
    "scale_factor",
    "scaled",
    "size_sweep",
    "standard_synthetic",
    "subset_sweep",
    "values_sweep",
]
