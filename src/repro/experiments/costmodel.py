"""Cost model translating raw counters into the paper's reported metrics.

The paper reports three quantities per run (Section 5.1):

- **Computational cost (ms)** — CPU time of the pruning work. Our
  algorithms run in pure Python, whose per-operation constants differ
  wildly from the authors' C-era implementation *and* differ between a
  flat inner loop (SRS) and a pointer-chasing tree traversal (TRS). The
  portable measure of computational work is the number of attribute-level
  dissimilarity checks (the paper's own currency in Section 4.3/Table 3),
  so the modeled computation time is ``checks * check_cost_ms``,
  calibrated to a C-like 50M checks/second by default. Raw Python wall
  time is also kept on every measurement for transparency.
- **IO cost (page IOs)** — counted exactly, sequential and random
  separately, by the disk simulator.
- **Response time (ms)** — computation + modeled IO latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.base import CostStats
from repro.storage.iostats import IoCostModel

__all__ = ["CostModel", "DEFAULT_COST_MODEL"]


@dataclass(frozen=True)
class CostModel:
    """Knobs for converting counters to milliseconds."""

    #: Cost of one attribute-level dissimilarity check (ms). The default
    #: models ~50M checks/s, a plausible rate for the paper's 3.4 GHz
    #: Pentium running optimised native code.
    check_cost_ms: float = 2e-5
    io: IoCostModel = field(default_factory=IoCostModel)

    def computation_ms(self, stats: CostStats) -> float:
        return stats.checks * self.check_cost_ms

    def io_ms(self, stats: CostStats) -> float:
        return self.io.cost_ms(stats.io)

    def response_ms(self, stats: CostStats) -> float:
        return self.computation_ms(stats) + self.io_ms(stats)


DEFAULT_COST_MODEL = CostModel()
