"""Parameter sweeps — one per figure family in the paper's Section 5.

Each sweep returns a flat list of
:class:`~repro.experiments.runner.Measurement`, one per (parameter value,
algorithm) pair, with the swept parameter recorded in ``params``. The
benchmark modules under ``benchmarks/`` print these as the series the
corresponding figures plot.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.srs import SRS
from repro.core.tiled import TSRS, TTRS
from repro.core.trs import TRS
from repro.data.dataset import Dataset
from repro.data.synthetic import synthetic_dataset
from repro.errors import ExperimentError
from repro.experiments.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.experiments.runner import Measurement, compare_algorithms, run_algorithm
from repro.experiments.workloads import queries_for, scaled
from repro.sorting.keys import multiattribute_key, schema_order
from repro.tiling.tiles import TileGrid

__all__ = [
    "memory_sweep",
    "size_sweep",
    "values_sweep",
    "attrs_sweep",
    "subset_sweep",
    "ablation_sweep",
]

_DEFAULT_ALGOS = ("BRS", "SRS", "TRS")


def memory_sweep(
    dataset: Dataset,
    fractions: Sequence[float] = (0.04, 0.08, 0.12, 0.16, 0.20),
    algorithms: Sequence[str] = _DEFAULT_ALGOS,
    *,
    queries: Sequence[tuple] | None = None,
    page_bytes: int = 512,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> list[Measurement]:
    """Figures 3-10: vary available memory as a fraction of dataset size."""
    if queries is None:
        queries = queries_for(dataset)
    out: list[Measurement] = []
    for fraction in fractions:
        out.extend(
            compare_algorithms(
                dataset,
                queries,
                algorithms,
                memory_fraction=fraction,
                page_bytes=page_bytes,
                cost_model=cost_model,
                params={"memory": fraction},
            )
        )
    return out


def size_sweep(
    sizes: Sequence[int] = (2000, 4000, 8000, 12000, 16000, 24000),
    *,
    values: int = 24,
    attrs: int = 5,
    algorithms: Sequence[str] = _DEFAULT_ALGOS,
    memory_fraction: float = 0.10,
    page_bytes: int = 512,
    queries_per_point: int = 2,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> list[Measurement]:
    """Figures 11-13: vary dataset size (and with it the density), the
    scaled analogue of the paper's 0.1M-1.2M sweep at 5 attrs x 50 values.
    With ``values=24`` the swept densities (2.5e-4 .. 3e-3) bracket the
    paper's 3e-4 .. 3e-3."""
    out: list[Measurement] = []
    for n in sizes:
        ds = synthetic_dataset(scaled(n), [values] * attrs, seed=7)
        qs = queries_for(ds, queries_per_point)
        out.extend(
            compare_algorithms(
                ds,
                qs,
                algorithms,
                memory_fraction=memory_fraction,
                page_bytes=page_bytes,
                cost_model=cost_model,
                params={"n": len(ds), "density": ds.density()},
            )
        )
    return out


def values_sweep(
    value_counts: Sequence[int] = (20, 22, 24, 26, 28, 32),
    *,
    n: int = 8000,
    attrs: int = 5,
    algorithms: Sequence[str] = _DEFAULT_ALGOS,
    memory_fraction: float = 0.10,
    page_bytes: int = 512,
    queries_per_point: int = 2,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> list[Measurement]:
    """Figures 14-16: vary the number of values per attribute at fixed
    dataset size (the paper: 45..70 values at 1M rows; scaled: 20..32 at
    8k rows, sweeping density 2.4e-4 .. 2.5e-3)."""
    out: list[Measurement] = []
    for v in value_counts:
        ds = synthetic_dataset(scaled(n), [v] * attrs, seed=7)
        qs = queries_for(ds, queries_per_point)
        out.extend(
            compare_algorithms(
                ds,
                qs,
                algorithms,
                memory_fraction=memory_fraction,
                page_bytes=page_bytes,
                cost_model=cost_model,
                params={"values": v, "density": ds.density()},
            )
        )
    return out


def attrs_sweep(
    attr_counts: Sequence[int] = (3, 4, 5, 6, 7),
    *,
    n: int = 8000,
    values: int = 20,
    algorithms: Sequence[str] = _DEFAULT_ALGOS,
    memory_fraction: float = 0.10,
    page_bytes: int = 512,
    queries_per_point: int = 2,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> list[Measurement]:
    """Figures 17-18: vary the number of attributes (the paper: 3..7 at 1M
    rows x 50 values, density 8 down to 1.3e-6; scaled: 3..7 at 8k x 20)."""
    out: list[Measurement] = []
    for m in attr_counts:
        ds = synthetic_dataset(scaled(n), [values] * m, seed=7)
        qs = queries_for(ds, queries_per_point)
        out.extend(
            compare_algorithms(
                ds,
                qs,
                algorithms,
                memory_fraction=memory_fraction,
                page_bytes=page_bytes,
                cost_model=cost_model,
                params={"attrs": m, "density": ds.density()},
            )
        )
    return out


def subset_sweep(
    dataset: Dataset,
    subsets: Sequence[Sequence[int]],
    *,
    tiles_per_dim: int = 4,
    memory_fraction: float = 0.10,
    page_bytes: int = 512,
    queries_per_point: int = 2,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> list[Measurement]:
    """Figure 19: reverse-skyline queries over attribute *subsets*.

    The physical layouts are built once from the **full** attribute set —
    a multi-attribute sort for SRS/TRS and a Z-ordered tiling for
    T-SRS/T-TRS — because re-sorting at query time is infeasible
    (Section 5.6). Each query then sees only the chosen attributes: the
    dataset, the dissimilarity space, and the algorithm's in-memory
    structures are projected, but the on-disk order stays fixed.
    """
    if not subsets:
        raise ExperimentError("need at least one attribute subset")
    full_order = schema_order(dataset.schema)
    sort_key = multiattribute_key(full_order)
    sorted_entries = sorted(enumerate(dataset.records), key=lambda e: sort_key(e[1]))
    grid = TileGrid.for_dataset(dataset, tiles_per_dim)
    tiled_entries = sorted(
        enumerate(dataset.records),
        key=lambda e: (grid.z_index(e[1]), sort_key(e[1])),
    )

    out: list[Measurement] = []
    for subset in subsets:
        subset = list(subset)
        projected = dataset.project(subset)
        queries = queries_for(projected, queries_per_point)
        label = "{" + ",".join(dataset.schema[i].name for i in subset) + "}"

        def project_entries(entries):
            return [(rid, tuple(vals[i] for i in subset)) for rid, vals in entries]

        variants = [
            (SRS(projected, memory_fraction=memory_fraction, page_bytes=page_bytes),
             project_entries(sorted_entries)),
            (TSRS(projected, memory_fraction=memory_fraction, page_bytes=page_bytes),
             project_entries(tiled_entries)),
            (TRS(projected, memory_fraction=memory_fraction, page_bytes=page_bytes),
             project_entries(sorted_entries)),
            (TTRS(projected, memory_fraction=memory_fraction, page_bytes=page_bytes),
             project_entries(tiled_entries)),
        ]
        for algo, entries in variants:
            algo.use_layout(entries)
            out.append(
                run_algorithm(
                    algo,
                    queries,
                    cost_model=cost_model,
                    params={"subset": label},
                )
            )
    return out


def ablation_sweep(
    dataset: Dataset,
    *,
    memory_fraction: float = 0.10,
    page_bytes: int = 512,
    queries: Sequence[tuple] | None = None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> list[Measurement]:
    """Isolate each TRS design choice (DESIGN.md ablation targets):
    full TRS vs TRS without the pre-sort vs TRS without promising-first
    child ordering, alongside BRS and SRS."""
    if queries is None:
        queries = queries_for(dataset)
    rows: list[Measurement] = []
    rows.extend(
        compare_algorithms(
            dataset,
            queries,
            ("BRS", "SRS", "TRS"),
            memory_fraction=memory_fraction,
            page_bytes=page_bytes,
            cost_model=cost_model,
            params={"variant": "baseline"},
        )
    )
    no_sort = TRS(
        dataset, presort=False, memory_fraction=memory_fraction, page_bytes=page_bytes
    )
    rows.append(
        run_algorithm(
            no_sort, queries, cost_model=cost_model, params={"variant": "TRS/no-sort"}
        )
    )
    no_order = TRS(
        dataset,
        order_children=False,
        memory_fraction=memory_fraction,
        page_bytes=page_bytes,
    )
    rows.append(
        run_algorithm(
            no_order,
            queries,
            cost_model=cost_model,
            params={"variant": "TRS/no-child-order"},
        )
    )
    return rows
