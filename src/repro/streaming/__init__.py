"""Streaming reverse-skyline maintenance over sliding windows.

Public surface: :class:`StreamingReverseSkyline`.
"""

from repro.streaming.window import StreamingReverseSkyline

__all__ = ["StreamingReverseSkyline"]
