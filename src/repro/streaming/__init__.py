"""Streaming reverse-skyline maintenance.

Public surface: :class:`StreamingReverseSkyline` (one query, sliding
window) and :class:`ReverseSkylineMonitor` (many standing queries,
membership deltas per update batch).
"""

from repro.streaming.monitor import (
    BatchResult,
    MembershipDelta,
    ReverseSkylineMonitor,
)
from repro.streaming.window import StreamingReverseSkyline

__all__ = [
    "BatchResult",
    "MembershipDelta",
    "ReverseSkylineMonitor",
    "StreamingReverseSkyline",
]
