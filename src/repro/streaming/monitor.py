"""Continuous reverse-skyline monitoring for standing queries.

:class:`~repro.streaming.window.StreamingReverseSkyline` maintains one
query over a sliding window. This module scales the other axis: many
**standing queries** over one mutating object set, with each update
batch reported as per-query **membership deltas** — which objects
*entered* and which *left* each query's reverse skyline — instead of
recomputed result sets. Subscribers (alerting, materialised influence
scores, the serve layer) consume the events; nobody re-reads full
results per batch.

Two ideas keep a batch cheap:

- **Shared state.** All queries share one AL-Tree over the live
  objects plus per-query pruner counts ``count_q[x] = |{y != x :
  y ≻_x q}|`` (``x ∈ RS(q)`` iff the count is zero). An update touches
  the tree once; per query it costs at most two traversals.
- **Influence filtering.** Before traversing for a query, the update
  record is tested against the query's *influence region* — computed
  per attribute from the dissimilarity tables, over the whole value
  domain. If no conceivable witness ``x`` satisfies ``b ≻_x q`` on
  every attribute, record ``b`` cannot change any pruner count under
  ``q`` and the enumerating traversal is skipped; if no conceivable
  object can sit strictly closer to ``b`` than ``q`` does on any
  attribute, nothing can prune ``b`` and its own count is zero without
  the exhaustive traversal. The tests are sound (a skip is never
  wrong — the domain bounds all live objects) and cached per
  ``(attribute, value, query value)`` triple, so steady-state filtering
  is a few dict lookups per (update, query) pair.

Ids are assigned monotonically from the seed size, exactly like
:class:`repro.maint.MaintStore` stable ids — seed a monitor with
:meth:`ReverseSkylineMonitor.from_dataset` on the store's base and feed
it the same batches, and the event ids match the engine's record ids.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.altree.tree import ALTree
from repro.data.schema import Schema
from repro.dissim.space import DissimilaritySpace
from repro.errors import AlgorithmError, SchemaError
from repro.sorting.keys import ascending_cardinality_order

__all__ = ["MembershipDelta", "BatchResult", "ReverseSkylineMonitor"]


@dataclass(frozen=True)
class MembershipDelta:
    """RS membership change of one standing query for one batch."""

    query_id: str
    #: Object ids that joined RS(q) this batch, ascending.
    entered: tuple[int, ...]
    #: Object ids that dropped out of RS(q) this batch, ascending.
    left: tuple[int, ...]
    #: The monitor epoch the batch advanced to.
    epoch: int


@dataclass(frozen=True)
class BatchResult:
    """What one :meth:`ReverseSkylineMonitor.apply` batch did."""

    epoch: int
    #: Ids assigned to the batch's inserts, in input order.
    inserted: tuple[int, ...]
    #: One delta per standing query whose membership changed.
    deltas: tuple[MembershipDelta, ...]
    #: (update, query) pairs that ran a pruning traversal...
    evaluated: int
    #: ...and pairs the influence filter proved unnecessary.
    filtered: int


class _Standing:
    __slots__ = ("query", "counts")

    def __init__(self, query: tuple) -> None:
        self.query = query
        self.counts: dict[int, int] = {}


class ReverseSkylineMonitor:
    """Membership deltas for many standing queries under update batches.

    Parameters
    ----------
    schema, space:
        Object schema and per-attribute dissimilarities (categorical
        only — the traversals and the influence filter need finite
        lookup tables).
    initial:
        Seed objects; they get ids ``0..n-1``.
    """

    def __init__(
        self,
        schema: Schema,
        space: DissimilaritySpace,
        *,
        initial: Iterable[Sequence] = (),
    ) -> None:
        if not space.is_fully_categorical():
            raise AlgorithmError(
                "ReverseSkylineMonitor requires categorical attributes"
            )
        if space.num_attributes != schema.num_attributes:
            raise SchemaError("schema and dissimilarity space arity mismatch")
        self.schema = schema
        self.space = space
        self._tables = space.tables()
        self._order = ascending_cardinality_order(schema)
        self._tree = ALTree(self._order)
        self._values: dict[int, tuple] = {}
        self._next_id = 0
        self._queries: dict[str, _Standing] = {}
        self.epoch = 0
        #: Cumulative influence-filter outcomes, per (update, query) pair.
        self.evaluated = 0
        self.filtered = 0
        #: (attr, update value, query value) -> (noworse_exists, closer_exists)
        self._prune_cap: dict[tuple[int, int, int], tuple[bool, bool]] = {}
        #: (attr, update value, query value) -> strictly-closer value exists
        self._vuln_cap: dict[tuple[int, int, int], bool] = {}
        for values in initial:
            record = tuple(values)
            schema.validate_record(record)
            self._tree.insert(self._next_id, record)
            self._values[self._next_id] = record
            self._next_id += 1

    @classmethod
    def from_dataset(cls, dataset) -> "ReverseSkylineMonitor":
        """Monitor seeded with a dataset's records; object ids equal the
        dataset's record ids (and :class:`repro.maint.MaintStore` stable
        ids, when both consume the same update batches)."""
        return cls(dataset.schema, dataset.space, initial=dataset.records)

    # -- introspection -------------------------------------------------------
    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, object_id: int) -> bool:
        return object_id in self._values

    def members(self, query_id: str) -> tuple[int, ...]:
        """Current RS members of one standing query, ascending."""
        st = self._standing(query_id)
        return tuple(sorted(o for o, c in st.counts.items() if c == 0))

    def queries(self) -> tuple[str, ...]:
        return tuple(sorted(self._queries))

    def stats(self) -> dict:
        return {
            "epoch": self.epoch,
            "objects": len(self._values),
            "standing_queries": len(self._queries),
            "evaluated": self.evaluated,
            "filtered": self.filtered,
        }

    def _standing(self, query_id: str) -> _Standing:
        try:
            return self._queries[query_id]
        except KeyError:
            raise AlgorithmError(
                f"no standing query registered as {query_id!r}"
            ) from None

    # -- standing-query lifecycle --------------------------------------------
    def register(self, query_id: str, query: Sequence) -> tuple[int, ...]:
        """Register a standing query; returns its current RS members.

        Registration pays one exhaustive traversal per live object to
        seed the pruner counts; every later batch is incremental.
        """
        if query_id in self._queries:
            raise AlgorithmError(f"standing query {query_id!r} already registered")
        q = tuple(query)
        self.schema.validate_record(q)
        st = _Standing(q)
        for oid, values in self._values.items():
            if self._can_be_pruned(values, q):
                st.counts[oid] = self._count_pruners(oid, values, q)
            else:
                st.counts[oid] = 0
        self._queries[query_id] = st
        return self.members(query_id)

    def unregister(self, query_id: str) -> None:
        self._standing(query_id)
        del self._queries[query_id]

    # -- influence filter ----------------------------------------------------
    def _prune_caps(self, i: int, bval: int, qval: int) -> tuple[bool, bool]:
        """Over the whole domain of attribute ``i``: does any witness
        value sit no farther / strictly closer to ``bval`` than to
        ``qval``?"""
        key = (i, bval, qval)
        cached = self._prune_cap.get(key)
        if cached is None:
            table = self._tables[i]
            noworse = closer = False
            for row in table:
                if row[bval] <= row[qval]:
                    noworse = True
                    if row[bval] < row[qval]:
                        closer = True
                        break
            cached = (noworse, closer)
            self._prune_cap[key] = cached
        return cached

    def _can_influence(self, values: tuple, q: tuple) -> bool:
        """Can ``values`` prune *any* conceivable witness under ``q``?

        ``b ≻_x q`` needs ``d(x_i, b_i) <= d(x_i, q_i)`` on every
        attribute with one strict — and since witness attributes range
        independently over the product domain, a per-attribute check is
        exact over the domain (conservative over the live set). False
        means no pruner count can change, so the traversal is skipped.
        """
        closer_any = False
        for i, (bval, qval) in enumerate(zip(values, q)):
            noworse, closer = self._prune_caps(i, bval, qval)
            if not noworse:
                return False
            closer_any = closer_any or closer
        return closer_any

    def _can_be_pruned(self, values: tuple, q: tuple) -> bool:
        """Can *anything* prune ``values`` under ``q``? ``y ≻_b q``
        needs some attribute where ``y`` can sit strictly closer to
        ``b`` than ``q`` does (the no-farther half is always satisfiable
        by ``y_i = q_i``). False means the object's pruner count is zero
        by construction — no exhaustive traversal needed."""
        for i, (bval, qval) in enumerate(zip(values, q)):
            key = (i, bval, qval)
            cached = self._vuln_cap.get(key)
            if cached is None:
                row = self._tables[i][bval]
                dq = row[qval]
                cached = any(d < dq for d in row)
                self._vuln_cap[key] = cached
            if cached:
                return True
        return False

    # -- traversals ----------------------------------------------------------
    def _pruned_by(self, e_id: int, e: tuple, q: tuple) -> list[int]:
        """Live object ids that ``e`` prunes under ``q`` (``e ≻_x q``),
        excluding ``e`` itself — an enumerating Algorithm 5."""
        order = self._order
        tables = self._tables
        pruned: list[int] = []
        stack = [(self._tree.root, False)]
        while stack:
            node, found_closer = stack.pop()
            if node.entries:
                if found_closer:
                    pruned.extend(rid for rid, _ in node.entries if rid != e_id)
                continue
            for child in node.children.values():
                i = order[child.position]
                row = tables[i][child.key]
                d_pe = row[e[i]]
                d_pq = row[q[i]]
                if d_pe <= d_pq:
                    stack.append((child, found_closer or d_pe < d_pq))
        return pruned

    def _count_pruners(self, c_id: int, c: tuple, q: tuple) -> int:
        """How many live objects dominate ``q`` with respect to ``c``,
        excluding ``c`` itself — an exhaustive Algorithm 4."""
        order = self._order
        tables = self._tables
        qd = [tables[i][c[i]][q[i]] for i in range(len(c))]
        total = 0
        stack = [(self._tree.root, False)]
        while stack:
            node, found_closer = stack.pop()
            if node.entries:
                if found_closer:
                    total += sum(1 for rid, _ in node.entries if rid != c_id)
                continue
            for child in node.children.values():
                i = order[child.position]
                d_cp = tables[i][c[i]][child.key]
                if d_cp <= qd[i]:
                    stack.append((child, found_closer or d_cp < qd[i]))
        return total

    # -- update batches ------------------------------------------------------
    def apply(
        self,
        inserts: Iterable[Sequence] = (),
        deletes: Iterable[int] = (),
    ) -> BatchResult:
        """Absorb one batch (deletes first, then inserts) and report the
        membership deltas of every standing query it changed.

        A bad batch (unknown/duplicate delete id, invalid record) raises
        :class:`~repro.errors.AlgorithmError` before any state mutates.
        """
        ins = [tuple(v) for v in inserts]
        dels = [int(d) for d in deletes]
        for values in ins:
            self.schema.validate_record(values)
        for oid in dels:
            if oid not in self._values:
                raise AlgorithmError(f"delete of unknown object id {oid}")
        if len(set(dels)) != len(dels):
            raise AlgorithmError("duplicate object id in delete batch")
        self.epoch += 1
        # First-touch pre-batch counts per query; None marks an object
        # born this batch (it cannot "leave" a result it was never in).
        touched: dict[str, dict[int, int | None]] = {
            qid: {} for qid in self._queries
        }
        evaluated = filtered = 0

        for oid in dels:
            values = self._values[oid]
            for qid, st in self._queries.items():
                t = touched[qid]
                if self._can_influence(values, st.query):
                    evaluated += 1
                    for x in self._pruned_by(oid, values, st.query):
                        if x not in t:
                            t[x] = st.counts[x]
                        st.counts[x] -= 1
                else:
                    filtered += 1
                if oid not in t:
                    t[oid] = st.counts[oid]
                del st.counts[oid]
            removed = self._tree.remove_object(oid, values)
            assert removed, "monitor tree/values desynchronised"
            del self._values[oid]

        inserted: list[int] = []
        for values in ins:
            oid = self._next_id
            self._next_id += 1
            self._tree.insert(oid, values)
            self._values[oid] = values
            inserted.append(oid)
            for qid, st in self._queries.items():
                t = touched[qid]
                if self._can_influence(values, st.query):
                    evaluated += 1
                    for x in self._pruned_by(oid, values, st.query):
                        if x not in t:
                            t[x] = st.counts[x]
                        st.counts[x] += 1
                else:
                    filtered += 1
                t.setdefault(oid, None)
                if self._can_be_pruned(values, st.query):
                    st.counts[oid] = self._count_pruners(oid, values, st.query)
                else:
                    st.counts[oid] = 0

        self.evaluated += evaluated
        self.filtered += filtered
        deltas: list[MembershipDelta] = []
        for qid, st in self._queries.items():
            entered: list[int] = []
            left: list[int] = []
            for oid, old in touched[qid].items():
                was = old == 0
                now = st.counts.get(oid) == 0  # deleted -> None -> False
                if now and not was:
                    entered.append(oid)
                elif was and not now:
                    left.append(oid)
            if entered or left:
                deltas.append(
                    MembershipDelta(
                        query_id=qid,
                        entered=tuple(sorted(entered)),
                        left=tuple(sorted(left)),
                        epoch=self.epoch,
                    )
                )
        return BatchResult(
            epoch=self.epoch,
            inserted=tuple(inserted),
            deltas=tuple(deltas),
            evaluated=evaluated,
            filtered=filtered,
        )

    # -- validation ----------------------------------------------------------
    def recompute_naive(self, query_id: str) -> tuple[int, ...]:
        """Reference recomputation of one standing query's members from
        scratch (quadratic; tests and audits only)."""
        from repro.skyline.domination import dominates

        q = self._standing(query_id).query
        items = list(self._values.items())
        out = [
            x_id
            for x_id, x in items
            if not any(
                dominates(self.space, y, q, x) for y_id, y in items if y_id != x_id
            )
        ]
        return tuple(sorted(out))
