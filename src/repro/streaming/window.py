"""Streaming reverse skyline over a sliding window.

The paper's related work points to reverse-skyline maintenance on data
streams (Zhu, Li & Chen, CSO 2009) as the streaming counterpart of its
problem; this module provides that capability for the non-metric setting.

A :class:`StreamingReverseSkyline` maintains, for a fixed query ``Q`` and
a sliding window of objects, the current reverse skyline under inserts
and expiries. The invariant is a per-object **pruner count**:

``count[x] = |{ y in window, y != x : y ≻_x Q }|``

``x`` is in the result iff ``count[x] == 0``. Both update directions are
resolved with AL-Tree traversals over the window:

- **insert(b)**: every window object ``x`` that ``b`` prunes gets
  ``count[x] += 1`` (one Algorithm 5-style *enumerating* traversal), and
  ``count[b]`` is initialised by summing the window objects that prune
  ``b`` (an exhaustive Algorithm 4-style traversal).
- **expire(y)**: domination is time-independent, so the set of objects
  ``y`` was pruning can be recomputed exactly at expiry with the same
  enumerating traversal, and their counts decrement.

Each update costs one tree traversal — the same group-level reasoning
that powers TRS, amortised over the stream.
"""

from __future__ import annotations

from collections import deque

from repro.altree.tree import ALTree
from repro.data.schema import Schema
from repro.dissim.space import DissimilaritySpace
from repro.errors import AlgorithmError, SchemaError
from repro.sorting.keys import ascending_cardinality_order

__all__ = ["StreamingReverseSkyline"]


class StreamingReverseSkyline:
    """Incrementally maintained ``RS(Q)`` over a sliding window.

    Parameters
    ----------
    schema, space:
        The object schema and its per-attribute dissimilarities
        (categorical attributes only — the tree traversals need finite
        lookup tables).
    query:
        The fixed query object ``Q``.
    capacity:
        Optional window bound; inserting beyond it expires the oldest
        object automatically (count-based sliding window).
    """

    def __init__(
        self,
        schema: Schema,
        space: DissimilaritySpace,
        query: tuple,
        *,
        capacity: int | None = None,
    ) -> None:
        if not space.is_fully_categorical():
            raise AlgorithmError(
                "StreamingReverseSkyline requires categorical attributes"
            )
        if space.num_attributes != schema.num_attributes:
            raise SchemaError("schema and dissimilarity space arity mismatch")
        if capacity is not None and capacity < 1:
            raise AlgorithmError(f"capacity must be >= 1, got {capacity}")
        schema.validate_record(tuple(query))
        self.schema = schema
        self.space = space
        self.query = tuple(query)
        self.capacity = capacity
        self._tables = space.tables()
        self._order = ascending_cardinality_order(schema)
        self._tree = ALTree(self._order)
        self._window: deque[tuple[int, tuple]] = deque()
        self._counts: dict[int, int] = {}
        self._values: dict[int, tuple] = {}
        self._next_id = 0

    # -- introspection -------------------------------------------------------
    def __len__(self) -> int:
        return len(self._window)

    def __contains__(self, object_id: int) -> bool:
        return object_id in self._counts

    def result(self) -> list[int]:
        """Current reverse-skyline member ids, ascending."""
        return sorted(oid for oid, count in self._counts.items() if count == 0)

    def pruner_count(self, object_id: int) -> int:
        try:
            return self._counts[object_id]
        except KeyError:
            raise AlgorithmError(f"object {object_id} is not in the window") from None

    # -- traversals ------------------------------------------------------------
    def _pruned_by(self, e_id: int, e: tuple) -> list[int]:
        """Window object ids that ``e`` prunes (``e ≻_x Q``), excluding
        ``e`` itself by identity — an enumerating Algorithm 5."""
        order = self._order
        tables = self._tables
        q = self.query
        pruned: list[int] = []
        stack = [(self._tree.root, False)]
        while stack:
            node, found_closer = stack.pop()
            if node.entries:
                if found_closer:
                    pruned.extend(rid for rid, _ in node.entries if rid != e_id)
                continue
            for child in node.children.values():
                i = order[child.position]
                row = tables[i][child.key]
                d_pe = row[e[i]]
                d_pq = row[q[i]]
                if d_pe <= d_pq:
                    stack.append((child, found_closer or d_pe < d_pq))
        return pruned

    def _count_pruners(self, c_id: int, c: tuple) -> int:
        """How many window objects dominate ``Q`` with respect to ``c``,
        excluding ``c`` itself — an exhaustive Algorithm 4."""
        order = self._order
        tables = self._tables
        qd = [tables[i][c[i]][self.query[i]] for i in range(len(c))]
        total = 0
        stack = [(self._tree.root, False)]
        while stack:
            node, found_closer = stack.pop()
            if node.entries:
                if found_closer:
                    total += sum(1 for rid, _ in node.entries if rid != c_id)
                continue
            for child in node.children.values():
                i = order[child.position]
                d_cp = tables[i][c[i]][child.key]
                if d_cp <= qd[i]:
                    stack.append((child, found_closer or d_cp < qd[i]))
        return total

    # -- updates ----------------------------------------------------------------
    def insert(self, values: tuple) -> int:
        """Add one object to the window; returns its id. Expires the
        oldest object first when at capacity."""
        record = tuple(values)
        self.schema.validate_record(record)
        if self.capacity is not None and len(self._window) >= self.capacity:
            self.expire_oldest()
        oid = self._next_id
        self._next_id += 1
        self._tree.insert(oid, record)
        # Everyone the newcomer prunes gains a pruner...
        for x_id in self._pruned_by(oid, record):
            self._counts[x_id] += 1
        # ...and the newcomer's own count is measured against the window.
        self._counts[oid] = self._count_pruners(oid, record)
        self._values[oid] = record
        self._window.append((oid, record))
        return oid

    def expire_oldest(self) -> int:
        """Remove the oldest window object; returns its id."""
        if not self._window:
            raise AlgorithmError("cannot expire from an empty window")
        oid, record = self._window.popleft()
        # Objects it was pruning lose one pruner. Compute before removal
        # so the traversal sees a consistent tree (its own entry is
        # excluded by id).
        for x_id in self._pruned_by(oid, record):
            self._counts[x_id] -= 1
        removed = self._tree.remove_object(oid, record)
        assert removed, "window/tree desynchronised"
        del self._counts[oid]
        del self._values[oid]
        return oid

    def extend(self, stream) -> list[int]:
        """Insert many objects; returns their ids."""
        return [self.insert(values) for values in stream]

    # -- validation ----------------------------------------------------------
    def recompute_naive(self) -> list[int]:
        """Reference recomputation of the current result from scratch
        (quadratic; used by tests and available for auditing)."""
        from repro.skyline.domination import dominates

        items = list(self._window)
        out = []
        for x_id, x in items:
            if not any(
                dominates(self.space, y, self.query, x)
                for y_id, y in items
                if y_id != x_id
            ):
                out.append(x_id)
        return sorted(out)
