"""High-level engine: one object that owns a dataset and answers queries.

:class:`ReverseSkylineEngine` is the adoption-grade facade over the
library: it keeps prepared (laid-out) algorithm instances cached, answers
reverse-skyline, reverse-k-skyband, attribute-subset and influence
queries, and accumulates a query log for observability.

    engine = ReverseSkylineEngine(dataset)              # or .open(path)
    engine.query((1, 2, 0))                             # RS via TRS
    engine.skyband((1, 2, 0), k=3)                      # graded influence
    engine.query_subset(["price", "distance"], (2, 0))  # Section 5.6
    engine.influence({"offer-A": (1, 2, 0), ...})       # Section 1
    engine.query_many(batch, workers=4)                 # pooled + cached

Attribute-subset queries follow the paper's Section 5.6 discipline: the
physical order is fixed once from the *full* attribute set (re-sorting
per query is infeasible); per-subset algorithm instances reuse that order
via projected layouts.

Thread-safety contract (relied on by :mod:`repro.exec`): the instance
caches (``_algorithms``, ``_skybands``, ``_subset_engines``) are created
under ``_lock`` and never mutated afterwards; prepared algorithms are
read-only during ``run`` (each run stages its own simulated disk); the
query log and aggregate counters are guarded by their own lock. Any
number of threads may call the query methods concurrently.
"""

from __future__ import annotations

import hashlib
import threading
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.core.base import RSResult, Stopwatch
from repro.core.registry import make_algorithm
from repro.core.skyband import ReverseSkybandTRS
from repro.data.dataset import Dataset
from repro.errors import AlgorithmError
from repro.influence.analysis import InfluenceReport, influence_analysis
from repro.kernels import normalize_backend
from repro.obs import hooks as _obs
from repro.sorting.keys import multiattribute_key, schema_order
from repro.storage.disk import DEFAULT_PAGE_BYTES

__all__ = ["QueryLogEntry", "ReverseSkylineEngine"]


@dataclass(frozen=True)
class QueryLogEntry:
    """One answered query, for observability.

    ``wall_time_s`` is the full engine-path time for the query (measured
    with :class:`~repro.core.base.Stopwatch`, i.e. ``time.perf_counter``
    — the same clock the algorithms use — so sequential and concurrent
    entries are directly comparable). ``cached`` entries report zero
    checks and IO: a cache hit does no work.
    """

    kind: str
    algorithm: str
    query: tuple
    result_size: int
    checks: int
    seq_io: int
    rand_io: int
    wall_time_s: float
    cached: bool = False
    #: Set (to the error description) when the query failed past recovery.
    error: str | None = None


@dataclass
class _EngineStats:
    queries: int = 0
    total_checks: int = 0
    total_io: int = 0
    cache_hits: int = 0
    log: list[QueryLogEntry] = field(default_factory=list)
    lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )


class ReverseSkylineEngine:
    """Prepared, cached query engine over one dataset."""

    def __init__(
        self,
        dataset: Dataset,
        *,
        algorithm: str = "TRS",
        backend: str | None = None,
        shards: int | None = None,
        index: bool = False,
        recall_target: float | None = None,
        memory_fraction: float = 0.10,
        page_bytes: int = DEFAULT_PAGE_BYTES,
        log_queries: bool = True,
        fault_injector=None,
        retry_policy=None,
    ) -> None:
        self.dataset = dataset
        if shards is not None and algorithm == "TRS":
            # Sharding requested with the stock default: route reverse-
            # skyline queries through the scatter-gather family (explicit
            # non-capable algorithm choices still error in make_algorithm).
            algorithm = "SGTRS"
        if (index or recall_target is not None) and algorithm == "TRS":
            # Candidate-index requested with the stock default: route
            # through the indexed family the same way sharding does.
            algorithm = "ITRS"
        self.default_algorithm = algorithm
        #: Shard count forwarded to shard-capable algorithms (``None``
        #: keeps everything single-partition).
        self.shards = shards
        #: Approximate-mode pruning-recall target forwarded to
        #: index-capable algorithms (``None`` keeps exact mode).
        self.recall_target = recall_target
        #: Compute-backend preference (``python``/``numpy``/``auto``;
        #: ``None`` keeps each algorithm's own class). Applied whenever an
        #: algorithm instance is built, including subset engines.
        self.backend = normalize_backend(backend)
        self.memory_fraction = memory_fraction
        self.page_bytes = page_bytes
        self.log_queries = log_queries
        #: Optional :class:`~repro.faults.FaultInjector` staged onto every
        #: prepared algorithm's per-query disks, plus the retry policy
        #: used there and by the batch executor (see :mod:`repro.faults`).
        self.fault_injector = fault_injector
        self.retry_policy = retry_policy
        self._algorithms: dict[str, object] = {}
        self._subset_engines: dict[tuple[int, ...], "ReverseSkylineEngine"] = {}
        self._skybands: dict[int, ReverseSkybandTRS] = {}
        self._stats = _EngineStats()
        #: Guards creation of the instance caches above (and the result
        #: cache / fingerprint); held only during construction of the
        #: cached objects, never while answering a query.
        self._lock = threading.RLock()
        self._fingerprint: str | None = None
        self._result_cache = None  # lazily built repro.exec.cache.ResultCache
        # The full-attribute physical order, shared by subset queries.
        key = multiattribute_key(schema_order(dataset.schema))
        self._full_order_entries = sorted(
            enumerate(dataset.records), key=lambda e: key(e[1])
        )

    # -- construction ----------------------------------------------------------
    @classmethod
    def open(cls, directory, **kwargs) -> "ReverseSkylineEngine":
        """Open a dataset persisted with :meth:`save` (or
        :func:`repro.persist.save_dataset`). Stored physical layouts are
        restored, so the one-time pre-sort/tiling is not redone."""
        from repro.persist.format import load_dataset
        from repro.persist.layouts import layout_entries, load_layouts

        dataset = load_dataset(directory)
        engine = cls(dataset, **kwargs)
        for name, ids in load_layouts(directory).items():
            try:
                algo = engine._make_algorithm_shell(name)
            except Exception:
                continue  # layout for an algorithm this build doesn't know
            algo.use_layout(layout_entries(dataset, ids))
            engine._algorithms[name] = algo
        return engine

    def save(self, directory) -> None:
        """Persist the dataset plus every prepared algorithm's layout."""
        from repro.persist.format import save_dataset
        from repro.persist.layouts import save_layouts

        save_dataset(self.dataset, directory)
        layouts = {
            name: [rid for rid, _ in algo.layout]
            for name, algo in self._algorithms.items()
        }
        if layouts:
            save_layouts(directory, layouts)

    def _make_algorithm_shell(self, name: str, recall_target: float | None = None):
        # A per-request recall target (QuerySpec.recall_target) overrides
        # the engine-level default for this instance only.
        recall = recall_target if recall_target is not None else self.recall_target
        kwargs = {}
        if self.shards is not None or recall is not None:
            from repro.core.registry import get_algorithm
            from repro.kernels import resolve_algorithm

            resolved = resolve_algorithm(name, self.backend, self.dataset)
            cls = get_algorithm(resolved)
            # Only shard-capable families take the count; the rest keep
            # their single-partition behaviour (skyband, tiled, ...).
            if self.shards is not None and getattr(cls, "accepts_shards", False):
                kwargs["shards"] = self.shards
            # Likewise only index-capable families take the recall knob.
            if recall is not None:
                if not getattr(cls, "accepts_index", False):
                    raise AlgorithmError(
                        f"recall_target needs an index-capable algorithm, "
                        f"not {name!r}"
                    )
                kwargs["recall_target"] = recall
        algo = make_algorithm(
            name,
            self.dataset,
            backend=self.backend,
            memory_fraction=self.memory_fraction,
            page_bytes=self.page_bytes,
            **kwargs,
        )
        self._arm(algo)
        return algo

    def _arm(self, algo) -> None:
        """Stage the engine's fault machinery onto one algorithm instance
        (its per-query disks then inject/retry accordingly)."""
        algo.fault_injector = self.fault_injector
        algo.retry_policy = self.retry_policy

    # -- internals ----------------------------------------------------------
    def _algorithm(self, name: str, recall_target: float | None = None):
        # Per-request recall targets get their own prepared instance,
        # cached under a qualified key (the instance bakes the target in).
        key = name if recall_target is None else f"{name}@recall={recall_target}"
        algo = self._algorithms.get(key)
        if algo is None:
            with self._lock:
                algo = self._algorithms.get(key)
                if algo is None:
                    algo = self._make_algorithm_shell(
                        name, recall_target=recall_target
                    )
                    algo.prepare()
                    self._algorithms[key] = algo
        return algo

    def _spec_routing(self, spec) -> tuple[str, float | None]:
        """Resolve a query spec's (algorithm name, per-request recall):
        a recall target on the stock default routes through the indexed
        family, mirroring what the constructor does for engine-level
        ``recall_target``."""
        name = spec.algorithm or self.default_algorithm
        recall = getattr(spec, "recall_target", None)
        if recall is not None and name == "TRS":
            name = "ITRS"
        return name, recall

    def _skyband_algorithm(self, k: int) -> ReverseSkybandTRS:
        algo = self._skybands.get(k)
        if algo is None:
            with self._lock:
                algo = self._skybands.get(k)
                if algo is None:
                    algo = ReverseSkybandTRS(
                        self.dataset,
                        k=k,
                        memory_fraction=self.memory_fraction,
                        page_bytes=self.page_bytes,
                    )
                    self._arm(algo)
                    algo.prepare()
                    self._skybands[k] = algo
        return algo

    def _resolve_indices(self, attributes: Sequence[str | int]) -> tuple[int, ...]:
        indices = tuple(
            a if isinstance(a, int) else self.dataset.schema.index_of(a)
            for a in attributes
        )
        if not indices:
            raise AlgorithmError("attribute subset must be non-empty")
        return indices

    def _subset_engine(self, indices: tuple[int, ...]) -> "ReverseSkylineEngine":
        engine = self._subset_engines.get(indices)
        if engine is None:
            with self._lock:
                engine = self._subset_engines.get(indices)
                if engine is None:
                    projected = self.dataset.project(list(indices))
                    algo = make_algorithm(
                        "TRS",
                        projected,
                        backend=self.backend,
                        memory_fraction=self.memory_fraction,
                        page_bytes=self.page_bytes,
                    )
                    self._arm(algo)
                    algo.use_layout(
                        [
                            (rid, tuple(values[i] for i in indices))
                            for rid, values in self._full_order_entries
                        ]
                    )
                    engine = ReverseSkylineEngine(
                        projected,
                        backend=self.backend,
                        memory_fraction=self.memory_fraction,
                        page_bytes=self.page_bytes,
                        log_queries=False,
                        fault_injector=self.fault_injector,
                        retry_policy=self.retry_policy,
                    )
                    engine._algorithms["TRS"] = algo
                    self._subset_engines[indices] = engine
        return engine

    def _record(
        self,
        kind: str,
        result: RSResult,
        *,
        wall_time_s: float | None = None,
        cached: bool = False,
    ) -> RSResult:
        s = result.stats
        checks = 0 if cached else s.checks
        seq_io = 0 if cached else s.io.sequential
        rand_io = 0 if cached else s.io.random
        with self._stats.lock:
            self._stats.queries += 1
            self._stats.total_checks += checks
            self._stats.total_io += seq_io + rand_io
            if cached:
                self._stats.cache_hits += 1
            if self.log_queries:
                self._stats.log.append(
                    QueryLogEntry(
                        kind=kind,
                        algorithm=result.algorithm,
                        query=result.query,
                        result_size=len(result.record_ids),
                        checks=checks,
                        seq_io=seq_io,
                        rand_io=rand_io,
                        wall_time_s=(
                            wall_time_s if wall_time_s is not None else s.wall_time_s
                        ),
                        cached=cached,
                    )
                )
        if _obs.enabled:
            _obs.inc("repro_engine_queries_total", 1, kind=kind)
            if cached:
                _obs.inc("repro_engine_cache_hits_total")
        return result

    # -- queries -------------------------------------------------------------
    def query(
        self,
        query: tuple,
        *,
        algorithm: str | None = None,
        where=None,
    ) -> RSResult:
        """The reverse skyline of ``query``.

        ``where`` optionally restricts the *candidate* set: only records
        satisfying ``where(values)`` may appear in the result. Pruners are
        still drawn from the whole database, so this is exactly
        ``RS(Q) ∩ {x : where(x)}`` (the constrained reverse skyline) and is
        answered by filtering the unconstrained result.
        """
        with Stopwatch() as watch:
            algo = self._algorithm(algorithm or self.default_algorithm)
            result = algo.run(query)
            if where is not None:
                kept = tuple(
                    rid for rid in result.record_ids if where(self.dataset[rid])
                )
                result = RSResult(
                    result.algorithm,
                    result.query,
                    kept,
                    result.stats,
                    backend=result.backend,
                )
        return self._record("reverse-skyline", result, wall_time_s=watch.stop())

    def skyband(self, query: tuple, k: int) -> RSResult:
        """The reverse k-skyband of ``query`` (``k=1`` is the skyline)."""
        with Stopwatch() as watch:
            result = self._skyband_algorithm(k).run(query)
        return self._record(
            f"reverse-{k}-skyband", result, wall_time_s=watch.stop()
        )

    def query_subset(
        self, attributes: Sequence[str | int], query_values: tuple
    ) -> RSResult:
        """Reverse skyline over an attribute subset (Section 5.6).

        ``attributes`` are names or indices of the chosen attributes;
        ``query_values`` gives the query's values for exactly those
        attributes, in the same order. The data's physical order remains
        the full-attribute sort.
        """
        with Stopwatch() as watch:
            indices = self._resolve_indices(attributes)
            engine = self._subset_engine(indices)
            result = engine.query(tuple(query_values), algorithm="TRS")
        return self._record(
            "subset-reverse-skyline", result, wall_time_s=watch.stop()
        )

    def influence(
        self, probes: Mapping[str, tuple] | Sequence[tuple]
    ) -> InfluenceReport:
        """Influence analysis over probe objects (Section 1)."""
        algo = self._algorithm(self.default_algorithm)
        report = influence_analysis(self.dataset, probes, algorithm=algo)
        for result in report.results.values():
            self._record("influence-probe", result)
        return report

    # -- batch / concurrent queries ----------------------------------------
    def query_many(
        self,
        queries: Sequence,
        *,
        kind: str = "query",
        k: int = 1,
        algorithm: str | None = None,
        attributes: Sequence[str | int] | None = None,
        pool: str = "thread",
        workers: int | None = None,
        cache: bool = True,
        plan: bool = False,
        shm: bool = False,
    ):
        """Answer a batch of queries through a pooled, cached executor.

        ``queries`` may be plain query tuples (all interpreted with the
        keyword defaults) or :class:`repro.exec.QuerySpec` objects mixing
        kinds, k values and algorithms freely. Returns a
        :class:`repro.exec.BatchReport` whose ``results`` are in input
        order and bit-identical to a sequential run; merged stats and the
        query log stay deterministic under any pool size.

        ``cache=True`` uses the engine-owned :class:`repro.exec.ResultCache`
        which persists across ``query_many`` calls; call
        :meth:`invalidate_caches` after mutating the dataset.

        ``plan=True`` enables the batch planner (compatible queries are
        answered through shared multi-query scans); ``shm=True``
        additionally publishes the dataset and built plans to process
        workers over shared memory. See :class:`repro.exec.QueryExecutor`.
        """
        from repro.exec.executor import QueryExecutor

        executor = QueryExecutor(
            self,
            pool=pool,
            workers=workers,
            cache=self.result_cache() if cache else None,
            plan=plan,
            shm=shm,
        )
        return executor.run_batch(
            queries, kind=kind, k=k, algorithm=algorithm, attributes=attributes
        )

    def warm(self, *, algorithm: str | None = None, plans: bool = False) -> None:
        """Pay the one-time preparation cost up front (layout sort, tree
        build, optionally the numpy phase-1/scan plans) so the first real
        query does not. The resident service (:mod:`repro.serve`) calls
        this at startup; it is also what makes ``fork``-style pool
        workers inherit warm plans for free."""
        self._algorithm(algorithm or self.default_algorithm)
        if plans:
            from repro.exec.executor import _warm_plan_cache

            _warm_plan_cache(self)

    def result_cache(self):
        """The engine-owned result cache (created on first use)."""
        if self._result_cache is None:
            with self._lock:
                if self._result_cache is None:
                    from repro.exec.cache import ResultCache

                    self._result_cache = ResultCache()
        return self._result_cache

    def layout_fingerprint(self) -> str:
        """Content hash of the dataset and its full-attribute physical
        order. Cache keys embed it, so results memoised for one dataset
        state can never answer for another; recomputed by
        :meth:`invalidate_caches`."""
        if self._fingerprint is None:
            with self._lock:
                if self._fingerprint is None:
                    h = hashlib.sha1()
                    h.update(
                        f"{self.dataset.name}|{len(self.dataset)}|"
                        f"{self.dataset.num_attributes}|".encode()
                    )
                    for rid, values in self._full_order_entries:
                        h.update(repr((rid, values)).encode())
                    self._fingerprint = h.hexdigest()[:16]
        return self._fingerprint

    def invalidate_caches(self) -> None:
        """Drop every derived structure after a dataset change: prepared
        algorithm instances, subset engines, skyband instances, the result
        cache and the layout fingerprint. The next query rebuilds them
        from the current records."""
        with self._lock:
            self._algorithms.clear()
            self._skybands.clear()
            self._subset_engines.clear()
            self._fingerprint = None
            # Planner-side derived state (see repro.exec.executor): the
            # shared-scan instances and the warmed plan holder both bake
            # in the old layout.
            self.__dict__.pop("_shared_scans", None)
            self.__dict__.pop("_plan_warm", None)
            if self._result_cache is not None:
                self._result_cache.invalidate()
            key = multiattribute_key(schema_order(self.dataset.schema))
            self._full_order_entries = sorted(
                enumerate(self.dataset.records), key=lambda e: key(e[1])
            )

    # -- executor support ----------------------------------------------------
    def _prepare_for(self, spec) -> None:
        """Build (under lock) whatever prepared instance ``spec`` needs, so
        pooled workers only ever *read* the instance caches."""
        if spec.kind == "query":
            self._algorithm(*self._spec_routing(spec))
        elif spec.kind == "skyband":
            self._skyband_algorithm(spec.k)
        elif spec.kind == "subset":
            self._subset_engine(self._resolve_indices(spec.attributes))

    def _execute_spec(self, spec) -> RSResult:
        """Answer one spec without recording (the executor records the
        whole batch afterwards, in input order)."""
        if spec.kind == "query":
            algo = self._algorithm(*self._spec_routing(spec))
            return algo.run(spec.query)
        if spec.kind == "skyband":
            return self._skyband_algorithm(spec.k).run(spec.query)
        if spec.kind == "subset":
            indices = self._resolve_indices(spec.attributes)
            sub = self._subset_engine(indices)
            algo = sub._algorithm("TRS")
            return algo.run(spec.query)
        raise AlgorithmError(f"unknown query kind {spec.kind!r}")

    def _timed_execute(self, spec) -> tuple[RSResult, float]:
        """``_execute_spec`` plus the engine-path wall time, measured with
        the same Stopwatch the sequential query methods use."""
        with Stopwatch() as watch:
            result = self._execute_spec(spec)
        return result, watch.stop()

    def _record_batch(self, specs, results, cached, wall_times, errors=None) -> None:
        """Append one log entry per batch slot, in input order. Failed
        slots (``results[i] is None``) log an error entry with zero cost."""
        if errors is None:
            errors = [None] * len(specs)
        labels = {
            "query": "reverse-skyline",
            "subset": "subset-reverse-skyline",
        }
        for spec, result, hit, wall, error in zip(
            specs, results, cached, wall_times, errors
        ):
            kind = labels.get(spec.kind) or f"reverse-{spec.k}-skyband"
            if result is None:
                self._record_failure(kind, spec, error)
                continue
            self._record(kind, result, wall_time_s=wall, cached=hit)

    def _record_failure(self, kind: str, spec, error) -> None:
        """Log one query that failed past recovery (costs nothing: the
        work its attempts did is accounted in retry counters, not here)."""
        with self._stats.lock:
            self._stats.queries += 1
            if self.log_queries:
                self._stats.log.append(
                    QueryLogEntry(
                        kind=kind,
                        algorithm=spec.algorithm or self.default_algorithm,
                        query=tuple(spec.query),
                        result_size=0,
                        checks=0,
                        seq_io=0,
                        rand_io=0,
                        wall_time_s=0.0,
                        cached=False,
                        error=error.describe() if error is not None else "failed",
                    )
                )
        if _obs.enabled:
            _obs.inc("repro_engine_failures_total", 1, kind=kind)

    # -- observability -----------------------------------------------------
    @property
    def log(self) -> list[QueryLogEntry]:
        with self._stats.lock:
            return list(self._stats.log)

    def summary(self) -> dict:
        """Aggregate engine statistics."""
        with self._stats.lock:
            queries = self._stats.queries
            total_checks = self._stats.total_checks
            total_io = self._stats.total_io
            cache_hits = self._stats.cache_hits
        with self._lock:
            prepared = sorted(self._algorithms)
            subsets = [list(s) for s in sorted(self._subset_engines)]
        latency = self.latency_summary()
        return {
            "dataset": self.dataset.describe(),
            "queries": queries,
            "total_checks": total_checks,
            "total_page_ios": total_io,
            "cache_hits": cache_hits,
            "prepared_algorithms": prepared,
            "prepared_subsets": subsets,
            "latency_p50_ms": latency["p50_ms"],
            "latency_p95_ms": latency["p95_ms"],
            "latency_p99_ms": latency["p99_ms"],
        }

    def latency_summary(self) -> dict[str, float]:
        """Wall-time percentiles (milliseconds) over the query log.

        An empty log yields all-zero percentiles (``count`` 0.0) rather
        than raising — dashboards poll this before traffic arrives.
        """
        with self._stats.lock:
            entries = list(self._stats.log)
        if not entries:
            return {
                "count": 0.0,
                "p50_ms": 0.0,
                "p90_ms": 0.0,
                "p95_ms": 0.0,
                "p99_ms": 0.0,
                "max_ms": 0.0,
                "mean_ms": 0.0,
            }
        times = sorted(e.wall_time_s * 1000 for e in entries)

        def pct(p: float) -> float:
            idx = min(len(times) - 1, max(0, round(p / 100 * (len(times) - 1))))
            return times[idx]

        return {
            "count": float(len(times)),
            "p50_ms": pct(50),
            "p90_ms": pct(90),
            "p95_ms": pct(95),
            "p99_ms": pct(99),
            "max_ms": times[-1],
            "mean_ms": sum(times) / len(times),
        }
