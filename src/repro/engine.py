"""High-level engine: one object that owns a dataset and answers queries.

:class:`ReverseSkylineEngine` is the adoption-grade facade over the
library: it keeps prepared (laid-out) algorithm instances cached, answers
reverse-skyline, reverse-k-skyband, attribute-subset and influence
queries, and accumulates a query log for observability.

    engine = ReverseSkylineEngine(dataset)              # or .open(path)
    engine.query((1, 2, 0))                             # RS via TRS
    engine.skyband((1, 2, 0), k=3)                      # graded influence
    engine.query_subset(["price", "distance"], (2, 0))  # Section 5.6
    engine.influence({"offer-A": (1, 2, 0), ...})       # Section 1

Attribute-subset queries follow the paper's Section 5.6 discipline: the
physical order is fixed once from the *full* attribute set (re-sorting
per query is infeasible); per-subset algorithm instances reuse that order
via projected layouts.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.core.base import RSResult
from repro.core.registry import make_algorithm
from repro.core.skyband import ReverseSkybandTRS
from repro.core.trs import TRS
from repro.data.dataset import Dataset
from repro.errors import AlgorithmError
from repro.influence.analysis import InfluenceReport, influence_analysis
from repro.sorting.keys import multiattribute_key, schema_order
from repro.storage.disk import DEFAULT_PAGE_BYTES

__all__ = ["QueryLogEntry", "ReverseSkylineEngine"]


@dataclass(frozen=True)
class QueryLogEntry:
    """One answered query, for observability."""

    kind: str
    algorithm: str
    query: tuple
    result_size: int
    checks: int
    seq_io: int
    rand_io: int
    wall_time_s: float


@dataclass
class _EngineStats:
    queries: int = 0
    total_checks: int = 0
    total_io: int = 0
    log: list[QueryLogEntry] = field(default_factory=list)


class ReverseSkylineEngine:
    """Prepared, cached query engine over one dataset."""

    def __init__(
        self,
        dataset: Dataset,
        *,
        algorithm: str = "TRS",
        memory_fraction: float = 0.10,
        page_bytes: int = DEFAULT_PAGE_BYTES,
        log_queries: bool = True,
    ) -> None:
        self.dataset = dataset
        self.default_algorithm = algorithm
        self.memory_fraction = memory_fraction
        self.page_bytes = page_bytes
        self.log_queries = log_queries
        self._algorithms: dict[str, object] = {}
        self._subset_engines: dict[tuple[int, ...], "ReverseSkylineEngine"] = {}
        self._skybands: dict[int, ReverseSkybandTRS] = {}
        self._stats = _EngineStats()
        # The full-attribute physical order, shared by subset queries.
        key = multiattribute_key(schema_order(dataset.schema))
        self._full_order_entries = sorted(
            enumerate(dataset.records), key=lambda e: key(e[1])
        )

    # -- construction ----------------------------------------------------------
    @classmethod
    def open(cls, directory, **kwargs) -> "ReverseSkylineEngine":
        """Open a dataset persisted with :meth:`save` (or
        :func:`repro.persist.save_dataset`). Stored physical layouts are
        restored, so the one-time pre-sort/tiling is not redone."""
        from repro.persist.format import load_dataset
        from repro.persist.layouts import layout_entries, load_layouts

        dataset = load_dataset(directory)
        engine = cls(dataset, **kwargs)
        for name, ids in load_layouts(directory).items():
            try:
                algo = engine._make_algorithm_shell(name)
            except Exception:
                continue  # layout for an algorithm this build doesn't know
            algo.use_layout(layout_entries(dataset, ids))
            engine._algorithms[name] = algo
        return engine

    def save(self, directory) -> None:
        """Persist the dataset plus every prepared algorithm's layout."""
        from repro.persist.format import save_dataset
        from repro.persist.layouts import save_layouts

        save_dataset(self.dataset, directory)
        layouts = {
            name: [rid for rid, _ in algo.layout]
            for name, algo in self._algorithms.items()
        }
        if layouts:
            save_layouts(directory, layouts)

    def _make_algorithm_shell(self, name: str):
        return make_algorithm(
            name,
            self.dataset,
            memory_fraction=self.memory_fraction,
            page_bytes=self.page_bytes,
        )

    # -- internals ----------------------------------------------------------
    def _algorithm(self, name: str):
        algo = self._algorithms.get(name)
        if algo is None:
            algo = self._make_algorithm_shell(name)
            algo.prepare()
            self._algorithms[name] = algo
        return algo

    def _record(self, kind: str, result: RSResult) -> RSResult:
        s = result.stats
        self._stats.queries += 1
        self._stats.total_checks += s.checks
        self._stats.total_io += s.io.total
        if self.log_queries:
            self._stats.log.append(
                QueryLogEntry(
                    kind=kind,
                    algorithm=result.algorithm,
                    query=result.query,
                    result_size=len(result.record_ids),
                    checks=s.checks,
                    seq_io=s.io.sequential,
                    rand_io=s.io.random,
                    wall_time_s=s.wall_time_s,
                )
            )
        return result

    # -- queries -------------------------------------------------------------
    def query(
        self,
        query: tuple,
        *,
        algorithm: str | None = None,
        where=None,
    ) -> RSResult:
        """The reverse skyline of ``query``.

        ``where`` optionally restricts the *candidate* set: only records
        satisfying ``where(values)`` may appear in the result. Pruners are
        still drawn from the whole database, so this is exactly
        ``RS(Q) ∩ {x : where(x)}`` (the constrained reverse skyline) and is
        answered by filtering the unconstrained result.
        """
        algo = self._algorithm(algorithm or self.default_algorithm)
        result = algo.run(query)
        if where is not None:
            kept = tuple(
                rid for rid in result.record_ids if where(self.dataset[rid])
            )
            result = RSResult(result.algorithm, result.query, kept, result.stats)
        return self._record("reverse-skyline", result)

    def skyband(self, query: tuple, k: int) -> RSResult:
        """The reverse k-skyband of ``query`` (``k=1`` is the skyline)."""
        algo = self._skybands.get(k)
        if algo is None:
            algo = ReverseSkybandTRS(
                self.dataset,
                k=k,
                memory_fraction=self.memory_fraction,
                page_bytes=self.page_bytes,
            )
            algo.prepare()
            self._skybands[k] = algo
        return self._record(f"reverse-{k}-skyband", algo.run(query))

    def query_subset(
        self, attributes: Sequence[str | int], query_values: tuple
    ) -> RSResult:
        """Reverse skyline over an attribute subset (Section 5.6).

        ``attributes`` are names or indices of the chosen attributes;
        ``query_values`` gives the query's values for exactly those
        attributes, in the same order. The data's physical order remains
        the full-attribute sort.
        """
        indices = tuple(
            a if isinstance(a, int) else self.dataset.schema.index_of(a)
            for a in attributes
        )
        if not indices:
            raise AlgorithmError("attribute subset must be non-empty")
        engine = self._subset_engines.get(indices)
        if engine is None:
            projected = self.dataset.project(list(indices))
            algo = TRS(
                projected,
                memory_fraction=self.memory_fraction,
                page_bytes=self.page_bytes,
            )
            algo.use_layout(
                [
                    (rid, tuple(values[i] for i in indices))
                    for rid, values in self._full_order_entries
                ]
            )
            engine = ReverseSkylineEngine(
                projected,
                memory_fraction=self.memory_fraction,
                page_bytes=self.page_bytes,
                log_queries=False,
            )
            engine._algorithms["TRS"] = algo
            self._subset_engines[indices] = engine
        result = engine.query(tuple(query_values), algorithm="TRS")
        return self._record("subset-reverse-skyline", result)

    def influence(
        self, probes: Mapping[str, tuple] | Sequence[tuple]
    ) -> InfluenceReport:
        """Influence analysis over probe objects (Section 1)."""
        algo = self._algorithm(self.default_algorithm)
        report = influence_analysis(self.dataset, probes, algorithm=algo)
        for result in report.results.values():
            self._record("influence-probe", result)
        return report

    # -- observability -----------------------------------------------------
    @property
    def log(self) -> list[QueryLogEntry]:
        return list(self._stats.log)

    def summary(self) -> dict:
        """Aggregate engine statistics."""
        return {
            "dataset": self.dataset.describe(),
            "queries": self._stats.queries,
            "total_checks": self._stats.total_checks,
            "total_page_ios": self._stats.total_io,
            "prepared_algorithms": sorted(self._algorithms),
            "prepared_subsets": [list(s) for s in sorted(self._subset_engines)],
        }

    def latency_summary(self) -> dict[str, float]:
        """Wall-time percentiles (milliseconds) over the query log."""
        if not self._stats.log:
            raise AlgorithmError("no logged queries yet")
        times = sorted(e.wall_time_s * 1000 for e in self._stats.log)

        def pct(p: float) -> float:
            idx = min(len(times) - 1, max(0, round(p / 100 * (len(times) - 1))))
            return times[idx]

        return {
            "count": float(len(times)),
            "p50_ms": pct(50),
            "p90_ms": pct(90),
            "p99_ms": pct(99),
            "max_ms": times[-1],
            "mean_ms": sum(times) / len(times),
        }
