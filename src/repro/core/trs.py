"""Tree Reverse Skyline — TRS (paper Section 4.3, Algorithms 3-5).

The paper's main contribution. TRS keeps the two-phase block structure of
BRS/SRS but holds each in-memory batch in an AL-Tree (a prefix tree over
the attribute-ordered records), which buys three things:

1. **Group-level reasoning** — one failed comparison at an internal node
   discharges *every* object sharing that prefix, so checking whether an
   object is prunable costs far fewer attribute comparisons.
2. **Early pruning with guided search** — ``IsPrunable`` visits promising
   subtrees (more descendants) first and aborts at the first pruner leaf.
3. **Batch compaction** — shared prefixes are stored once, so more objects
   fit per batch, shrinking intermediate results and random IO.

Phase 1 checks each batch object against the tree with ``IsPrunable``
(Algorithm 4, the object itself removed first). Phase 2 loads batches of
first-phase survivors into a tree and streams the database through
``Prune`` (Algorithm 5), which deletes every tree object the scanned
record dominates the query for.
"""

from __future__ import annotations

import copy
from collections.abc import Sequence

from repro.altree.tree import ALTree
from repro.core.base import CostStats, ReverseSkylineAlgorithm
from repro.core.overlay import Overlay
from repro.data.dataset import Dataset
from repro.obs import hooks as _obs
from repro.sorting.keys import ascending_cardinality_order, multiattribute_key
from repro.storage.disk import DEFAULT_PAGE_BYTES, DiskSimulator, MemoryBudget
from repro.storage.pagefile import PageFile

__all__ = ["TRS", "is_prunable", "prune_tree", "prune_tree_cols"]

# Modeled AL-Tree memory costs (see ALTree.memory_bytes): a non-root node
# stores a value id and a descendant counter; a leaf entry stores a record id.
NODE_BYTES = 8
ENTRY_BYTES = 4


def is_prunable(
    tree: ALTree,
    c: tuple,
    qd: list[float],
    tables: list,
    *,
    order_children: bool = True,
) -> tuple[bool, int]:
    """Algorithm 4: is there an object in ``tree`` that dominates the query
    with respect to ``c``?

    ``qd[i]`` must hold ``d_i(c_i, q_i)``. Returns ``(prunable, checks)``
    where ``checks`` counts attribute-level comparisons (one per child
    node considered at line 9).

    Depth-first with a LIFO stack. Children are pushed in *increasing*
    descendant order so the largest (most promising) subtree is popped
    first; a child is pushed only if its value is no farther from ``c``
    than the query is (line 9 — the group-level elimination), and its
    ``FoundCloser`` flag records whether some fixed attribute is strictly
    closer (line 10). A leaf reached with ``FoundCloser`` set is a pruner.
    """
    order = tree.attribute_order
    checks = 0
    # Per-traversal cache of c's dissimilarity rows by attribute.
    rows = [tables[i][c[i]] for i in range(len(c))]
    stack: list[tuple] = [(tree.root, False)]
    push = stack.append
    pop = stack.pop
    while stack:
        node, found_closer = pop()
        if node.entries:
            if found_closer:
                return True, checks
            continue
        children = node.children.values()
        if order_children and len(children) > 1:
            children = node.children_by_promise()
        for child in children:
            if not child.descendants:
                continue  # soft-removed subtree (Algorithm 3's M \ c)
            i = order[child.position]
            d_cp = rows[i][child.key]
            d_cq = qd[i]
            checks += 1
            if d_cp <= d_cq:
                push((child, found_closer or d_cp < d_cq))
    return False, checks


def prune_tree(
    tree: ALTree,
    e_id: int,
    e: tuple,
    q: tuple,
    tables: list,
) -> tuple[int, int]:
    """Algorithm 5: remove from ``tree`` every object ``x`` such that ``e``
    dominates the query with respect to ``x`` — except ``e`` itself, if
    present (identity, not value: duplicates of ``e`` are removed).

    Note the direction flip versus :func:`is_prunable`: distances are
    measured *from the tree object's values* ``u`` (the candidate ``x``),
    comparing ``d_i(u_i, e_i)`` against ``d_i(u_i, q_i)``.

    Returns ``(removed_count, checks)``.
    """
    order = tree.attribute_order
    checks = 0
    removed = 0
    stack: list[tuple] = [(tree.root, False)]
    push = stack.append
    pop = stack.pop
    while stack:
        node, found_closer = pop()
        if node.parent is None and node is not tree.root:
            continue  # detached by an earlier removal while queued
        if node.entries:
            if found_closer:
                removed += tree.remove_entries(node, keep=lambda ent: ent[0] == e_id)
            continue
        for child in list(node.children.values()):
            i = order[child.position]
            row = tables[i][child.key]
            d_pe = row[e[i]]
            d_pq = row[q[i]]
            checks += 1
            if d_pe <= d_pq:
                push((child, found_closer or d_pe < d_pq))
    return removed, checks


def prune_tree_cols(
    tree: ALTree,
    e_id: int,
    ecols: list,
    qcols: list,
) -> tuple[int, int]:
    """:func:`prune_tree` with the dissimilarity lookups pre-gathered.

    ``ecols[i][u] = d_i(u, e_i)`` and ``qcols[i][u] = d_i(u, q_i)`` for
    every value ``u`` of attribute ``i``. Gathering ``ecols`` once per
    scanned object lets a multi-query phase 2 share it across *all*
    queries' traversals (and ``qcols`` across all scanned objects),
    instead of re-indexing the dissimilarity tables per (object, query,
    node). Traversal order, removals and check counts are identical to
    :func:`prune_tree`.
    """
    order = tree.attribute_order
    checks = 0
    removed = 0
    stack: list[tuple] = [(tree.root, False)]
    push = stack.append
    pop = stack.pop
    while stack:
        node, found_closer = pop()
        if node.parent is None and node is not tree.root:
            continue  # detached by an earlier removal while queued
        if node.entries:
            if found_closer:
                removed += tree.remove_entries(node, keep=lambda ent: ent[0] == e_id)
            continue
        for child in list(node.children.values()):
            i = order[child.position]
            d_pe = ecols[i][child.key]
            d_pq = qcols[i][child.key]
            checks += 1
            if d_pe <= d_pq:
                push((child, found_closer or d_pe < d_pq))
    return removed, checks


class TRS(ReverseSkylineAlgorithm):
    """Algorithms 3-5 over the multi-attribute-sorted layout.

    Parameters (beyond the base class)
    ----------------------------------
    attribute_order:
        Tree level order; defaults to ascending attribute cardinality
        (Section 5.1's heuristic: big groups near the root).
    presort:
        Ablation switch — ``False`` runs TRS over the native disk order
        (trees still work, but batches cluster less, weakening phase 1).
    order_children:
        Ablation switch for Algorithm 4's promising-subtree-first order.
    overlay:
        Optional :class:`~repro.core.overlay.Overlay` of uncompacted
        updates. Queries then answer over the logical dataset
        ``base ∖ tombstones ∪ delta entries``: tombstoned records are
        neither candidates nor pruners (their pages are still read, so
        base IO stays pinned), and delta entries are both candidates and
        pruners, processed in fresh in-memory batches whose comparisons
        charge ``stats.checks_delta`` instead of the base phase counters.
    """

    name = "TRS"

    def __init__(
        self,
        dataset: Dataset,
        *,
        attribute_order: Sequence[int] | None = None,
        presort: bool = True,
        order_children: bool = True,
        memory_fraction: float = 0.10,
        budget: MemoryBudget | None = None,
        page_bytes: int = DEFAULT_PAGE_BYTES,
        trace_checks: bool = False,
        overlay: Overlay | None = None,
    ) -> None:
        super().__init__(
            dataset,
            memory_fraction=memory_fraction,
            budget=budget,
            page_bytes=page_bytes,
            trace_checks=trace_checks,
        )
        self.attribute_order = (
            list(attribute_order)
            if attribute_order is not None
            else ascending_cardinality_order(dataset.schema, dataset)
        )
        self.presort = presort
        self.order_children = order_children
        if overlay is not None and overlay.empty:
            overlay = None
        self.overlay = overlay

    def with_overlay(self, overlay: Overlay | None) -> "TRS":
        """A shallow clone of this prepared instance answering over a
        different overlay. Every memo an instance carries — layout,
        staged pages, plan fingerprint, the vector backend's plan and
        scan caches — depends only on the immutable base, never on the
        overlay, so the clone shares them all. The maintenance engine
        uses this to advance epochs without re-preparing."""
        clone = copy.copy(self)
        if overlay is not None and overlay.empty:
            overlay = None
        clone.overlay = overlay
        return clone

    # -- layout -----------------------------------------------------------
    def _build_layout(self) -> list[tuple[int, tuple]]:
        entries = list(enumerate(self.dataset.records))
        if not self.presort:
            return entries
        key = multiattribute_key(self.attribute_order)
        return sorted(entries, key=lambda entry: key(entry[1]))

    # -- query processing ----------------------------------------------------
    def _execute(
        self, disk: DiskSimulator, data_file: PageFile, query: tuple, stats: CostStats
    ) -> list[int]:
        scratch = disk.create_file("phase1-results", data_file.codec)
        with _obs.span("phase1") as span:
            # Subclasses that predate the overlay return None from _phase1;
            # only overlay-aware implementations return delta survivors.
            delta_survivors = self._phase1(data_file, scratch, query, stats) or []
            span.annotate("survivors", scratch.num_records + len(delta_survivors))
        stats.intermediate_count = scratch.num_records + len(delta_survivors)
        with _obs.span("phase2"):
            if delta_survivors:
                return self._phase2(
                    data_file, scratch, query, stats, delta_survivors=delta_survivors
                )
            return self._phase2(data_file, scratch, query, stats)

    def _new_tree(self) -> ALTree:
        return ALTree(self.attribute_order)

    def _phase1(
        self, data_file: PageFile, scratch: PageFile, query: tuple, stats: CostStats
    ) -> list[tuple[int, tuple]]:
        tables = self._tables()
        m = self.dataset.num_attributes
        trace = self.trace_checks
        budget_bytes = self.budget.pages * self.page_bytes
        writer = scratch.writer()
        stats.db_passes += 1
        overlay = self.overlay
        tomb = overlay.tombstones if overlay is not None else frozenset()

        tree = self._new_tree()
        batch: list[tuple] = []  # (record_id, values, leaf)

        def process_batch() -> None:
            for c_id, c, leaf in batch:
                qd = [tables[i][c[i]][query[i]] for i in range(m)]
                if leaf.count >= 2:
                    # An exact duplicate of c is in the batch. It sits at
                    # distance 0 from c on every attribute, so it prunes c
                    # iff the query is strictly farther somewhere; and if
                    # the query is at distance 0 everywhere, *nothing* can
                    # prune c. Either way the decision needs no traversal.
                    prunable = False
                    checks = m
                    for i in range(m):
                        if qd[i] > 0.0:
                            prunable = True
                            checks = i + 1
                            break
                else:
                    # IsPrunable(c, M \ c): soft-remove c for the traversal.
                    entry = tree.soft_remove(leaf, c_id)
                    prunable, checks = is_prunable(
                        tree, c, qd, tables, order_children=self.order_children
                    )
                    tree.soft_restore(leaf, entry)  # still prunes others
                stats.pruner_tests += 1
                stats.charge_phase1(c_id, checks, trace=trace)
                if not prunable:
                    writer.append(c_id, c)
            stats.phase1_batches += 1

        for _, page in data_file.scan():
            for record_id, values in page:
                if record_id in tomb:
                    continue  # logically deleted: not a candidate, not a pruner
                leaf = tree.insert(record_id, values)
                batch.append((record_id, values, leaf))
            if tree.memory_bytes(NODE_BYTES, ENTRY_BYTES) >= budget_bytes:
                process_batch()
                tree = self._new_tree()
                batch = []
        if batch:
            process_batch()
        writer.close()
        delta_survivors = self._phase1_delta(query, stats)
        if overlay is None:
            stats.phase1_pruned = len(self.dataset) - scratch.num_records
        else:
            stats.phase1_pruned = (
                overlay.live_count(len(self.dataset))
                - scratch.num_records
                - len(delta_survivors)
            )
        return delta_survivors

    def _phase1_delta(
        self, query: tuple, stats: CostStats
    ) -> list[tuple[int, tuple]]:
        """Phase-1 filter the overlay's delta entries.

        Delta entries always start **fresh** batches, never mixed with
        base candidates — phase 1 is only a sound filter (survivors ⊇
        RS), so keeping the base batch structure untouched leaves cached
        vector phase-1 plans bit-identical to the overlay-free run.
        VectorTRS reuses this scalar appendix after its vector base pass.
        Survivors stay in memory (never written to scratch): deltas do
        not touch the simulated disk, so base IO counters stay pinned.
        All comparisons charge ``stats.checks_delta``.
        """
        overlay = self.overlay
        if overlay is None or not overlay.entries:
            return []
        tables = self._tables()
        m = self.dataset.num_attributes
        budget_bytes = self.budget.pages * self.page_bytes
        survivors: list[tuple[int, tuple]] = []

        tree = self._new_tree()
        batch: list[tuple] = []

        def process_batch() -> None:
            for c_id, c, leaf in batch:
                qd = [tables[i][c[i]][query[i]] for i in range(m)]
                if leaf.count >= 2:
                    # Same duplicate fast path as the base loop.
                    prunable = False
                    checks = m
                    for i in range(m):
                        if qd[i] > 0.0:
                            prunable = True
                            checks = i + 1
                            break
                else:
                    entry = tree.soft_remove(leaf, c_id)
                    prunable, checks = is_prunable(
                        tree, c, qd, tables, order_children=self.order_children
                    )
                    tree.soft_restore(leaf, entry)
                stats.pruner_tests += 1
                stats.checks_delta += checks
                if not prunable:
                    survivors.append((c_id, c))
            stats.phase1_batches += 1

        for d_id, d in overlay.entries:
            leaf = tree.insert(d_id, d)
            batch.append((d_id, d, leaf))
            if tree.memory_bytes(NODE_BYTES, ENTRY_BYTES) >= budget_bytes:
                process_batch()
                tree = self._new_tree()
                batch = []
        if batch:
            process_batch()
        return survivors

    def _phase2(
        self,
        data_file: PageFile,
        scratch: PageFile,
        query: tuple,
        stats: CostStats,
        delta_survivors: list[tuple[int, tuple]] | None = None,
    ) -> list[int]:
        tables = self._tables()
        trace = self.trace_checks
        _, batch_pages = self.budget.split_for_second_phase()
        batch_bytes = batch_pages * self.page_bytes
        result: list[int] = []
        overlay = self.overlay
        tomb = overlay.tombstones if overlay is not None else frozenset()
        delta_entries = overlay.entries if overlay is not None else ()
        pending = delta_survivors or []
        d_idx = 0

        page_idx = 0
        while page_idx < scratch.num_pages or d_idx < len(pending):
            tree = self._new_tree()
            # Fill the tree with first-phase results until the tree's
            # modeled footprint reaches the batch budget.
            while page_idx < scratch.num_pages:
                for record_id, values in scratch.read_page(page_idx):
                    tree.insert(record_id, values)
                page_idx += 1
                if tree.memory_bytes(NODE_BYTES, ENTRY_BYTES) >= batch_bytes:
                    break
            if page_idx >= scratch.num_pages:
                # Top the batch up with delta survivors once the scratch
                # file is exhausted (same insert-then-check rule as the
                # page loop, so every outer iteration makes progress).
                while d_idx < len(pending):
                    rid, vals = pending[d_idx]
                    tree.insert(rid, vals)
                    d_idx += 1
                    if tree.memory_bytes(NODE_BYTES, ENTRY_BYTES) >= batch_bytes:
                        break
            stats.phase2_batches += 1
            stats.db_passes += 1
            for _, dpage in data_file.scan():
                if tree.num_objects == 0:
                    break
                for e_id, e in dpage:
                    if e_id in tomb:
                        continue  # deleted records prune nobody
                    _, checks = prune_tree(tree, e_id, e, query, tables)
                    if checks:
                        stats.charge_phase2(e_id, checks, trace=trace)
                if tree.num_objects == 0:
                    break
            # Every live delta entry streams as a pruner source too —
            # phase 2 is exact only if the whole logical dataset streams.
            for del_id, del_values in delta_entries:
                if tree.num_objects == 0:
                    break
                stats.delta_visits += 1
                _, checks = prune_tree(tree, del_id, del_values, query, tables)
                if checks:
                    stats.checks_delta += checks
            result.extend(record_id for record_id, _ in tree.iter_entries())
        return result
