"""Attribute-order selection for tree-based algorithms.

Section 5.1: "Arranging the attributes in the increasing order of number
of distinct values would enable better group level reasoning due to
larger sized groups towards the root." That heuristic is usually right,
but the best order ultimately depends on the data's value distributions
(an attribute with a few *dominant* values groups better than its raw
cardinality suggests). This module offers the candidate strategies and an
empirical selector that measures them on a sample.

Strategies:

- ``ascending_cardinality`` — the paper's default (domain sizes).
- ``descending_cardinality`` — the adversarial control.
- ``ascending_observed`` — by values actually present (better when
  domains are much larger than the populated value sets, e.g. the
  ForestCover profile).
- ``ascending_entropy`` — by value-distribution entropy: an attribute
  with skewed usage behaves like one with fewer values.
- ``schema`` — the declaration order (baseline).
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Sequence
from dataclasses import dataclass

from repro.data.dataset import Dataset
from repro.data.queries import query_batch
from repro.errors import AlgorithmError
from repro.sorting.keys import (
    ascending_cardinality_order,
    observed_cardinality_order,
    schema_order,
)

__all__ = ["ORDER_STRATEGIES", "attribute_order_for", "OrderChoice", "choose_attribute_order"]


def _ascending_entropy_order(dataset: Dataset) -> list[int]:
    n = max(1, len(dataset))
    keys = []
    for i in range(dataset.num_attributes):
        counter = Counter(r[i] for r in dataset.records)
        entropy = -sum(
            (c / n) * math.log2(c / n) for c in counter.values()
        ) if counter else 0.0
        keys.append((entropy, i))
    keys.sort()
    return [i for _, i in keys]


def _descending_cardinality_order(dataset: Dataset) -> list[int]:
    return list(reversed(ascending_cardinality_order(dataset.schema, dataset)))


ORDER_STRATEGIES = {
    "ascending_cardinality": lambda ds: ascending_cardinality_order(ds.schema, ds),
    "descending_cardinality": _descending_cardinality_order,
    "ascending_observed": observed_cardinality_order,
    "ascending_entropy": _ascending_entropy_order,
    "schema": lambda ds: schema_order(ds.schema),
}


def attribute_order_for(dataset: Dataset, strategy: str) -> list[int]:
    """The attribute order a named strategy produces for ``dataset``."""
    try:
        fn = ORDER_STRATEGIES[strategy]
    except KeyError:
        known = ", ".join(sorted(ORDER_STRATEGIES))
        raise AlgorithmError(f"unknown order strategy {strategy!r}; known: {known}") from None
    return fn(dataset)


@dataclass(frozen=True)
class OrderChoice:
    """Outcome of the empirical order selection."""

    strategy: str
    order: tuple[int, ...]
    measured_checks: dict[str, float]

    def ranking(self) -> list[tuple[str, float]]:
        return sorted(self.measured_checks.items(), key=lambda kv: kv[1])


def choose_attribute_order(
    dataset: Dataset,
    *,
    strategies: Sequence[str] = ("ascending_cardinality", "ascending_observed",
                                 "ascending_entropy"),
    sample_records: int = 800,
    sample_queries: int = 2,
    memory_fraction: float = 0.10,
    page_bytes: int = 256,
    seed: int = 7,
) -> OrderChoice:
    """Measure TRS with each candidate order on a record sample and pick
    the cheapest (by attribute checks).

    Degenerate strategies that produce identical orders are measured once.
    """
    from repro.core.trs import TRS  # local import to avoid a cycle

    if len(dataset) == 0:
        raise AlgorithmError("cannot choose an order for an empty dataset")
    sample_n = min(sample_records, len(dataset))
    sample = dataset.with_records(
        dataset.records[:sample_n], name=f"{dataset.name}[order-sample]"
    )
    queries = query_batch(sample, sample_queries, seed=seed)
    orders: dict[str, tuple[int, ...]] = {}
    for s in strategies:
        orders[s] = tuple(attribute_order_for(sample, s))
    measured: dict[str, float] = {}
    by_order_cache: dict[tuple[int, ...], float] = {}
    for s, order in orders.items():
        if order not in by_order_cache:
            algo = TRS(
                sample,
                attribute_order=list(order),
                memory_fraction=memory_fraction,
                page_bytes=page_bytes,
            )
            checks = sum(algo.run(q).stats.checks for q in queries)
            by_order_cache[order] = checks / len(queries)
        measured[s] = by_order_cache[order]
    best = min(measured, key=measured.get)
    return OrderChoice(strategy=best, order=orders[best], measured_checks=measured)
