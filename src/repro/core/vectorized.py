"""Vectorised (numpy) block reverse skyline.

The scan-based algorithms are embarrassingly data-parallel: the pruner
test is a pointwise comparison of dissimilarity-matrix gathers. This
variant executes BRS's two phases as numpy array programs — identical
result sets, identical IO behaviour and batch structure, wall-clock
orders of magnitude faster in Python. It exists for two reasons:

1. **Scale** — it makes ``REPRO_SCALE``-grown (paper-sized) runs feasible
   without native code.
2. **Methodology** — it demonstrates that the library's cost accounting
   is implementation-independent: vectorised code trades *more* raw
   comparisons (it cannot abort mid-pair; aborts happen at column-block
   granularity) for SIMD throughput, which is precisely why the harness
   reports attribute checks and page IOs alongside wall time.

Phase 1 examines candidate pruners in column blocks, dropping objects
from the row set as soon as a block produces their pruner (the
vectorised early abort). Within a block the domination test composes
*dense* per-attribute masks (``all attrs <=`` AND ``some attr <``) —
the same shape phase 2 uses — rather than propagating surviving pairs
as sparse index vectors: profiling showed the sparse form's
``np.nonzero`` pair lists explode precisely on the dense
low-cardinality workloads where BRS is supposed to shine (most pairs
survive the first attribute), burying the win under index arithmetic.
The ``checks`` counters report the comparisons actually performed, and
``RSResult``s remain bit-identical to BRS's in membership and page IOs.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import CostStats, ReverseSkylineAlgorithm
from repro.kernels.columnar import dissimilarity_matrices
from repro.storage.disk import DiskSimulator
from repro.storage.pagefile import PageFile

__all__ = ["VectorBRS"]

# Candidate-pruner column-block width for phase 1: objects that find a
# pruner in an early block drop out before later blocks are evaluated.
_COL_BLOCK = 256


class VectorBRS(ReverseSkylineAlgorithm):
    """BRS with numpy-vectorised pruning phases."""

    name = "VectorBRS"
    backend = "numpy"

    def _matrices(self) -> list[np.ndarray]:
        return dissimilarity_matrices(self.dataset, self.name)

    def _execute(
        self, disk: DiskSimulator, data_file: PageFile, query: tuple, stats: CostStats
    ) -> list[int]:
        mats = self._matrices()
        scratch = disk.create_file("phase1-results", data_file.codec)
        self._phase1(data_file, scratch, query, mats, stats)
        stats.intermediate_count = scratch.num_records
        return self._phase2(data_file, scratch, query, mats, stats)

    # -- phase 1 -------------------------------------------------------------
    def _phase1(self, data_file, scratch, query, mats, stats) -> None:
        m = self.dataset.num_attributes
        batch_pages = self.budget.pages
        writer = scratch.writer()
        stats.db_passes += 1
        ids: list[int] = []
        rows: list[tuple] = []
        pages_in_batch = 0

        def process_batch() -> None:
            nonlocal ids, rows, pages_in_batch
            if not ids:
                return
            values = np.asarray(rows, dtype=np.intp)
            b = len(ids)
            pruned = np.zeros(b, dtype=bool)
            # Per-attribute column gathers and query distances.
            cols = [values[:, i] for i in range(m)]
            qd = [mats[i][cols[i], query[i]] for i in range(m)]
            # Candidate pruners are examined in COLUMN BLOCKS; objects
            # whose pruner was found in an earlier block drop out of the
            # row set — the vectorised analogue of the scalar early
            # abort. Within a block, dense mask composition: domination
            # = (all attrs <=) AND (some attr <). The pair comparisons
            # go through per-(candidate, value) code tables — only
            # ``cardinality`` columns wide — so each (candidate, object)
            # pair costs one uint8 column-take instead of a float64
            # matrix gather: the low-cardinality case pays per distinct
            # value, not per object.
            undecided = np.arange(b)
            for cstart in range(0, b, _COL_BLOCK):
                if undecided.size == 0:
                    break
                cstop = min(cstart + _COL_BLOCK, b)
                y = np.arange(cstart, cstop)
                stats.pruner_tests += int(undecided.size) * (cstop - cstart)
                leq = None
                lt = None
                for i in range(m):
                    rows_i = mats[i][cols[i][undecided]]  # (U, card)
                    qv = qd[i][undecided][:, None]
                    # 0 = not <=, 1 = == threshold, 2 = strictly <.
                    codes = (rows_i <= qv).view(np.uint8) + (rows_i < qv)
                    pair = codes[:, cols[i][y]]
                    stats.checks_phase1 += int(undecided.size) * (cstop - cstart)
                    if leq is None:
                        leq, lt = pair > 0, pair > 1
                    else:
                        leq &= pair > 0
                        lt |= pair > 1
                    if not leq.any():
                        break  # no pair can dominate; skip later attrs
                pruner = leq & lt
                # Self-pairs never prune (identity, not value).
                in_block = (undecided >= cstart) & (undecided < cstop)
                pruner[np.flatnonzero(in_block), undecided[in_block] - cstart] = False
                newly = pruner.any(axis=1)
                if newly.any():
                    pruned[undecided[newly]] = True
                    undecided = undecided[~newly]
            for keep_id, keep_values, is_pruned in zip(ids, rows, pruned):
                if not is_pruned:
                    writer.append(keep_id, keep_values)
            stats.phase1_batches += 1
            ids, rows = [], []
            pages_in_batch = 0

        for _, page in data_file.scan():
            for record_id, values in page:
                ids.append(record_id)
                rows.append(values)
            pages_in_batch += 1
            if pages_in_batch == batch_pages:
                process_batch()
        process_batch()
        writer.close()
        stats.phase1_pruned = len(self.dataset) - scratch.num_records

    # -- phase 2 -------------------------------------------------------------
    def _phase2(self, data_file, scratch, query, mats, stats) -> list[int]:
        m = self.dataset.num_attributes
        _, batch_pages = self.budget.split_for_second_phase()
        result: list[int] = []
        page_idx = 0
        # The data file is re-scanned once per alive batch; the pure
        # list->array conversion of each page is cached across batches
        # (the scan itself — and its IO charging — is not short-cut).
        page_arrays: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        while page_idx < scratch.num_pages:
            rbatch: list[tuple[int, tuple]] = []
            last = min(page_idx + batch_pages, scratch.num_pages)
            for pid in range(page_idx, last):
                rbatch.extend(scratch.read_page(pid))
            page_idx = last
            stats.phase2_batches += 1
            stats.db_passes += 1
            alive_ids = np.asarray([rid for rid, _ in rbatch], dtype=np.intp)
            alive_vals = np.asarray([v for _, v in rbatch], dtype=np.intp)
            qd = [
                mats[i][alive_vals[:, i], query[i]] for i in range(m)
            ]
            # Per-(alive, value) domination code tables — 0 = not <=,
            # 1 = == threshold, 2 = strictly < — built once per alive
            # batch so each data page costs one uint8 column-take per
            # attribute instead of a float64 pair gather.
            codes = []
            for i in range(m):
                rows_i = mats[i][alive_vals[:, i]]
                qcol = qd[i][:, None]
                codes.append((rows_i <= qcol).view(np.uint8) + (rows_i < qcol))
            alive_mask = np.ones(len(rbatch), dtype=bool)
            for dpid, dpage in data_file.scan():
                if not alive_mask.any():
                    break
                cached = page_arrays.get(dpid)
                if cached is None:
                    cached = page_arrays[dpid] = (
                        np.asarray([rid for rid, _ in dpage], dtype=np.intp),
                        np.asarray([v for _, v in dpage], dtype=np.intp),
                    )
                e_ids, e_vals = cached
                live = np.flatnonzero(alive_mask)
                leq = None
                lt = None
                for i in range(m):
                    pair = codes[i][live][:, e_vals[:, i]]
                    if leq is None:
                        leq, lt = pair > 0, pair > 1
                    else:
                        # Domination = (all attrs <=) and (some attr <);
                        # strict-< implies <=, so OR-ing strictness and
                        # AND-ing the <= masks composes correctly.
                        leq &= pair > 0
                        lt |= pair > 1
                stats.checks_phase2 += live.size * e_ids.size * m
                stats.pruner_tests += live.size * e_ids.size
                pruner = leq & lt
                # Identity exclusion: same record id never prunes itself.
                same = alive_ids[live][:, None] == e_ids[None, :]
                pruner &= ~same
                alive_mask[live[pruner.any(axis=1)]] = False
                if not alive_mask.any():
                    break  # before the scan fetches another page
            result.extend(int(rid) for rid in alive_ids[alive_mask])
        return result
