"""Vectorised (numpy) block reverse skyline.

The scan-based algorithms are embarrassingly data-parallel: the pruner
test is a pointwise comparison of dissimilarity-matrix gathers. This
variant executes BRS's two phases as numpy array programs — identical
result sets, identical IO behaviour and batch structure, wall-clock
orders of magnitude faster in Python. It exists for two reasons:

1. **Scale** — it makes ``REPRO_SCALE``-grown (paper-sized) runs feasible
   without native code.
2. **Methodology** — it demonstrates that the library's cost accounting
   is implementation-independent: vectorised code trades *more* raw
   comparisons (it cannot abort mid-pair; aborts happen at column-block
   granularity) for SIMD throughput, which is precisely why the harness
   reports attribute checks and page IOs alongside wall time.

Phase 1 examines candidate pruners in column blocks, dropping objects
from the row set as soon as a block produces their pruner (the
vectorised early abort), and propagates surviving pairs as sparse index
vectors across the remaining attributes. The ``checks`` counters report
the comparisons actually performed, and ``RSResult``s remain
bit-identical to BRS's in membership and page IOs.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import CostStats, ReverseSkylineAlgorithm
from repro.kernels.columnar import dissimilarity_matrices
from repro.storage.disk import DiskSimulator
from repro.storage.pagefile import PageFile

__all__ = ["VectorBRS"]

# Candidate-pruner column-block width for phase 1: objects that find a
# pruner in an early block drop out before later blocks are evaluated.
_COL_BLOCK = 256


class VectorBRS(ReverseSkylineAlgorithm):
    """BRS with numpy-vectorised pruning phases."""

    name = "VectorBRS"
    backend = "numpy"

    def _matrices(self) -> list[np.ndarray]:
        return dissimilarity_matrices(self.dataset, self.name)

    def _execute(
        self, disk: DiskSimulator, data_file: PageFile, query: tuple, stats: CostStats
    ) -> list[int]:
        mats = self._matrices()
        scratch = disk.create_file("phase1-results", data_file.codec)
        self._phase1(data_file, scratch, query, mats, stats)
        stats.intermediate_count = scratch.num_records
        return self._phase2(data_file, scratch, query, mats, stats)

    # -- phase 1 -------------------------------------------------------------
    def _phase1(self, data_file, scratch, query, mats, stats) -> None:
        m = self.dataset.num_attributes
        batch_pages = self.budget.pages
        writer = scratch.writer()
        stats.db_passes += 1
        ids: list[int] = []
        rows: list[tuple] = []
        pages_in_batch = 0

        def process_batch() -> None:
            nonlocal ids, rows, pages_in_batch
            if not ids:
                return
            values = np.asarray(rows, dtype=np.intp)
            b = len(ids)
            pruned = np.zeros(b, dtype=bool)
            # Per-attribute column gathers and query distances.
            cols = [values[:, i] for i in range(m)]
            qd = [mats[i][cols[i], query[i]] for i in range(m)]
            # Candidate pruners are examined in COLUMN BLOCKS; objects
            # whose pruner was found in an earlier block drop out of the
            # row set — the vectorised analogue of the scalar early abort.
            undecided = np.arange(b)
            for cstart in range(0, b, _COL_BLOCK):
                if undecided.size == 0:
                    break
                cstop = min(cstart + _COL_BLOCK, b)
                y = np.arange(cstart, cstop)
                d0 = mats[0][cols[0][undecided][:, None], cols[0][y][None, :]]
                q0 = qd[0][undecided][:, None]
                leq = d0 <= q0
                # Self-pairs never prune (identity, not value).
                in_block = (undecided >= cstart) & (undecided < cstop)
                leq[np.flatnonzero(in_block), undecided[in_block] - cstart] = False
                stats.checks_phase1 += int(undecided.size) * (cstop - cstart)
                stats.pruner_tests += int(undecided.size) * (cstop - cstart)
                pr, pc = np.nonzero(leq)
                strict = d0[pr, pc] < qd[0][undecided[pr]]
                for i in range(1, m):
                    if pr.size == 0:
                        break
                    vals = mats[i][cols[i][undecided[pr]], cols[i][y[pc]]]
                    qv = qd[i][undecided[pr]]
                    stats.checks_phase1 += int(pr.size)
                    keep = vals <= qv
                    strict = strict[keep] | (vals[keep] < qv[keep])
                    pr = pr[keep]
                    pc = pc[keep]
                if pr.size:
                    newly = np.unique(pr[strict])
                    if newly.size:
                        pruned[undecided[newly]] = True
                        mask = np.ones(undecided.size, dtype=bool)
                        mask[newly] = False
                        undecided = undecided[mask]
            for keep_id, keep_values, is_pruned in zip(ids, rows, pruned):
                if not is_pruned:
                    writer.append(keep_id, keep_values)
            stats.phase1_batches += 1
            ids, rows = [], []
            pages_in_batch = 0

        for _, page in data_file.scan():
            for record_id, values in page:
                ids.append(record_id)
                rows.append(values)
            pages_in_batch += 1
            if pages_in_batch == batch_pages:
                process_batch()
        process_batch()
        writer.close()
        stats.phase1_pruned = len(self.dataset) - scratch.num_records

    # -- phase 2 -------------------------------------------------------------
    def _phase2(self, data_file, scratch, query, mats, stats) -> list[int]:
        m = self.dataset.num_attributes
        _, batch_pages = self.budget.split_for_second_phase()
        result: list[int] = []
        page_idx = 0
        while page_idx < scratch.num_pages:
            rbatch: list[tuple[int, tuple]] = []
            last = min(page_idx + batch_pages, scratch.num_pages)
            for pid in range(page_idx, last):
                rbatch.extend(scratch.read_page(pid))
            page_idx = last
            stats.phase2_batches += 1
            stats.db_passes += 1
            alive_ids = np.asarray([rid for rid, _ in rbatch], dtype=np.intp)
            alive_vals = np.asarray([v for _, v in rbatch], dtype=np.intp)
            qd = [
                mats[i][alive_vals[:, i], query[i]] for i in range(m)
            ]
            alive_mask = np.ones(len(rbatch), dtype=bool)
            for _, dpage in data_file.scan():
                if not alive_mask.any():
                    break
                e_ids = np.asarray([rid for rid, _ in dpage], dtype=np.intp)
                e_vals = np.asarray([v for _, v in dpage], dtype=np.intp)
                live = np.flatnonzero(alive_mask)
                leq = None
                lt = None
                for i in range(m):
                    d = mats[i][alive_vals[live, i][:, None], e_vals[None, :, i]]
                    qcol = qd[i][live][:, None]
                    cond_leq = d <= qcol
                    cond_lt = d < qcol
                    if leq is None:
                        leq, lt = cond_leq, cond_lt
                    else:
                        # Domination = (all attrs <=) and (some attr <);
                        # strict-< implies <=, so OR-ing strictness and
                        # AND-ing the <= masks composes correctly.
                        leq &= cond_leq
                        lt |= cond_lt
                stats.checks_phase2 += live.size * e_ids.size * m
                stats.pruner_tests += live.size * e_ids.size
                pruner = leq & lt
                # Identity exclusion: same record id never prunes itself.
                same = alive_ids[live][:, None] == e_ids[None, :]
                pruner &= ~same
                alive_mask[live[pruner.any(axis=1)]] = False
                if not alive_mask.any():
                    break  # before the scan fetches another page
            result.extend(int(rid) for rid in alive_ids[alive_mask])
        return result
