"""Tile-ordered variants T-SRS and T-TRS (paper Section 5.6).

A multi-attribute sort privileges the attributes at the head of the sort
order: subset queries that drop those attributes lose the clustering and
SRS degrades badly. Laying the data out as Z-ordered tiles (multi-attribute
sort *within* each tile) is "fair to all the dimensions": T-SRS and T-TRS
run the exact SRS/TRS query machinery over that layout and stay flat
across attribute-subset choices (Figure 19).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.srs import SRS
from repro.core.trs import TRS
from repro.data.dataset import Dataset
from repro.sorting.keys import multiattribute_key
from repro.storage.disk import DEFAULT_PAGE_BYTES, MemoryBudget
from repro.tiling.tiles import TileGrid

__all__ = ["TSRS", "TTRS"]


def _tiled_layout(
    dataset: Dataset, tiles_per_dim: int, attribute_order: Sequence[int]
) -> list[tuple[int, tuple]]:
    grid = TileGrid.for_dataset(dataset, tiles_per_dim)
    inner = multiattribute_key(attribute_order)
    return sorted(
        enumerate(dataset.records),
        key=lambda entry: (grid.z_index(entry[1]), inner(entry[1])),
    )


class TSRS(SRS):
    """SRS query processing over the Z-ordered tile layout."""

    name = "T-SRS"

    def __init__(
        self,
        dataset: Dataset,
        *,
        tiles_per_dim: int = 4,
        attribute_order: Sequence[int] | None = None,
        memory_fraction: float = 0.10,
        budget: MemoryBudget | None = None,
        page_bytes: int = DEFAULT_PAGE_BYTES,
        trace_checks: bool = False,
    ) -> None:
        super().__init__(
            dataset,
            attribute_order=attribute_order,
            memory_fraction=memory_fraction,
            budget=budget,
            page_bytes=page_bytes,
            trace_checks=trace_checks,
        )
        self.tiles_per_dim = tiles_per_dim

    def _build_layout(self) -> list[tuple[int, tuple]]:
        return _tiled_layout(self.dataset, self.tiles_per_dim, self.attribute_order)


class TTRS(TRS):
    """TRS query processing over the Z-ordered tile layout."""

    name = "T-TRS"

    def __init__(
        self,
        dataset: Dataset,
        *,
        tiles_per_dim: int = 4,
        attribute_order: Sequence[int] | None = None,
        order_children: bool = True,
        memory_fraction: float = 0.10,
        budget: MemoryBudget | None = None,
        page_bytes: int = DEFAULT_PAGE_BYTES,
        trace_checks: bool = False,
    ) -> None:
        super().__init__(
            dataset,
            attribute_order=attribute_order,
            order_children=order_children,
            memory_fraction=memory_fraction,
            budget=budget,
            page_bytes=page_bytes,
            trace_checks=trace_checks,
        )
        self.tiles_per_dim = tiles_per_dim

    def _build_layout(self) -> list[tuple[int, tuple]]:
        return _tiled_layout(self.dataset, self.tiles_per_dim, self.attribute_order)
