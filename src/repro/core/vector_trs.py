"""Vectorised (numpy) TRS over the columnar AL-Tree.

``VectorTRS`` is TRS — Algorithms 3–5 over the multi-attribute-sorted
layout — with both pruning phases executed through the
:mod:`repro.kernels` frontier kernels instead of node-at-a-time Python
traversals:

- **Batch structure is inherited, not re-derived.** Each batch is still
  accumulated in the pointer :class:`~repro.altree.tree.ALTree` under
  the same modeled memory budget, so batch boundaries, database passes
  and every page IO are bit-identical to TRS. The tree is then flattened
  once per batch (:class:`~repro.kernels.columnar.ColumnarALTree`) and
  all traversals for that batch run on the flat arrays.
- **Phase 1** answers ``IsPrunable`` for the *whole batch at once*:
  one frontier sweep carries every (candidate, node) pair down the
  levels, with the candidate's own soft-removed path handled by an
  effective-descendant subtraction. The exact-duplicate fast path is
  reproduced bit-for-bit (including its check counts).
- **Phase 2** answers ``Prune`` for a *whole scanned page at once*,
  reusing the per-node ``d(u, q)`` thresholds gathered once per
  (tree, query) — the scalar code recomputes them per scanned object.

Results and page-IO counts are bit-identical to TRS; ``checks_*``
follow the frontier accounting documented in ``docs/performance.md``
(no early abort, no promising-subtree order ⇒ at least the scalar
counts). ``tests/test_kernels.py`` enforces the equivalence
differentially on randomized non-metric workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.base import CostStats
from repro.core.trs import ENTRY_BYTES, NODE_BYTES, TRS
from repro.kernels.columnar import ColumnarALTree, dissimilarity_matrices
from repro.kernels.frontier import (
    batch_is_prunable,
    candidate_paths,
    leaf_min_tables,
    query_distances,
    query_node_rows,
    scan_prune,
)
from repro.kernels.plancache import PlanKey, plan_cache, plan_fingerprint
from repro.obs import hooks as _obs
from repro.storage.pagefile import PageFile

__all__ = ["VectorTRS", "export_plan", "import_plan"]


@dataclass(frozen=True)
class _Phase1Batch:
    """One phase-1 batch, fully preprocessed for query replay.

    Everything here depends only on (layout, budget, page size) — never
    on the query — so it is built once per layout and reused by every
    subsequent query on the same instance. ``trigger_page`` records the
    data page whose insertion tripped the memory budget (``None`` for
    the trailing partial batch), so replayed runs process each batch at
    the *same scan position* as TRS does: the disk head model classifies
    sequential vs random IO globally, and moving scratch-file writes
    relative to data-file reads would change those counts.
    """

    trigger_page: int | None
    col: ColumnarALTree
    entries: list[tuple]  # (record_id, values) in batch order
    vals: np.ndarray  # B x m value ids
    dup: np.ndarray  # B bools: exact duplicate present in batch
    rest: np.ndarray  # indices of non-duplicate candidates
    rest_vals: np.ndarray  # vals[rest]
    rest_paths: np.ndarray  # candidate_paths(col, leaf_idx[rest])
    leaf_mins: tuple[np.ndarray, np.ndarray] | None  # leaf_min_tables(col)


class VectorTRS(TRS):
    """TRS with frontier-vectorised pruning phases (numpy backend)."""

    name = "VectorTRS"
    backend = "numpy"

    # -- plan-cache plumbing -------------------------------------------------
    # Two cache tiers serve the query-independent artifacts: per-instance
    # attributes (L1, identity-checked against the prepared layout) and
    # the process-wide repro.kernels.plancache (L2, content-keyed), so a
    # second engine/executor/forked worker over the same layout skips the
    # build entirely.
    def _plan_fp(self) -> str:
        fp = getattr(self, "_plan_fp_cache", None)
        if fp is None or self._plan_fp_layout is not self._layout:
            fp = plan_fingerprint(self.dataset, self._layout)
            self._plan_fp_cache = fp
            self._plan_fp_layout = self._layout
        return fp

    def _matrices(self) -> list[np.ndarray]:
        mats = getattr(self, "_mats_cache", None)
        if mats is None:
            if getattr(self, "_layout", None) is not None:
                mats = plan_cache().get_or_build(
                    PlanKey("dissim", self._plan_fp()),
                    lambda: dissimilarity_matrices(self.dataset, self.name),
                )
            else:  # pre-prepare call: no layout to key on yet
                mats = dissimilarity_matrices(self.dataset, self.name)
            self._mats_cache = mats
        return mats

    # -- phase-1 batch cache -------------------------------------------------
    def _phase1_batches(self, data_file: PageFile) -> list[_Phase1Batch]:
        """The phase-1 batch structure, flattened and preprocessed.

        TRS rebuilds its AL-Trees from the scan on *every* query, yet
        nothing about them depends on the query: batch boundaries come
        from the modeled memory budget, tree shape from the layout. So
        the first query on a layout builds the pointer trees once,
        flattens each batch to a :class:`ColumnarALTree`, and snapshots
        the per-candidate arrays; subsequent queries replay the cached
        batches and pay only for the query-dependent gathers. The built
        plan is also published to the process-wide plan cache, keyed by
        content fingerprint plus (budget, page size).
        """
        cached = getattr(self, "_p1_cache", None)
        if cached is not None and self._p1_cache_layout is self._layout:
            return cached
        key = PlanKey(
            "phase1", self._plan_fp(), (self.budget.pages, self.page_bytes)
        )
        shared = plan_cache().get(key)
        if shared is not None:
            self._p1_cache = shared
            self._p1_cache_layout = self._layout
            return shared
        budget_bytes = self.budget.pages * self.page_bytes
        batches: list[_Phase1Batch] = []
        tree = self._new_tree()
        batch: list[tuple] = []  # (record_id, values, leaf)

        # Iterate raw pages without charging IO: the cache build is an
        # offline preprocessing step; every query still scans (and is
        # billed for) the data file itself in _phase1.
        for page_id in range(data_file.num_pages):
            for record_id, values in data_file.peek_page(page_id):
                leaf = tree.insert(record_id, values)
                batch.append((record_id, values, leaf))
            if tree.memory_bytes(NODE_BYTES, ENTRY_BYTES) >= budget_bytes:
                batches.append(self._snapshot_batch(tree, batch, page_id))
                tree = self._new_tree()
                batch = []
        if batch:
            batches.append(self._snapshot_batch(tree, batch, None))
        plan_cache().put(key, batches)
        self._p1_cache = batches
        self._p1_cache_layout = self._layout
        return batches

    def _snapshot_batch(
        self, tree, batch: list[tuple], trigger_page: int | None
    ) -> _Phase1Batch:
        """Flatten one accumulated phase-1 batch for query replay."""
        col = ColumnarALTree.from_tree(tree)
        vals = np.asarray([c for _, c, _ in batch], dtype=np.intp).reshape(
            len(batch), -1
        )
        leaf_idx = col.leaf_indices_for([leaf for _, _, leaf in batch])
        dup = col.leaf_count[leaf_idx] >= 2
        rest = np.flatnonzero(~dup)
        return _Phase1Batch(
            trigger_page=trigger_page,
            col=col,
            entries=[(c_id, c) for c_id, c, _ in batch],
            vals=vals,
            dup=dup,
            rest=rest,
            rest_vals=vals[rest],
            rest_paths=candidate_paths(col, leaf_idx[rest]),
            leaf_mins=leaf_min_tables(col, self._matrices(), self.attribute_order),
        )

    def _delta_batches(self) -> list[_Phase1Batch]:
        """The overlay's delta entries as preprocessed phase-1 batches.

        Mirrors the scalar appendix's batching rule (fresh trees, never
        mixed with base candidates, same memory budget), but flattens the
        trees once per overlay instead of walking them per query. Keyed
        on overlay identity, so epoch clones (``with_overlay``) rebuild
        while repeat queries within an epoch replay."""
        cached = getattr(self, "_delta_cache", None)
        if cached is not None and self._delta_cache_overlay is self.overlay:
            return cached
        budget_bytes = self.budget.pages * self.page_bytes
        batches: list[_Phase1Batch] = []
        tree = self._new_tree()
        batch: list[tuple] = []
        for d_id, d in self.overlay.entries:
            leaf = tree.insert(d_id, d)
            batch.append((d_id, d, leaf))
            if tree.memory_bytes(NODE_BYTES, ENTRY_BYTES) >= budget_bytes:
                batches.append(self._snapshot_batch(tree, batch, None))
                tree = self._new_tree()
                batch = []
        if batch:
            batches.append(self._snapshot_batch(tree, batch, None))
        self._delta_cache = batches
        self._delta_cache_overlay = self.overlay
        return batches

    def _scan_arrays(self, data_file: PageFile):
        """The data file as flat arrays in scan order — ``(ids, vals,
        page)`` with ``page[j]`` the page holding record ``j``. Built once
        per layout (uncharged peek; every query still pays for its own
        scans), shared by phase 2's whole-scan kernel, and published to
        the process-wide plan cache.
        """
        cached = getattr(self, "_scan_cache", None)
        if cached is not None and self._scan_cache_layout is self._layout:
            return cached
        key = PlanKey("scan", self._plan_fp(), (self.page_bytes,))
        shared = plan_cache().get(key)
        if shared is not None:
            self._scan_cache = shared
            self._scan_cache_layout = self._layout
            return shared
        ids: list[int] = []
        vals: list[tuple] = []
        pages: list[int] = []
        for page_id in range(data_file.num_pages):
            for record_id, values in data_file.peek_page(page_id):
                ids.append(record_id)
                vals.append(values)
                pages.append(page_id)
        arrays = (
            np.asarray(ids, dtype=np.intp),
            np.asarray(vals, dtype=np.intp).reshape(
                len(ids), self.dataset.num_attributes
            ),
            np.asarray(pages, dtype=np.intp),
        )
        plan_cache().put(key, arrays)
        self._scan_cache = arrays
        self._scan_cache_layout = self._layout
        return arrays

    # -- phase 1 -------------------------------------------------------------
    def _phase1(
        self, data_file: PageFile, scratch: PageFile, query: tuple, stats: CostStats
    ) -> list[tuple[int, tuple]]:
        overlay = self.overlay
        if overlay is not None and overlay.tombstones:
            # Tombstones would have to be soft-removed inside the baked
            # batch trees of every cached plan (a per-epoch plan rebuild,
            # exactly what surgical invalidation avoids); delegate the
            # phase to the scalar path, which skips them while batches
            # accumulate. The cached vector plans stay valid for
            # overlay-free queries on the same layout.
            return TRS._phase1(self, data_file, scratch, query, stats)
        mats = self._matrices()
        order = self.attribute_order
        m = self.dataset.num_attributes
        trace = self.trace_checks
        writer = scratch.writer()
        stats.db_passes += 1
        batches = self._phase1_batches(data_file)

        def process_batch(pb: _Phase1Batch) -> None:
            with _obs.span("kernel.phase1", backend=self.backend) as span:
                b = len(pb.entries)
                qd = query_distances(mats, pb.vals, query)
                prunable = np.zeros(b, dtype=bool)
                checks = np.zeros(b, dtype=np.int64)
                # Exact-duplicate fast path (same decision AND same check
                # accounting as TRS): a duplicate of c sits at distance 0
                # everywhere, so c is prunable iff the query is strictly
                # farther on some attribute — found at the first qd > 0.
                if pb.dup.any():
                    positive = qd[pb.dup] > 0.0
                    hit = positive.any(axis=1)
                    prunable[pb.dup] = hit
                    checks[pb.dup] = np.where(
                        hit, np.argmax(positive, axis=1) + 1, m
                    )
                if pb.rest.size:
                    prunable[pb.rest], checks[pb.rest] = batch_is_prunable(
                        pb.col,
                        mats,
                        order,
                        pb.rest_vals,
                        qd[pb.rest],
                        pb.rest_paths,
                        leaf_mins=pb.leaf_mins,
                    )
                stats.pruner_tests += b
                stats.checks_phase1 += int(checks.sum())
                if trace:
                    for (c_id, _), c_checks in zip(pb.entries, checks):
                        stats.per_object_phase1[c_id] = (
                            stats.per_object_phase1.get(c_id, 0) + int(c_checks)
                        )
                for (c_id, c), is_pruned in zip(pb.entries, prunable):
                    if not is_pruned:
                        writer.append(c_id, c)
                stats.phase1_batches += 1
                span.annotate("candidates", b)
                span.annotate("nodes", sum(int(k.size) for k in pb.col.keys))

        # Replay: scan the data file (charging the same sequential reads
        # as TRS) and fire each cached batch at its recorded trigger
        # position, so scratch writes interleave with data reads exactly
        # as in the scalar run.
        next_batch = 0
        for page_id, _page in data_file.scan():
            if (
                next_batch < len(batches)
                and batches[next_batch].trigger_page == page_id
            ):
                process_batch(batches[next_batch])
                next_batch += 1
        while next_batch < len(batches):
            process_batch(batches[next_batch])
            next_batch += 1
        writer.close()
        # Pure-insert overlay: the vector base pass above replays cached
        # plans unchanged; the delta entries run through their own
        # preprocessed batches (fresh trees, never mixed with base
        # candidates, every comparison charged to checks_delta).
        delta_survivors = self._phase1_delta_vec(query, stats)
        if overlay is None:
            stats.phase1_pruned = len(self.dataset) - scratch.num_records
        else:
            stats.phase1_pruned = (
                overlay.live_count(len(self.dataset))
                - scratch.num_records
                - len(delta_survivors)
            )
        return delta_survivors

    def _phase1_delta_vec(
        self, query: tuple, stats: CostStats
    ) -> list[tuple[int, tuple]]:
        """Vectorised form of :meth:`TRS._phase1_delta`: the same batch
        structure and pruning decisions, answered by the frontier kernel
        over the memoised delta batches instead of per-entry tree walks.
        """
        overlay = self.overlay
        if overlay is None or not overlay.entries:
            return []
        mats = self._matrices()
        order = self.attribute_order
        m = self.dataset.num_attributes
        survivors: list[tuple[int, tuple]] = []
        for pb in self._delta_batches():
            b = len(pb.entries)
            qd = query_distances(mats, pb.vals, query)
            prunable = np.zeros(b, dtype=bool)
            checks = np.zeros(b, dtype=np.int64)
            if pb.dup.any():
                positive = qd[pb.dup] > 0.0
                hit = positive.any(axis=1)
                prunable[pb.dup] = hit
                checks[pb.dup] = np.where(
                    hit, np.argmax(positive, axis=1) + 1, m
                )
            if pb.rest.size:
                prunable[pb.rest], checks[pb.rest] = batch_is_prunable(
                    pb.col,
                    mats,
                    order,
                    pb.rest_vals,
                    qd[pb.rest],
                    pb.rest_paths,
                    leaf_mins=pb.leaf_mins,
                )
            stats.pruner_tests += b
            stats.checks_delta += int(checks.sum())
            stats.phase1_batches += 1
            for (d_id, d), is_pruned in zip(pb.entries, prunable):
                if not is_pruned:
                    survivors.append((d_id, d))
        return survivors

    # -- phase 2 -------------------------------------------------------------
    def _phase2(
        self,
        data_file: PageFile,
        scratch: PageFile,
        query: tuple,
        stats: CostStats,
        delta_survivors: list[tuple[int, tuple]] | None = None,
    ) -> list[int]:
        overlay = self.overlay
        mats = self._matrices()
        order = self.attribute_order
        trace = self.trace_checks
        _, batch_pages = self.budget.split_for_second_phase()
        batch_bytes = batch_pages * self.page_bytes
        e_ids_all, e_vals_all, e_page = self._scan_arrays(data_file)
        # Overlay adjustments on the *pruner* side: tombstoned records
        # prune nobody (their rows drop out of the cached scan arrays;
        # their pages are still read, so IO counters stay pinned), and
        # every live delta entry streams as an extra pruner source after
        # the base scan — one synthetic "page" per delta entry, so the
        # same first-kill machinery reproduces the scalar visit order.
        d_ids = d_vals = None
        if overlay is not None:
            if overlay.tombstones:
                tomb = np.fromiter(
                    overlay.tombstones, dtype=np.intp,
                    count=len(overlay.tombstones),
                )
                keep = ~np.isin(e_ids_all, tomb)
                e_ids_all = e_ids_all[keep]
                e_vals_all = e_vals_all[keep]
                e_page = e_page[keep]
            if overlay.entries:
                d_ids = np.asarray(
                    [rid for rid, _ in overlay.entries], dtype=np.intp
                )
                d_vals = np.asarray(
                    [values for _, values in overlay.entries], dtype=np.intp
                ).reshape(len(overlay.entries), self.dataset.num_attributes)
        pending = delta_survivors or []
        d_idx = 0
        result: list[int] = []

        page_idx = 0
        while page_idx < scratch.num_pages or d_idx < len(pending):
            tree = self._new_tree()
            d_list: list[tuple[int, tuple]] = []
            # Same fill rule as TRS: identical batch boundaries, identical
            # random reads from the first-phase scratch file.
            while page_idx < scratch.num_pages:
                for record_id, values in scratch.read_page(page_idx):
                    tree.insert(record_id, values)
                page_idx += 1
                if tree.memory_bytes(NODE_BYTES, ENTRY_BYTES) >= batch_bytes:
                    break
            # Flatten the base candidates *before* the delta top-up: the
            # frontier kernel sweeps only them. Delta survivors are
            # typically weak candidates whose long-lived frontier paths
            # would dominate the sweep, yet a first-kill page is a
            # per-entry property (value-based, order-independent), so
            # theirs come from a direct whole-scan test below instead —
            # same kill pages, same stop page, same IO.
            col = ColumnarALTree.from_tree(tree)
            if page_idx >= scratch.num_pages:
                # Top the batch up with delta survivors once the scratch
                # file is exhausted (same insert-then-check rule as the
                # page loop, so every outer iteration makes progress; the
                # modeled memory tree holds base and delta candidates
                # alike, keeping batch boundaries bit-identical to TRS).
                while d_idx < len(pending):
                    rid, vals = pending[d_idx]
                    tree.insert(rid, vals)
                    d_list.append((rid, vals))
                    d_idx += 1
                    if tree.memory_bytes(NODE_BYTES, ENTRY_BYTES) >= batch_bytes:
                        break
            stats.phase2_batches += 1
            stats.db_passes += 1
            with _obs.span("kernel.phase2", backend=self.backend) as span:
                num_pages = data_file.num_pages
                if col.entry_ids.size:
                    q_rows = query_node_rows(col, mats, order, query)
                    # One whole-scan sweep decides every removal: phase-2
                    # deletions are value-based and monotone, so each entry
                    # dies at its first identity-valid dominator regardless
                    # of per-page processing order.
                    first_kill, checks = scan_prune(
                        col, mats, order, q_rows, e_ids_all, e_vals_all, e_page
                    )
                    if e_page.size:
                        # The kernel's "never killed" sentinel is one past
                        # the last *pruner-carrying* page, which under
                        # tombstones can sit before the file's true last
                        # page; renormalise so survival tests against
                        # stop_page stay exact.
                        kernel_np = int(e_page[-1]) + 1
                        if kernel_np < num_pages:
                            first_kill = np.where(
                                first_kill >= kernel_np, num_pages, first_kill
                            )
                    else:
                        first_kill = np.full(
                            col.entry_ids.size, num_pages, dtype=np.intp
                        )
                else:
                    first_kill = np.empty(0, dtype=np.intp)
                    checks = np.zeros(e_ids_all.size, dtype=np.int64)
                if d_list:
                    # First-kill pages of the batch's delta candidates:
                    # scanned object e kills candidate t iff e is no
                    # farther from t than the query on every attribute
                    # and strictly closer on one (ids can never collide —
                    # delta ids live past the base). Earliest such e's
                    # page, in scan order.
                    t_ids = np.asarray([rid for rid, _ in d_list], dtype=np.intp)
                    t_vals = np.asarray(
                        [vals for _, vals in d_list], dtype=np.intp
                    ).reshape(len(d_list), -1)
                    fk_delta = np.full(t_ids.size, num_pages, dtype=np.intp)
                    # Chunked over scan order with early exit: weak
                    # candidates (the common case — they lost phase 1's
                    # pruning only against the deltas) die within the
                    # first few pages, so most queries touch a fraction
                    # of the scan arrays.
                    undecided = np.arange(t_ids.size)
                    for s in range(0, e_page.size, 2048):
                        e_vals_c = e_vals_all[s : s + 2048]
                        sub_vals = t_vals[undecided]
                        all_le = np.ones(
                            (undecided.size, e_vals_c.shape[0]), dtype=bool
                        )
                        any_lt = np.zeros_like(all_le)
                        for i, mat in enumerate(mats):
                            rows = mat[sub_vals[:, i]]
                            d_te = rows[:, e_vals_c[:, i]]
                            d_tq = rows[:, query[i]][:, None]
                            all_le &= d_te <= d_tq
                            any_lt |= d_te < d_tq
                        killd = all_le & any_lt
                        hit = killd.any(axis=1)
                        if hit.any():
                            fk_delta[undecided[hit]] = e_page[
                                s + killd[hit].argmax(axis=1)
                            ]
                            undecided = undecided[~hit]
                            if not undecided.size:
                                break
                else:
                    t_ids = np.empty(0, dtype=np.intp)
                    fk_delta = np.empty(0, dtype=np.intp)
                all_fk = np.concatenate([first_kill, fk_delta])
                if all_fk.size and int(all_fk.max()) < num_pages:
                    # Every entry dies: the scalar scan finds its tree
                    # empty right after the latest first-kill page and
                    # stops there (before fetching another page).
                    stop_page = int(all_fk.max())
                else:
                    stop_page = num_pages - 1
                alive = first_kill > stop_page
                # Replay the charged scan to the same stopping page, so
                # sequential/random IO classification matches TRS exactly.
                for page_id, _dpage in data_file.scan():
                    if page_id == stop_page:
                        break
                read = e_page <= stop_page
                stats.checks_phase2 += int(checks[read].sum())
                if trace:
                    for e_id, e_checks in zip(e_ids_all[read], checks[read]):
                        if e_checks:
                            stats.per_object_phase2[int(e_id)] = (
                                stats.per_object_phase2.get(int(e_id), 0)
                                + int(e_checks)
                            )
                if t_ids.size:
                    # Comparisons against delta candidates are overlay-
                    # attributable (the scalar run charges them through
                    # its combined tree walk; the split keeps them out of
                    # the base-only kernel, so account for them here).
                    stats.checks_delta += (
                        int(read.sum()) * len(mats) * t_ids.size
                    )
                survivor_ids = np.concatenate(
                    [col.entry_ids[alive], t_ids[fk_delta > stop_page]]
                )
                if d_ids is not None and survivor_ids.size:
                    # Delta pruner sweep over the base-scan survivors.
                    # Both sets are small (deltas are bounded by the
                    # compaction threshold, survivors by the batch's
                    # result contribution), so a direct pairwise
                    # dominance test beats rebuilding a sub-tree: delta
                    # d removes survivor t iff d is no farther from t
                    # than the query on every attribute, strictly closer
                    # on one, and is not t's own record. Visit accounting
                    # mirrors the scalar stream order: deltas are read
                    # one at a time until the batch is exhausted or
                    # every survivor is dead.
                    survivor_vals = {
                        rid: vals for rid, vals in tree.iter_entries()
                    }
                    t_vals = np.asarray(
                        [survivor_vals[int(rid)] for rid in survivor_ids],
                        dtype=np.intp,
                    )
                    all_le = np.ones(
                        (survivor_ids.size, d_ids.size), dtype=bool
                    )
                    any_lt = np.zeros_like(all_le)
                    for i, mat in enumerate(mats):
                        d_te = mat[
                            t_vals[:, i][:, None], d_vals[:, i][None, :]
                        ]
                        d_tq = mat[t_vals[:, i], query[i]][:, None]
                        all_le &= d_te <= d_tq
                        any_lt |= d_te < d_tq
                    kill = (
                        all_le
                        & any_lt
                        & (survivor_ids[:, None] != d_ids[None, :])
                    )
                    n_delta = d_ids.size
                    first_d = np.where(
                        kill.any(axis=1), kill.argmax(axis=1), n_delta
                    )
                    if int(first_d.max()) < n_delta:
                        # The tree empties mid-stream: the scalar loop
                        # stops after the delta entry that killed last.
                        visits = int(first_d.max()) + 1
                    else:
                        visits = n_delta
                    stats.delta_visits += visits
                    stats.checks_delta += (
                        visits * int(survivor_ids.size) * len(mats)
                    )
                    survivor_ids = survivor_ids[first_d >= n_delta]
                span.annotate("survivors", int(survivor_ids.size))
                result.extend(int(rid) for rid in survivor_ids)
        return result


# -- plan serialisation (shared-memory publication) ---------------------------
# A built phase-1 plan is a pile of numpy arrays plus tiny metadata, so
# it flattens losslessly into a named-array dict — the wire format
# repro.exec.shm packs into one shared-memory segment. ``import_plan``
# reassembles _Phase1Batch objects over the (read-only, zero-copy) views
# a worker attached; the pointer trees are never rebuilt.


def export_plan(batches: list[_Phase1Batch]) -> tuple[list[dict], dict]:
    """Flatten a phase-1 plan into ``(meta, arrays)``.

    ``meta`` is a small picklable list (one dict per batch); ``arrays``
    maps unique names to numpy arrays. Together they round-trip through
    :func:`import_plan` bit-identically.
    """
    meta: list[dict] = []
    arrays: dict[str, np.ndarray] = {}
    for ib, pb in enumerate(batches):
        col = pb.col
        p = f"p1b{ib}."
        meta.append(
            {
                "trigger_page": pb.trigger_page,
                "levels": col.num_levels,
                "has_lmins": pb.leaf_mins is not None,
            }
        )
        arrays[p + "ids"] = np.asarray(
            [rid for rid, _ in pb.entries], dtype=np.intp
        )
        arrays[p + "vals"] = pb.vals
        arrays[p + "dup"] = pb.dup
        arrays[p + "rest"] = pb.rest
        arrays[p + "rest_vals"] = pb.rest_vals
        arrays[p + "rest_paths"] = pb.rest_paths
        if pb.leaf_mins is not None:
            arrays[p + "lmin0"], arrays[p + "lmin1"] = pb.leaf_mins
        arrays[p + "leaf_start"] = col.leaf_start
        arrays[p + "leaf_count"] = col.leaf_count
        arrays[p + "entry_ids"] = col.entry_ids
        arrays[p + "entry_leaf"] = col.entry_leaf
        for lv in range(col.num_levels):
            arrays[f"{p}keys{lv}"] = col.keys[lv]
            arrays[f"{p}desc{lv}"] = col.desc[lv]
            arrays[f"{p}parent{lv}"] = col.parent[lv]
        for lv in range(len(col.child_start)):
            arrays[f"{p}cs{lv}"] = col.child_start[lv]
            arrays[f"{p}ce{lv}"] = col.child_end[lv]
    return meta, arrays


def import_plan(meta: list[dict], arrays: dict) -> list[_Phase1Batch]:
    """Reassemble a phase-1 plan from :func:`export_plan` output (the
    arrays may be zero-copy shared-memory views)."""
    batches: list[_Phase1Batch] = []
    for ib, info in enumerate(meta):
        p = f"p1b{ib}."
        levels = int(info["levels"])
        col = ColumnarALTree.from_arrays(
            keys=[arrays[f"{p}keys{lv}"] for lv in range(levels)],
            desc=[arrays[f"{p}desc{lv}"] for lv in range(levels)],
            parent=[arrays[f"{p}parent{lv}"] for lv in range(levels)],
            child_start=[
                arrays[f"{p}cs{lv}"] for lv in range(max(0, levels - 1))
            ],
            child_end=[
                arrays[f"{p}ce{lv}"] for lv in range(max(0, levels - 1))
            ],
            leaf_start=arrays[p + "leaf_start"],
            leaf_count=arrays[p + "leaf_count"],
            entry_ids=arrays[p + "entry_ids"],
            entry_leaf=arrays[p + "entry_leaf"],
        )
        ids = arrays[p + "ids"]
        vals = arrays[p + "vals"]
        entries = [
            (int(rid), tuple(int(v) for v in row))
            for rid, row in zip(ids, vals)
        ]
        leaf_mins = (
            (arrays[p + "lmin0"], arrays[p + "lmin1"])
            if info["has_lmins"]
            else None
        )
        batches.append(
            _Phase1Batch(
                trigger_page=info["trigger_page"],
                col=col,
                entries=entries,
                vals=vals,
                dup=arrays[p + "dup"],
                rest=arrays[p + "rest"],
                rest_vals=arrays[p + "rest_vals"],
                rest_paths=arrays[p + "rest_paths"],
                leaf_mins=leaf_mins,
            )
        )
    return batches
