"""Common machinery for reverse-skyline algorithms.

Every algorithm follows the same contract: construct it over a
:class:`~repro.data.dataset.Dataset` with a memory budget, call
:meth:`~ReverseSkylineAlgorithm.prepare` once (the offline physical-design
step — a no-op for Naive/BRS, the multi-attribute sort for SRS/TRS, the
Z-order tiling for T-SRS/T-TRS), then :meth:`~ReverseSkylineAlgorithm.run`
per query. ``run`` stages the (prepared) data onto a fresh
:class:`~repro.storage.disk.DiskSimulator` — staging is free, modelling
data already resident on disk — executes the query, and returns an
:class:`RSResult` carrying the result ids and a :class:`CostStats` with
the paper's three cost currencies: attribute-level checks (computational),
sequential/random page IOs, and wall time.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.data.dataset import Dataset
from repro.errors import AlgorithmError
from repro.obs import hooks as _obs
from repro.storage.disk import DEFAULT_PAGE_BYTES, DiskSimulator, MemoryBudget
from repro.storage.iostats import IoStats
from repro.storage.pagefile import PageFile

__all__ = ["CostStats", "RSResult", "ReverseSkylineAlgorithm", "Stopwatch"]


class Stopwatch:
    """The single wall-clock source for every timed path.

    Both the algorithms' ``run`` loop and the engine's query log measure
    through this class, so timings recorded sequentially and under the
    concurrent executor are directly comparable (always
    ``time.perf_counter``, never ``time.time``).
    """

    __slots__ = ("started", "elapsed_s")

    def __init__(self) -> None:
        self.started = time.perf_counter()
        self.elapsed_s = 0.0

    def stop(self) -> float:
        self.elapsed_s = time.perf_counter() - self.started
        return self.elapsed_s

    def __enter__(self) -> "Stopwatch":
        self.started = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


@dataclass
class CostStats:
    """Cost counters for one reverse-skyline run.

    ``checks_*`` count attribute-level comparisons — one per attribute
    examined while testing a potential pruner, the currency of the paper's
    Table 3. ``pruner_tests`` counts object-pair (or node-level) tests.
    """

    checks_phase1: int = 0
    checks_phase2: int = 0
    #: Attribute-level comparisons attributable to overlay deltas (either
    #: phase: testing a delta candidate, or streaming a delta entry as a
    #: pruner source). Kept out of ``checks_phase1``/``checks_phase2`` so
    #: differential harnesses that pin base-only counters stay exact.
    checks_delta: int = 0
    #: Delta entries visited as phase-2 pruner sources. Deltas live in
    #: memory, never on the simulated disk, so this is the maintenance
    #: analogue of a page visit — base IO counters stay pinned.
    delta_visits: int = 0
    pruner_tests: int = 0
    phase1_pruned: int = 0
    intermediate_count: int = 0
    phase1_batches: int = 0
    phase2_batches: int = 0
    db_passes: int = 0
    result_count: int = 0
    wall_time_s: float = 0.0
    io: IoStats = field(default_factory=IoStats)
    # Per-object check counts, populated only when tracing (Table 3).
    # Phase-1 counts key on the object being tested for prunability;
    # phase-2 counts key on the database object scanned as a pruner source.
    per_object_phase1: dict[int, int] = field(default_factory=dict)
    per_object_phase2: dict[int, int] = field(default_factory=dict)

    @property
    def checks(self) -> int:
        """Total attribute-level comparisons across both phases (plus any
        overlay-delta comparisons; zero for overlay-free runs)."""
        return self.checks_phase1 + self.checks_phase2 + self.checks_delta

    def charge_phase1(self, record_id: int, checks: int, *, trace: bool) -> None:
        self.checks_phase1 += checks
        if trace:
            self.per_object_phase1[record_id] = (
                self.per_object_phase1.get(record_id, 0) + checks
            )

    def charge_phase2(self, record_id: int, checks: int, *, trace: bool) -> None:
        self.checks_phase2 += checks
        if trace:
            self.per_object_phase2[record_id] = (
                self.per_object_phase2.get(record_id, 0) + checks
            )

    # -- merging (batch executor support) ----------------------------------
    def add(self, other: "CostStats") -> None:
        """Accumulate ``other`` into this instance (in place).

        Counters sum; wall times sum (total work, not elapsed span — the
        executor reports batch wall-clock separately); per-object trace
        dicts merge additively.
        """
        self.checks_phase1 += other.checks_phase1
        self.checks_phase2 += other.checks_phase2
        self.checks_delta += other.checks_delta
        self.delta_visits += other.delta_visits
        self.pruner_tests += other.pruner_tests
        self.phase1_pruned += other.phase1_pruned
        self.intermediate_count += other.intermediate_count
        self.phase1_batches += other.phase1_batches
        self.phase2_batches += other.phase2_batches
        self.db_passes += other.db_passes
        self.result_count += other.result_count
        self.wall_time_s += other.wall_time_s
        self.io = self.io + other.io
        for d_self, d_other in (
            (self.per_object_phase1, other.per_object_phase1),
            (self.per_object_phase2, other.per_object_phase2),
        ):
            for rid, c in d_other.items():
                d_self[rid] = d_self.get(rid, 0) + c

    @classmethod
    def merged(cls, parts: Iterable["CostStats"]) -> "CostStats":
        """Deterministic sum of per-query stats — identical regardless of
        which worker answered which query (addition commutes; callers pass
        parts in input order anyway)."""
        total = cls()
        for part in parts:
            total.add(part)
        return total


@dataclass(frozen=True)
class RSResult:
    """Outcome of one reverse-skyline query."""

    algorithm: str
    query: tuple
    record_ids: tuple[int, ...]
    stats: CostStats
    #: Compute backend that produced this result (``python`` or ``numpy``).
    backend: str = "python"

    @property
    def result_set(self) -> frozenset[int]:
        return frozenset(self.record_ids)

    def __len__(self) -> int:
        return len(self.record_ids)


class ReverseSkylineAlgorithm(ABC):
    """Base class for all reverse-skyline algorithms.

    Parameters
    ----------
    dataset:
        The database ``D`` plus its dissimilarity space.
    memory_fraction:
        Memory budget as a fraction of the dataset's on-disk size (the
        paper's x-axis in Figures 3–10). Ignored when ``budget`` is given.
    budget:
        Explicit page budget, overriding ``memory_fraction``.
    page_bytes:
        Simulated page size; the paper uses 32 KiB.
    trace_checks:
        Record per-object check counts (Table 3). Costs time; leave off
        for performance runs.
    """

    name: str = "abstract"
    #: Compute backend this class implements; numpy variants override.
    backend: str = "python"

    def __init__(
        self,
        dataset: Dataset,
        *,
        memory_fraction: float = 0.10,
        budget: MemoryBudget | None = None,
        page_bytes: int = DEFAULT_PAGE_BYTES,
        trace_checks: bool = False,
    ) -> None:
        if len(dataset) == 0:
            # Degenerate but legal: every algorithm returns an empty result.
            pass
        self.dataset = dataset
        self.page_bytes = page_bytes
        self.trace_checks = trace_checks
        if budget is None:
            budget = MemoryBudget.fraction_of(
                dataset, memory_fraction, page_bytes, minimum_pages=2
            )
        if budget.pages < 2:
            raise AlgorithmError(
                f"{self.name}: needs a budget of >= 2 pages, got {budget.pages}"
            )
        self.budget = budget
        self._layout: list[tuple[int, tuple]] | None = None
        # ``run`` stages an identical data file every query; after the
        # first staging the packed pages are shared across runs (see
        # PageFile.adopt_staged). (codec, pages, record count).
        self._staged_pages: tuple | None = None
        #: Set to a directory path to run over REAL byte-packed page files
        #: instead of in-memory simulated pages (same IO counts; wall time
        #: then includes genuine filesystem IO, the paper's Section 5.1
        #: response-time methodology).
        self.backing_dir = None
        #: Optional :class:`~repro.faults.FaultInjector` staged onto every
        #: per-query disk, plus the :class:`~repro.faults.RetryPolicy`
        #: governing recovery (``None`` uses the disk's default policy).
        self.fault_injector = None
        self.retry_policy = None

    # -- physical design ----------------------------------------------------
    def prepare(self) -> None:
        """Run the offline layout step (idempotent). Default: keep the
        dataset's disk order."""
        if self._layout is None:
            self._layout = self._build_layout()

    def _build_layout(self) -> list[tuple[int, tuple]]:
        """The on-disk order as ``(original_record_id, values)`` pairs.
        Layout steps re-order these while keeping original ids, so result
        sets always refer to positions in the user's dataset."""
        return list(enumerate(self.dataset.records))

    @property
    def layout(self) -> list[tuple[int, tuple]]:
        self.prepare()
        assert self._layout is not None
        return self._layout

    def use_layout(self, entries: list[tuple[int, tuple]]) -> None:
        """Force a specific on-disk order instead of the algorithm's own
        layout step. Used for attribute-subset queries (Section 5.6): the
        data stays physically ordered by the *full* attribute set — query-
        time re-sorting is infeasible — while this algorithm instance
        operates on the projected attributes only."""
        if len(entries) != len(self.dataset):
            raise AlgorithmError(
                f"layout has {len(entries)} entries for a "
                f"{len(self.dataset)}-record dataset"
            )
        self._layout = [(record_id, tuple(values)) for record_id, values in entries]
        self._staged_pages = None

    # -- query processing ----------------------------------------------------
    def run(self, query: tuple) -> RSResult:
        """Answer one reverse-skyline query."""
        q = self.dataset.validate_query(query)
        self.prepare()
        disk = DiskSimulator(
            self.page_bytes,
            backing_dir=self.backing_dir,
            fault_injector=self.fault_injector,
            retry_policy=self.retry_policy,
        )
        try:
            # The observability spans and the post-run flush are no-ops
            # when repro.obs is disabled (one attribute load + branch);
            # they never touch the result, so instrumented runs stay
            # bit-identical to plain ones.
            with _obs.span("algorithm.run", algorithm=self.name) as span:
                with _obs.span("algorithm.stage"):
                    data_file = self._stage_data(disk)
                stats = CostStats()
                with Stopwatch() as watch:
                    ids = self._execute(disk, data_file, q, stats)
                stats.wall_time_s = watch.elapsed_s
                stats.io = disk.stats.snapshot()
                stats.result_count = len(ids)
                span.annotate("checks", stats.checks)
                span.annotate("page_ios", stats.io.total)
                span.annotate("results", stats.result_count)
        finally:
            disk.close()
        if _obs.enabled:
            _obs.record_query(self.name, stats)
        return RSResult(self.name, q, tuple(sorted(ids)), stats, backend=self.backend)

    def _stage_data(self, disk: DiskSimulator) -> PageFile:
        """Stage the prepared layout as the query's ``data`` file (never
        charges IO). On the simulated store the packed pages are memoised
        so repeat queries adopt them instead of re-encoding the layout;
        file-backed stores (``backing_dir``) write real bytes and stage
        fresh every run."""
        if self.backing_dir is not None:
            return disk.load_entries(self.dataset.schema, self.layout, "data")
        if self._staged_pages is None:
            data_file = disk.load_entries(self.dataset.schema, self.layout, "data")
            self._staged_pages = (
                data_file.codec,
                list(data_file._pages),
                data_file.num_records,
            )
            return data_file
        codec, pages, num_records = self._staged_pages
        data_file = disk.create_file("data", codec)
        data_file.adopt_staged(pages, num_records)
        return data_file

    @abstractmethod
    def _execute(
        self, disk: DiskSimulator, data_file: PageFile, query: tuple, stats: CostStats
    ) -> list[int]:
        """Algorithm body: return the result record ids (dataset positions
        in the **original** dataset order)."""

    # -- shared helpers -------------------------------------------------------
    def _tables(self) -> list:
        """Per-attribute dense lookup tables; raises for non-categorical
        attributes (numeric-capable algorithms override their handling).

        Also enforces zero self-dissimilarity: the algorithms' duplicate
        reasoning and the pre-sorting rationale (Section 4.2) both rely on
        ``d(x, x) == 0``; a dissimilarity with a non-zero diagonal would
        silently produce wrong results, so it is rejected loudly instead.
        """
        tables = self.dataset.space.tables()
        for i, t in enumerate(tables):
            if t is None:
                raise AlgorithmError(
                    f"{self.name}: attribute {i} has no finite lookup table; "
                    "use NumericTRS for schemas with numeric attributes"
                )
            for v, row in enumerate(t):
                if row[v] != 0.0:
                    raise AlgorithmError(
                        f"{self.name}: attribute {i} has non-zero "
                        f"self-dissimilarity d({v},{v})={row[v]}; reverse-skyline "
                        "algorithms require d(x, x) == 0"
                    )
        return tables
