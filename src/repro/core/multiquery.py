"""Shared-scan processing of reverse-skyline query batches.

Influence workloads (Section 1) answer *many* reverse-skyline queries over
the same database — one per candidate car, admin profile, or offer.
Running TRS per query repeats the expensive part: the sequential passes
over the database. The key observation enabling sharing is that the
AL-Tree built from a batch of records **does not depend on the query** —
only the traversals do. So:

- **Phase 1** streams the database once, builds one tree per batch, and
  runs one ``IsPrunable`` traversal per (object, query) pair, writing one
  survivor area ``R_q`` per query.
- **Phase 2** builds one (query-specific) tree per survivor set, then
  streams the database once, feeding every scanned object through each
  query's ``Prune`` traversal. When the survivor trees jointly fit the
  budget, a *single* extra pass finishes **all** queries.

IO therefore stays at ~2 sequential passes *total* instead of ~2 per
query; computation is unchanged (the per-query traversals still happen).
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.altree.tree import ALTree
from repro.core.base import CostStats
from repro.core.trs import ENTRY_BYTES, NODE_BYTES, TRS, is_prunable, prune_tree
from repro.data.dataset import Dataset
from repro.errors import AlgorithmError
from repro.storage.disk import DEFAULT_PAGE_BYTES, DiskSimulator, MemoryBudget

__all__ = ["MultiQueryResult", "SharedScanTRS"]


@dataclass(frozen=True)
class MultiQueryResult:
    """Outcome of one shared-scan batch run."""

    queries: tuple[tuple, ...]
    results: tuple[tuple[int, ...], ...]
    #: Combined cost of the whole batch (IO is shared; checks are summed).
    stats: CostStats
    #: Attribute checks attributable to each query.
    per_query_checks: tuple[int, ...] = field(default=())

    def result_for(self, query: tuple) -> tuple[int, ...]:
        try:
            return self.results[self.queries.index(tuple(query))]
        except ValueError:
            raise AlgorithmError(f"query {query!r} was not part of this batch") from None


class SharedScanTRS:
    """TRS over a *batch* of queries with shared database scans.

    Construction mirrors :class:`~repro.core.trs.TRS` (same layout step,
    same memory model); :meth:`run_batch` answers any number of queries.
    """

    name = "SharedScanTRS"

    def __init__(
        self,
        dataset: Dataset,
        *,
        attribute_order: Sequence[int] | None = None,
        memory_fraction: float = 0.10,
        budget: MemoryBudget | None = None,
        page_bytes: int = DEFAULT_PAGE_BYTES,
    ) -> None:
        # Reuse TRS for layout and configuration handling.
        self._trs = TRS(
            dataset,
            attribute_order=attribute_order,
            memory_fraction=memory_fraction,
            budget=budget,
            page_bytes=page_bytes,
        )
        self.dataset = dataset
        self.page_bytes = self._trs.page_bytes
        self.budget = self._trs.budget
        self.attribute_order = self._trs.attribute_order

    def prepare(self) -> None:
        self._trs.prepare()

    def run_batch(self, queries: Sequence[tuple]) -> MultiQueryResult:
        """Answer every query, sharing all database passes."""
        if not queries:
            raise AlgorithmError("need at least one query")
        qs = [self.dataset.validate_query(q) for q in queries]
        self.prepare()
        tables = self._trs._tables()
        m = self.dataset.num_attributes
        order = self.attribute_order

        disk = DiskSimulator(self.page_bytes)
        data_file = disk.load_entries(self.dataset.schema, self._trs.layout, "data")
        stats = CostStats()
        per_query_checks = [0] * len(qs)
        started = time.perf_counter()

        # ---- phase 1: one pass, one tree per batch, k traversals/object --
        scratches = [
            disk.create_file(f"phase1-q{qi}", data_file.codec) for qi in range(len(qs))
        ]
        writers = [s.writer() for s in scratches]
        stats.db_passes += 1
        budget_bytes = self.budget.pages * self.page_bytes
        tree = ALTree(order)
        batch: list[tuple] = []  # (record_id, values, leaf)

        def process_batch() -> None:
            for c_id, c, leaf in batch:
                has_duplicate = leaf.count >= 2
                rows = [tables[i][c[i]] for i in range(m)]
                entry = None
                if not has_duplicate:
                    entry = tree.soft_remove(leaf, c_id)
                for qi, q in enumerate(qs):
                    qd = [rows[i][q[i]] for i in range(m)]
                    if has_duplicate:
                        prunable = False
                        checks = m
                        for i in range(m):
                            if qd[i] > 0.0:
                                prunable = True
                                checks = i + 1
                                break
                    else:
                        prunable, checks = is_prunable(tree, c, qd, tables)
                    stats.checks_phase1 += checks
                    per_query_checks[qi] += checks
                    stats.pruner_tests += 1
                    if not prunable:
                        writers[qi].append(c_id, c)
                if entry is not None:
                    tree.soft_restore(leaf, entry)
            stats.phase1_batches += 1

        for _, page in data_file.scan():
            for record_id, values in page:
                leaf = tree.insert(record_id, values)
                batch.append((record_id, values, leaf))
            if tree.memory_bytes(NODE_BYTES, ENTRY_BYTES) >= budget_bytes:
                process_batch()
                tree = ALTree(order)
                batch = []
        if batch:
            process_batch()
        for w in writers:
            w.close()
        stats.intermediate_count = sum(s.num_records for s in scratches)
        stats.phase1_pruned = len(self.dataset) * len(qs) - stats.intermediate_count

        # ---- phase 2: rounds of (fill trees from all R_q, one pass) -------
        _, batch_pages = self.budget.split_for_second_phase()
        round_bytes = batch_pages * self.page_bytes
        results: list[list[int]] = [[] for _ in qs]
        positions = [0] * len(qs)  # next unread page per scratch

        while any(positions[qi] < scratches[qi].num_pages for qi in range(len(qs))):
            trees: dict[int, ALTree] = {}
            used_bytes = 0
            # Round-robin fill so every query makes progress each round.
            progressing = True
            while progressing and used_bytes < round_bytes:
                progressing = False
                for qi in range(len(qs)):
                    if positions[qi] >= scratches[qi].num_pages:
                        continue
                    t = trees.get(qi)
                    if t is None:
                        t = trees[qi] = ALTree(order)
                    before = t.memory_bytes(NODE_BYTES, ENTRY_BYTES)
                    for record_id, values in scratches[qi].read_page(positions[qi]):
                        t.insert(record_id, values)
                    positions[qi] += 1
                    used_bytes += t.memory_bytes(NODE_BYTES, ENTRY_BYTES) - before
                    progressing = True
                    if used_bytes >= round_bytes:
                        break
            stats.phase2_batches += 1
            stats.db_passes += 1
            for _, dpage in data_file.scan():
                if all(t.num_objects == 0 for t in trees.values()):
                    break
                for e_id, e in dpage:
                    for qi, t in trees.items():
                        if t.num_objects == 0:
                            continue
                        _, checks = prune_tree(t, e_id, e, qs[qi], tables)
                        stats.checks_phase2 += checks
                        per_query_checks[qi] += checks
            for qi, t in trees.items():
                results[qi].extend(rid for rid, _ in t.iter_entries())

        stats.wall_time_s = time.perf_counter() - started
        stats.io = disk.stats.snapshot()
        stats.result_count = sum(len(r) for r in results)
        return MultiQueryResult(
            queries=tuple(qs),
            results=tuple(tuple(sorted(r)) for r in results),
            stats=stats,
            per_query_checks=tuple(per_query_checks),
        )
