"""Shared-scan processing of reverse-skyline query batches.

Influence workloads (Section 1) answer *many* reverse-skyline queries over
the same database — one per candidate car, admin profile, or offer.
Running TRS per query repeats the expensive part: the sequential passes
over the database. The key observation enabling sharing is that the
AL-Tree built from a batch of records **does not depend on the query** —
only the traversals do. So:

- **Phase 1** streams the database once, builds one tree per batch, and
  runs one ``IsPrunable`` traversal per (object, query) pair, writing one
  survivor area ``R_q`` per query.
- **Phase 2** builds one (query-specific) tree per survivor set, then
  streams the database once, feeding every scanned object through each
  query's ``Prune`` traversal. When the survivor trees jointly fit the
  budget, a *single* extra pass finishes **all** queries.

IO therefore stays at ~2 sequential passes *total* instead of ~2 per
query; computation is unchanged (the per-query traversals still happen).

Backends
--------
``run_batch`` honours the same backend selection as single-query TRS
(see :mod:`repro.kernels`): the ``python`` backend runs the scalar
traversals (with the per-scanned-object dissimilarity columns gathered
once and shared across every query's phase-2 traversal), while the
array backends flatten each batch tree once and route both phases
through kernels. By default the array path is **fused**
(:mod:`repro.kernels.fused`): one stacked
:func:`~repro.kernels.frontier.batch_is_prunable` sweep over all
(candidate, query) rows per batch in phase 1, and one forest descent
over every member query's survivor tree per page in phase 2 — a single
kernel invocation per planner group instead of one per query.
``fused=False`` keeps the PR-4 per-query kernel loop (one sweep per
(query, batch) / (query, page)), which the benchmarks use as the
pre-fusion baseline; both produce identical numbers. On top of either
array shape, ``backend="jit"`` (or ``auto`` escalation) swaps the
numpy frontier sweeps for the optional compiled tier
(:mod:`repro.kernels.jit`) when numba is importable, falling back to
numpy silently otherwise. Results, batch structure and page IOs are
bit-identical across all of it; ``checks_*`` follow each array shape's
documented accounting (fused == per-query == jit by construction; only
``python`` differs, by its early-abort granularity).
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.altree.tree import ALTree
from repro.core.base import CostStats
from repro.core.trs import (
    ENTRY_BYTES,
    NODE_BYTES,
    TRS,
    is_prunable,
    prune_tree_cols,
)
from repro.data.dataset import Dataset
from repro.errors import AlgorithmError
from repro.kernels import fused as fused_kernels
from repro.kernels import jit as jit_kernels
from repro.kernels.backend import normalize_backend, numpy_ready
from repro.kernels.columnar import ColumnarALTree, dissimilarity_matrices
from repro.kernels.frontier import (
    batch_is_prunable,
    candidate_paths,
    leaf_min_tables,
    page_prune,
    query_distances,
    query_node_rows,
)
from repro.obs import hooks as _obs
from repro.storage.disk import DEFAULT_PAGE_BYTES, DiskSimulator, MemoryBudget

__all__ = ["MultiQueryResult", "SharedScanTRS"]


@dataclass(frozen=True)
class MultiQueryResult:
    """Outcome of one shared-scan batch run."""

    queries: tuple[tuple, ...]
    results: tuple[tuple[int, ...], ...]
    #: Combined cost of the whole batch (IO is shared; checks are summed).
    stats: CostStats
    #: Attribute checks attributable to each query.
    per_query_checks: tuple[int, ...] = field(default=())
    #: Concrete kernel tier that produced this batch (``python``,
    #: ``numpy``, or ``jit`` when the compiled tier ran).
    backend: str = "python"
    #: Phase split of ``per_query_checks`` (same length; elementwise the
    #: two tuples sum to it). The batch planner uses the split to emit
    #: per-query :class:`CostStats` rows that add up to the shared run.
    per_query_checks_phase1: tuple[int, ...] = field(default=())
    per_query_checks_phase2: tuple[int, ...] = field(default=())

    def result_for(self, query: tuple) -> tuple[int, ...]:
        try:
            return self.results[self.queries.index(tuple(query))]
        except ValueError:
            raise AlgorithmError(f"query {query!r} was not part of this batch") from None


class SharedScanTRS:
    """TRS over a *batch* of queries with shared database scans.

    Construction mirrors :class:`~repro.core.trs.TRS` (same layout step,
    same memory model); :meth:`run_batch` answers any number of queries.
    ``backend`` selects the compute backend (``python``, ``numpy``,
    ``jit`` or ``auto``; ``None`` keeps the scalar path). ``fused``
    (default) routes the array backends through the fused multi-query
    kernels — one invocation per (phase, batch/page) for the whole
    group; ``fused=False`` keeps the per-query kernel loop.
    """

    name = "SharedScanTRS"

    def __init__(
        self,
        dataset: Dataset,
        *,
        attribute_order: Sequence[int] | None = None,
        memory_fraction: float = 0.10,
        budget: MemoryBudget | None = None,
        page_bytes: int = DEFAULT_PAGE_BYTES,
        backend: str | None = None,
        fused: bool = True,
        fault_injector=None,
        retry_policy=None,
    ) -> None:
        # Reuse TRS for layout and configuration handling.
        self._trs = TRS(
            dataset,
            attribute_order=attribute_order,
            memory_fraction=memory_fraction,
            budget=budget,
            page_bytes=page_bytes,
        )
        self.dataset = dataset
        self.page_bytes = self._trs.page_bytes
        self.budget = self._trs.budget
        self.attribute_order = self._trs.attribute_order
        self.backend = normalize_backend(backend)
        self.fused = fused
        self.fault_injector = fault_injector
        self.retry_policy = retry_policy

    def prepare(self) -> None:
        self._trs.prepare()

    def use_layout(self, entries) -> None:
        """Adopt a specific on-disk order (see
        :meth:`~repro.core.base.ReverseSkylineAlgorithm.use_layout`);
        the planner hands over the engine's already-sorted layout so a
        fresh shared-scan instance skips the sort."""
        self._trs.use_layout(entries)

    def _resolve_backend(self) -> str:
        """The concrete tier for this run: ``python``, ``numpy``, or
        ``jit`` (requested or ``auto``-escalated, and only when the
        compiled tier is importable *and* the fused kernels are in use
        — the legacy per-query shape has no compiled variant)."""
        if self.backend in (None, "python"):
            return "python"
        if self.backend == "numpy":
            return "numpy"  # unfit datasets rejected by dissimilarity_matrices
        if self.backend == "jit":
            return jit_kernels.effective_tier("jit") if self.fused else "numpy"
        if numpy_ready() and self.dataset.space.is_fully_categorical():
            return jit_kernels.effective_tier("auto") if self.fused else "numpy"
        return "python"

    def run_batch(self, queries: Sequence[tuple]) -> MultiQueryResult:
        """Answer every query, sharing all database passes."""
        if not queries:
            raise AlgorithmError("need at least one query")
        qs = [self.dataset.validate_query(q) for q in queries]
        self.prepare()
        backend = self._resolve_backend()
        tables = self._trs._tables()
        mats = (
            dissimilarity_matrices(self.dataset, self.name)
            if backend != "python"
            else None
        )
        m = self.dataset.num_attributes
        order = self.attribute_order

        disk = DiskSimulator(
            self.page_bytes,
            fault_injector=self.fault_injector,
            retry_policy=self.retry_policy,
        )
        try:
            return self._run_batch(disk, qs, backend, tables, mats, m, order)
        finally:
            disk.close()

    def _run_batch(
        self, disk, qs, backend, tables, mats, m, order
    ) -> MultiQueryResult:
        data_file = disk.load_entries(self.dataset.schema, self._trs.layout, "data")
        stats = CostStats()
        pqc1 = [0] * len(qs)
        pqc2 = [0] * len(qs)
        started = time.perf_counter()
        fused = self.fused and backend != "python"
        qarr = mats3 = None
        if fused:
            qarr = np.asarray(qs, dtype=np.intp).reshape(len(qs), m)
            if backend == "jit":
                mats3 = fused_kernels.pad_matrices(mats)
            fused_kernels.note_fused_group()
        if _obs.enabled:
            if fused:
                _obs.inc("repro_kernel_fused_groups_total", 1, tier=backend)
            for tier_name in ("python", "numpy", "jit"):
                _obs.set_gauge(
                    "repro_kernel_backend_tier",
                    1.0 if tier_name == backend else 0.0,
                    tier=tier_name,
                )

        # ---- phase 1: one pass, one tree per batch, k traversals/object --
        scratches = [
            disk.create_file(f"phase1-q{qi}", data_file.codec) for qi in range(len(qs))
        ]
        writers = [s.writer() for s in scratches]
        stats.db_passes += 1
        budget_bytes = self.budget.pages * self.page_bytes
        tree = ALTree(order)
        batch: list[tuple] = []  # (record_id, values, leaf)

        # The per-batch shared artifacts of the numpy path — the columnar
        # tree, candidate paths, collapsed leaf tables — are exactly what
        # VectorTRS caches process-wide, under the same content key. A
        # populated plan cache (same layout queried before, or a plan the
        # executor imported over shared memory) lets this run *replay*
        # the batches instead of rebuilding the trees; a cold cache
        # builds them here and publishes for the next run.
        plan_key = plan = None
        if backend != "python":
            from repro.core.vector_trs import _Phase1Batch  # canonical bundle
            from repro.kernels.plancache import (
                PlanKey,
                plan_cache,
                plan_fingerprint,
            )

            plan_key = PlanKey(
                "phase1",
                plan_fingerprint(self.dataset, self._trs.layout),
                (self.budget.pages, self.page_bytes),
            )
            plan = plan_cache().get(plan_key)
        built: list = []

        def process_shared(pb) -> None:
            # One cached-or-fresh bundle; fused = one stacked kernel
            # sweep for the whole group, legacy = one sweep per query.
            with _obs.span("kernel.phase1", backend=backend) as span:
                b = len(pb.entries)
                if fused:
                    survive, checks2d = fused_kernels.fused_phase1(
                        pb, mats, order, qarr, tier=backend, mats3=mats3
                    )
                    per_q = checks2d.sum(axis=0)
                    for qi in range(len(qs)):
                        pqc1[qi] += int(per_q[qi])
                    stats.checks_phase1 += int(per_q.sum())
                    stats.pruner_tests += b * len(qs)
                else:
                    survive = np.zeros((b, len(qs)), dtype=bool)
                    for qi, q in enumerate(qs):
                        qd = query_distances(mats, pb.vals, q)
                        prunable = np.zeros(b, dtype=bool)
                        checks = np.zeros(b, dtype=np.int64)
                        if pb.dup.any():
                            positive = qd[pb.dup] > 0.0
                            hit = positive.any(axis=1)
                            prunable[pb.dup] = hit
                            checks[pb.dup] = np.where(
                                hit, np.argmax(positive, axis=1) + 1, m
                            )
                        if pb.rest.size:
                            prunable[pb.rest], checks[pb.rest] = batch_is_prunable(
                                pb.col,
                                mats,
                                order,
                                pb.rest_vals,
                                qd[pb.rest],
                                pb.rest_paths,
                                leaf_mins=pb.leaf_mins,
                            )
                        total = int(checks.sum())
                        stats.checks_phase1 += total
                        pqc1[qi] += total
                        stats.pruner_tests += b
                        survive[:, qi] = ~prunable
                # Append survivors candidate-major (query-minor) — the
                # scalar append order — so writer page flushes hit the
                # disk-head model in the same sequence.
                for bi in np.flatnonzero(survive.any(axis=1)):
                    c_id, c = pb.entries[bi]
                    for qi in np.flatnonzero(survive[bi]):
                        writers[qi].append(c_id, c)
                stats.phase1_batches += 1
                span.annotate("candidates", b)
                span.annotate("queries", len(qs))

        def process_batch_python(trigger_page) -> None:
            for c_id, c, leaf in batch:
                has_duplicate = leaf.count >= 2
                rows = [tables[i][c[i]] for i in range(m)]
                entry = None
                if not has_duplicate:
                    entry = tree.soft_remove(leaf, c_id)
                for qi, q in enumerate(qs):
                    qd = [rows[i][q[i]] for i in range(m)]
                    if has_duplicate:
                        prunable = False
                        checks = m
                        for i in range(m):
                            if qd[i] > 0.0:
                                prunable = True
                                checks = i + 1
                                break
                    else:
                        prunable, checks = is_prunable(tree, c, qd, tables)
                    stats.checks_phase1 += checks
                    pqc1[qi] += checks
                    stats.pruner_tests += 1
                    if not prunable:
                        writers[qi].append(c_id, c)
                if entry is not None:
                    tree.soft_restore(leaf, entry)
            stats.phase1_batches += 1

        def process_batch_numpy(trigger_page) -> None:
            # Flatten once per batch into the shared bundle (cached for
            # the next run on this layout), then sweep every query.
            col = ColumnarALTree.from_tree(tree)
            b = len(batch)
            vals = np.asarray([c for _, c, _ in batch], dtype=np.intp).reshape(
                b, -1
            )
            leaf_idx = col.leaf_indices_for([leaf for _, _, leaf in batch])
            dup = col.leaf_count[leaf_idx] >= 2
            rest = np.flatnonzero(~dup)
            pb = _Phase1Batch(
                trigger_page=trigger_page,
                col=col,
                entries=[(c_id, c) for c_id, c, _ in batch],
                vals=vals,
                dup=dup,
                rest=rest,
                rest_vals=vals[rest],
                rest_paths=candidate_paths(col, leaf_idx[rest]),
                leaf_mins=leaf_min_tables(col, mats, order),
            )
            built.append(pb)
            process_shared(pb)

        if plan is not None:
            # Replay: charge the same sequential scan, fire each cached
            # batch at its recorded trigger page so scratch writes
            # interleave with data reads exactly as in a building run.
            next_batch = 0
            for page_id, _page in data_file.scan():
                if (
                    next_batch < len(plan)
                    and plan[next_batch].trigger_page == page_id
                ):
                    process_shared(plan[next_batch])
                    next_batch += 1
            while next_batch < len(plan):
                process_shared(plan[next_batch])
                next_batch += 1
        else:
            process_batch = (
                process_batch_python if backend == "python" else process_batch_numpy
            )
            for page_id, page in data_file.scan():
                for record_id, values in page:
                    leaf = tree.insert(record_id, values)
                    batch.append((record_id, values, leaf))
                if tree.memory_bytes(NODE_BYTES, ENTRY_BYTES) >= budget_bytes:
                    process_batch(page_id)
                    tree = ALTree(order)
                    batch = []
            if batch:
                process_batch(None)
            if plan_key is not None and built:
                from repro.kernels.plancache import plan_cache

                plan_cache().put(plan_key, built)
        for w in writers:
            w.close()
        stats.intermediate_count = sum(s.num_records for s in scratches)
        stats.phase1_pruned = len(self.dataset) * len(qs) - stats.intermediate_count

        # ---- phase 2: rounds of (fill trees from all R_q, one pass) -------
        _, batch_pages = self.budget.split_for_second_phase()
        round_bytes = batch_pages * self.page_bytes
        results: list[list[int]] = [[] for _ in qs]
        positions = [0] * len(qs)  # next unread page per scratch

        # Per-query d_i(u, q_i) columns, gathered once for the whole run
        # and shared by every scanned object's traversal (python backend).
        qcols: list[list[list[float]]] | None = None
        if backend == "python":
            qcols = [
                [
                    [tables[i][u][q[i]] for u in range(len(tables[i]))]
                    for i in range(m)
                ]
                for q in qs
            ]

        while any(positions[qi] < scratches[qi].num_pages for qi in range(len(qs))):
            trees: dict[int, ALTree] = {}
            used_bytes = 0
            # Round-robin fill so every query makes progress each round.
            progressing = True
            while progressing and used_bytes < round_bytes:
                progressing = False
                for qi in range(len(qs)):
                    if positions[qi] >= scratches[qi].num_pages:
                        continue
                    t = trees.get(qi)
                    if t is None:
                        t = trees[qi] = ALTree(order)
                    before = t.memory_bytes(NODE_BYTES, ENTRY_BYTES)
                    for record_id, values in scratches[qi].read_page(positions[qi]):
                        t.insert(record_id, values)
                    positions[qi] += 1
                    used_bytes += t.memory_bytes(NODE_BYTES, ENTRY_BYTES) - before
                    progressing = True
                    if used_bytes >= round_bytes:
                        break
            stats.phase2_batches += 1
            stats.db_passes += 1
            if backend == "python":
                self._phase2_round_python(
                    data_file, trees, qs, tables, m, qcols, results, stats,
                    pqc2,
                )
            elif fused:
                self._phase2_round_fused(
                    data_file, trees, qs, mats, order, results, stats,
                    pqc2, backend, mats3,
                )
            else:
                self._phase2_round_numpy(
                    data_file, trees, qs, mats, order, results, stats,
                    pqc2,
                )

        stats.wall_time_s = time.perf_counter() - started
        stats.io = disk.stats.snapshot()
        stats.result_count = sum(len(r) for r in results)
        return MultiQueryResult(
            queries=tuple(qs),
            results=tuple(tuple(sorted(r)) for r in results),
            stats=stats,
            per_query_checks=tuple(a + b for a, b in zip(pqc1, pqc2)),
            backend=backend,
            per_query_checks_phase1=tuple(pqc1),
            per_query_checks_phase2=tuple(pqc2),
        )

    @staticmethod
    def _phase2_round_python(
        data_file, trees, qs, tables, m, qcols, results, stats, per_query_checks
    ) -> None:
        for _, dpage in data_file.scan():
            if all(t.num_objects == 0 for t in trees.values()):
                break
            for e_id, e in dpage:
                # One gather of d_i(u, e_i) per scanned object, shared
                # across every query's traversal (hoisted out of the
                # per-query loop; built lazily so fully-drained pages
                # cost nothing).
                ecols = None
                for qi, t in trees.items():
                    if t.num_objects == 0:
                        continue
                    if ecols is None:
                        ecols = [
                            [tables[i][u][e[i]] for u in range(len(tables[i]))]
                            for i in range(m)
                        ]
                    _, checks = prune_tree_cols(t, e_id, ecols, qcols[qi])
                    stats.checks_phase2 += checks
                    per_query_checks[qi] += checks
        for qi, t in trees.items():
            results[qi].extend(rid for rid, _ in t.iter_entries())

    @staticmethod
    def _phase2_round_fused(
        data_file, trees, qs, mats, order, results, stats, per_query_checks,
        tier, mats3,
    ) -> None:
        """One shared pass pruning *every* member tree per page: the
        round's trees are concatenated into a forest and each scanned
        page runs one descent (numpy frontier or compiled DFS) instead
        of one :func:`page_prune` per query. Decisions, IO and the
        per-query check attribution are identical to the per-query
        round — see :mod:`repro.kernels.fused`."""
        with _obs.span("kernel.phase2", backend=tier) as span:
            forest = fused_kernels.build_forest(
                (qi, col, query_node_rows(col, mats, order, qs[qi]))
                for qi, t in trees.items()
                for col in (ColumnarALTree.from_tree(t),)
            )
            for _, dpage in data_file.scan():
                if forest is None or forest.live_total == 0:
                    break
                e_ids = np.asarray([rid for rid, _ in dpage], dtype=np.intp)
                e_vals = np.asarray([v for _, v in dpage], dtype=np.intp)
                pq = fused_kernels.fused_page_prune(
                    forest, mats, order, e_ids, e_vals, tier=tier, mats3=mats3
                )
                stats.checks_phase2 += int(pq.sum())
                for j, qi in enumerate(forest.qis):
                    per_query_checks[qi] += int(pq[j])
            survivors = 0
            if forest is not None:
                for qi, ids in forest.survivors():
                    survivors += ids.size
                    results[qi].extend(int(rid) for rid in ids)
            span.annotate("survivors", survivors)

    @staticmethod
    def _phase2_round_numpy(
        data_file, trees, qs, mats, order, results, stats, per_query_checks
    ) -> None:
        with _obs.span("kernel.phase2", backend="numpy") as span:
            states: dict[int, list] = {}
            for qi, t in trees.items():
                col = ColumnarALTree.from_tree(t)
                states[qi] = [
                    col,
                    query_node_rows(col, mats, order, qs[qi]),
                    np.ones(col.entry_ids.size, dtype=bool),
                    [d.copy() for d in col.desc],
                    col.num_objects,
                ]
            for _, dpage in data_file.scan():
                if all(st[4] == 0 for st in states.values()):
                    break
                # The page's id/value arrays are built once and shared by
                # every query's kernel call.
                e_ids = np.asarray([rid for rid, _ in dpage], dtype=np.intp)
                e_vals = np.asarray([v for _, v in dpage], dtype=np.intp)
                for qi, st in states.items():
                    if st[4] == 0:
                        continue
                    col, q_rows, alive, desc_live, _ = st
                    alive, desc_live, checks = page_prune(
                        col, mats, order, q_rows, e_ids, e_vals, alive, desc_live
                    )
                    total = int(checks.sum())
                    stats.checks_phase2 += total
                    per_query_checks[qi] += total
                    st[2] = alive
                    st[3] = desc_live
                    st[4] = int(desc_live[0].sum()) if desc_live else 0
            survivors = 0
            for qi, st in states.items():
                ids = st[0].entry_ids[st[2]]
                survivors += ids.size
                results[qi].extend(int(rid) for rid in ids)
            span.annotate("survivors", survivors)
