"""Reverse-skyline algorithms — the paper's contribution.

Public surface:

- :class:`NaiveRS` — Algorithm 1 (per-object scans, the baseline)
- :class:`BRS` — Block Reverse Skyline (Algorithm 2)
- :class:`SRS` — Sort Reverse Skyline (Section 4.2)
- :class:`TRS` — Tree Reverse Skyline (Algorithms 3-5, the contribution)
- :class:`TSRS` / :class:`TTRS` — tile-ordered variants (Section 5.6)
- :class:`NumericTRS` — mixed categorical/numeric schemas (Section 6)
- :class:`RSResult` / :class:`CostStats` — results and cost counters
- :data:`ALGORITHMS` / :func:`make_algorithm` — the registry
"""

from repro.core.base import CostStats, ReverseSkylineAlgorithm, RSResult
from repro.core.blocked import BlockedRS
from repro.core.brs import BRS
from repro.core.naive import NaiveRS
from repro.core.numeric import Discretizer, NumericTRS
from repro.core.registry import ALGORITHMS, get_algorithm, make_algorithm
from repro.core.srs import SRS
from repro.core.tiled import TSRS, TTRS
from repro.core.trs import TRS, is_prunable, prune_tree

__all__ = [
    "ALGORITHMS",
    "BRS",
    "BlockedRS",
    "CostStats",
    "Discretizer",
    "NaiveRS",
    "NumericTRS",
    "RSResult",
    "ReverseSkylineAlgorithm",
    "SRS",
    "TRS",
    "TSRS",
    "TTRS",
    "get_algorithm",
    "is_prunable",
    "make_algorithm",
    "prune_tree",
]
