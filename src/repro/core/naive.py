"""The Naive reverse-skyline algorithm (paper Algorithm 1).

For every object ``X``, scan the database for a pruner ``Y`` with
``Y ≻_X Q``; stop the scan at the first pruner. Objects that *are* in the
result have no pruner, so each costs a full database scan — ``|D|``
partial-to-full scans overall, worst-case ``O(n^2)`` comparisons and
ruinous IO. Included as the correctness baseline and to anchor the
speed-up factors of BRS/SRS/TRS.

Memory use: two pages — one holding the current outer page (the ``X``
objects), one streaming the inner scan.
"""

from __future__ import annotations

from repro.core.base import CostStats, ReverseSkylineAlgorithm
from repro.storage.disk import DiskSimulator
from repro.storage.pagefile import PageFile

__all__ = ["NaiveRS"]


class NaiveRS(ReverseSkylineAlgorithm):
    """Algorithm 1: per-object database scans."""

    name = "Naive"

    def _execute(
        self, disk: DiskSimulator, data_file: PageFile, query: tuple, stats: CostStats
    ) -> list[int]:
        tables = self._tables()
        m = self.dataset.num_attributes
        trace = self.trace_checks
        result: list[int] = []

        for outer_page_id in range(data_file.num_pages):
            outer = data_file.read_page(outer_page_id)
            for x_id, x in outer:
                # Per-X cached rows: rows[i] = d_i(x_i, .), qd[i] = d_i(x_i, q_i)
                rows = [tables[i][x[i]] for i in range(m)]
                qd = [rows[i][query[i]] for i in range(m)]
                pruned = False
                stats.db_passes += 1
                for _, inner in data_file.scan():
                    for y_id, y in inner:
                        if y_id == x_id:
                            continue
                        stats.pruner_tests += 1
                        closer = False
                        checks = m
                        for i in range(m):
                            dy = rows[i][y[i]]
                            dq = qd[i]
                            if dy > dq:
                                checks = i + 1
                                break
                            if dy < dq:
                                closer = True
                        else:
                            if closer:
                                pruned = True
                        stats.charge_phase1(x_id, checks, trace=trace)
                        if pruned:
                            break
                    if pruned:
                        break
                if not pruned:
                    result.append(x_id)
        stats.phase1_pruned = len(self.dataset) - len(result)
        return result
