"""Sort Reverse Skyline — SRS (paper Section 4.2).

BRS plus two changes:

1. **Pre-sorting** (offline): a multi-attribute sort clusters objects that
   share attribute values. Sharing a value makes domination depend on
   fewer attributes (``d_i(x, x) = 0`` is minimal), so pruners land in the
   same batch far more often, strengthening phase 1.
2. **Outward pruner search** (query time): within a batch, candidates for
   pruning ``X`` are visited in order of separation from ``X`` in the
   sorted order — immediate neighbours first — so pruners are found early
   and the scan aborts sooner.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from repro.core.blocked import BlockedRS
from repro.data.dataset import Dataset
from repro.sorting.keys import multiattribute_key, schema_order
from repro.storage.disk import DEFAULT_PAGE_BYTES, MemoryBudget

__all__ = ["SRS"]


class SRS(BlockedRS):
    """Algorithm 2 over the multi-attribute-sorted layout with
    outward-radiating phase-1 search."""

    name = "SRS"

    def __init__(
        self,
        dataset: Dataset,
        *,
        attribute_order: Sequence[int] | None = None,
        memory_fraction: float = 0.10,
        budget: MemoryBudget | None = None,
        page_bytes: int = DEFAULT_PAGE_BYTES,
        trace_checks: bool = False,
    ) -> None:
        super().__init__(
            dataset,
            memory_fraction=memory_fraction,
            budget=budget,
            page_bytes=page_bytes,
            trace_checks=trace_checks,
        )
        self.attribute_order = (
            list(attribute_order)
            if attribute_order is not None
            else schema_order(dataset.schema)
        )

    def _build_layout(self) -> list[tuple[int, tuple]]:
        key = multiattribute_key(self.attribute_order)
        return sorted(enumerate(self.dataset.records), key=lambda e: key(e[1]))

    def _phase1_candidates(self, batch_size: int, j: int) -> Iterator[int]:
        """Expanding-ring order: separation 1 (either side), then 2, ..."""
        for distance in range(1, batch_size):
            lo = j - distance
            hi = j + distance
            emitted = False
            if lo >= 0:
                emitted = True
                yield lo
            if hi < batch_size:
                emitted = True
                yield hi
            if not emitted:
                return
