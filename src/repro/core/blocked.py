"""The two-phase block-based engine shared by BRS and SRS (Algorithm 2).

**First phase** — stream the database in batches of ``budget.pages``
pages; within each batch, mark objects that have an intra-batch pruner;
append the unpruned ones to a scratch area ``R`` on disk. Objects already
marked pruned still *act* as pruners for others (being pruned does not
weaken an object's ability to dominate the query for someone else).

**Second phase** — stream ``R`` in batches of ``budget.pages - 1`` pages
(one page is reserved for scanning the database, Section 4.1); for each
batch, scan the full database page by page and evict batch members that
any database object prunes; survivors are final results.

BRS and SRS differ only in the physical layout (:meth:`_build_layout`)
and the order in which phase 1 searches a batch for pruners
(:meth:`_phase1_candidates`): SRS radiates outward from the object in
sorted order so that pruners — which cluster near objects sharing
attribute values — are found early (Section 4.2).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.core.base import CostStats, ReverseSkylineAlgorithm
from repro.obs import hooks as _obs
from repro.storage.disk import DiskSimulator
from repro.storage.pagefile import PageFile

__all__ = ["BlockedRS"]


class BlockedRS(ReverseSkylineAlgorithm):
    """Abstract two-phase engine; subclasses choose layout and phase-1
    candidate order."""

    name = "Blocked"

    # -- subclass hooks -------------------------------------------------------
    def _phase1_candidates(self, batch_size: int, j: int) -> Iterator[int]:
        """Indices of batch positions to test as pruners of the object at
        position ``j``, in search order. Default: batch order."""
        for k in range(batch_size):
            if k != j:
                yield k

    # -- engine ----------------------------------------------------------------
    def _execute(
        self, disk: DiskSimulator, data_file: PageFile, query: tuple, stats: CostStats
    ) -> list[int]:
        scratch = disk.create_file("phase1-results", data_file.codec)
        with _obs.span("phase1") as span:
            self._phase1(data_file, scratch, query, stats)
            span.annotate("survivors", scratch.num_records)
        stats.intermediate_count = scratch.num_records
        with _obs.span("phase2"):
            return self._phase2(data_file, scratch, query, stats)

    def _phase1(
        self, data_file: PageFile, scratch: PageFile, query: tuple, stats: CostStats
    ) -> None:
        tables = self._tables()
        m = self.dataset.num_attributes
        trace = self.trace_checks
        batch_pages = self.budget.pages
        writer = scratch.writer()
        batch: list[tuple[int, tuple]] = []
        pages_in_batch = 0
        stats.db_passes += 1
        for _, page in data_file.scan():
            batch.extend(page)
            pages_in_batch += 1
            if pages_in_batch == batch_pages:
                self._prune_batch(batch, query, tables, m, stats, writer, trace)
                batch = []
                pages_in_batch = 0
                stats.phase1_batches += 1
        if batch:
            self._prune_batch(batch, query, tables, m, stats, writer, trace)
            stats.phase1_batches += 1
        writer.close()
        stats.phase1_pruned = len(self.dataset) - scratch.num_records

    def _prune_batch(
        self,
        batch: list[tuple[int, tuple]],
        query: tuple,
        tables: list,
        m: int,
        stats: CostStats,
        writer,
        trace: bool,
    ) -> None:
        """Intra-batch pruning (Algorithm 2, lines 4-7)."""
        n = len(batch)
        attr_range = range(m)
        # Per-object cached dissimilarity rows and query distances.
        rows_list = []
        qd_list = []
        for _, x in batch:
            rows = [tables[i][x[i]] for i in attr_range]
            rows_list.append(rows)
            qd_list.append([rows[i][query[i]] for i in attr_range])
        for j in range(n):
            x_id = batch[j][0]
            rows = rows_list[j]
            qd = qd_list[j]
            pruned = False
            for k in self._phase1_candidates(n, j):
                y = batch[k][1]
                stats.pruner_tests += 1
                closer = False
                checks = m
                for i in attr_range:
                    dy = rows[i][y[i]]
                    dq = qd[i]
                    if dy > dq:
                        checks = i + 1
                        break
                    if dy < dq:
                        closer = True
                else:
                    pruned = closer
                stats.charge_phase1(x_id, checks, trace=trace)
                if pruned:
                    break
            if not pruned:
                writer.append(x_id, batch[j][1])

    def _phase2(
        self, data_file: PageFile, scratch: PageFile, query: tuple, stats: CostStats
    ) -> list[int]:
        tables = self._tables()
        m = self.dataset.num_attributes
        trace = self.trace_checks
        attr_range = range(m)
        _, batch_pages = self.budget.split_for_second_phase()
        result: list[int] = []
        page_idx = 0
        while page_idx < scratch.num_pages:
            # Load the next batch of first-phase results.
            rbatch: list[tuple[int, tuple]] = []
            last = min(page_idx + batch_pages, scratch.num_pages)
            for pid in range(page_idx, last):
                rbatch.extend(scratch.read_page(pid))
            page_idx = last
            stats.phase2_batches += 1
            stats.db_passes += 1
            # alive: [x_id, x_values, rows, qd]
            alive = []
            for x_id, x in rbatch:
                rows = [tables[i][x[i]] for i in attr_range]
                qd = [rows[i][query[i]] for i in attr_range]
                alive.append((x_id, x, rows, qd))
            # Scan the whole database, evicting prunable batch members.
            for _, dpage in data_file.scan():
                if not alive:
                    break
                for e_id, e in dpage:
                    survivors = []
                    e_checks = 0
                    for entry in alive:
                        x_id, _, rows, qd = entry
                        if e_id == x_id:
                            survivors.append(entry)
                            continue
                        stats.pruner_tests += 1
                        closer = False
                        checks = m
                        for i in attr_range:
                            dy = rows[i][e[i]]
                            dq = qd[i]
                            if dy > dq:
                                checks = i + 1
                                break
                            if dy < dq:
                                closer = True
                        else:
                            if closer:
                                # e prunes x: drop it.
                                e_checks += checks
                                continue
                        e_checks += checks
                        survivors.append(entry)
                    alive = survivors
                    if e_checks:
                        stats.charge_phase2(e_id, e_checks, trace=trace)
                if not alive:
                    break
            result.extend(entry[0] for entry in alive)
        return result
