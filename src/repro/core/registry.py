"""Algorithm registry: name -> class, for the experiment harness and CLI.

Scalar algorithms and their numpy variants live side by side; the
scalar/vector pairing itself is declared with
:func:`repro.kernels.register_variant`, so every backend-aware entry
point (``make_algorithm``'s ``backend=``, the engine, the CLI) resolves
names through one shared dispatch table.
"""

from __future__ import annotations

from repro.core.base import ReverseSkylineAlgorithm
from repro.core.brs import BRS
from repro.core.indexed import IndexedTRS
from repro.core.naive import NaiveRS
from repro.core.numeric import NumericTRS
from repro.core.srs import SRS
from repro.core.tiled import TSRS, TTRS
from repro.core.trs import TRS
from repro.core.vector_trs import VectorTRS
from repro.core.vectorized import VectorBRS
from repro.errors import AlgorithmError
from repro.kernels import register_variant, resolve_algorithm
from repro.shard.scatter import ScatterGatherTRS

__all__ = ["ALGORITHMS", "get_algorithm", "make_algorithm"]

ALGORITHMS: dict[str, type[ReverseSkylineAlgorithm]] = {
    cls.name: cls
    for cls in (
        NaiveRS,
        BRS,
        SRS,
        TRS,
        TSRS,
        TTRS,
        NumericTRS,
        VectorBRS,
        VectorTRS,
        ScatterGatherTRS,
        IndexedTRS,
    )
}

def _vector_brs_profitable(dataset) -> bool:
    """Shape gate for VectorBRS under ``auto`` dispatch.

    The code-table rewrite (see :mod:`repro.core.vectorized`) benches
    VectorBRS at 1.5-3.7x of scalar BRS across the measured workloads
    (BENCH_core.json), reversing the ~0.46x regression that originally
    demoted it. Its per-(candidate, value) tables pay per *distinct
    value* rather than per object, so the win is only established while
    every attribute's cardinality stays within the phase-1 column-block
    width; beyond that the tables outgrow the pair blocks they replace
    and the measurement no longer covers the shape.
    """
    from repro.core.vectorized import _COL_BLOCK

    return max(dataset.schema.cardinalities(), default=0) <= _COL_BLOCK


# Scalar/vector pairings for backend dispatch (idempotent). VectorBRS
# is re-admitted to `auto` dispatch behind the shape gate above; an
# explicit backend="numpy" always selects it regardless of shape.
register_variant("BRS", "VectorBRS", auto=_vector_brs_profitable)
register_variant("TRS", "VectorTRS")
# SGTRS is its own variant on every backend: the backend choice applies
# to the per-shard scan algorithms it builds internally, so dispatch
# must hand the name back unchanged and let the class forward `backend`.
register_variant("SGTRS", "SGTRS", auto=False)
# ITRS likewise self-pairs: the backend selects the candidate-generation
# kernel (scalar traversal vs whole-frontier matrix ops) inside the one
# class, so dispatch hands the name back and the class takes `backend`.
register_variant("ITRS", "ITRS", auto=False)


def get_algorithm(name: str) -> type[ReverseSkylineAlgorithm]:
    """Look an algorithm class up by its paper name (e.g. ``"TRS"``)."""
    try:
        return ALGORITHMS[name]
    except KeyError:
        known = ", ".join(sorted(ALGORITHMS))
        raise AlgorithmError(f"unknown algorithm {name!r}; known: {known}") from None


def make_algorithm(
    name: str,
    dataset,
    *,
    backend: str | None = None,
    shards: int | None = None,
    recall_target: float | None = None,
    **kwargs,
) -> ReverseSkylineAlgorithm:
    """Instantiate an algorithm by name.

    ``backend`` (``python`` / ``numpy`` / ``auto``) resolves ``name``
    through the kernels dispatch table first: ``python`` maps vector
    names back to their scalar family, ``numpy`` requires a vectorised
    variant, ``auto`` upgrades to it when the dataset qualifies.
    Classes that resolve to themselves and declare ``accepts_backend``
    (the sharded and indexed families) receive the backend as a
    constructor argument instead. ``shards`` is forwarded to
    shard-capable classes (``accepts_shards``) and ``recall_target`` to
    index-capable ones (``accepts_index``); both are rejected for
    everything else.
    """
    resolved = resolve_algorithm(name, backend, dataset)
    cls = get_algorithm(resolved)
    if getattr(cls, "accepts_backend", False) and backend is not None:
        kwargs["backend"] = backend
    if shards is not None:
        if not getattr(cls, "accepts_shards", False):
            raise AlgorithmError(
                f"algorithm {resolved!r} does not support sharded execution; "
                "use SGTRS (or drop shards=)"
            )
        kwargs["shards"] = shards
    if recall_target is not None:
        if not getattr(cls, "accepts_index", False):
            raise AlgorithmError(
                f"algorithm {resolved!r} does not support approximate index "
                "retrieval; use ITRS (or drop recall_target=)"
            )
        kwargs["recall_target"] = recall_target
    return cls(dataset, **kwargs)
