"""Algorithm registry: name -> class, for the experiment harness and CLI."""

from __future__ import annotations

from repro.core.base import ReverseSkylineAlgorithm
from repro.core.brs import BRS
from repro.core.naive import NaiveRS
from repro.core.numeric import NumericTRS
from repro.core.srs import SRS
from repro.core.tiled import TSRS, TTRS
from repro.core.trs import TRS
from repro.core.vectorized import VectorBRS
from repro.errors import AlgorithmError

__all__ = ["ALGORITHMS", "get_algorithm", "make_algorithm"]

ALGORITHMS: dict[str, type[ReverseSkylineAlgorithm]] = {
    cls.name: cls
    for cls in (NaiveRS, BRS, SRS, TRS, TSRS, TTRS, NumericTRS, VectorBRS)
}


def get_algorithm(name: str) -> type[ReverseSkylineAlgorithm]:
    """Look an algorithm class up by its paper name (e.g. ``"TRS"``)."""
    try:
        return ALGORITHMS[name]
    except KeyError:
        known = ", ".join(sorted(ALGORITHMS))
        raise AlgorithmError(f"unknown algorithm {name!r}; known: {known}") from None


def make_algorithm(name: str, dataset, **kwargs) -> ReverseSkylineAlgorithm:
    """Instantiate an algorithm by name."""
    return get_algorithm(name)(dataset, **kwargs)
