"""Index-accelerated reverse skylines — ITRS.

``IndexedTRS`` replaces TRS's two scan phases with candidate generation
over the :mod:`repro.index` pruning tree: for each database object X it
asks the index for a superset of X's possible pruners and verifies only
those pairwise.  One sequential database pass (``db_passes == 1``)
instead of TRS's two-plus, and — on dissimilarity measures with any
locality — far fewer attribute checks than the O(n) pruner scan per
object, which is the sublinear-candidates axis ``BENCH_index.json``
gates on.

Two modes:

- **exact** (``recall_target=None``): only the sound value rule prunes
  subtrees, so the candidate set provably contains every true pruner
  and the verified result is the complete reverse skyline —
  bit-identical to the AL-Tree oracle
  (:func:`repro.testing.verify_index_equivalence` pins this across
  pools and backends).  Costs may differ from TRS; results may not.
- **approximate** (``recall_target=q``): the calibrated triangle-defect
  band rules and the calibrated leaf-score rule additionally discard
  subtrees and leaves.  Missing a pruner can only
  *add* survivors (the result is a superset of the exact reverse
  skyline — no true member is ever lost), so the interesting quantity
  is **pruning recall**: the fraction of objects the exact mode prunes
  that the approximate mode also prunes.  Every result reports a
  ``measured_recall`` estimate from a bounded, deterministic exact
  audit of its survivors, so callers see what they paid.
"""

from __future__ import annotations

import threading
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.base import CostStats, RSResult
from repro.core.trs import TRS
from repro.data.dataset import Dataset
from repro.errors import AlgorithmError
from repro.index.candidates import (
    scalar_candidates,
    scalar_has_pruner,
    vector_candidates,
    vector_has_pruner,
)
from repro.index.tree import IndexParams, PruningIndex, build_index
from repro.obs import hooks as _obs
from repro.storage.disk import DEFAULT_PAGE_BYTES, DiskSimulator, MemoryBudget
from repro.storage.pagefile import PageFile

__all__ = ["IndexedRSResult", "IndexedTRS"]


@dataclass(frozen=True)
class IndexedRSResult(RSResult):
    """An :class:`RSResult` plus the index's speed/recall accounting."""

    #: ``"exact"`` or ``"approximate"``.
    mode: str = "exact"
    #: The requested pruning-recall quantile (``None`` in exact mode).
    recall_target: float | None = None
    #: Estimated pruning recall (1.0 in exact mode): the fraction of
    #: exact-mode prunings this run also made, estimated by exactly
    #: auditing a deterministic sample of the survivors.
    measured_recall: float = 1.0
    #: Pairwise pruner candidates the index produced across all objects.
    candidates_total: int = 0
    #: ``candidates_total / n²`` — the fraction of the full all-pairs
    #: scan the index left standing (the sublinear-gate currency).
    candidate_fraction: float = 0.0
    #: Tree size, for observability.
    index_nodes: int = 0


class IndexedTRS(TRS):
    """TRS with index-generated candidate supersets (family ``ITRS``).

    Parameters (beyond :class:`~repro.core.trs.TRS`)
    ------------------------------------------------
    backend:
        ``python`` walks the tree per object with early aborts;
        ``numpy`` / ``auto`` evaluate whole node frontiers as matrix
        ops.  Candidate sets — and therefore results — are identical;
        only charged costs differ.  ``None`` keeps the scalar path.
    recall_target:
        ``None`` = exact mode.  A quantile in [0, 1] enables the
        approximate band rule; higher targets give nested-larger
        candidate sets (monotone recall).
    index_seed / index_leaf_size / index_fanout / calibration_samples:
        Forwarded to :class:`repro.index.IndexParams`.
    audit_sample:
        Survivors exactly re-checked per query to estimate
        ``measured_recall`` in approximate mode.
    """

    name = "ITRS"
    #: make_algorithm forwards ``backend=`` / index args to this class.
    accepts_backend = True
    accepts_index = True

    def __init__(
        self,
        dataset: Dataset,
        *,
        backend: str | None = None,
        recall_target: float | None = None,
        index_seed: int = 0,
        index_leaf_size: int = 32,
        index_fanout: int = 4,
        calibration_samples: int = 512,
        audit_sample: int = 24,
        attribute_order: Sequence[int] | None = None,
        presort: bool = True,
        memory_fraction: float = 0.10,
        budget: MemoryBudget | None = None,
        page_bytes: int = DEFAULT_PAGE_BYTES,
        trace_checks: bool = False,
        overlay=None,
    ) -> None:
        super().__init__(
            dataset,
            attribute_order=attribute_order,
            presort=presort,
            memory_fraction=memory_fraction,
            budget=budget,
            page_bytes=page_bytes,
            trace_checks=trace_checks,
            overlay=overlay,
        )
        if recall_target is not None and not 0.0 <= recall_target <= 1.0:
            raise AlgorithmError(
                f"{self.name}: recall_target must be in [0, 1], got {recall_target!r}"
            )
        self.recall_target = recall_target
        self.index_params = IndexParams(
            seed=index_seed,
            leaf_size=index_leaf_size,
            fanout=index_fanout,
            calibration_samples=calibration_samples,
        )
        self.audit_sample = int(audit_sample)
        from repro.kernels import normalize_backend

        self._backend_pref = normalize_backend(backend)
        self._index_cache: PruningIndex | None = None
        self._index_fp: str | None = None
        self._mats: list[np.ndarray] | None = None
        self._tls = threading.local()

    def with_overlay(self, overlay):
        clone = super().with_overlay(overlay)
        # The index and matrices cover the base only and carry over; the
        # per-query diagnostics slot must not cross epoch instances.
        clone._tls = threading.local()
        return clone

    # -- physical design ----------------------------------------------------
    def prepare(self) -> None:
        super().prepare()
        if self._index_cache is not None:
            return
        # Racing preparers (base.run is lock-free) build identical
        # artifacts — the index is a pure function of (dataset, params).
        self._tables()  # reject non-categorical / non-zero-diagonal spaces
        from repro.kernels.plancache import PlanKey, plan_cache, plan_fingerprint

        assert self._layout is not None  # super().prepare() just built it
        fp = plan_fingerprint(self.dataset, self._layout)
        key = PlanKey("index", fp, self.index_params.key())
        index = plan_cache().get(key)
        if index is None:
            index = build_index(self.dataset, self.index_params)
            plan_cache().put(key, index, nbytes=index.memory_bytes())
        use_numpy = self._backend_pref in ("numpy", "auto")
        if use_numpy:
            self._mats = [
                np.asarray(t, dtype=np.float64) for t in self.dataset.space.tables()
            ]
        self.backend = "numpy" if use_numpy else "python"
        self._index_fp = fp
        self._index_cache = index

    def index(self) -> PruningIndex:
        """The built pruning index (building it on first use)."""
        self.prepare()
        assert self._index_cache is not None
        return self._index_cache

    def index_fingerprint(self) -> str:
        """Plan fingerprint the index artifact is keyed under (shm
        publication and worker-side cache seeding both reuse it)."""
        self.prepare()
        assert self._index_fp is not None
        return self._index_fp

    # -- query processing ----------------------------------------------------
    def run(self, query: tuple) -> IndexedRSResult:
        base = super().run(query)
        info = getattr(self._tls, "info", None) or {}
        self._tls.info = None
        return IndexedRSResult(
            base.algorithm,
            base.query,
            base.record_ids,
            base.stats,
            backend=base.backend,
            mode=info.get("mode", "exact"),
            recall_target=self.recall_target,
            measured_recall=info.get("measured_recall", 1.0),
            candidates_total=info.get("candidates_total", 0),
            candidate_fraction=info.get("candidate_fraction", 0.0),
            index_nodes=info.get("index_nodes", 0),
        )

    def _execute(
        self, disk: DiskSimulator, data_file: PageFile, query: tuple, stats: CostStats
    ) -> list[int]:
        if self.overlay is not None:
            # The pruning index covers the compacted base only; overlay
            # epochs answer through the overlay-aware TRS scan (exact by
            # construction) until the next compaction rebuilds the index.
            self._tls.info = {"mode": "overlay-scan"}
            return TRS._execute(self, disk, data_file, query, stats)
        tables = self._tables()
        index = self.index()
        n = len(self.dataset)
        m = self.dataset.num_attributes
        trace = self.trace_checks
        slack = (
            None
            if self.recall_target is None
            else (
                index.slack(self.recall_target),
                index.slack_out(self.recall_target),
                index.score_cutoff(self.recall_target),
            )
        )
        stats.db_passes += 1
        stats.phase1_batches += 1
        survivors: list[int] = []
        total_candidates = 0

        if self.backend == "numpy":
            mats = self._mats
            assert mats is not None
            with _obs.span("index.candidates"):
                cand_lists, total_candidates, node_evals = vector_candidates(
                    index, mats, query, slack
                )
            stats.pruner_tests += node_evals
            with _obs.span("index.verify"):
                for _, page in data_file.scan():
                    for record_id, values in page:
                        thresholds = np.empty(m, dtype=np.float64)
                        for i in range(m):
                            thresholds[i] = mats[i][values[i], query[i]]
                        prunable, tests = vector_has_pruner(
                            mats, index.values, record_id, thresholds,
                            cand_lists[record_id],
                        )
                        stats.pruner_tests += tests
                        stats.charge_phase1(record_id, (tests + 1) * m, trace=trace)
                        if not prunable:
                            survivors.append(record_id)
        else:
            with _obs.span("index.scan"):
                for _, page in data_file.scan():
                    for record_id, values in page:
                        thresholds = [
                            tables[i][values[i]][query[i]] for i in range(m)
                        ]
                        threshold_sum = 0.0
                        for t in thresholds:
                            threshold_sum += t
                        cands, checks, visited = scalar_candidates(
                            index, tables, values, thresholds, threshold_sum,
                            slack, {},
                        )
                        total_candidates += len(cands)
                        prunable, vchecks, tests = scalar_has_pruner(
                            tables, index.values, record_id, values, thresholds,
                            cands,
                        )
                        stats.pruner_tests += visited + tests
                        stats.charge_phase1(
                            record_id, checks + vchecks + m, trace=trace
                        )
                        if not prunable:
                            survivors.append(record_id)

        stats.intermediate_count = total_candidates
        stats.phase1_pruned = n - len(survivors)

        measured_recall = 1.0
        if slack is not None:
            measured_recall = self._audit_recall(
                tables, index, query, survivors, n, m, stats
            )

        pruned_fraction = (n - len(survivors)) / n if n else 0.0
        self._tls.info = {
            "mode": "exact" if slack is None else "approximate",
            "measured_recall": measured_recall,
            "candidates_total": total_candidates,
            "candidate_fraction": total_candidates / (n * n) if n else 0.0,
            "index_nodes": index.num_nodes,
        }
        if _obs.enabled:
            _obs.inc("repro_index_candidates_total", total_candidates)
            _obs.observe("repro_index_pruned_fraction", pruned_fraction)
            if slack is not None:
                _obs.observe("repro_index_recall", measured_recall)
        return survivors

    def _audit_recall(
        self,
        tables: list,
        index: PruningIndex,
        query: tuple,
        survivors: list[int],
        n: int,
        m: int,
        stats: CostStats,
    ) -> float:
        """Estimate pruning recall by exactly re-checking a bounded,
        deterministic (evenly strided) sample of the survivors: a
        survivor with a true pruner is one the exact mode would have
        removed.  The estimate scales the sampled false-survivor rate
        to the whole survivor set; it reports, never changes, results.
        """
        pruned = n - len(survivors)
        if not survivors or self.audit_sample <= 0:
            return 1.0
        stride = max(1, len(survivors) // self.audit_sample)
        sample = survivors[::stride][: self.audit_sample]
        values = index.values
        false_survivors = 0
        for x_id in sample:
            x = tuple(values[x_id])
            thresholds = [tables[i][x[i]][query[i]] for i in range(m)]
            prunable, checks, tests = scalar_has_pruner(
                tables, values, x_id, x, thresholds, range(n)
            )
            stats.pruner_tests += tests
            stats.charge_phase2(x_id, checks, trace=self.trace_checks)
            if prunable:
                false_survivors += 1
        estimated_missed = false_survivors / len(sample) * len(survivors)
        denominator = pruned + estimated_missed
        return 1.0 if denominator <= 0 else pruned / denominator
