"""Logical update overlay for the TRS family.

An :class:`Overlay` describes the difference between the *base* dataset
an algorithm was prepared over and the *live* logical dataset:

``live = base ∖ tombstones ∪ entries``

- ``entries`` are inserted records that have not been compacted into the
  base yet. Their record ids are **synthetic**: ``len(base) + j`` for the
  j-th delta entry, guaranteed disjoint from base positions so pruner
  identity tests (``keep entry iff id == candidate id``) stay exact.
- ``tombstones`` are base record *positions* that have been logically
  deleted. A tombstoned record must not be a result candidate, must not
  act as a phase-1 batch pruner, and must not stream as a phase-2 pruner
  source — but its pages are still read, so base IO counters stay pinned
  to the overlay-free values.

Cost discipline: every comparison attributable to the overlay (testing a
delta candidate, or streaming a delta entry as a pruner source) charges
:attr:`~repro.core.base.CostStats.checks_delta`, never the base phase
counters, so differential harnesses that pin base cost remain exact.

Overlays are built by :mod:`repro.maint` and are deliberately dumb data:
frozen, picklable (they cross process-pool boundaries), and cheap to
compare by ``epoch``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Overlay"]


@dataclass(frozen=True)
class Overlay:
    """An immutable snapshot of uncompacted updates (one epoch)."""

    #: ``(record_id, values)`` pairs with synthetic ids ``len(base) + j``.
    entries: tuple[tuple[int, tuple], ...] = ()
    #: Base record positions that are logically deleted.
    tombstones: frozenset[int] = field(default_factory=frozenset)
    #: Monotone update-epoch counter (for fingerprints and worker sync).
    epoch: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "entries",
            tuple((int(rid), tuple(values)) for rid, values in self.entries),
        )
        object.__setattr__(self, "tombstones", frozenset(self.tombstones))

    @property
    def empty(self) -> bool:
        return not self.entries and not self.tombstones

    def live_count(self, base_size: int) -> int:
        """Size of the logical dataset this overlay induces over a base."""
        return base_size - len(self.tombstones) + len(self.entries)
