"""TRS over mixed categorical + numeric schemas via discretisation
(paper Section 6).

Group-level reasoning needs many objects per group, which continuous
domains do not give. The paper's fix: bucket each numeric attribute, build
the AL-Tree over bucket ids, and reason with *interval bounds*:

- **Phase 1** (``IsPrunable``): descend into a bucket only when domination
  is *certain* for every value in it — the maximum dissimilarity between
  the checked object's value and the bucket must not exceed the (exact)
  dissimilarity to the query. Conservative, so some prunable objects
  survive as false positives in the intermediate result.
- **Phase 2** (``Prune``): descend whenever domination is *possible*
  (minimum dissimilarity to the scanned object within the range of the
  maximum dissimilarity to the query), and refine at the leaves with
  exact checks on the actual stored values, evicting per entry.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.altree.tree import ALTree
from repro.core.base import CostStats
from repro.core.trs import ENTRY_BYTES, NODE_BYTES, TRS
from repro.data.dataset import Dataset
from repro.dissim.numeric import NumericDissimilarity
from repro.errors import AlgorithmError
from repro.storage.disk import DEFAULT_PAGE_BYTES, MemoryBudget
from repro.storage.pagefile import PageFile

__all__ = ["Discretizer", "NumericTRS"]


class Discretizer:
    """Equi-width bucketing of the numeric attributes of a dataset."""

    def __init__(self, dataset: Dataset, num_buckets: int = 8) -> None:
        if num_buckets < 1:
            raise AlgorithmError(f"num_buckets must be >= 1, got {num_buckets}")
        self.num_buckets = num_buckets
        self._spec: list[tuple[float, float] | None] = []
        for i, attr in enumerate(dataset.schema):
            if attr.is_categorical:
                self._spec.append(None)
                continue
            column = [r[i] for r in dataset.records]
            if not column:
                raise AlgorithmError("cannot discretise an empty dataset")
            lo, hi = min(column), max(column)
            if hi <= lo:
                hi = lo + 1.0
            self._spec.append((lo, hi))

    def is_numeric(self, i: int) -> bool:
        return self._spec[i] is not None

    def bucket_of(self, i: int, value: float) -> int:
        lo, hi = self._spec[i]
        frac = (value - lo) / (hi - lo)
        return min(self.num_buckets - 1, max(0, int(frac * self.num_buckets)))

    def interval(self, i: int, bucket: int) -> tuple[float, float]:
        """The ``[lo, hi]`` value range of one bucket."""
        lo, hi = self._spec[i]
        width = (hi - lo) / self.num_buckets
        return lo + bucket * width, lo + (bucket + 1) * width


class NumericTRS(TRS):
    """TRS for schemas with numeric attributes (Section 6)."""

    name = "NumericTRS"

    def __init__(
        self,
        dataset: Dataset,
        *,
        num_buckets: int = 8,
        attribute_order: Sequence[int] | None = None,
        presort: bool = True,
        order_children: bool = True,
        memory_fraction: float = 0.10,
        budget: MemoryBudget | None = None,
        page_bytes: int = DEFAULT_PAGE_BYTES,
        trace_checks: bool = False,
    ) -> None:
        super().__init__(
            dataset,
            attribute_order=attribute_order,
            presort=presort,
            order_children=order_children,
            memory_fraction=memory_fraction,
            budget=budget,
            page_bytes=page_bytes,
            trace_checks=trace_checks,
        )
        self.discretizer = Discretizer(dataset, num_buckets)
        self._cat_tables = dataset.space.tables()  # None for numeric attrs
        for i, d in enumerate(dataset.space.dissims):
            if self._cat_tables[i] is None and not isinstance(d, NumericDissimilarity):
                raise AlgorithmError(
                    f"attribute {i}: NumericTRS needs a NumericDissimilarity "
                    f"for non-categorical attributes, got {type(d).__name__}"
                )

    # -- layout -------------------------------------------------------------
    def _layout_key(self, values: tuple):
        parts = []
        for pos in self.attribute_order:
            if self.discretizer.is_numeric(pos):
                parts.append((self.discretizer.bucket_of(pos, values[pos]), values[pos]))
            else:
                parts.append((values[pos], 0.0))
        return tuple(parts)

    def _build_layout(self) -> list[tuple[int, tuple]]:
        entries = list(enumerate(self.dataset.records))
        if not self.presort:
            return entries
        return sorted(entries, key=lambda e: self._layout_key(e[1]))

    # -- tree ---------------------------------------------------------------
    def _new_tree(self) -> ALTree:
        disc = self.discretizer

        def key_fn(position: int, value):
            attr = self.attribute_order[position]
            if disc.is_numeric(attr):
                return disc.bucket_of(attr, value)
            return value

        return ALTree(self.attribute_order, key_fn=key_fn)

    # -- exact pairwise test (leaf refinement and qd computation) ------------
    def _query_distances(self, c: tuple, query: tuple) -> list[float]:
        space = self.dataset.space
        return [space.d(i, c[i], query[i]) for i in range(space.num_attributes)]

    # -- phase 1 ----------------------------------------------------------
    def _phase1(
        self, data_file: PageFile, scratch: PageFile, query: tuple, stats: CostStats
    ) -> None:
        trace = self.trace_checks
        budget_bytes = self.budget.pages * self.page_bytes
        writer = scratch.writer()
        stats.db_passes += 1
        tree = self._new_tree()
        batch: list[tuple] = []  # (record_id, values, leaf)

        def process_batch() -> None:
            for c_id, c, leaf in batch:
                qd = self._query_distances(c, query)
                entry = tree.soft_remove(leaf, c_id)
                prunable, checks = self._is_prunable_mixed(tree, c, qd)
                tree.soft_restore(leaf, entry)
                stats.pruner_tests += 1
                stats.charge_phase1(c_id, checks, trace=trace)
                if not prunable:
                    writer.append(c_id, c)
            stats.phase1_batches += 1

        for _, page in data_file.scan():
            for record_id, values in page:
                leaf = tree.insert(record_id, values)
                batch.append((record_id, values, leaf))
            if tree.memory_bytes(NODE_BYTES, ENTRY_BYTES) >= budget_bytes:
                process_batch()
                tree = self._new_tree()
                batch = []
        if batch:
            process_batch()
        writer.close()
        stats.phase1_pruned = len(self.dataset) - scratch.num_records

    def _is_prunable_mixed(self, tree: ALTree, c: tuple, qd: list[float]):
        """Algorithm 4 with certain-domination bucket bounds on numeric
        attributes (the Section 6 first-phase condition)."""
        order = tree.attribute_order
        disc = self.discretizer
        space = self.dataset.space
        tables = self._cat_tables
        checks = 0
        stack: list[tuple] = [(tree.root, False)]
        while stack:
            node, found_closer = stack.pop()
            if node.entries:
                if found_closer:
                    return True, checks
                continue
            children = (
                node.children_by_promise()
                if self.order_children
                else list(node.children.values())
            )
            for child in children:
                if not child.descendants:
                    continue  # soft-removed subtree
                i = order[child.position]
                checks += 1
                if tables[i] is not None:
                    d_cp = tables[i][c[i]][child.key]
                    if d_cp <= qd[i]:
                        stack.append((child, found_closer or d_cp < qd[i]))
                else:
                    b_lo, b_hi = disc.interval(i, child.key)
                    _, d_hi = space[i].interval_bounds(c[i], c[i], b_lo, b_hi)
                    # Certain domination on this attribute for every value
                    # in the bucket.
                    if d_hi <= qd[i]:
                        stack.append((child, found_closer or d_hi < qd[i]))
        return False, checks

    # -- phase 2 ----------------------------------------------------------
    def _phase2(
        self, data_file: PageFile, scratch: PageFile, query: tuple, stats: CostStats
    ) -> list[int]:
        trace = self.trace_checks
        _, batch_pages = self.budget.split_for_second_phase()
        batch_bytes = batch_pages * self.page_bytes
        result: list[int] = []
        page_idx = 0
        while page_idx < scratch.num_pages:
            tree = self._new_tree()
            while page_idx < scratch.num_pages:
                for record_id, values in scratch.read_page(page_idx):
                    tree.insert(record_id, values)
                page_idx += 1
                if tree.memory_bytes(NODE_BYTES, ENTRY_BYTES) >= batch_bytes:
                    break
            stats.phase2_batches += 1
            stats.db_passes += 1
            for _, dpage in data_file.scan():
                if tree.num_objects == 0:
                    break
                for e_id, e in dpage:
                    checks = self._prune_mixed(tree, e_id, e, query)
                    if checks:
                        stats.charge_phase2(e_id, checks, trace=trace)
                if tree.num_objects == 0:
                    break
            result.extend(record_id for record_id, _ in tree.iter_entries())
        return result

    def _prune_mixed(self, tree: ALTree, e_id: int, e: tuple, query: tuple) -> int:
        """Algorithm 5 with possible-domination bucket bounds and exact
        per-entry refinement at the leaves (the Section 6 second phase:
        leaves keep actual values; evictions use exact checks)."""
        order = tree.attribute_order
        disc = self.discretizer
        space = self.dataset.space
        tables = self._cat_tables
        m = space.num_attributes
        checks = 0
        stack: list = [tree.root]
        while stack:
            node = stack.pop()
            if node.descendants == 0 and node.parent is None and node is not tree.root:
                continue
            if node.entries:
                # Exact refinement: evict entries e genuinely prunes.
                survivors = []
                for entry in node.entries:
                    x_id, x = entry
                    if x_id == e_id:
                        survivors.append(entry)
                        continue
                    closer = False
                    dominated = True
                    for i in range(m):
                        checks += 1
                        d_xe = space.d(i, x[i], e[i])
                        d_xq = space.d(i, x[i], query[i])
                        if d_xe > d_xq:
                            dominated = False
                            break
                        if d_xe < d_xq:
                            closer = True
                    if not (dominated and closer):
                        survivors.append(entry)
                if len(survivors) != len(node.entries):
                    keep_ids = {id(s) for s in survivors}
                    tree.remove_entries(node, keep=lambda ent: id(ent) in keep_ids)
                continue
            for child in list(node.children.values()):
                i = order[child.position]
                checks += 1
                if tables[i] is not None:
                    row = tables[i][child.key]
                    if row[e[i]] <= row[query[i]]:
                        stack.append(child)
                else:
                    b_lo, b_hi = disc.interval(i, child.key)
                    d_e_lo, _ = space[i].interval_bounds(b_lo, b_hi, e[i], e[i])
                    _, d_q_hi = space[i].interval_bounds(b_lo, b_hi, query[i], query[i])
                    # Possible domination: descend and refine at the leaf.
                    if d_e_lo <= d_q_hi:
                        stack.append(child)
        return checks
