"""Block Reverse Skyline — BRS (paper Section 4.1, Algorithm 2).

The plain two-phase block algorithm: no layout step, batch-order pruner
search. Its advantage over Naive is purely IO-structural — batched,
mostly-sequential accesses instead of per-object database scans.
"""

from __future__ import annotations

from repro.core.blocked import BlockedRS

__all__ = ["BRS"]


class BRS(BlockedRS):
    """Algorithm 2 on the dataset's native disk order."""

    name = "BRS"
