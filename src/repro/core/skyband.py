"""Reverse k-skyband: tolerate up to ``k-1`` pruners.

The reverse skyline keeps ``X`` only when *no* object dominates the query
with respect to ``X``. Its natural generalisation — mirroring how RkNN
generalises RNN (the authors' companion paper, PVLDB 2010 [20], treats
exactly that) — is the **reverse k-skyband**:

``RSB_k(Q) = { X ∈ D : |{ Y ∈ D, Y ≠ X : Y ≻_X Q }| < k }``

With ``k = 1`` this is the reverse skyline. Larger ``k`` yields a graded
influence notion: objects for which the query stays in the k-skyband, a
robust, noise-tolerant audience estimate.

The algorithm keeps TRS's two-phase, memory-bounded structure:

- **Phase 1** counts intra-batch pruners per object with an exhaustive
  Algorithm 4-style traversal that *early-stops at k*; ``>= k`` in-batch
  pruners already certify exclusion (counts only grow with more data).
- **Phase 2** loads survivor batches into an AL-Tree whose leaf entries
  carry pruner counters; each scanned database object increments the
  counters of everything it dominates (an enumerating Algorithm 5), and
  entries are evicted when their counter reaches ``k``. Counting restarts
  from zero here, so every pruner in ``D`` is counted exactly once.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.altree.tree import ALTree
from repro.core.base import CostStats
from repro.core.trs import ENTRY_BYTES, NODE_BYTES, TRS
from repro.data.dataset import Dataset
from repro.errors import AlgorithmError
from repro.storage.disk import DEFAULT_PAGE_BYTES, MemoryBudget
from repro.storage.pagefile import PageFile

__all__ = ["ReverseSkybandTRS", "reverse_skyband_naive"]


def reverse_skyband_naive(dataset: Dataset, query: tuple, k: int) -> list[int]:
    """Reference implementation by exhaustive pruner counting."""
    if k < 1:
        raise AlgorithmError(f"k must be >= 1, got {k}")
    from repro.skyline.domination import dominates

    q = dataset.validate_query(query)
    out = []
    for x_id, x in enumerate(dataset.records):
        pruners = sum(
            1
            for y_id, y in enumerate(dataset.records)
            if y_id != x_id and dominates(dataset.space, y, q, x)
        )
        if pruners < k:
            out.append(x_id)
    return out


class ReverseSkybandTRS(TRS):
    """Two-phase, tree-accelerated reverse k-skyband."""

    name = "SkybandTRS"

    def __init__(
        self,
        dataset: Dataset,
        *,
        k: int = 2,
        attribute_order: Sequence[int] | None = None,
        presort: bool = True,
        order_children: bool = True,
        memory_fraction: float = 0.10,
        budget: MemoryBudget | None = None,
        page_bytes: int = DEFAULT_PAGE_BYTES,
        trace_checks: bool = False,
    ) -> None:
        if k < 1:
            raise AlgorithmError(f"k must be >= 1, got {k}")
        super().__init__(
            dataset,
            attribute_order=attribute_order,
            presort=presort,
            order_children=order_children,
            memory_fraction=memory_fraction,
            budget=budget,
            page_bytes=page_bytes,
            trace_checks=trace_checks,
        )
        self.k = k

    # -- counting traversals ---------------------------------------------------
    def _count_pruners_upto(
        self, tree: ALTree, c: tuple, qd: list[float], tables: list, limit: int
    ) -> tuple[int, int]:
        """Count tree objects dominating the query w.r.t. ``c``, stopping
        early once ``limit`` is reached. Returns ``(count, checks)``."""
        order = tree.attribute_order
        count = 0
        checks = 0
        stack: list[tuple] = [(tree.root, False)]
        while stack:
            node, found_closer = stack.pop()
            if node.entries:
                if found_closer:
                    count += node.count
                    if count >= limit:
                        return count, checks
                continue
            for child in node.children.values():
                if not child.descendants:
                    continue  # soft-removed subtree
                i = order[child.position]
                d_cp = tables[i][c[i]][child.key]
                checks += 1
                if d_cp <= qd[i]:
                    stack.append((child, found_closer or d_cp < qd[i]))
        return count, checks

    # -- phase 1 ---------------------------------------------------------------
    def _phase1(
        self, data_file: PageFile, scratch: PageFile, query: tuple, stats: CostStats
    ) -> None:
        tables = self._tables()
        m = self.dataset.num_attributes
        trace = self.trace_checks
        budget_bytes = self.budget.pages * self.page_bytes
        writer = scratch.writer()
        stats.db_passes += 1
        tree = self._new_tree()
        batch: list[tuple] = []  # (record_id, values, leaf)

        def process_batch() -> None:
            for c_id, c, leaf in batch:
                qd = [tables[i][c[i]][query[i]] for i in range(m)]
                entry = tree.soft_remove(leaf, c_id)
                count, checks = self._count_pruners_upto(
                    tree, c, qd, tables, self.k
                )
                tree.soft_restore(leaf, entry)
                stats.pruner_tests += 1
                stats.charge_phase1(c_id, checks, trace=trace)
                if count < self.k:
                    writer.append(c_id, c)
            stats.phase1_batches += 1

        for _, page in data_file.scan():
            for record_id, values in page:
                leaf = tree.insert(record_id, values)
                batch.append((record_id, values, leaf))
            if tree.memory_bytes(NODE_BYTES, ENTRY_BYTES) >= budget_bytes:
                process_batch()
                tree = self._new_tree()
                batch = []
        if batch:
            process_batch()
        writer.close()
        stats.phase1_pruned = len(self.dataset) - scratch.num_records

    # -- phase 2 ---------------------------------------------------------------
    def _phase2(
        self, data_file: PageFile, scratch: PageFile, query: tuple, stats: CostStats
    ) -> list[int]:
        tables = self._tables()
        trace = self.trace_checks
        k = self.k
        _, batch_pages = self.budget.split_for_second_phase()
        # Counters cost one extra int per entry.
        batch_bytes = batch_pages * self.page_bytes
        result: list[int] = []
        page_idx = 0
        while page_idx < scratch.num_pages:
            tree = self._new_tree()
            counters: dict[int, int] = {}
            while page_idx < scratch.num_pages:
                for record_id, values in scratch.read_page(page_idx):
                    tree.insert(record_id, values)
                    counters[record_id] = 0
                page_idx += 1
                if tree.memory_bytes(NODE_BYTES, ENTRY_BYTES + 4) >= batch_bytes:
                    break
            stats.phase2_batches += 1
            stats.db_passes += 1
            order = tree.attribute_order
            for _, dpage in data_file.scan():
                if tree.num_objects == 0:
                    break
                for e_id, e in dpage:
                    checks = 0
                    stack: list[tuple] = [(tree.root, False)]
                    while stack:
                        node, found_closer = stack.pop()
                        if node.parent is None and node is not tree.root:
                            continue  # detached while queued
                        if node.entries:
                            if found_closer:
                                victims = [
                                    rid for rid, _ in node.entries if rid != e_id
                                ]
                                evict = set()
                                for rid in victims:
                                    counters[rid] += 1
                                    if counters[rid] >= k:
                                        evict.add(rid)
                                if evict:
                                    tree.remove_entries(
                                        node, keep=lambda ent: ent[0] not in evict
                                    )
                            continue
                        for child in list(node.children.values()):
                            i = order[child.position]
                            row = tables[i][child.key]
                            d_pe = row[e[i]]
                            d_pq = row[query[i]]
                            checks += 1
                            if d_pe <= d_pq:
                                stack.append((child, found_closer or d_pe < d_pq))
                    if checks:
                        stats.charge_phase2(e_id, checks, trace=trace)
                if tree.num_objects == 0:
                    break
            result.extend(record_id for record_id, _ in tree.iter_entries())
        return result
