"""Bichromatic reverse skyline over non-metric dissimilarities.

The monochromatic query asks who, *within one population*, is influenced
by ``Q``. The bichromatic variant (Lian & Chen, SIGMOD 2008 — cited in
the paper's related work) splits the roles: given a set ``A`` of
*subjects* (customers, admins) and a set ``B`` of *competitors* (existing
products, servers), the bichromatic reverse skyline of a query ``Q`` is

``BRS_{A,B}(Q) = { a ∈ A | ¬∃ b ∈ B : b ≻_a Q }``

— the subjects for whom no competitor dominates the query. This matches
the paper's retail scenario directly: customers to mail about a *new*
product are those whose preference is not better served by an existing
product.

Two implementations are provided: a pairwise scan baseline and a
tree-accelerated variant that loads the competitor set into an AL-Tree
and reuses TRS's ``IsPrunable`` traversal (Algorithm 4) per subject —
the same group-level reasoning, applied across populations.
"""

from __future__ import annotations

from repro.altree.tree import ALTree
from repro.core.trs import is_prunable
from repro.data.dataset import Dataset
from repro.errors import AlgorithmError, SchemaError
from repro.skyline.domination import dominates
from repro.sorting.keys import ascending_cardinality_order

__all__ = ["bichromatic_reverse_skyline", "bichromatic_reverse_skyline_naive"]


def _check_compatible(subjects: Dataset, competitors: Dataset) -> None:
    if subjects.schema != competitors.schema:
        raise SchemaError(
            "bichromatic query needs subjects and competitors over the same schema"
        )
    if subjects.space is not competitors.space and [
        type(d) for d in subjects.space.dissims
    ] != [type(d) for d in competitors.space.dissims]:
        raise SchemaError(
            "subjects and competitors must share a dissimilarity space"
        )


def bichromatic_reverse_skyline_naive(
    subjects: Dataset, competitors: Dataset, query: tuple
) -> list[int]:
    """Pairwise-scan baseline: for each subject ``a``, scan ``B`` for a
    competitor dominating the query with respect to ``a``."""
    _check_compatible(subjects, competitors)
    q = subjects.validate_query(query)
    space = subjects.space
    result = []
    for a_id, a in enumerate(subjects.records):
        if not any(dominates(space, b, q, a) for b in competitors.records):
            result.append(a_id)
    return result


def bichromatic_reverse_skyline(
    subjects: Dataset, competitors: Dataset, query: tuple
) -> list[int]:
    """Tree-accelerated bichromatic reverse skyline: the competitor set is
    organised once into an AL-Tree; each subject runs one Algorithm 4
    traversal (group-level elimination over competitor value groups).

    Note the cross-population identity semantics: a competitor with the
    *same values* as a subject still counts (it is a different entity), so
    no self-exclusion is performed — unlike the monochromatic algorithms.
    """
    _check_compatible(subjects, competitors)
    if not subjects.space.is_fully_categorical():
        raise AlgorithmError(
            "the tree-accelerated bichromatic query requires categorical "
            "attributes; use bichromatic_reverse_skyline_naive for mixed schemas"
        )
    q = subjects.validate_query(query)
    tables = subjects.space.tables()
    m = subjects.num_attributes
    order = ascending_cardinality_order(subjects.schema, competitors)
    tree = ALTree(order)
    for b_id, b in enumerate(competitors.records):
        tree.insert(b_id, b)
    result = []
    for a_id, a in enumerate(subjects.records):
        qd = [tables[i][a[i]][q[i]] for i in range(m)]
        prunable, _ = is_prunable(tree, a, qd, tables)
        if not prunable:
            result.append(a_id)
    return result
