"""Bichromatic reverse skyline (subjects vs competitors).

Public surface: :func:`bichromatic_reverse_skyline` (tree-accelerated),
:func:`bichromatic_reverse_skyline_naive` (pairwise baseline).
"""

from repro.bichromatic.query import (
    bichromatic_reverse_skyline,
    bichromatic_reverse_skyline_naive,
)

__all__ = ["bichromatic_reverse_skyline", "bichromatic_reverse_skyline_naive"]
