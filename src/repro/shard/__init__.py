"""Sharded scatter-gather reverse-skyline execution.

Partition a dataset into K shards (:class:`ShardPlanner`, Z-order tiles
with a round-robin fallback), run the TRS machinery locally on every
shard, then exchange the cross-shard candidate sets in a merge round
(:class:`ScatterGatherTRS`). Correctness is pinned differentially by
:mod:`repro.testing.differential`.
"""

from repro.shard.planner import Shard, ShardPlan, ShardPlanner
from repro.shard.scatter import ScatterGatherTRS, ShardedRSResult, ShardStats

__all__ = [
    "ScatterGatherTRS",
    "Shard",
    "ShardPlan",
    "ShardPlanner",
    "ShardStats",
    "ShardedRSResult",
]
