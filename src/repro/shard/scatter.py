"""Scatter-gather TRS: reverse skylines over K shards plus a merge round.

Decomposition
-------------
``RS_D(Q)`` decomposes cleanly over any partition ``D = S_1 ∪ ... ∪ S_K``:

1. **Scatter** — every shard runs the full two-phase TRS machinery over
   its own records. A shard's local reverse skyline is a *superset* of
   its contribution to the global answer (removing records can only grow
   a reverse skyline), so the union of local results is exactly the
   global candidate set, and everything a shard pruned locally is
   discharged for good.
2. **Gather** — shards exchange candidates: shard ``k`` receives every
   *foreign* candidate (one owned by a different shard), loads them into
   AL-Trees and streams its own records through ``Prune`` (Algorithm 5)
   — the same group-level machinery TRS phase 2 uses — deleting each
   candidate some local record prunes. A candidate survives iff no shard
   deletes it; local pruners were already applied in the scatter phase.

Identity semantics carry over untouched: shards partition the *record
ids*, so a scanned record can never be the same identity as a foreign
candidate, and exact-value duplicates across shards prune each other
exactly as the oracle demands.

Execution fans out shards as jobs over the familiar pool kinds
(serial / thread / process, mirroring :mod:`repro.exec.executor`), with
optional per-shard shared-memory manifests for process workers, per-shard
fault-injection sites with the executor's retry contract, and per-shard
observability traces grafted deterministically (shard order) under
``shard.scatter`` / ``shard.gather`` spans.

Cost accounting invariant (enforced by
:func:`repro.testing.differential.verify_sharded_equivalence`): the
per-shard :class:`~repro.core.base.CostStats` sum **exactly** to the
reported global stats on every counter; only ``wall_time_s`` differs —
the global value is the elapsed run time while shard values are each
shard's own compute time (their sum is total work, the distributed
cost model's numerator).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field, replace

from repro.altree.tree import ALTree
from repro.core.base import CostStats, RSResult, ReverseSkylineAlgorithm, Stopwatch
from repro.core.trs import ENTRY_BYTES, NODE_BYTES, prune_tree
from repro.data.dataset import Dataset
from repro.errors import AlgorithmError, ReproError, TransientError
from repro.faults.retry import RetryPolicy
from repro.obs import hooks as _obs
from repro.shard.planner import ShardPlan, ShardPlanner
from repro.storage.disk import DEFAULT_PAGE_BYTES, DiskSimulator, MemoryBudget

__all__ = ["ScatterGatherTRS", "ShardStats", "ShardedRSResult"]

_POOLS = ("serial", "thread", "process")


@dataclass(frozen=True)
class ShardStats:
    """One shard's contribution to a scatter-gather run."""

    index: int
    #: Records the shard owns.
    records: int
    #: Local reverse-skyline size (the shard's candidate contribution).
    local_candidates: int
    #: Foreign candidates this shard's merge scan deleted.
    killed: int
    #: The shard's own compute walls ("each shard is a machine").
    scan_wall_s: float
    merge_wall_s: float
    #: Combined scan+merge cost counters; ``result_count`` holds the
    #: shard's *final* owned results so per-shard parts sum exactly to
    #: the global stats.
    stats: CostStats = field(default_factory=CostStats)


@dataclass(frozen=True)
class ShardedRSResult(RSResult):
    """An :class:`RSResult` plus the per-shard breakdown."""

    shard_stats: tuple = ()
    num_shards: int = 0
    strategy: str = ""
    #: Elapsed wall of each round in *this* process (pool-dependent).
    scatter_wall_s: float = 0.0
    gather_wall_s: float = 0.0


@dataclass(frozen=True)
class _ShardOutcome:
    """Wire format for one shard job (picklable, mirrors
    :class:`repro.exec.executor._JobOutcome`)."""

    shard_index: int
    ids: tuple  # scan: global candidate ids; merge: global killed ids
    stats: CostStats
    wall_s: float
    attempts: int = 1
    trace: tuple = ()
    metrics: object | None = None
    error: str | None = None


@dataclass(frozen=True)
class _ShardJob:
    """Picklable payload for one shard job on a process pool."""

    token: str
    shard_index: int
    phase: str  # "scan" | "merge"
    query: tuple
    record_ids: tuple
    dataset: Dataset | None  # None when a shm manifest rides along
    manifest: object | None
    inner_name: str
    budget_pages: int
    page_bytes: int
    trace_checks: bool
    foreign: tuple = ()  # merge only: ((global_id, values), ...)
    fault_plan: object | None = None
    fault_seed: int = 0
    retry_args: dict | None = None
    obs_enabled: bool = False


# -- shard job bodies ---------------------------------------------------------


def _remap_trace(d: dict, record_ids: tuple) -> dict:
    """Translate a per-object trace dict from shard-local to global ids."""
    return {record_ids[lid]: c for lid, c in d.items()}


def _scan_once(algo, record_ids: tuple, query: tuple):
    """Run the shard's local TRS and express the result in global ids."""
    result = algo.run(query)
    stats = result.stats
    if stats.per_object_phase1:
        stats.per_object_phase1 = _remap_trace(stats.per_object_phase1, record_ids)
    if stats.per_object_phase2:
        stats.per_object_phase2 = _remap_trace(stats.per_object_phase2, record_ids)
    ids = tuple(record_ids[lid] for lid in result.record_ids)
    return ids, stats, stats.wall_time_s


def _merge_once(algo, record_ids: tuple, foreign: tuple, query: tuple):
    """Scan this shard's records against the foreign candidates.

    Foreign candidates are batched into AL-Trees under the same
    second-phase memory split TRS uses; the shard's (laid-out) records
    stream from a staged disk through :func:`~repro.core.trs.prune_tree`.
    Returns the killed global ids plus this round's cost counters.
    """
    stats = CostStats()
    killed: list[int] = []
    if not foreign or not record_ids:
        return tuple(killed), stats, 0.0
    tables = algo._tables()
    trace = algo.trace_checks
    _, batch_pages = algo.budget.split_for_second_phase()
    batch_bytes = batch_pages * algo.page_bytes
    # The scan must carry *global* ids: shard-local ids could collide
    # with foreign candidate ids and trip prune_tree's identity keep.
    layout = [(record_ids[lid], values) for lid, values in algo.layout]
    ordered = sorted(foreign)  # deterministic batching, by global id
    disk = DiskSimulator(
        algo.page_bytes,
        fault_injector=algo.fault_injector,
        retry_policy=algo.retry_policy,
    )
    try:
        with Stopwatch() as watch:
            data_file = disk.load_entries(algo.dataset.schema, layout, "data")
            pos = 0
            while pos < len(ordered):
                tree = ALTree(algo.attribute_order)
                batch: list[tuple[int, tuple]] = []
                while pos < len(ordered):
                    gid, values = ordered[pos]
                    tree.insert(gid, values)
                    batch.append(ordered[pos])
                    pos += 1
                    if tree.memory_bytes(NODE_BYTES, ENTRY_BYTES) >= batch_bytes:
                        break
                stats.phase2_batches += 1
                stats.db_passes += 1
                for _, dpage in data_file.scan():
                    if tree.num_objects == 0:
                        break
                    for e_id, e in dpage:
                        _, checks = prune_tree(tree, e_id, e, query, tables)
                        if checks:
                            stats.charge_phase2(e_id, checks, trace=trace)
                    if tree.num_objects == 0:
                        break
                survivors = {gid for gid, _ in tree.iter_entries()}
                killed.extend(gid for gid, _ in batch if gid not in survivors)
        stats.wall_time_s = watch.elapsed_s
        stats.io = disk.stats.snapshot()
    finally:
        disk.close()
    return tuple(killed), stats, stats.wall_time_s


def _execute_shard_phase(
    algo,
    shard_index: int,
    phase: str,
    query: tuple,
    record_ids: tuple,
    foreign: tuple,
    injector,
    policy: RetryPolicy,
) -> _ShardOutcome:
    """One shard job with the executor's recovery contract: transient
    faults (including an injected kill of this very shard job) retry
    under ``policy``; exhaustion and other library errors degrade into a
    structured error outcome instead of a raw traceback."""
    handle = _obs.begin_job(f"shard.{phase}", shard=shard_index)
    outcome: _ShardOutcome | None = None
    attempt = 0
    try:
        while outcome is None:
            try:
                if injector is not None:
                    # A shard-specific fault site: killing shard k's scan
                    # must not also kill shard k's merge or shard j's scan.
                    injector.query_fault(("shard", phase, shard_index) + query)
                if phase == "scan":
                    ids, stats, wall = _scan_once(algo, record_ids, query)
                else:
                    ids, stats, wall = _merge_once(algo, record_ids, foreign, query)
                outcome = _ShardOutcome(
                    shard_index, ids, stats, wall, attempts=attempt + 1
                )
            except TransientError as exc:
                attempt += 1
                if _obs.enabled:
                    _obs.inc("repro_shard_retries_total")
                try:
                    policy.backoff(attempt, exc)
                except ReproError as final:
                    outcome = _ShardOutcome(
                        shard_index,
                        (),
                        CostStats(),
                        0.0,
                        attempts=attempt,
                        error=f"{type(final).__name__}: {final}",
                    )
            except ReproError as exc:
                outcome = _ShardOutcome(
                    shard_index,
                    (),
                    CostStats(),
                    0.0,
                    attempts=attempt + 1,
                    error=f"{type(exc).__name__}: {exc}",
                )
    finally:
        if handle is not None:
            root = handle[1]
            if outcome is not None:
                root.annotate("attempts", outcome.attempts)
                if outcome.error is not None:
                    root.annotate("failed", outcome.error)
            trace = _obs.end_job(handle)
    if handle is not None and outcome is not None:
        outcome = replace(outcome, trace=trace)
    return outcome


# -- process-pool plumbing ----------------------------------------------------
# Shard algorithms are cached per (run token, shard index) so a worker
# that answered a shard's scan reuses the prepared layout for its merge.
_WORKER_ALGOS: dict = {}


def _worker_algo(job: _ShardJob):
    key = (job.token, job.shard_index)
    algo = _WORKER_ALGOS.get(key)
    if algo is None:
        from repro.core.registry import get_algorithm

        dataset = job.dataset
        if dataset is None:
            from repro.exec import shm as _shm

            dataset = _shm.dataset_from_manifest(job.manifest)
        algo = get_algorithm(job.inner_name)(
            dataset,
            budget=MemoryBudget(job.budget_pages),
            page_bytes=job.page_bytes,
            trace_checks=job.trace_checks,
        )
        algo.prepare()
        if len(_WORKER_ALGOS) >= 64:  # stale runs' entries
            _WORKER_ALGOS.clear()
        _WORKER_ALGOS[key] = algo
    return algo


def _run_shard_job(job: _ShardJob) -> _ShardOutcome:
    """Process-pool entry point for one shard job."""
    if job.obs_enabled and not _obs.enabled:
        _obs.enable(reset_state=True)
    if _obs.enabled:
        _obs.registry().reset()
    injector = None
    if job.fault_plan is not None:
        from repro.faults.inject import FaultInjector

        injector = FaultInjector(job.fault_plan, job.fault_seed)
    policy = RetryPolicy(**job.retry_args) if job.retry_args else RetryPolicy()
    algo = _worker_algo(job)
    algo.fault_injector = injector
    algo.retry_policy = policy
    outcome = _execute_shard_phase(
        algo,
        job.shard_index,
        job.phase,
        job.query,
        job.record_ids,
        job.foreign,
        injector,
        policy,
    )
    if _obs.enabled:
        outcome = replace(outcome, metrics=_obs.snapshot())
    return outcome


_TOKEN_COUNTER = 0


def _next_token() -> str:
    global _TOKEN_COUNTER
    _TOKEN_COUNTER += 1
    return f"{os.getpid()}-{_TOKEN_COUNTER}"


class ScatterGatherTRS(ReverseSkylineAlgorithm):
    """TRS scattered over K shards with a candidate-exchange merge round.

    Parameters (beyond the base class)
    ----------------------------------
    shards:
        Number of partitions K.
    strategy / tiles_per_dim:
        Forwarded to :class:`~repro.shard.planner.ShardPlanner`.
    backend:
        Compute backend for the per-shard scan phase (``python`` /
        ``numpy`` / ``auto``; the merge round always uses the scalar
        ``prune_tree``). ``None`` keeps the scalar reference path.
    pool / workers:
        How shard jobs fan out: ``serial`` (default — safe when this
        algorithm itself runs inside an executor pool), ``thread`` or
        ``process``.
    shm:
        Process pool only: publish each shard's sub-dataset to workers
        over one shared-memory segment per shard (manifests are created
        once per run and reused by the scan and merge rounds, then
        unlinked in a ``finally`` so crashed workers cannot leak them).

    Every shard receives the full memory budget — the cost model treats
    each shard as its own machine, which is what the 1→K scan-scaling
    benchmark measures.
    """

    name = "SGTRS"
    #: make_algorithm forwards ``backend=`` / ``shards=`` to this class.
    accepts_backend = True
    accepts_shards = True

    def __init__(
        self,
        dataset: Dataset,
        *,
        shards: int = 2,
        strategy: str = "auto",
        tiles_per_dim: int = 4,
        backend: str | None = None,
        pool: str = "serial",
        workers: int | None = None,
        shm: bool = False,
        memory_fraction: float = 0.10,
        budget: MemoryBudget | None = None,
        page_bytes: int = DEFAULT_PAGE_BYTES,
        trace_checks: bool = False,
    ) -> None:
        super().__init__(
            dataset,
            memory_fraction=memory_fraction,
            budget=budget,
            page_bytes=page_bytes,
            trace_checks=trace_checks,
        )
        if pool not in _POOLS:
            raise AlgorithmError(
                f"unknown pool kind {pool!r}; known: " + ", ".join(_POOLS)
            )
        if workers is not None and workers < 1:
            raise AlgorithmError(f"workers must be >= 1, got {workers}")
        self.shards = shards  # validated by ShardPlanner in prepare()
        self.strategy = strategy
        self.tiles_per_dim = tiles_per_dim
        self.pool = pool
        self.workers = workers
        self.shm = bool(shm)
        self._backend_pref = backend
        self._plan: ShardPlan | None = None
        self._inner: list = []
        self._inner_name = "TRS"

    # -- physical design ----------------------------------------------------
    def prepare(self) -> None:
        super().prepare()
        if self._plan is not None:
            return
        planner = ShardPlanner(
            self.shards, strategy=self.strategy, tiles_per_dim=self.tiles_per_dim
        )
        plan = planner.plan(self.dataset)
        from repro.core.registry import get_algorithm
        from repro.kernels import resolve_algorithm

        self._inner_name = resolve_algorithm("TRS", self._backend_pref, self.dataset)
        cls = get_algorithm(self._inner_name)
        self.backend = cls.backend
        inner = []
        for shard in plan.shards:
            algo = cls(
                shard.dataset,
                budget=self.budget,
                page_bytes=self.page_bytes,
                trace_checks=self.trace_checks,
            )
            algo.prepare()
            inner.append(algo)
        self._inner = inner
        self._plan = plan

    @property
    def shard_plan(self) -> ShardPlan:
        self.prepare()
        assert self._plan is not None
        return self._plan

    # -- query processing ----------------------------------------------------
    def run(self, query: tuple) -> ShardedRSResult:
        """Answer one reverse-skyline query through the scatter-gather
        protocol. Overrides the base ``run``: each shard job stages its
        own simulated disk, so there is no single algorithm-level disk."""
        q = self.dataset.validate_query(query)
        self.prepare()
        plan = self._plan
        assert plan is not None
        policy = self.retry_policy or RetryPolicy()
        for algo in self._inner:
            algo.fault_injector = self.fault_injector
            algo.retry_policy = self.retry_policy
        total = Stopwatch()
        with _obs.span(
            "algorithm.run", algorithm=self.name, shards=plan.num_shards
        ) as span:
            with total:
                pool_cm = self._make_pool()
                manifests: list = []
                try:
                    datasets, manifests = self._publish_shards(plan)
                    token = _next_token()
                    with _obs.span("shard.scatter") as scatter_span:
                        scatter = Stopwatch()
                        with scatter:
                            scans = self._run_round(
                                "scan", q, plan, policy, pool_cm, token,
                                datasets, manifests,
                            )
                        self._graft(scans, scatter_span)
                    self._raise_failures(scans, "scan")
                    candidates = self._collect_candidates(plan, scans)
                    with _obs.span("shard.gather") as gather_span:
                        gather = Stopwatch()
                        with gather:
                            merges = self._run_round(
                                "merge",
                                q,
                                plan,
                                policy,
                                pool_cm,
                                token,
                                datasets,
                                manifests,
                                candidates=candidates,
                            )
                        self._graft(merges, gather_span)
                    self._raise_failures(merges, "merge")
                finally:
                    if pool_cm is not None:
                        pool_cm.shutdown(wait=True)
                    if manifests:
                        from repro.exec import shm as _shm

                        for manifest in manifests:
                            if manifest is not None:
                                _shm.unlink_manifest(manifest)
            result = self._assemble(
                q, plan, scans, merges, candidates, total, scatter, gather
            )
            span.annotate("checks", result.stats.checks)
            span.annotate("page_ios", result.stats.io.total)
            span.annotate("results", result.stats.result_count)
        if _obs.enabled:
            _obs.record_query(self.name, result.stats)
        return result

    def _execute(self, disk, data_file, query, stats):  # pragma: no cover
        raise AlgorithmError(
            f"{self.name} drives its own scatter-gather execution; "
            "call run() instead"
        )

    # -- round orchestration -------------------------------------------------
    def _make_pool(self):
        if self.pool != "process":
            return None
        workers = self.workers or min(self.shards, os.cpu_count() or 1)
        return ProcessPoolExecutor(max_workers=workers)

    def _publish_shards(self, plan: ShardPlan):
        """For process pools with ``shm`` on: one manifest per shard,
        published once and reused by both rounds. Returns the pickled
        dataset (or ``None``) and the manifest (or ``None``) per shard."""
        datasets: list = [shard.dataset for shard in plan.shards]
        manifests: list = [None] * plan.num_shards
        if self.pool == "process" and self.shm:
            from repro.exec import shm as _shm

            for k, shard in enumerate(plan.shards):
                manifest = _shm.publish_dataset(shard.dataset)
                manifests[k] = manifest
                if manifest is not None:
                    datasets[k] = None
                elif _obs.enabled:
                    _obs.inc("repro_shm_fallbacks_total")
        return datasets, manifests

    def _run_round(
        self,
        phase: str,
        query: tuple,
        plan: ShardPlan,
        policy: RetryPolicy,
        pool_cm,
        token: str,
        datasets: list,
        manifests: list,
        *,
        candidates: list | None = None,
    ) -> list[_ShardOutcome]:
        """Fan one round's shard jobs over the configured pool; outcomes
        come back in shard order on every pool kind."""
        foreign = self._foreign_sets(plan, candidates) if phase == "merge" else None

        if self.pool == "process":
            injector = self.fault_injector
            jobs = [
                _ShardJob(
                    token=token,
                    shard_index=k,
                    phase=phase,
                    query=query,
                    record_ids=plan.shards[k].record_ids,
                    dataset=datasets[k],
                    manifest=None if datasets[k] is not None else manifests[k],
                    inner_name=self._inner_name,
                    budget_pages=self.budget.pages,
                    page_bytes=self.page_bytes,
                    trace_checks=self.trace_checks,
                    foreign=foreign[k] if foreign is not None else (),
                    fault_plan=injector.plan if injector is not None else None,
                    fault_seed=injector.seed if injector is not None else 0,
                    retry_args={
                        "max_attempts": policy.max_attempts,
                        "base_delay_s": policy.base_delay_s,
                        "multiplier": policy.multiplier,
                        "max_delay_s": policy.max_delay_s,
                        "jitter": policy.jitter,
                        "jitter_salt": policy.jitter_salt,
                    },
                    obs_enabled=_obs.enabled,
                )
                for k in range(plan.num_shards)
            ]
            return list(pool_cm.map(_run_shard_job, jobs, chunksize=1))

        def run_one(k: int) -> _ShardOutcome:
            return _execute_shard_phase(
                self._inner[k],
                k,
                phase,
                query,
                plan.shards[k].record_ids,
                foreign[k] if foreign is not None else (),
                self.fault_injector,
                policy,
            )

        indices = range(plan.num_shards)
        if self.pool == "thread" and plan.num_shards > 1:
            workers = self.workers or min(plan.num_shards, 4)
            with ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-shard"
            ) as tpool:
                return list(tpool.map(run_one, indices))
        return [run_one(k) for k in indices]

    def _foreign_sets(self, plan: ShardPlan, candidates: list) -> list[tuple]:
        """Per shard: every candidate owned by a *different* shard."""
        out: list[tuple] = []
        for k in range(plan.num_shards):
            out.append(
                tuple(
                    (gid, values)
                    for owner, gid, values in candidates
                    if owner != k
                )
            )
        return out

    def _collect_candidates(
        self, plan: ShardPlan, scans: list[_ShardOutcome]
    ) -> list[tuple]:
        """The exchanged candidate set: ``(owner_shard, gid, values)``
        triples in deterministic (shard, gid) order."""
        candidates: list[tuple] = []
        for outcome in scans:
            for gid in outcome.ids:
                candidates.append(
                    (outcome.shard_index, gid, self.dataset.records[gid])
                )
        return candidates

    def _graft(self, outcomes: list[_ShardOutcome], parent_span) -> None:
        if not _obs.enabled:
            return
        for outcome in outcomes:  # shard order: deterministic trace tree
            if outcome.trace:
                _obs.adopt_job_trace(
                    outcome.trace,
                    parent_id=getattr(parent_span, "span_id", None),
                )
            if outcome.metrics is not None:
                _obs.registry().merge(outcome.metrics)

    def _raise_failures(self, outcomes: list[_ShardOutcome], phase: str) -> None:
        failed = [o for o in outcomes if o.error is not None]
        if failed:
            detail = "; ".join(
                f"shard {o.shard_index}: {o.error}" for o in failed
            )
            raise AlgorithmError(
                f"{self.name}: {len(failed)} {phase} job(s) failed past "
                f"recovery — {detail}"
            )

    # -- result assembly -----------------------------------------------------
    def _assemble(
        self,
        query: tuple,
        plan: ShardPlan,
        scans: list[_ShardOutcome],
        merges: list[_ShardOutcome],
        candidates: list[tuple],
        total: Stopwatch,
        scatter: Stopwatch,
        gather: Stopwatch,
    ) -> ShardedRSResult:
        killed: set[int] = set()
        for outcome in merges:
            killed.update(outcome.ids)
        final = sorted(
            gid for _, gid, _ in candidates if gid not in killed
        )
        owned_final = [0] * plan.num_shards
        for gid in final:
            owned_final[plan.shard_of[gid]] += 1
        shard_stats = []
        for k in range(plan.num_shards):
            part = CostStats()
            part.add(scans[k].stats)
            part.add(merges[k].stats)
            part.result_count = owned_final[k]
            shard_stats.append(
                ShardStats(
                    index=k,
                    records=len(plan.shards[k]),
                    local_candidates=len(scans[k].ids),
                    killed=len(merges[k].ids),
                    scan_wall_s=scans[k].wall_s,
                    merge_wall_s=merges[k].wall_s,
                    stats=part,
                )
            )
        stats = CostStats.merged(part.stats for part in shard_stats)
        # Elapsed run time, not summed shard work (the parts keep that).
        stats.wall_time_s = total.elapsed_s
        return ShardedRSResult(
            self.name,
            query,
            tuple(final),
            stats,
            backend=self.backend,
            shard_stats=tuple(shard_stats),
            num_shards=plan.num_shards,
            strategy=plan.strategy,
            scatter_wall_s=scatter.elapsed_s,
            gather_wall_s=gather.elapsed_s,
        )
