"""Partitioning a dataset into K shards.

The partitioner reuses the paper's Section 5.6 physical-design machinery:
records are ordered along the Z-order tile grid (:class:`~repro.tiling.
tiles.TileGrid`) and split into K contiguous chunks, so each shard holds
a spatially coherent slab of the attribute space — local phase-1 pruning
then discharges most objects before the merge round ever sees them. For
schemas the tile grid cannot stripe (or when tiling degenerates), a
deterministic round-robin split keeps shard sizes balanced.

Shards carry **global** record ids: a shard's sub-dataset re-indexes its
records from 0, and ``Shard.record_ids[local_id]`` maps back to the
position in the caller's dataset — every result set the scatter-gather
algorithm reports stays expressed in the user's ids.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.dataset import Dataset
from repro.errors import AlgorithmError, ReproError
from repro.tiling.tiles import TileGrid

__all__ = ["Shard", "ShardPlan", "ShardPlanner"]

STRATEGIES = ("auto", "zorder", "round-robin")


@dataclass(frozen=True)
class Shard:
    """One partition: a sub-dataset plus the global ids of its records.

    ``dataset.records[j]`` is the record whose id in the parent dataset
    is ``record_ids[j]``; the sub-dataset shares the parent's schema and
    dissimilarity space, so queries validate identically on both.
    """

    index: int
    record_ids: tuple[int, ...]
    dataset: Dataset

    def __len__(self) -> int:
        return len(self.record_ids)


@dataclass(frozen=True)
class ShardPlan:
    """The full partition of one dataset (``shards`` covers every record
    exactly once; empty shards are legal when K exceeds the record count)."""

    strategy: str
    shards: tuple[Shard, ...]
    #: global record id -> shard index.
    shard_of: tuple[int, ...]

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def check_partition(self, num_records: int) -> None:
        """Assert the shards partition ``0..num_records-1`` exactly —
        the invariant the differential harness re-checks per trial."""
        seen: list[int] = []
        for shard in self.shards:
            seen.extend(shard.record_ids)
        if sorted(seen) != list(range(num_records)):
            raise AlgorithmError(
                f"shard plan is not a partition: covered {len(seen)} ids "
                f"of {num_records} records"
            )


class ShardPlanner:
    """Split a dataset into ``shards`` partitions.

    Parameters
    ----------
    shards:
        Number of partitions K (>= 1).
    strategy:
        ``"zorder"`` orders records by their Z-order tile index (ties
        broken by record id — the split is a pure function of the data)
        and cuts K contiguous near-equal chunks; ``"round-robin"`` deals
        records out cyclically; ``"auto"`` (default) tries Z-order and
        falls back to round-robin when the tile grid cannot be built
        (e.g. an empty dataset).
    tiles_per_dim:
        Stripe count per attribute for the Z-order grid.
    """

    def __init__(
        self,
        shards: int,
        *,
        strategy: str = "auto",
        tiles_per_dim: int = 4,
    ) -> None:
        if shards < 1:
            raise AlgorithmError(f"shards must be >= 1, got {shards}")
        if strategy not in STRATEGIES:
            raise AlgorithmError(
                f"unknown shard strategy {strategy!r}; known: "
                + ", ".join(STRATEGIES)
            )
        self.shards = shards
        self.strategy = strategy
        self.tiles_per_dim = tiles_per_dim

    def plan(self, dataset: Dataset) -> ShardPlan:
        """Partition ``dataset`` into K shards."""
        if self.strategy == "round-robin":
            order, used = self._round_robin_order(dataset), "round-robin"
        elif self.strategy == "zorder":
            order, used = self._zorder_order(dataset), "zorder"
        else:
            try:
                order, used = self._zorder_order(dataset), "zorder"
            except ReproError:
                order, used = self._round_robin_order(dataset), "round-robin"
        return self._plan_from_order(dataset, order, used)

    # -- orderings ----------------------------------------------------------
    def _zorder_order(self, dataset: Dataset) -> list[list[int]]:
        grid = TileGrid.for_dataset(dataset, self.tiles_per_dim)
        ranked = sorted(
            range(len(dataset)),
            key=lambda rid: (grid.z_index(dataset.records[rid]), rid),
        )
        # K contiguous chunks along the curve, sizes within one of each
        # other (first `rem` chunks take the extra record).
        base, rem = divmod(len(ranked), self.shards)
        chunks: list[list[int]] = []
        start = 0
        for k in range(self.shards):
            size = base + (1 if k < rem else 0)
            chunks.append(ranked[start : start + size])
            start += size
        return chunks

    def _round_robin_order(self, dataset: Dataset) -> list[list[int]]:
        chunks: list[list[int]] = [[] for _ in range(self.shards)]
        for rid in range(len(dataset)):
            chunks[rid % self.shards].append(rid)
        return chunks

    # -- assembly -----------------------------------------------------------
    def _plan_from_order(
        self, dataset: Dataset, chunks: list[list[int]], used: str
    ) -> ShardPlan:
        shard_of = [0] * len(dataset)
        shards = []
        for k, ids in enumerate(chunks):
            for rid in ids:
                shard_of[rid] = k
            sub = Dataset(
                dataset.schema,
                [dataset.records[rid] for rid in ids],
                dataset.space,
                validate=False,
                name=f"{dataset.name}-shard{k}",
            )
            shards.append(Shard(index=k, record_ids=tuple(ids), dataset=sub))
        plan = ShardPlan(
            strategy=used, shards=tuple(shards), shard_of=tuple(shard_of)
        )
        plan.check_partition(len(dataset))
        return plan
