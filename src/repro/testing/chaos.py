"""Chaos-equivalence harness: randomized workloads under injected faults.

The recovery contract of :mod:`repro.faults` is behavioural, so it is
verified behaviourally: replay randomized workloads (the same generator
the differential harness uses) through ``query_many`` with a
:class:`~repro.faults.FaultInjector` armed, and assert — per query, per
pool — that

- the batch **never aborts**: ``run_batch`` returns a report even when
  individual queries die;
- there are **no silent wrong answers**: every answered slot is
  bit-identical to the fault-free sequential run;
- every unanswered slot carries a **structured**
  :class:`~repro.exec.merge.QueryError` (retry exhaustion is legal, a
  raw traceback is not).

With the default plan the injector caps consecutive per-site failures
below the retry budget, so serial-pool recovery always succeeds and the
harness additionally asserts **zero** failed queries there; under
concurrent pools interleavings may exhaust a retry budget, which is
exactly the structured-error path above.

    report = verify_chaos_equivalence(trials=50, seed=7)
    assert report.ok, report.failures[0]
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ExperimentError
from repro.faults.inject import FaultInjector, FaultPlan
from repro.faults.retry import RetryPolicy
from repro.testing.verify import WorkloadCase, random_workload

__all__ = ["ChaosFailure", "ChaosReport", "verify_chaos_equivalence"]


@dataclass(frozen=True)
class ChaosFailure:
    """One violation of the recovery contract (reproducible from the case)."""

    case: WorkloadCase
    pool: str
    kind: str  # "batch-abort" | "wrong-answer" | "unstructured-error" | ...
    detail: str

    def __str__(self) -> str:  # pragma: no cover - diagnostic path
        return f"[{self.pool}] {self.kind}: {self.detail} ({self.case.describe()})"


@dataclass
class ChaosReport:
    trials: int = 0
    #: (pool, trial) combinations actually executed.
    runs: int = 0
    #: Faults the injectors produced across all runs.
    faults_injected: int = 0
    #: Page-IO retries the storage layer performed to recover.
    io_retries: int = 0
    #: Queries that exhausted recovery and degraded into structured errors.
    exhausted_queries: int = 0
    failures: list[ChaosFailure] = field(default_factory=list)
    #: Pools that could not run here (e.g. no multiprocessing primitives).
    skipped_pools: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def _no_sleep(_: float) -> None:
    """Backoff hook for chaos runs: determinism comes from the injector,
    so waiting real time would only slow the harness down."""


def verify_chaos_equivalence(
    *,
    trials: int = 50,
    seed: int = 0,
    pools: tuple[str, ...] = ("serial", "thread", "process"),
    plan: FaultPlan | None = None,
    batch_size: int = 5,
    workers: int = 2,
    use_cache: bool = True,
    use_plan: bool = False,
    use_shm: bool = False,
    shards: int = 0,
    max_failures: int = 5,
) -> ChaosReport:
    """Replay ``trials`` randomized workloads under fault injection on
    every pool kind, asserting the recovery contract (module docstring).

    ``plan`` defaults to :meth:`FaultPlan.storm` at a rate high enough
    that essentially every trial injects something. Pools that cannot
    run in this environment (sandboxes without process primitives) are
    recorded in ``skipped_pools`` rather than failing the report.

    ``use_plan`` routes every batch through the shared-scan planner
    (``plan`` is already taken — it is the FaultPlan) and ``use_shm``
    publishes datasets to process workers over shared memory; both must
    uphold the same contract, and with ``use_shm`` the harness
    additionally asserts **zero leaked shared-memory segments** after
    every batch — even when workers crashed mid-run (kind
    ``"shm-leak"``).

    ``shards`` > 0 answers the faulted side through K-shard
    scatter-gather (``SGTRS``) while the fault-free reference stays
    sequential TRS: a worker crash killing one shard job mid-round must
    still produce a bit-identical answer (shard-level retries) or a
    structured error — never a wrong answer, never a batch abort.
    """
    if trials < 1:
        raise ExperimentError(f"trials must be >= 1, got {trials}")
    if batch_size < 2:
        raise ExperimentError(f"batch_size must be >= 2, got {batch_size}")
    from repro.engine import ReverseSkylineEngine

    if plan is None:
        plan = FaultPlan.storm(0.15)
    # Guaranteed recovery on the serial pool: allow one attempt more than
    # the longest possible per-site failure streak.
    policy = RetryPolicy(
        max_attempts=plan.max_consecutive + 2, base_delay_s=0.0, sleep=_no_sleep
    )
    report = ChaosReport()
    unavailable: set[str] = set()
    for t in range(trials):
        case = random_workload(seed + t)
        report.trials += 1
        rng = np.random.default_rng((seed + t) * 6151 + 3)
        cards = case.dataset.schema.cardinalities()
        queries = [case.query] + [
            tuple(int(rng.integers(0, c)) for c in cards)
            for _ in range(batch_size - 2)
        ]
        queries.append(case.query)  # duplicate → dedup/caching under faults
        reference = ReverseSkylineEngine(
            case.dataset, page_bytes=case.page_bytes, log_queries=False
        )
        expected = [tuple(reference.query(q).record_ids) for q in queries]
        for pool in pools:
            if pool in unavailable:
                continue
            injector = FaultInjector(plan, seed=seed + t)
            engine = ReverseSkylineEngine(
                case.dataset,
                page_bytes=case.page_bytes,
                log_queries=False,
                fault_injector=injector,
                retry_policy=policy,
                shards=shards or None,
            )
            try:
                batch = engine.query_many(
                    queries,
                    pool=pool,
                    workers=workers,
                    cache=use_cache,
                    plan=use_plan,
                    shm=use_shm,
                )
            except (OSError, PermissionError) as exc:
                # The environment, not the contract: no process primitives.
                unavailable.add(pool)
                report.skipped_pools.append(f"{pool}: {exc}")
                continue
            except Exception as exc:  # noqa: BLE001 - the contract violation
                report.failures.append(
                    ChaosFailure(case, pool, "batch-abort", repr(exc))
                )
                continue
            report.runs += 1
            if use_shm:
                from repro.exec import shm as _shm

                leaked = _shm.active_segments()
                if leaked:
                    report.failures.append(
                        ChaosFailure(
                            case,
                            pool,
                            "shm-leak",
                            f"segments still owned after batch: {leaked}",
                        )
                    )
            # Process-pool workers rebuild the injector on their side of the
            # pickle, so the parent's counters stay zero there; the merged IO
            # stats carry the worker-side fault count home.
            report.faults_injected += (
                injector.stats().total or batch.stats.io.faults_seen
            )
            report.io_retries += batch.stats.io.retries
            for i, (want, result) in enumerate(zip(expected, batch.results)):
                if result is not None:
                    if tuple(result.record_ids) != want:
                        report.failures.append(
                            ChaosFailure(
                                case,
                                pool,
                                "wrong-answer",
                                f"slot {i}: got {tuple(result.record_ids)}, "
                                f"want {want}",
                            )
                        )
                    continue
                error = batch.errors[i]
                if error is None or not error.error_type:
                    report.failures.append(
                        ChaosFailure(
                            case,
                            pool,
                            "unstructured-error",
                            f"slot {i} unanswered without a QueryError",
                        )
                    )
                    continue
                report.exhausted_queries += 1
                if pool == "serial":
                    # With max_attempts > max_consecutive, serial recovery
                    # cannot run out of retries — exhaustion here means the
                    # retry/injection accounting is broken.
                    report.failures.append(
                        ChaosFailure(
                            case,
                            pool,
                            "serial-exhaustion",
                            f"slot {i}: {error.describe()}",
                        )
                    )
            if len(report.failures) >= max_failures:
                return report
    return report
